//! Quality autotuning: the paper's single-knob promise (§3.2) made
//! operational — given a PSNR floor, find the cheapest ratio that meets
//! it with the bisection controller, then report the energy saved.
//!
//! ```sh
//! cargo run --release -p scorpio --example quality_autotune [target_db]
//! ```

use scorpio::kernels::sobel;
use scorpio::quality::{psnr_images, SyntheticImage};
use scorpio::runtime::controller::{calibrate_ratio, QualityTarget};
use scorpio::runtime::{EnergyModel, Executor};

fn main() {
    let target_db: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40.0);

    let executor = Executor::with_available_parallelism();
    let model = EnergyModel::xeon_e5_2695v3();
    let img = SyntheticImage::GaussianBlobs.render(256, 256, 7);
    let reference = sobel::reference(&img);

    println!("=== autotuning Sobel to PSNR {target_db} dB ===\n");
    let calibration = calibrate_ratio(
        |ratio| {
            let (out, _) = sobel::tasked(&img, &executor, ratio);
            psnr_images(&reference, &out).min(1e6)
        },
        QualityTarget::AtLeast(target_db),
        0.02,
    );

    println!("evaluations ({} approximate executions):", calibration.evaluations.len());
    for (r, q) in &calibration.evaluations {
        println!("  ratio {r:>5.3} → PSNR {q:>7.2} dB");
    }

    match calibration.ratio {
        Some(ratio) => {
            let (_, stats) = sobel::tasked(&img, &executor, ratio);
            let (_, full_stats) = sobel::tasked(&img, &executor, 1.0);
            let saved = model.energy_reduction(&stats, &full_stats) * 100.0;
            println!(
                "\n→ cheapest ratio meeting the target: {ratio:.3} \
                 (PSNR {:.2} dB, {saved:.1}% energy saved vs fully accurate)",
                calibration.quality
            );
        }
        None => println!(
            "\n→ unreachable: even the fully accurate execution scores {:.2} dB",
            calibration.quality
        ),
    }
}
