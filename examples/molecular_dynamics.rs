//! Molecular-dynamics example: the N-Body kernel of §4.1.4 — distance
//! correlation of significance, then the headline quality/energy result
//! (significance-driven approximation vs loop perforation).
//!
//! ```sh
//! cargo run --release -p scorpio --example molecular_dynamics
//! ```

use scorpio::kernels::nbody;
use scorpio::quality::relative_error_l2;
use scorpio::runtime::{EnergyModel, Executor};

fn main() {
    // ── The analysis confirms domain wisdom: significance ~ 1/distance ─
    println!("=== pair significance vs distance (Lennard-Jones) ===");
    println!("  {:>8} {:>14}", "r (σ)", "significance");
    for r0 in [1.2, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0] {
        let s = nbody::analysis_pair(r0, 0.05).expect("analysis");
        println!("  {r0:>8.2} {s:>14.6e}");
    }

    // ── Simulation: sig-driven vs perforated at matched ratios ─────────
    let params = nbody::Params::evaluation();
    println!(
        "\n=== liquid-argon simulation: {} atoms, {} regions, {} steps ===",
        params.atoms(),
        params.regions.pow(3),
        params.steps
    );
    let executor = Executor::with_available_parallelism();
    let model = EnergyModel::xeon_e5_2695v3();
    let reference_state = nbody::reference(&params);
    let obs = nbody::observables(&reference_state);
    println!(
        "  reference observables: E = {:.3} (KE {:.3} + PE {:.3}), T* = {:.4}, |p| = {:.2e}",
        obs.total_energy(),
        obs.kinetic,
        obs.potential,
        obs.temperature,
        obs.momentum
    );
    let exact = reference_state.flatten();

    println!(
        "  {:>6} {:>16} {:>12} | {:>16} {:>12}",
        "ratio", "sig rel.err", "sig E(J)", "perf rel.err", "perf E(J)"
    );
    for ratio in [1.0, 0.8, 0.5, 0.2, 0.0] {
        let (sig_state, sig_stats) = nbody::tasked(&params, &executor, ratio);
        let (perf_state, perf_stats) = nbody::perforated(&params, ratio);
        println!(
            "  {ratio:>6.1} {:>16.3e} {:>12.1} | {:>16.3e} {:>12.1}",
            relative_error_l2(&exact, &sig_state.flatten()),
            model.energy(&sig_stats),
            relative_error_l2(&exact, &perf_state.flatten()),
            model.energy(&perf_stats),
        );
    }
    println!(
        "\nThe significance-driven run stays accurate even fully approximate\n\
         (far regions collapse to centres of mass), while perforation loses\n\
         near-neighbour forces — the ~6-orders-of-magnitude gap of Fig. 7."
    );
}
