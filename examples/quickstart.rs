//! Quickstart: the full significance-analysis workflow on the paper's
//! Maclaurin running example (§3 of the CGO'16 paper).
//!
//! ```sh
//! cargo run --release -p scorpio --example quickstart
//! ```

use scorpio::analysis::AnalysisError;
use scorpio::kernels::maclaurin;
use scorpio::runtime::{EnergyModel, Executor};

fn main() -> Result<(), AnalysisError> {
    let x0 = 0.49;
    let n = 8;

    // ── Step 1: significance analysis (Listings 5–6, Fig. 3) ──────────
    println!("=== significance analysis of maclaurin(x ∈ {x0} ± 0.5, N = {n}) ===\n");
    let report = maclaurin::analysis(x0, n)?;
    print!("{report}");

    // ── Step 2: Algorithm-1 workflow: simplify + variance partition ───
    let partition = report.partition();
    println!(
        "\nAlgorithm 1 cut level: {:?} (task outputs = series terms)",
        partition.cut_level
    );
    for stats in &partition.level_stats {
        println!(
            "  level {}: {} nodes, mean significance {:.4}, variance {:.6}",
            stats.level, stats.count, stats.mean, stats.variance
        );
    }

    // The simplified DynDFG of Fig. 3b, ready for graphviz.
    println!("\nFig. 3b DynDFG (render with `dot -Tpng`):\n");
    println!("{}", report.graph().simplified().to_dot("maclaurin"));

    // ── Step 3: significance-driven execution (Listing 7) ─────────────
    println!("=== execution under the ratio knob ===\n");
    let executor = Executor::new(4);
    let model = EnergyModel::xeon_e5_2695v3();
    let exact = maclaurin::reference(x0, n);
    println!(
        "{:>6} {:>14} {:>12} {:>10} {:>10}",
        "ratio", "result", "rel. error", "acc/apx", "energy(J)"
    );
    let mut reference_stats = None;
    for ratio in [1.0, 0.8, 0.5, 0.2, 0.0] {
        let (value, stats) = maclaurin::tasked(x0, n, &executor, ratio);
        let rel = (value - exact).abs() / exact.abs();
        if ratio == 1.0 {
            reference_stats = Some(stats.clone());
        }
        let reduction = reference_stats
            .as_ref()
            .map(|r| model.energy_reduction(&stats, r) * 100.0)
            .unwrap_or(0.0);
        println!(
            "{ratio:>6.1} {value:>14.9} {rel:>12.2e} {:>6}/{:<3} {:>8.2e}  (−{reduction:.0}%)",
            stats.accurate,
            stats.approximate,
            model.energy(&stats),
        );
    }
    println!("\nexact value: {exact:.9} (= 1/(1−x) as N → ∞: {:.6})", 1.0 / (1.0 - x0));
    Ok(())
}
