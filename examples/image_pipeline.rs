//! Image-processing pipeline example: significance-driven approximation
//! of the Sobel and DCT kernels (§4.1.1–4.1.2 of the CGO'16 paper) on a
//! synthetic image, with PSNR and modeled energy per ratio, writing PGM
//! snapshots you can open in any image viewer.
//!
//! ```sh
//! cargo run --release -p scorpio --example image_pipeline
//! ```

use std::fs::File;
use std::io::BufWriter;

use scorpio::kernels::{dct, sobel};
use scorpio::quality::{psnr_images, GrayImage, SyntheticImage};
use scorpio::runtime::{EnergyModel, Executor};

fn save(img: &GrayImage, path: &str) {
    let file = File::create(path).unwrap_or_else(|e| panic!("create {path}: {e}"));
    img.write_pgm(BufWriter::new(file))
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("  wrote {path}");
}

fn main() {
    let executor = Executor::with_available_parallelism();
    let model = EnergyModel::xeon_e5_2695v3();
    let img = SyntheticImage::GaussianBlobs.render(256, 256, 2024);

    // ── Sobel: the A/B/C block ranking drives the task significances ──
    println!("=== Sobel edge detection ===");
    let report = sobel::analysis().expect("sobel analysis");
    for part in sobel::Part::all() {
        println!(
            "  part {part:?}: significance {:.3} → task significance {:.2}",
            sobel::part_significance(&report, part),
            part.significance()
        );
    }
    let full = sobel::reference(&img);
    save(&full, "sobel_accurate.pgm");
    println!("  {:>6} {:>10} {:>12} {:>12}", "ratio", "PSNR(dB)", "energy(J)", "perf PSNR");
    for ratio in [1.0, 0.8, 0.5, 0.2, 0.0] {
        let (out, stats) = sobel::tasked(&img, &executor, ratio);
        let (perf, _) = sobel::perforated(&img, ratio);
        println!(
            "  {ratio:>6.1} {:>10.2} {:>12.3e} {:>12.2}",
            psnr_images(&full, &out),
            model.energy(&stats),
            psnr_images(&full, &perf),
        );
        if (ratio - 0.5).abs() < 1e-9 {
            save(&out, "sobel_ratio05.pgm");
        }
    }

    // ── DCT: the Fig. 4 coefficient map drives the diagonal tasks ─────
    println!("\n=== DCT encode/decode ===");
    let report = dct::analysis_default().expect("dct analysis");
    let map = dct::coefficient_map(&report);
    println!("  Fig. 4 coefficient significance map (row = v, col = u):");
    for row in &map {
        print!("   ");
        for s in row {
            print!(" {s:>6.3}");
        }
        println!();
    }
    let full = dct::reference(&img);
    save(&full, "dct_accurate.pgm");
    println!("  {:>6} {:>10} {:>12} {:>12}", "ratio", "PSNR(dB)", "energy(J)", "perf PSNR");
    for ratio in [1.0, 0.8, 0.5, 0.2, 0.0] {
        let (out, stats) = dct::tasked(&img, &executor, ratio);
        let (perf, _) = dct::perforated(&img, ratio);
        println!(
            "  {ratio:>6.1} {:>10.2} {:>12.3e} {:>12.2}",
            psnr_images(&full, &out),
            model.energy(&stats),
            psnr_images(&full, &perf),
        );
        if (ratio - 0.5).abs() < 1e-9 {
            save(&out, "dct_ratio05.pgm");
        }
    }
    println!("\nOpen the .pgm files to compare accurate vs ratio-0.5 outputs.");
}
