//! Financial-engineering example: BlackScholes option pricing (§4.1.5)
//! — block significance ranking, then batch pricing with fastmath
//! approximation under the ratio knob.
//!
//! ```sh
//! cargo run --release -p scorpio --example options_desk
//! ```

use scorpio::kernels::blackscholes as bs;
use scorpio::quality::{mean_relative_error, relative_error_l2};
use scorpio::runtime::{EnergyModel, Executor};

fn main() {
    // ── Block ranking: sig(A) > sig(B) ≫ sig(C) > sig(D) ──────────────
    println!("=== BlackScholes block significance (§4.1.5) ===");
    let report = bs::analysis().expect("analysis");
    let (a, b, c, d) = bs::block_significances(&report);
    println!("  A (d1 computation):     {a:.4}");
    println!("  B (d2 computation):     {b:.4}");
    println!("  C (CNDF evaluations):   {c:.4}");
    println!("  D (discount factor):    {d:.4}");
    println!("  → approximate C and D with fastmath (fast_cndf/fast_exp/fast_sqrt)");

    // ── Batch pricing ───────────────────────────────────────────────────
    let options = bs::generate_options(65_536, 99);
    let executor = Executor::with_available_parallelism();
    let model = EnergyModel::xeon_e5_2695v3();
    let exact = bs::reference(&options);

    println!("\n=== pricing {} options, 256-option task chunks ===", options.len());
    println!(
        "  {:>6} {:>14} {:>14} {:>12}",
        "ratio", "L2 rel.err", "mean rel.err", "energy(J)"
    );
    for ratio in [1.0, 0.8, 0.5, 0.2, 0.0] {
        let (prices, stats) = bs::tasked(&options, 256, &executor, ratio);
        println!(
            "  {ratio:>6.1} {:>14.3e} {:>14.3e} {:>12.4}",
            relative_error_l2(&exact, &prices),
            mean_relative_error(&exact, &prices),
            model.energy(&stats),
        );
    }
    println!(
        "\nLoop perforation is not applicable to BlackScholes (§4.2): a\n\
         single option price has no loop to perforate."
    );

    // Show one concrete contract both ways.
    let sample = options[0];
    println!("\nsample contract: {sample:?}");
    println!("  accurate price:    {:.6}", bs::price(&sample));
    println!("  approximate price: {:.6}", bs::price_approx(&sample));
}
