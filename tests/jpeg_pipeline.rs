//! End-to-end JPEG scenario integration: the checked-in `assets/`
//! images through analysis → significance-scheduled transform →
//! quantisation → entropy coding and back, across the whole ratio grid.

use scorpio::analysis::ParallelAnalysis;
use scorpio::kernels::jpeg;
use scorpio::quality::{psnr_images, GrayImage};
use scorpio::runtime::Executor;
use std::io::BufReader;

fn load_asset(name: &str) -> GrayImage {
    let path = format!("{}/../../assets/{name}", env!("CARGO_MANIFEST_DIR"));
    let file = std::fs::File::open(&path).unwrap_or_else(|e| panic!("open {path}: {e}"));
    GrayImage::read_pgm(BufReader::new(file)).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

#[test]
fn psnr_is_monotone_in_ratio_on_a_real_image() {
    let img = load_asset("scene.pgm");
    let engine = ParallelAnalysis::new(1);
    let executor = Executor::new(1);
    let sig = jpeg::analyze(&img, 8.0, &engine).expect("analysis");
    let full = jpeg::decode(&jpeg::encode_with_significance(&img, &executor, &sig, 1.0).bytes)
        .expect("decode");
    let mut last = -1.0;
    for ratio in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let enc = jpeg::encode_with_significance(&img, &executor, &sig, ratio);
        assert!(
            jpeg::verify_bitstream(&enc.bytes).expect("parse own bitstream"),
            "container at ratio {ratio} must round-trip bit-exactly"
        );
        let recon = jpeg::decode(&enc.bytes).expect("decode");
        let psnr = psnr_images(&full, &recon).min(99.0);
        assert!(
            psnr >= last - 0.25,
            "PSNR fell from {last:.2} to {psnr:.2} at ratio {ratio}"
        );
        last = psnr;
    }
    assert_eq!(last, 99.0, "ratio 1.0 must reproduce the yardstick");
}

#[test]
fn ratio_extremes_schedule_all_one_way() {
    let img = load_asset("texture.pgm");
    let engine = ParallelAnalysis::new(1);
    let executor = Executor::new(1);
    let sig = jpeg::analyze(&img, 8.0, &engine).expect("analysis");
    let all_approx = jpeg::encode_with_significance(&img, &executor, &sig, 0.0);
    assert_eq!(all_approx.accurate_blocks(), 0);
    let all_accurate = jpeg::encode_with_significance(&img, &executor, &sig, 1.0);
    assert_eq!(all_accurate.approx_blocks(), 0);
    assert_eq!(
        all_approx.accurate_blocks() + all_approx.approx_blocks(),
        all_accurate.accurate_blocks()
    );
}

#[test]
fn options_entry_point_round_trips_a_real_image() {
    let img = load_asset("scene.pgm");
    let enc = jpeg::encode(&img, &jpeg::EncodeOptions::default()).expect("encode");
    let back = jpeg::decode(&enc.bytes).expect("decode");
    assert_eq!((back.width(), back.height()), (img.width(), img.height()));
    let psnr = psnr_images(&img, &back);
    assert!(psnr > 28.0, "JPEG-quality reconstruction, got {psnr:.2} dB");
    assert!(enc.bits_per_pixel() > 0.1 && enc.bits_per_pixel() < 8.0);
}
