//! Property-based integration tests spanning crates: the interval/AD
//! machinery against the kernels' real math, and the runtime's ratio
//! semantics against kernel quality.

use proptest::prelude::*;
use scorpio::analysis::Analysis;
use scorpio::interval::Interval;
use scorpio::kernels::{blackscholes, maclaurin};
use scorpio::runtime::{perforation::Perforator, Executor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The analysed enclosure of the Maclaurin sum contains the concrete
    /// reference value for any sample point of the input box.
    #[test]
    fn maclaurin_enclosure_soundness(x0 in -0.4f64..0.4, t in -0.5f64..=0.5, n in 2usize..12) {
        let report = maclaurin::analysis(x0, n).unwrap();
        let enclosure = report.var("result").unwrap().enclosure;
        let sample = maclaurin::reference(x0 + t, n);
        prop_assert!(
            enclosure.contains(sample),
            "reference({}) = {} outside {}", x0 + t, sample, enclosure
        );
    }

    /// BlackScholes interval pricing encloses concrete prices over the
    /// whole parameter box (a 5-input end-to-end enclosure check through
    /// ln, sqrt, exp and the CNDF).
    #[test]
    fn blackscholes_enclosure_soundness(
        s in 0.0f64..=1.0, k in 0.0f64..=1.0, r in 0.0f64..=1.0,
        v in 0.0f64..=1.0, t in 0.0f64..=1.0,
    ) {
        let report = Analysis::new().run(|ctx| {
            let spot = ctx.input("spot", 80.0, 120.0);
            let strike = ctx.input("strike", 90.0, 110.0);
            let rate = ctx.input("rate", 0.01, 0.1);
            let vol = ctx.input("vol", 0.15, 0.65);
            let time = ctx.input("time", 0.25, 2.0);
            let sqrt_t = time.sqrt();
            let d1 = ((spot / strike).ln() + (rate + vol.sqr() * 0.5) * time) / (vol * sqrt_t);
            let d2 = d1 - vol * sqrt_t;
            let price = spot * d1.cndf() - strike * (-(rate * time)).exp() * d2.cndf();
            ctx.output(&price, "price");
            Ok(())
        }).unwrap();
        let enclosure = report.var("price").unwrap().enclosure;

        let opt = blackscholes::Option_ {
            spot: 80.0 + 40.0 * s,
            strike: 90.0 + 20.0 * k,
            rate: 0.01 + 0.09 * r,
            volatility: 0.15 + 0.5 * v,
            time: 0.25 + 1.75 * t,
            call: true,
        };
        let price = blackscholes::price(&opt);
        prop_assert!(enclosure.contains(price), "{price} outside {enclosure}");
    }

    /// The runtime's accurate-task count honours the ratio for arbitrary
    /// Maclaurin sizes, and the result degrades towards the perforated
    /// value as tasks lose their terms.
    #[test]
    fn ratio_accounting_matches_spec(n in 2usize..40, ratio in 0.0f64..=1.0) {
        let executor = Executor::new(2);
        let (_, stats) = maclaurin::tasked(0.3, n, &executor, ratio);
        let tasks = n - 1; // term 0 is precomputed
        prop_assert_eq!(stats.total(), tasks);
        let min_acc = (ratio * tasks as f64).ceil() as usize;
        prop_assert!(stats.accurate >= min_acc);
        prop_assert!(stats.accurate <= tasks);
    }

    /// Perforation keeps exactly ⌊n·f⌋ iterations for any size, and the
    /// kept set of a lower fraction is a subset of a higher one.
    #[test]
    fn perforation_exactness_and_nesting(n in 1usize..200, f1 in 0.0f64..=1.0, f2 in 0.0f64..=1.0) {
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let p_lo = Perforator::new(n, lo);
        let p_hi = Perforator::new(n, hi);
        prop_assert_eq!(p_lo.kept(), (n as f64 * lo).floor() as usize);
        for i in 0..n {
            if p_lo.keep(i) {
                prop_assert!(p_hi.keep(i), "iteration {i} lost raising {lo} → {hi}");
            }
        }
    }

    /// Interval splitting of a piecewise closure covers the declared
    /// domain with subdomain hulls and keeps every subdomain enclosure
    /// sound.
    #[test]
    fn splitting_covers_domain(threshold in -0.8f64..0.8) {
        let report = scorpio::analysis::splitting::run_with_splitting(
            &Analysis::new(),
            24,
            move |ctx| {
                let x = ctx.input("x", -1.0, 1.0);
                let above = ctx.branch(
                    x.value().certainly_gt(Interval::point(threshold)),
                    "x > threshold",
                )?;
                let y = if above { x * 2.0 } else { x * -3.0 };
                ctx.output(&y, "y");
                Ok(())
            },
        ).unwrap();
        let hull = report
            .subdomains
            .iter()
            .map(|b| b[0])
            .fold(Interval::EMPTY, |acc, iv| acc.hull(iv));
        prop_assert!((hull.inf() - (-1.0)).abs() < 1e-9);
        prop_assert!((hull.sup() - 1.0).abs() < 1e-9);
        // Merged enclosure of y covers both branches' extremes.
        let y = report.vars.iter().find(|v| v.name == "y").unwrap();
        prop_assert!(y.enclosure.contains(2.0) || y.enclosure.contains(3.0));
    }
}

#[test]
fn monte_carlo_agrees_with_interval_ranking() {
    // The MC estimator (future-work extension) must reproduce the
    // interval analysis' term ranking on the Maclaurin example.
    let ia = maclaurin::analysis(0.49, 5).unwrap();
    let mc = scorpio::analysis::mc::estimate(512, 42, |ctx| {
        let x = ctx.input("x", 0.49 - 0.5, 0.49 + 0.5);
        let mut result = ctx.constant(0.0);
        for i in 0..5 {
            let term = x.powi(i);
            ctx.intermediate(&term, format!("term{i}"));
            result = result + term;
        }
        ctx.output(&result, "result");
        Ok(())
    })
    .unwrap();

    for i in 1..4 {
        let ia_i = ia.significance_of(&format!("term{i}")).unwrap();
        let ia_j = ia.significance_of(&format!("term{}", i + 1)).unwrap();
        let mc_i = mc.significance_of(&format!("term{i}")).unwrap();
        let mc_j = mc.significance_of(&format!("term{}", i + 1)).unwrap();
        assert_eq!(
            ia_i > ia_j,
            mc_i > mc_j,
            "ranking disagreement at term{i}: IA ({ia_i}, {ia_j}) vs MC ({mc_i}, {mc_j})"
        );
    }
}
