//! Integration tests of the second-order (tangent-over-adjoint)
//! extension against closed-form financial Greeks — the classic
//! real-world oracle for Hessians: for a Black-Scholes call,
//!
//! * delta  Δ = ∂V/∂S = Φ(d1)
//! * gamma  Γ = ∂²V/∂S² = φ(d1) / (S·σ·√T)
//! * vega   ν = ∂V/∂σ = S·φ(d1)·√T

use scorpio::adjoint::{Dual, Scalar, Tape, Var};
use scorpio::interval::real::cndf;

const SPOT: f64 = 100.0;
const STRIKE: f64 = 105.0;
const RATE: f64 = 0.05;
const VOL: f64 = 0.25;
const TIME: f64 = 0.75;

/// Standard normal density.
fn phi(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

fn d1() -> f64 {
    ((SPOT / STRIKE).ln() + (RATE + 0.5 * VOL * VOL) * TIME) / (VOL * TIME.sqrt())
}

/// The call price recorded on any scalar tape.
fn record_price<'t, V: Scalar>(
    spot: Var<'t, V>,
    vol: Var<'t, V>,
) -> Var<'t, V> {
    let sqrt_t = TIME.sqrt();
    // d1 = (ln(S/K) + (r + σ²/2)·T) / (σ·√T)
    let d1 = ((spot * (1.0 / STRIKE)).ln() + vol.sqr() * (0.5 * TIME) + RATE * TIME)
        / (vol * sqrt_t);
    let d2 = d1 - vol * sqrt_t;
    spot * d1.cndf() - (STRIKE * (-RATE * TIME).exp()) * d2.cndf()
}

#[test]
fn first_order_greeks_from_adjoint() {
    let tape = Tape::<f64>::new();
    let spot = tape.var(SPOT);
    let vol = tape.var(VOL);
    let price = record_price(spot, vol);

    let adj = tape.adjoints(&[(price.id(), 1.0)]);
    let delta = adj[spot.id()];
    let vega = adj[vol.id()];

    assert!((delta - cndf(d1())).abs() < 1e-12, "delta {delta}");
    let vega_ref = SPOT * phi(d1()) * TIME.sqrt();
    assert!((vega - vega_ref).abs() < 1e-9, "vega {vega} vs {vega_ref}");
}

#[test]
fn gamma_from_tangent_over_adjoint() {
    // Seed the spot tangent: the dual part of the spot adjoint is Γ.
    let tape = Tape::<Dual>::new();
    let spot = tape.var(Dual::with_tangent(SPOT, 1.0));
    let vol = tape.var(Dual::constant(VOL));
    let price = record_price(spot, vol);

    let adj = tape.adjoints(&[(price.id(), Dual::ONE)]);
    let gamma = adj[spot.id()].eps;
    let gamma_ref = phi(d1()) / (SPOT * VOL * TIME.sqrt());
    assert!(
        (gamma - gamma_ref).abs() < 1e-12,
        "gamma {gamma} vs closed form {gamma_ref}"
    );

    // The value part is still delta.
    assert!((adj[spot.id()].re - cndf(d1())).abs() < 1e-12);
}

#[test]
fn vanna_cross_derivative() {
    // Vanna = ∂²V/∂S∂σ = −φ(d1)·d2/σ. Seed the vol tangent, read the
    // spot adjoint's dual part.
    let tape = Tape::<Dual>::new();
    let spot = tape.var(Dual::constant(SPOT));
    let vol = tape.var(Dual::with_tangent(VOL, 1.0));
    let price = record_price(spot, vol);

    let adj = tape.adjoints(&[(price.id(), Dual::ONE)]);
    let vanna = adj[spot.id()].eps;
    let d1v = d1();
    let d2v = d1v - VOL * TIME.sqrt();
    let vanna_ref = -phi(d1v) * d2v / VOL;
    assert!(
        (vanna - vanna_ref).abs() < 1e-9,
        "vanna {vanna} vs closed form {vanna_ref}"
    );
}

#[test]
fn hessian_symmetry_via_swapped_seeds() {
    // ∂²V/∂S∂σ read as (seed σ, read S) must equal (seed S, read σ).
    let run = |seed_spot: f64, seed_vol: f64| {
        let tape = Tape::<Dual>::new();
        let spot = tape.var(Dual::with_tangent(SPOT, seed_spot));
        let vol = tape.var(Dual::with_tangent(VOL, seed_vol));
        let price = record_price(spot, vol);
        let adj = tape.adjoints(&[(price.id(), Dual::ONE)]);
        (adj[spot.id()].eps, adj[vol.id()].eps)
    };
    let (_, dvds) = run(1.0, 0.0); // ∂²V/∂σ∂S
    let (dsdv, _) = run(0.0, 1.0); // ∂²V/∂S∂σ
    assert!((dvds - dsdv).abs() < 1e-9, "{dvds} vs {dsdv}");
}
