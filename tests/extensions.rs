//! Integration tests for the extension features: ratio autotuning on a
//! real kernel, machine-readable report export, DynDFG liveness, and the
//! input-range sweep over a benchmark analysis.

use scorpio::adjoint::Tape;
use scorpio::analysis::sweep::sweep_input_scale;
use scorpio::analysis::Analysis;
use scorpio::kernels::{maclaurin, sobel};
use scorpio::quality::{psnr_images, SyntheticImage};
use scorpio::runtime::controller::{calibrate_ratio, QualityTarget};
use scorpio::runtime::Executor;

#[test]
fn autotune_sobel_to_psnr_target() {
    let executor = Executor::new(4);
    let img = SyntheticImage::ValueNoise.render(64, 64, 55);
    let reference = sobel::reference(&img);

    let target = 40.0;
    let calibration = calibrate_ratio(
        |ratio| {
            let (out, _) = sobel::tasked(&img, &executor, ratio);
            psnr_images(&reference, &out).min(1e6)
        },
        QualityTarget::AtLeast(target),
        0.05,
    );

    let ratio = calibration.ratio.expect("target reachable at ratio 1");
    assert!(calibration.quality >= target);
    // A cheaper setting (one tolerance step below) must miss the target —
    // minimality of the found knob.
    if ratio > 0.06 {
        let (out, _) = sobel::tasked(&img, &executor, ratio - 0.06);
        assert!(
            psnr_images(&reference, &out) < target,
            "found ratio was not minimal"
        );
    }
    // Bisection stays cheap.
    assert!(calibration.evaluations.len() <= 8);
}

#[test]
fn report_export_round_trip() {
    let report = maclaurin::analysis(0.49, 5).unwrap();

    let json = report.to_json();
    for i in 0..5 {
        assert!(json.contains(&format!("\"term{i}\"")), "missing term{i}");
    }
    assert!(json.contains("\"significance\""));

    let csv = report.to_csv();
    // Header + 1 input + 5 terms + 1 output.
    assert_eq!(csv.lines().count(), 8);
    assert!(csv.lines().skip(1).all(|l| l.split(',').count() == 8));

    let record = report.to_record();
    assert_eq!(record.vars.len(), 7);
    assert_eq!(record.tape_len, report.tape_len());
}

#[test]
fn liveness_spots_discarded_work() {
    // A kernel computing something it never uses: the analysis scores it
    // zero AND the tape liveness flags it dead — the two signals the
    // docs say to combine.
    let tape = Tape::<scorpio::interval::Interval>::new();
    let x = tape.var(scorpio::interval::Interval::new(0.0, 1.0));
    let dead = x.exp().sin(); // 2 dead nodes
    let y = x.sqr();
    let summary = tape.dead_count(&[y.id()]);
    assert_eq!(summary.dead, 2);
    assert_eq!(summary.live, 2);
    let live = tape.live_nodes(&[y.id()]);
    assert!(!live[dead.id().index()]);
}

#[test]
fn range_sweep_on_maclaurin_is_stable() {
    // The Maclaurin ranking (Fig. 3) is robust across input widths — a
    // single analysis run generalises, which is why the paper's single
    // profile sufficed for this benchmark.
    let sweep = sweep_input_scale(&Analysis::new(), &[0.25, 0.5, 1.0], |ctx| {
        let x = ctx.input_centered("x", 0.49, 0.5);
        let mut acc = ctx.constant(0.0);
        for i in 0..5 {
            let t = x.powi(i);
            ctx.intermediate(&t, format!("term{i}"));
            acc = acc + t;
        }
        ctx.output(&acc, "y");
        Ok(())
    })
    .unwrap();
    assert_eq!(sweep.ranking_stability(), 1.0);
    // Raw significances still grow with width.
    let t1 = sweep.trajectory("term1").unwrap();
    assert!(t1.iter().all(|s| s.is_finite()));
}

#[test]
fn autotune_error_metric_on_maclaurin() {
    let executor = Executor::new(2);
    let exact = maclaurin::reference(0.49, 24);
    let calibration = calibrate_ratio(
        |ratio| {
            let (y, _) = maclaurin::tasked(0.49, 24, &executor, ratio);
            (y - exact).abs() / exact.abs()
        },
        QualityTarget::AtMost(1e-9),
        0.05,
    );
    let ratio = calibration.ratio.expect("exactness reachable at ratio 1");
    assert!(calibration.quality <= 1e-9);
    assert!(ratio > 0.0, "fast_pow error exceeds 1e-9, some accuracy needed");
}
