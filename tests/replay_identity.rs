//! Bit-identity contract of the record-once / replay-many engine:
//! replaying a compiled trace with fresh input boxes must produce the
//! **same bits** as re-recording the trace from scratch — for every
//! kernel, at any operating point. Replay is a pure latency
//! optimisation, never a semantic knob; comparisons go through
//! `f64::to_bits`, not approximate equality.
//!
//! Also pins the guard rails: a trace whose shape diverges (changed
//! shape key, changed input arity, resolved branch) must *fall back to
//! re-recording* — visible in [`ReplayStats`] — rather than replay a
//! wrong trace.

use proptest::prelude::*;
use scorpio::analysis::{
    Analysis, AnalysisArena, AnalysisError, Ctx, LaneScratch, ParallelAnalysis, ReplayOrRecord,
    VarSignificances,
};
use scorpio::interval::Interval;
use scorpio::kernels::{blackscholes, dct, fisheye, maclaurin, sobel};

/// Asserts two reports carry identical registered rows, bit for bit
/// (enclosures, interval adjoints, raw and normalized significances).
fn assert_reports_bit_equal(
    replayed: &scorpio::analysis::Report,
    recorded: &scorpio::analysis::Report,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(replayed.tape_len(), recorded.tape_len());
    prop_assert_eq!(replayed.registered().len(), recorded.registered().len());
    for (a, b) in replayed.registered().iter().zip(recorded.registered()) {
        prop_assert_eq!(&a.name, &b.name);
        prop_assert_eq!(a.enclosure.inf().to_bits(), b.enclosure.inf().to_bits());
        prop_assert_eq!(a.enclosure.sup().to_bits(), b.enclosure.sup().to_bits());
        prop_assert_eq!(a.derivative.inf().to_bits(), b.derivative.inf().to_bits());
        prop_assert_eq!(a.derivative.sup().to_bits(), b.derivative.sup().to_bits());
        prop_assert_eq!(a.significance_raw.to_bits(), b.significance_raw.to_bits());
        prop_assert_eq!(a.significance.to_bits(), b.significance.to_bits());
    }
    Ok(())
}

/// The Listing-6 Maclaurin closure (shape keyed by the term count).
fn maclaurin_closure(n: usize) -> impl Fn(&Ctx<'_>) -> Result<(), AnalysisError> {
    move |ctx| {
        let x = ctx.input_centered("x", 0.0, 0.5); // overridden per item
        let mut result = ctx.constant(0.0);
        for i in 0..n {
            let term = x.powi(i as i32);
            ctx.intermediate(&term, format!("term{i}"));
            result = result + term;
        }
        ctx.output(&result, "result");
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Maclaurin: a replay driver fed a stream of input boxes agrees
    /// bitwise with fresh per-item recordings.
    #[test]
    fn maclaurin_replay_bit_identity(
        x0 in -0.35f64..0.35,
        dx in 0.005f64..0.03,
        n in 2usize..10,
    ) {
        let x0s = [x0, x0 + dx, x0 - dx, x0 + 2.0 * dx];
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        for &x0 in &x0s {
            let inputs = [Interval::centered(x0, 0.5)];
            let replayed = driver
                .run_keyed_in(n as u64, &mut arena, &inputs, maclaurin_closure(n))
                .unwrap();
            let recorded = maclaurin::analysis(x0, n).unwrap();
            assert_reports_bit_equal(&replayed, &recorded)?;
        }
        prop_assert_eq!(driver.stats().records, 1);
        prop_assert_eq!(driver.stats().replays, x0s.len() as u64 - 1);
    }

    /// Fisheye InverseMapping: the replay entry point agrees bitwise
    /// with the fresh-recording entry point at every pixel.
    #[test]
    fn fisheye_replay_bit_identity(
        u0 in 0.0f64..128.0,
        v0 in 0.0f64..96.0,
        du in 1.0f64..40.0,
    ) {
        let pixels = [
            (u0, v0),
            ((u0 + du) % 128.0, (v0 + 0.5 * du) % 96.0),
            ((u0 + 2.0 * du) % 128.0, (v0 + du) % 96.0),
            ((u0 + 3.0 * du) % 128.0, (v0 + 1.5 * du) % 96.0),
        ];
        let lens = fisheye::Lens::for_image(128, 96);
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        for &(u, v) in &pixels {
            let replayed =
                fisheye::analysis_inverse_mapping_replay_in(&mut driver, &mut arena, &lens, u, v)
                    .unwrap();
            let recorded = fisheye::analysis_inverse_mapping(&lens, u, v).unwrap();
            prop_assert_eq!(replayed.to_bits(), recorded.to_bits(), "pixel ({}, {})", u, v);
        }
        prop_assert_eq!(driver.stats().records, 1);
        prop_assert_eq!(driver.stats().fallbacks, 0);
    }

    /// Sobel combine: the batch entry point (replay inside) agrees
    /// bitwise with fresh recordings of the same operating points.
    #[test]
    fn sobel_replay_bit_identity(k in 2usize..14) {
        let points = sobel::analysis_combine(k).unwrap();
        let span = 2040.0;
        let width = span / 2.0;
        for (i, &(sx, sy)) in points.iter().enumerate() {
            let lo = -1020.0 + (i as f64 / k.max(2) as f64) * (span - width);
            let report = Analysis::new()
                .run(|ctx| {
                    let tx = ctx.input("tx", lo, lo + width);
                    let ty = ctx.input("ty", lo, lo + width);
                    let t = tx.hypot(ty);
                    let hi = ctx.constant(255.0);
                    let zero = ctx.constant(0.0);
                    let pixel = t.min(hi).max(zero);
                    ctx.output(&pixel, "pixel");
                    Ok(())
                })
                .unwrap();
            prop_assert_eq!(
                sx.to_bits(),
                report.var("tx").unwrap().significance_raw.to_bits(),
                "tx diverged at point {}", i
            );
            prop_assert_eq!(
                sy.to_bits(),
                report.var("ty").unwrap().significance_raw.to_bits(),
                "ty diverged at point {}", i
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// BlackScholes: the replayed option batch agrees bitwise with
    /// per-option arena re-recordings.
    #[test]
    fn blackscholes_replay_bit_identity(seed in 0u64..1000, n in 2usize..12) {
        let options = blackscholes::generate_options(n, seed);
        let engine = ParallelAnalysis::new(1);
        let replayed = blackscholes::analysis_options(&options, &engine).unwrap();
        let mut arena = AnalysisArena::new();
        for (o, r) in options.iter().zip(&replayed) {
            let fresh = blackscholes::analysis_option_in(&mut arena, o).unwrap();
            for (block, (a, b)) in ["A", "B", "C", "D"]
                .iter()
                .zip([r.0, r.1, r.2, r.3].iter().zip([fresh.0, fresh.1, fresh.2, fresh.3]))
            {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "block {} diverged for {:?}", block, o);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// DCT: the replayed multi-block batch agrees bitwise with
    /// per-block arena re-recordings (the heaviest trace: ~10⁴ nodes).
    #[test]
    fn dct_replay_bit_identity(seed in 0u64..100, radius in 1.0f64..16.0) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let blocks: Vec<[[f64; dct::BLOCK]; dct::BLOCK]> = (0..2)
            .map(|_| {
                let mut b = [[0.0; dct::BLOCK]; dct::BLOCK];
                for row in &mut b {
                    for p in row.iter_mut() {
                        *p = rng.gen_range(0.0..=255.0);
                    }
                }
                b
            })
            .collect();
        let engine = ParallelAnalysis::new(1);
        let replayed = dct::analysis_blocks(&blocks, radius, &engine).unwrap();
        let mut arena = AnalysisArena::new();
        for (block, map) in blocks.iter().zip(&replayed) {
            let report = dct::analysis_in(&mut arena, block, radius).unwrap();
            let reference = dct::coefficient_map(&report);
            for v in 0..dct::BLOCK {
                for u in 0..dct::BLOCK {
                    prop_assert_eq!(
                        map[v][u].to_bits(),
                        reference[v][u].to_bits(),
                        "c{}_{} diverged", v, u
                    );
                }
            }
        }
    }
}

/// Asserts two variable-row sets are identical, bit for bit.
fn assert_vars_bit_equal(
    lane: &VarSignificances,
    scalar: &VarSignificances,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(lane.tape_len(), scalar.tape_len());
    prop_assert_eq!(lane.registered().len(), scalar.registered().len());
    for (a, b) in lane.registered().iter().zip(scalar.registered()) {
        prop_assert_eq!(&a.name, &b.name);
        prop_assert_eq!(a.enclosure.inf().to_bits(), b.enclosure.inf().to_bits());
        prop_assert_eq!(a.enclosure.sup().to_bits(), b.enclosure.sup().to_bits());
        prop_assert_eq!(a.derivative.inf().to_bits(), b.derivative.inf().to_bits());
        prop_assert_eq!(a.derivative.sup().to_bits(), b.derivative.sup().to_bits());
        prop_assert_eq!(a.significance_raw.to_bits(), b.significance_raw.to_bits());
        prop_assert_eq!(a.significance.to_bits(), b.significance.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Maclaurin, lane-blocked: `run_keyed_lanes_in` over 4-wide blocks
    /// agrees bitwise with fresh per-item recordings. The first block
    /// warms up through the scalar path (nothing is compiled yet); the
    /// second is served by one lane sweep.
    #[test]
    fn maclaurin_lane_replay_bit_identity(
        x0 in -0.35f64..0.35,
        dx in 0.005f64..0.03,
        n in 2usize..10,
    ) {
        const LANES: usize = 4;
        let x0s: Vec<f64> = (0..2 * LANES).map(|i| x0 + i as f64 * dx).collect();
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        let mut lanes = LaneScratch::<LANES>::new();
        let mut reports = Vec::new();
        for block in x0s.chunks(LANES) {
            driver
                .run_keyed_lanes_in(
                    n as u64,
                    &mut arena,
                    &mut lanes,
                    block,
                    &|&x0| vec![Interval::centered(x0, 0.5)],
                    &|ctx, _| maclaurin_closure(n)(ctx),
                    &mut reports,
                )
                .unwrap();
        }
        for (&x0, replayed) in x0s.iter().zip(&reports) {
            let recorded = maclaurin::analysis(x0, n).unwrap();
            assert_reports_bit_equal(replayed, &recorded)?;
        }
        prop_assert_eq!(driver.stats().records, 1);
        prop_assert_eq!(driver.stats().lane_blocks, 1);
        prop_assert_eq!(driver.stats().lane_remainder, LANES as u64);
    }

    /// Fisheye grid: every lane width produces the same bits (the grid
    /// is 15 pixels, so every width > 1 also exercises a trailing
    /// partial block through the scalar remainder path).
    #[test]
    fn fisheye_lane_widths_bit_identity(focal in 40.0f64..200.0) {
        let lens = fisheye::Lens { focal, ..fisheye::Lens::for_image(64, 48) };
        let engine = ParallelAnalysis::new(1);
        let scalar = fisheye::analysis_inverse_mapping_grid_lanes::<1>(&lens, 5, 3, &engine)
            .unwrap();
        for sigs in [
            fisheye::analysis_inverse_mapping_grid_lanes::<2>(&lens, 5, 3, &engine).unwrap(),
            fisheye::analysis_inverse_mapping_grid_lanes::<4>(&lens, 5, 3, &engine).unwrap(),
            fisheye::analysis_inverse_mapping_grid_lanes::<8>(&lens, 5, 3, &engine).unwrap(),
        ] {
            prop_assert_eq!(scalar.len(), sigs.len());
            for (a, b) in scalar.iter().zip(&sigs) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Sobel combine: the lane-batched batch entry point agrees bitwise
    /// with a scalar (per-item) replay driver over the same operating
    /// points.
    #[test]
    fn sobel_lane_vs_scalar_replay(k in 2usize..14) {
        let points = sobel::analysis_combine(k).unwrap();
        let span = 2040.0;
        let width = span / 2.0;
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        for (i, &(sx, sy)) in points.iter().enumerate() {
            let lo = -1020.0 + (i as f64 / k.max(2) as f64) * (span - width);
            let window = Interval::new(lo, lo + width);
            let vars = driver
                .run_vars_in(&mut arena, &[window, window], |ctx| {
                    let tx = ctx.input("tx", lo, lo + width);
                    let ty = ctx.input("ty", lo, lo + width);
                    let t = tx.hypot(ty);
                    let hi = ctx.constant(255.0);
                    let zero = ctx.constant(0.0);
                    let pixel = t.min(hi).max(zero);
                    ctx.output(&pixel, "pixel");
                    Ok(())
                })
                .unwrap();
            prop_assert_eq!(sx.to_bits(), vars.var("tx").unwrap().significance_raw.to_bits());
            prop_assert_eq!(sy.to_bits(), vars.var("ty").unwrap().significance_raw.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// BlackScholes: every lane width prices the same book to the same
    /// bits (odd book sizes exercise the remainder path).
    #[test]
    fn blackscholes_lane_widths_bit_identity(seed in 0u64..1000, n in 2usize..12) {
        let options = blackscholes::generate_options(n, seed);
        let engine = ParallelAnalysis::new(1);
        let scalar = blackscholes::analysis_options_lanes::<1>(&options, &engine).unwrap();
        for sigs in [
            blackscholes::analysis_options_lanes::<4>(&options, &engine).unwrap(),
            blackscholes::analysis_options_lanes::<8>(&options, &engine).unwrap(),
        ] {
            prop_assert_eq!(scalar.len(), sigs.len());
            for (a, b) in scalar.iter().zip(&sigs) {
                prop_assert_eq!(a.0.to_bits(), b.0.to_bits());
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
                prop_assert_eq!(a.2.to_bits(), b.2.to_bits());
                prop_assert_eq!(a.3.to_bits(), b.3.to_bits());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// DCT: the lane-blocked batch agrees bitwise with the width-1
    /// scalar batch on the heaviest trace (5 blocks: one full 4-wide
    /// lane block plus a trailing remainder).
    #[test]
    fn dct_lane_widths_bit_identity(seed in 0u64..100, radius in 1.0f64..16.0) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let blocks: Vec<[[f64; dct::BLOCK]; dct::BLOCK]> = (0..5)
            .map(|_| {
                let mut b = [[0.0; dct::BLOCK]; dct::BLOCK];
                for row in &mut b {
                    for p in row.iter_mut() {
                        *p = rng.gen_range(0.0..=255.0);
                    }
                }
                b
            })
            .collect();
        let engine = ParallelAnalysis::new(1);
        let scalar = dct::analysis_blocks_lanes::<1>(&blocks, radius, &engine).unwrap();
        let laned = dct::analysis_blocks_lanes::<4>(&blocks, radius, &engine).unwrap();
        prop_assert_eq!(scalar.len(), laned.len());
        for (a, b) in scalar.iter().zip(&laned) {
            for v in 0..dct::BLOCK {
                for u in 0..dct::BLOCK {
                    prop_assert_eq!(a[v][u].to_bits(), b[v][u].to_bits());
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A partial trailing block (fewer items than lanes) is served by
    /// the scalar remainder path, bit-identical to per-item replay.
    #[test]
    fn lane_remainder_block_is_scalar_replayed(
        x0 in -0.3f64..0.3,
        rest in 1usize..4,
    ) {
        const LANES: usize = 4;
        let x0s: Vec<f64> = (0..LANES + rest).map(|i| x0 + i as f64 * 0.01).collect();
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        let mut lanes = LaneScratch::<LANES>::new();
        let mut lane_vars = Vec::new();
        for block in x0s.chunks(LANES) {
            driver
                .run_vars_lanes_in(
                    &mut arena,
                    &mut lanes,
                    block,
                    &|&x0| vec![Interval::centered(x0, 0.5)],
                    &|ctx, _| maclaurin_closure(6)(ctx),
                    &mut lane_vars,
                )
                .unwrap();
        }
        // Warm-up block (scalar) + trailing partial block (scalar).
        prop_assert_eq!(driver.stats().lane_blocks, 0);
        prop_assert_eq!(driver.stats().lane_remainder, (LANES + rest) as u64);
        let mut scalar_driver = ReplayOrRecord::new(Analysis::new());
        for (&x0, lane) in x0s.iter().zip(&lane_vars) {
            let scalar = scalar_driver
                .run_vars_in(&mut arena, &[Interval::centered(x0, 0.5)], |ctx| {
                    maclaurin_closure(6)(ctx)
                })
                .unwrap();
            assert_vars_bit_equal(lane, &scalar)?;
        }
    }

    /// An input-arity change *inside* a lane block must divert the
    /// whole block to the scalar path (where the divergent item
    /// re-records) — and still produce fresh-recording bits for every
    /// item.
    #[test]
    fn shape_divergence_inside_lane_block_falls_back(x0 in -0.3f64..0.3) {
        const LANES: usize = 4;
        // Each item binds `arity` inputs: x, then `arity - 1` shifts.
        let register = move |ctx: &Ctx<'_>, &arity: &usize| -> Result<(), AnalysisError> {
            let x = ctx.input_centered("x", x0, 0.5);
            let mut sum = x.sqr();
            for j in 1..arity {
                let s = ctx.input_centered(format!("s{j}"), 0.0, 0.1);
                sum = sum + s;
            }
            ctx.output(&sum, "sum");
            Ok(())
        };
        let inputs_of = |&arity: &usize| -> Vec<Interval> {
            let mut v = vec![Interval::centered(x0, 0.5)];
            v.extend((1..arity).map(|_| Interval::centered(0.0, 0.1)));
            v
        };
        // Block 0 warms up at arity 2; block 1 diverges mid-block.
        let items = [2usize, 2, 2, 2, 2, 2, 3, 2];
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        let mut lanes = LaneScratch::<LANES>::new();
        let mut lane_vars = Vec::new();
        for block in items.chunks(LANES) {
            driver
                .run_vars_lanes_in(&mut arena, &mut lanes, block, &inputs_of, &register, &mut lane_vars)
                .unwrap();
        }
        prop_assert_eq!(driver.stats().lane_blocks, 0);
        prop_assert_eq!(driver.stats().lane_remainder, items.len() as u64);
        prop_assert!(driver.stats().fallbacks >= 1);
        for (arity, lane) in items.iter().zip(&lane_vars) {
            let fresh = Analysis::new().run(|ctx| register(ctx, arity)).unwrap();
            prop_assert_eq!(lane.registered().len(), fresh.registered().len());
            for (a, b) in lane.registered().iter().zip(fresh.registered()) {
                prop_assert_eq!(&a.name, &b.name);
                prop_assert_eq!(a.significance_raw.to_bits(), b.significance_raw.to_bits());
            }
        }
    }
}

/// A shape-divergent trace (the Maclaurin term count changes between
/// items) must re-record — counted as a fallback — and still produce
/// the exact recorded answer, never a replay of the stale trace.
#[test]
fn shape_divergence_falls_back_to_rerecording() {
    let mut driver = ReplayOrRecord::new(Analysis::new());
    let mut arena = AnalysisArena::new();
    let inputs = [Interval::centered(0.3, 0.5)];

    let a = driver
        .run_keyed_in(4, &mut arena, &inputs, maclaurin_closure(4))
        .unwrap();
    let b = driver
        .run_keyed_in(4, &mut arena, &inputs, maclaurin_closure(4))
        .unwrap();
    assert_eq!(a.tape_len(), b.tape_len());
    assert_eq!(driver.stats().replays, 1);

    // New shape key: the compiled 4-term trace must not be replayed.
    let c = driver
        .run_keyed_in(7, &mut arena, &inputs, maclaurin_closure(7))
        .unwrap();
    assert!(c.tape_len() > b.tape_len(), "7-term trace must be larger");
    let recorded = maclaurin::analysis(0.3, 7).unwrap();
    assert_eq!(
        c.significance_of("term6").unwrap().to_bits(),
        recorded.significance_of("term6").unwrap().to_bits()
    );
    assert_eq!(driver.stats().records, 2);
    assert_eq!(driver.stats().fallbacks, 1);
    assert!(driver.stats().fallback_rate() > 0.0);
}

/// A trace that resolved a branch is value-dependent: the driver must
/// re-record every item (replays stay at zero) because the compiled
/// trace cannot be trusted for other inputs.
#[test]
fn branched_trace_disables_replay() {
    let mut driver = ReplayOrRecord::new(Analysis::new());
    let mut arena = AnalysisArena::new();
    let branchy = |ctx: &Ctx<'_>| {
        let x = ctx.input("x", 1.0, 2.0);
        let pos = ctx.branch(x.value().certainly_gt(0.0.into()), "x > 0")?;
        let y = if pos { x.sqr() } else { -x };
        ctx.output(&y, "y");
        Ok(())
    };
    for _ in 0..4 {
        driver
            .run_in(&mut arena, &[Interval::new(1.0, 2.0)], branchy)
            .unwrap();
    }
    assert_eq!(driver.stats().replays, 0);
    assert_eq!(driver.stats().records, 4);
    assert_eq!(driver.stats().fallbacks, 3);
}
