//! Bit-identity contract of the record-once / replay-many engine:
//! replaying a compiled trace with fresh input boxes must produce the
//! **same bits** as re-recording the trace from scratch — for every
//! kernel, at any operating point. Replay is a pure latency
//! optimisation, never a semantic knob; comparisons go through
//! `f64::to_bits`, not approximate equality.
//!
//! Also pins the guard rails: a trace whose shape diverges (changed
//! shape key, changed input arity, resolved branch) must *fall back to
//! re-recording* — visible in [`ReplayStats`] — rather than replay a
//! wrong trace.

use proptest::prelude::*;
use scorpio::analysis::{
    Analysis, AnalysisArena, AnalysisError, Ctx, ParallelAnalysis, ReplayOrRecord,
};
use scorpio::interval::Interval;
use scorpio::kernels::{blackscholes, dct, fisheye, maclaurin, sobel};

/// Asserts two reports carry identical registered rows, bit for bit
/// (enclosures, interval adjoints, raw and normalized significances).
fn assert_reports_bit_equal(
    replayed: &scorpio::analysis::Report,
    recorded: &scorpio::analysis::Report,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(replayed.tape_len(), recorded.tape_len());
    prop_assert_eq!(replayed.registered().len(), recorded.registered().len());
    for (a, b) in replayed.registered().iter().zip(recorded.registered()) {
        prop_assert_eq!(&a.name, &b.name);
        prop_assert_eq!(a.enclosure.inf().to_bits(), b.enclosure.inf().to_bits());
        prop_assert_eq!(a.enclosure.sup().to_bits(), b.enclosure.sup().to_bits());
        prop_assert_eq!(a.derivative.inf().to_bits(), b.derivative.inf().to_bits());
        prop_assert_eq!(a.derivative.sup().to_bits(), b.derivative.sup().to_bits());
        prop_assert_eq!(a.significance_raw.to_bits(), b.significance_raw.to_bits());
        prop_assert_eq!(a.significance.to_bits(), b.significance.to_bits());
    }
    Ok(())
}

/// The Listing-6 Maclaurin closure (shape keyed by the term count).
fn maclaurin_closure(n: usize) -> impl Fn(&Ctx<'_>) -> Result<(), AnalysisError> {
    move |ctx| {
        let x = ctx.input_centered("x", 0.0, 0.5); // overridden per item
        let mut result = ctx.constant(0.0);
        for i in 0..n {
            let term = x.powi(i as i32);
            ctx.intermediate(&term, format!("term{i}"));
            result = result + term;
        }
        ctx.output(&result, "result");
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Maclaurin: a replay driver fed a stream of input boxes agrees
    /// bitwise with fresh per-item recordings.
    #[test]
    fn maclaurin_replay_bit_identity(
        x0 in -0.35f64..0.35,
        dx in 0.005f64..0.03,
        n in 2usize..10,
    ) {
        let x0s = [x0, x0 + dx, x0 - dx, x0 + 2.0 * dx];
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        for &x0 in &x0s {
            let inputs = [Interval::centered(x0, 0.5)];
            let replayed = driver
                .run_keyed_in(n as u64, &mut arena, &inputs, maclaurin_closure(n))
                .unwrap();
            let recorded = maclaurin::analysis(x0, n).unwrap();
            assert_reports_bit_equal(&replayed, &recorded)?;
        }
        prop_assert_eq!(driver.stats().records, 1);
        prop_assert_eq!(driver.stats().replays, x0s.len() as u64 - 1);
    }

    /// Fisheye InverseMapping: the replay entry point agrees bitwise
    /// with the fresh-recording entry point at every pixel.
    #[test]
    fn fisheye_replay_bit_identity(
        u0 in 0.0f64..128.0,
        v0 in 0.0f64..96.0,
        du in 1.0f64..40.0,
    ) {
        let pixels = [
            (u0, v0),
            ((u0 + du) % 128.0, (v0 + 0.5 * du) % 96.0),
            ((u0 + 2.0 * du) % 128.0, (v0 + du) % 96.0),
            ((u0 + 3.0 * du) % 128.0, (v0 + 1.5 * du) % 96.0),
        ];
        let lens = fisheye::Lens::for_image(128, 96);
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        for &(u, v) in &pixels {
            let replayed =
                fisheye::analysis_inverse_mapping_replay_in(&mut driver, &mut arena, &lens, u, v)
                    .unwrap();
            let recorded = fisheye::analysis_inverse_mapping(&lens, u, v).unwrap();
            prop_assert_eq!(replayed.to_bits(), recorded.to_bits(), "pixel ({}, {})", u, v);
        }
        prop_assert_eq!(driver.stats().records, 1);
        prop_assert_eq!(driver.stats().fallbacks, 0);
    }

    /// Sobel combine: the batch entry point (replay inside) agrees
    /// bitwise with fresh recordings of the same operating points.
    #[test]
    fn sobel_replay_bit_identity(k in 2usize..14) {
        let points = sobel::analysis_combine(k).unwrap();
        let span = 2040.0;
        let width = span / 2.0;
        for (i, &(sx, sy)) in points.iter().enumerate() {
            let lo = -1020.0 + (i as f64 / k.max(2) as f64) * (span - width);
            let report = Analysis::new()
                .run(|ctx| {
                    let tx = ctx.input("tx", lo, lo + width);
                    let ty = ctx.input("ty", lo, lo + width);
                    let t = tx.hypot(ty);
                    let hi = ctx.constant(255.0);
                    let zero = ctx.constant(0.0);
                    let pixel = t.min(hi).max(zero);
                    ctx.output(&pixel, "pixel");
                    Ok(())
                })
                .unwrap();
            prop_assert_eq!(
                sx.to_bits(),
                report.var("tx").unwrap().significance_raw.to_bits(),
                "tx diverged at point {}", i
            );
            prop_assert_eq!(
                sy.to_bits(),
                report.var("ty").unwrap().significance_raw.to_bits(),
                "ty diverged at point {}", i
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// BlackScholes: the replayed option batch agrees bitwise with
    /// per-option arena re-recordings.
    #[test]
    fn blackscholes_replay_bit_identity(seed in 0u64..1000, n in 2usize..12) {
        let options = blackscholes::generate_options(n, seed);
        let engine = ParallelAnalysis::new(1);
        let replayed = blackscholes::analysis_options(&options, &engine).unwrap();
        let mut arena = AnalysisArena::new();
        for (o, r) in options.iter().zip(&replayed) {
            let fresh = blackscholes::analysis_option_in(&mut arena, o).unwrap();
            for (block, (a, b)) in ["A", "B", "C", "D"]
                .iter()
                .zip([r.0, r.1, r.2, r.3].iter().zip([fresh.0, fresh.1, fresh.2, fresh.3]))
            {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "block {} diverged for {:?}", block, o);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// DCT: the replayed multi-block batch agrees bitwise with
    /// per-block arena re-recordings (the heaviest trace: ~10⁴ nodes).
    #[test]
    fn dct_replay_bit_identity(seed in 0u64..100, radius in 1.0f64..16.0) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let blocks: Vec<[[f64; dct::BLOCK]; dct::BLOCK]> = (0..2)
            .map(|_| {
                let mut b = [[0.0; dct::BLOCK]; dct::BLOCK];
                for row in &mut b {
                    for p in row.iter_mut() {
                        *p = rng.gen_range(0.0..=255.0);
                    }
                }
                b
            })
            .collect();
        let engine = ParallelAnalysis::new(1);
        let replayed = dct::analysis_blocks(&blocks, radius, &engine).unwrap();
        let mut arena = AnalysisArena::new();
        for (block, map) in blocks.iter().zip(&replayed) {
            let report = dct::analysis_in(&mut arena, block, radius).unwrap();
            let reference = dct::coefficient_map(&report);
            for v in 0..dct::BLOCK {
                for u in 0..dct::BLOCK {
                    prop_assert_eq!(
                        map[v][u].to_bits(),
                        reference[v][u].to_bits(),
                        "c{}_{} diverged", v, u
                    );
                }
            }
        }
    }
}

/// A shape-divergent trace (the Maclaurin term count changes between
/// items) must re-record — counted as a fallback — and still produce
/// the exact recorded answer, never a replay of the stale trace.
#[test]
fn shape_divergence_falls_back_to_rerecording() {
    let mut driver = ReplayOrRecord::new(Analysis::new());
    let mut arena = AnalysisArena::new();
    let inputs = [Interval::centered(0.3, 0.5)];

    let a = driver
        .run_keyed_in(4, &mut arena, &inputs, maclaurin_closure(4))
        .unwrap();
    let b = driver
        .run_keyed_in(4, &mut arena, &inputs, maclaurin_closure(4))
        .unwrap();
    assert_eq!(a.tape_len(), b.tape_len());
    assert_eq!(driver.stats().replays, 1);

    // New shape key: the compiled 4-term trace must not be replayed.
    let c = driver
        .run_keyed_in(7, &mut arena, &inputs, maclaurin_closure(7))
        .unwrap();
    assert!(c.tape_len() > b.tape_len(), "7-term trace must be larger");
    let recorded = maclaurin::analysis(0.3, 7).unwrap();
    assert_eq!(
        c.significance_of("term6").unwrap().to_bits(),
        recorded.significance_of("term6").unwrap().to_bits()
    );
    assert_eq!(driver.stats().records, 2);
    assert_eq!(driver.stats().fallbacks, 1);
    assert!(driver.stats().fallback_rate() > 0.0);
}

/// A trace that resolved a branch is value-dependent: the driver must
/// re-record every item (replays stay at zero) because the compiled
/// trace cannot be trusted for other inputs.
#[test]
fn branched_trace_disables_replay() {
    let mut driver = ReplayOrRecord::new(Analysis::new());
    let mut arena = AnalysisArena::new();
    let branchy = |ctx: &Ctx<'_>| {
        let x = ctx.input("x", 1.0, 2.0);
        let pos = ctx.branch(x.value().certainly_gt(0.0.into()), "x > 0")?;
        let y = if pos { x.sqr() } else { -x };
        ctx.output(&y, "y");
        Ok(())
    };
    for _ in 0..4 {
        driver
            .run_in(&mut arena, &[Interval::new(1.0, 2.0)], branchy)
            .unwrap();
    }
    assert_eq!(driver.stats().replays, 0);
    assert_eq!(driver.stats().records, 4);
    assert_eq!(driver.stats().fallbacks, 3);
}
