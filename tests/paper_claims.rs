//! Integration tests pinning the paper's per-section claims — each test
//! names the figure/section it reproduces (see EXPERIMENTS.md for the
//! quantitative side).

use scorpio::analysis::Analysis;
use scorpio::kernels::{blackscholes, dct, fisheye, maclaurin, nbody, sobel};
use scorpio::quality::{psnr_images, relative_error_l2, SyntheticImage};
use scorpio::runtime::Executor;

#[test]
fn listing2_elementary_decomposition() {
    // §2.1 Listings 1–2: the example function records exactly 6 DynDFG
    // nodes (u0..u5) and its interval gradient encloses the point
    // gradients.
    let report = Analysis::new()
        .run(|ctx| {
            let x = ctx.input("x0", 0.1, 0.9);
            let y = ((x.sin() + x).exp() - x).cos();
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();
    assert_eq!(report.tape_len(), 6);
    let grad = report.var("x0").unwrap().derivative;
    for k in 0..=8 {
        let p = 0.1 + 0.1 * k as f64;
        let u3 = (p.sin() + p).exp();
        let g = -(u3 - p).sin() * (u3 * (p.cos() + 1.0) - 1.0);
        assert!(grad.contains(g), "gradient {g} at {p} outside {grad}");
    }
}

#[test]
fn fig3_maclaurin_significances() {
    // Fig. 3: term0 = 0; terms 1..4 ≈ (0.259, 0.254, 0.245, 0.241),
    // gently decreasing; the result normalizes to 1.
    let report = maclaurin::analysis(0.49, 5).unwrap();
    assert!(report.significance_of("term0").unwrap() < 1e-12);
    let paper = [0.259, 0.254, 0.245, 0.241];
    let mut prev = f64::INFINITY;
    for (i, want) in paper.iter().enumerate() {
        let got = report.significance_of(&format!("term{}", i + 1)).unwrap();
        assert!((got - want).abs() < 0.02, "term{}: {got} vs {want}", i + 1);
        assert!(got < prev);
        prev = got;
    }
    assert!((report.significance_of("result").unwrap() - 1.0).abs() < 1e-9);
}

#[test]
fn section_4_1_1_sobel_block_ranking() {
    // §4.1.1: "A is twice as significant as the other two".
    let report = sobel::analysis().unwrap();
    let a = sobel::part_significance(&report, sobel::Part::A);
    let b = sobel::part_significance(&report, sobel::Part::B);
    let c = sobel::part_significance(&report, sobel::Part::C);
    assert!((a / b - 2.0).abs() < 1e-6);
    assert!((a / c - 2.0).abs() < 1e-6);
}

#[test]
fn fig4_dct_zigzag() {
    // Fig. 4: top-left corner has the highest value and drops in a
    // wave-like pattern towards the opposite corner.
    let report = dct::analysis_default().unwrap();
    let map = dct::coefficient_map(&report);
    assert!(map
        .iter()
        .flatten()
        .all(|&s| s.is_finite() && s <= map[0][0] + 1e-12));
    assert!(map[0][0] > map[7][7] * 3.0, "DC {} vs corner {}", map[0][0], map[7][7]);
}

#[test]
fn fig5_fisheye_radial_sensitivity() {
    // Fig. 5: border high, centre low — along a half-diagonal the raw
    // significance grows monotonically.
    let lens = fisheye::Lens::for_image(128, 96);
    let (cx, cy) = lens.center();
    let mut prev = 0.0;
    for k in 1..=5 {
        let t = k as f64 / 5.0;
        let u = cx + t * (cx - 4.0);
        let v = cy + t * (cy - 4.0);
        let s = fisheye::analysis_inverse_mapping(&lens, u, v).unwrap();
        assert!(s > prev, "significance not radially increasing at k={k}: {s} ≤ {prev}");
        prev = s;
    }
}

#[test]
fn fig6_bicubic_inner_pairs() {
    // Fig. 6: the inner 2×2 pixel block contains the most significant
    // pairs, with mirror symmetry.
    let (_, map) = fisheye::analysis_bicubic().unwrap();
    let max_inner = (1..3)
        .flat_map(|j| (1..3).map(move |i| map[j][i]))
        .fold(0.0f64, f64::max);
    let max_outer = (0..4)
        .flat_map(|j| (0..4).map(move |i| (i, j)))
        .filter(|&(i, j)| !(1..3).contains(&i) || !(1..3).contains(&j))
        .map(|(i, j)| map[j][i])
        .fold(0.0f64, f64::max);
    assert!(max_inner > max_outer);
}

#[test]
fn section_4_1_4_nbody_distance_correlation() {
    // §4.1.4: "the greater the distance between atom A and atom B, the
    // less the kinematic properties of one affect the other".
    let near = nbody::analysis_pair(1.3, 0.05).unwrap();
    let far = nbody::analysis_pair(4.0, 0.05).unwrap();
    assert!(near > 100.0 * far, "near {near} vs far {far}");
}

#[test]
fn section_4_1_5_blackscholes_ordering() {
    // §4.1.5: sig(A) > sig(B) ≫ sig(C) > sig(D).
    let report = blackscholes::analysis().unwrap();
    let (a, b, c, d) = blackscholes::block_significances(&report);
    assert!(a > b && b > c && c > d, "ordering violated: {a} {b} {c} {d}");
    assert!(b / c > 2.0, "B ≫ C expected, got B/C = {}", b / c);
}

#[test]
fn fig7_quality_advantage_over_perforation() {
    // Fig. 7 / §4.3: "Our methodology results in better quality for all
    // benchmarks compared with loop-perforation" at matched accurate
    // fractions.
    let executor = Executor::new(4);
    let img = SyntheticImage::GaussianBlobs.render(64, 64, 77);

    for ratio in [0.2, 0.5, 0.8] {
        // Sobel.
        let full = sobel::reference(&img);
        let (sig, _) = sobel::tasked(&img, &executor, ratio);
        let (perf, _) = sobel::perforated(&img, ratio);
        assert!(
            psnr_images(&full, &sig) > psnr_images(&full, &perf),
            "sobel at {ratio}"
        );

        // DCT.
        let full = dct::reference(&img);
        let (sig, _) = dct::tasked(&img, &executor, ratio);
        let (perf, _) = dct::perforated(&img, ratio);
        assert!(
            psnr_images(&full, &sig) > psnr_images(&full, &perf),
            "dct at {ratio}"
        );

        // Fisheye.
        let lens = fisheye::Lens::for_image(64, 64);
        let full = fisheye::reference(&img, &lens);
        let (sig, _) = fisheye::tasked_with_blocks(&img, &lens, &executor, ratio, 16, 16);
        let (perf, _) = fisheye::perforated(&img, &lens, ratio);
        assert!(
            psnr_images(&full, &sig) > psnr_images(&full, &perf),
            "fisheye at {ratio}"
        );

        // N-Body.
        let params = nbody::Params::small();
        let exact = nbody::reference(&params).flatten();
        let (sig, _) = nbody::tasked(&params, &executor, ratio);
        let (perf, _) = nbody::perforated(&params, ratio);
        assert!(
            relative_error_l2(&exact, &sig.flatten())
                < relative_error_l2(&exact, &perf.flatten()),
            "nbody at {ratio}"
        );
    }
}

#[test]
fn fig7_nbody_headline_numbers_shape() {
    // §4.3: sig-driven N-Body at full approximation reaches a relative
    // error orders of magnitude below the 80 %-accurate perforated run,
    // at a fraction of the energy.
    let executor = Executor::new(4);
    let params = nbody::Params::small();
    let exact = nbody::reference(&params).flatten();

    let (sig, sig_stats) = nbody::tasked(&params, &executor, 0.0);
    let (perf, perf_stats) = nbody::perforated(&params, 0.8);
    let err_sig = relative_error_l2(&exact, &sig.flatten());
    let err_perf = relative_error_l2(&exact, &perf.flatten());

    assert!(err_sig < err_perf, "{err_sig} vs {err_perf}");
    // Much less accurate work executed.
    assert!(sig_stats.accurate_ops < perf_stats.accurate_ops / 2);
}

#[test]
fn section_2_2_ambiguous_comparison_terminates_analysis() {
    // §2.2: ambiguous interval comparisons terminate the analysis and
    // report the condition.
    let err = Analysis::new()
        .run(|ctx| {
            let x = ctx.input("x", -1.0, 1.0);
            let neg = ctx.branch(
                x.value().certainly_lt(scorpio::interval::Interval::ZERO),
                "x < 0",
            )?;
            let y = if neg { -x } else { x };
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap_err();
    assert!(err.to_string().contains("x < 0"));
}
