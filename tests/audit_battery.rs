//! Differential soundness-audit battery, integration-level.
//!
//! Exercises the three oracle families of `scorpio::analysis::audit`
//! end-to-end through the facade crate:
//!
//! * **containment** — concrete forward values and finite-difference /
//!   dual-number derivatives of randomly sampled points must lie inside
//!   the interval enclosures and interval adjoints of every node;
//! * **cross-mode** — a replayed (`ReplayOrRecord`) analysis must agree
//!   bitwise with a fresh recording;
//! * **fuzz** — random expression DAGs over every operator family
//!   (including the div/pow edge cases that produce EMPTY or half-line
//!   enclosures) stay sound, and a seeded violation shrinks to a
//!   minimal repro.
//!
//! The full-size sweep (1 000 cases per family, as in the release
//! `scorpio_audit` binary) runs in release; debug builds scale down so
//! `cargo test -q` stays fast on one core.

use scorpio::analysis::audit::{
    audit_containment, audit_cross_mode, minimal_repro, AuditConfig, AuditOutcome, DagSpec,
    OpFamily, SplitMix64,
};
use scorpio::analysis::Report;
use scorpio::kernels::{blackscholes, maclaurin, sobel};

/// Cases per operator family: the acceptance-sized sweep in release,
/// a proportional smoke sweep under debug assertions.
fn fuzz_cases() -> usize {
    if cfg!(debug_assertions) {
        150
    } else {
        1_000
    }
}

fn audit_report(report: &Report, points: usize, seed: u64) -> AuditOutcome {
    let cfg = AuditConfig {
        points,
        seed,
        max_violations: 8,
    };
    audit_containment(report, &cfg)
}

#[test]
fn kernel_containment_holds_on_spot_checks() {
    let points = if cfg!(debug_assertions) { 500 } else { 5_000 };

    let maclaurin = maclaurin::analysis(0.49, 8).expect("maclaurin analysis");
    let out = audit_report(&maclaurin, points, 0xBA77_0001);
    assert!(out.is_sound(), "maclaurin violations: {:?}", out.violations);
    assert!(out.checks > 0);

    let sobel = sobel::analysis().expect("sobel analysis");
    let out = audit_report(&sobel, points, 0xBA77_0002);
    assert!(out.is_sound(), "sobel violations: {:?}", out.violations);

    let bs = blackscholes::analysis().expect("blackscholes analysis");
    let out = audit_report(&bs, points, 0xBA77_0003);
    assert!(out.is_sound(), "blackscholes violations: {:?}", out.violations);
}

#[test]
fn cross_mode_bit_identity_on_kernel_and_random_dags() {
    let cross = audit_cross_mode(|ctx| {
        let x = ctx.input_centered("x", 0.49, 0.5);
        let mut acc = ctx.constant(0.0);
        for i in 0..8 {
            acc = acc + x.powi(i);
        }
        ctx.output(&acc, "result");
        Ok(())
    })
    .expect("cross-mode maclaurin");
    assert!(cross.replayed, "compiled tape failed to replay");
    assert!(cross.is_clean(), "mismatches: {:?}", cross.mismatches);

    let mut rng = SplitMix64::new(0x0C6A_77E5);
    for family in OpFamily::ALL {
        let spec = DagSpec::random(family, &mut rng);
        let out = audit_cross_mode(|ctx| spec.register(ctx)).expect("cross-mode dag");
        assert!(out.replayed, "{} dag failed to replay:\n{spec}", family.name());
        assert!(
            out.is_clean(),
            "{} dag cross-mode mismatches: {:?}\n{spec}",
            family.name(),
            out.mismatches
        );
    }
}

#[test]
fn dag_fuzz_sweep_is_sound_for_every_op_family() {
    let cases = fuzz_cases();
    let points = if cfg!(debug_assertions) { 20 } else { 40 };
    for family in OpFamily::ALL {
        let mut rng = SplitMix64::new(0xF0_5Eu64 ^ family as u64);
        let mut checks = 0u64;
        for case in 0..cases {
            let spec = DagSpec::random(family, &mut rng);
            let cfg = AuditConfig {
                points,
                seed: 0xBEE_0000 + case as u64,
                max_violations: 4,
            };
            let out = spec.audit(&cfg).expect("dag analysis");
            checks += out.checks;
            assert!(
                out.is_sound(),
                "{} case {case}: {} violation(s) {:?}\n{spec}",
                family.name(),
                out.violation_count,
                out.violations
            );
        }
        assert!(checks > 0, "{} family audited nothing", family.name());
    }
}

#[test]
fn minimal_repro_finds_short_witness_for_seeded_failure() {
    // Seed an artificial "failure": any spec whose last op reads node
    // index >= 2. The shrinker must return a spec that still fails but
    // whose strict prefixes all pass — i.e. a shortest failing prefix.
    let mut rng = SplitMix64::new(0x51AB_5EED);
    for _ in 0..50 {
        let spec = DagSpec::random(OpFamily::Arithmetic, &mut rng);
        let fails = |s: &DagSpec| s.ops.last().is_some_and(|op| op.a >= 2 || op.b >= 2);
        if !fails(&spec) {
            continue;
        }
        let small = minimal_repro(&spec, &fails);
        assert!(fails(&small), "shrunk spec no longer fails:\n{small}");
        assert!(small.ops.len() <= spec.ops.len());
        for len in 1..small.ops.len() {
            assert!(
                !fails(&small.prefix(len)),
                "prefix of length {len} already fails — not minimal:\n{small}"
            );
        }
    }
}
