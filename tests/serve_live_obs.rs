//! Live-observability round trip through the serve layer: a real TCP
//! server on an ephemeral port, the `metrics`/`window`/`exemplars`
//! verbs exercised under active mixed-kernel load, the HTTP metrics
//! sidecar scraped raw, and a client-supplied trace id followed from
//! the request line into a reassemblable span tree in the exemplar
//! dump.
//!
//! Tracing enablement is process-global and one-way, so every test in
//! this binary runs with tracing on — which is exactly the regime the
//! verbs are specified for.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;

use scorpio::obs::expose::validate_exposition;
use scorpio::obs::json::Value;
use scorpio::serve::{Client, Server, ServerConfig, ServerSummary};

const MACLAURIN_LINE: &str = r#"{"kernel":"maclaurin","n":8,"items":[0.12,0.31,-0.27,0.44]}"#;
const FISHEYE_LINE: &str =
    r#"{"kernel":"fisheye","width":24,"height":16,"items":[{"u":3.5,"v":7.25},{"u":20.0,"v":11.5}]}"#;

/// Binds a traced server with a metrics sidecar; returns the protocol
/// address, the sidecar scrape address and the run handle.
fn spawn_traced_server() -> (
    String,
    String,
    thread::JoinHandle<std::io::Result<ServerSummary>>,
) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache_capacity: 16,
        manifest: None,
        out_dir: std::env::temp_dir(),
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral server");
    let addr = server.local_addr().expect("local_addr").to_string();
    let scrape = server
        .metrics_local_addr()
        .expect("sidecar addr")
        .to_string();
    (addr, scrape, thread::spawn(move || server.run()))
}

fn assert_ok(reply: &Value) {
    assert_eq!(
        reply.get("ok"),
        Some(&Value::Bool(true)),
        "error reply: {:?}",
        reply.get("error")
    );
}

/// Sends a few analyze requests on both kernels so the registry,
/// windows and exemplar ring all have live data.
fn drive_load(client: &mut Client) {
    for _ in 0..3 {
        assert_ok(&client.request(MACLAURIN_LINE).expect("maclaurin request"));
        assert_ok(&client.request(FISHEYE_LINE).expect("fisheye request"));
    }
}

/// One raw HTTP/1.0-style scrape of the sidecar: request head out,
/// full response in (the sidecar closes the connection after one
/// exposition).
fn scrape_sidecar(addr: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect sidecar");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n")
        .expect("write scrape request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read scrape");
    response
}

#[test]
fn metrics_verb_and_sidecar_expose_valid_prometheus_under_load() {
    let (addr, scrape_addr, server) = spawn_traced_server();
    let mut client = Client::connect(&addr).expect("connect");
    drive_load(&mut client);

    // The JSON-protocol `metrics` verb.
    let body = client.metrics().expect("metrics verb");
    let samples = validate_exposition(&body)
        .unwrap_or_else(|e| panic!("metrics verb exposition invalid: {e}\n{body}"));
    assert!(samples > 0, "exposition carried no samples");
    for needle in [
        "# TYPE scorpio_serve_requests_total counter",
        r#"scorpio_kernel_requests_total{kernel="maclaurin"}"#,
        r#"scorpio_kernel_requests_total{kernel="fisheye"}"#,
        "scorpio_serve_latency_us_maclaurin_bucket",
        r#"scorpio_window_latency_ns{kernel="maclaurin",span="1m",quantile="0.5"}"#,
    ] {
        assert!(body.contains(needle), "missing {needle:?} in:\n{body}");
    }

    // The HTTP sidecar serves the same registry without touching the
    // JSON protocol.
    let response = scrape_sidecar(&scrape_addr);
    assert!(
        response.starts_with("HTTP/1.1 200 OK"),
        "sidecar status line: {response}"
    );
    assert!(
        response.contains("text/plain; version=0.0.4"),
        "sidecar content type: {response}"
    );
    let scraped = response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1;
    validate_exposition(scraped)
        .unwrap_or_else(|e| panic!("sidecar exposition invalid: {e}\n{scraped}"));
    assert!(scraped.contains("scorpio_serve_requests_total"));

    // The sliding windows saw the traffic we just sent. The 1m span is
    // the check target: on a loaded box the 10s window can rotate
    // mid-test (its rotation math is covered by obs unit/property
    // tests).
    let window = client.window().expect("window verb");
    assert_ok(&window);
    let kernels = window.get("kernels").and_then(Value::as_arr).expect("kernels");
    for wanted in ["maclaurin", "fisheye"] {
        let requests = kernels
            .iter()
            .find(|k| k.get("kernel").and_then(Value::as_str) == Some(wanted))
            .and_then(|k| k.get("spans"))
            .and_then(Value::as_arr)
            .and_then(|spans| {
                spans
                    .iter()
                    .find(|s| s.get("span").and_then(Value::as_str) == Some("1m"))
            })
            .and_then(|s| s.get("requests"))
            .and_then(Value::as_f64)
            .expect("1m span record");
        assert!(requests >= 3.0, "{wanted} 1m window missed traffic");
    }

    client.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

#[test]
fn client_trace_id_round_trips_into_a_reassemblable_span_tree() {
    let (addr, _scrape, server) = spawn_traced_server();
    let mut client = Client::connect(&addr).expect("connect");

    // A request that names its own trace id.
    let traced_line =
        r#"{"kernel":"maclaurin","n":8,"trace_id":"beef","items":[0.12,0.31,-0.27,0.44]}"#;
    let reply = client.request(traced_line).expect("traced request");
    assert_ok(&reply);
    assert_eq!(
        reply.get("trace_id").and_then(Value::as_str),
        Some("000000000000beef"),
        "client-supplied trace id must echo zero-padded"
    );

    // A request without one gets a server-generated id.
    let reply = client.request(MACLAURIN_LINE).expect("untagged request");
    assert_ok(&reply);
    let generated = reply
        .get("trace_id")
        .and_then(Value::as_str)
        .expect("server-generated trace id");
    assert_eq!(generated.len(), 16, "trace ids are 16 hex digits");
    assert_ne!(generated, "000000000000beef");
    assert!(u64::from_str_radix(generated, 16).is_ok_and(|id| id != 0));

    // The tail ring retained the tagged request; its span dump must
    // reassemble into a single tree rooted at serve.request.
    let dump = client.exemplars().expect("exemplars verb");
    assert_ok(&dump);
    let empty = Vec::new();
    let exemplars = dump.get("exemplars").and_then(Value::as_arr).unwrap_or(&empty);
    let tagged = exemplars
        .iter()
        .find(|e| e.get("trace_id").and_then(Value::as_str) == Some("000000000000beef"))
        .expect("tagged exemplar retained");
    assert_eq!(tagged.get("kernel").and_then(Value::as_str), Some("maclaurin"));
    assert_eq!(tagged.get("ok"), Some(&Value::Bool(true)));

    let spans = tagged.get("spans").and_then(Value::as_arr).expect("spans");
    assert!(!spans.is_empty(), "traced request captured no spans");
    let paths: Vec<&str> = spans
        .iter()
        .map(|s| s.get("path").and_then(Value::as_str).expect("span path"))
        .collect();
    let roots: Vec<&&str> = paths.iter().filter(|p| !p.contains('/')).collect();
    assert_eq!(roots, [&"serve.request"], "exactly one root span");
    for (span, path) in spans.iter().zip(&paths) {
        if let Some((parent, _)) = path.rsplit_once('/') {
            assert!(
                paths.contains(&parent),
                "span {path:?} has no captured parent — tree does not reassemble"
            );
        } else {
            assert_eq!(
                span.get("depth").and_then(Value::as_f64),
                Some(0.0),
                "root span depth"
            );
        }
        let dur = span.get("dur_ns").and_then(Value::as_f64).expect("dur_ns");
        assert!(dur >= 0.0);
    }
    // The stage-level pipeline is present even with detail spans off.
    for stage in ["parse", "serve.analyze", "serve.serialize"] {
        assert!(
            spans
                .iter()
                .any(|s| s.get("name").and_then(Value::as_str) == Some(stage)),
            "missing stage span {stage:?} in {paths:?}"
        );
    }

    client.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}
