//! Cross-crate determinism contract of the parallel analysis engine:
//! every parallel entry point must produce **bit-identical** results at
//! any worker count — parallelism is a pure latency optimisation, never
//! a semantic knob. Serial baselines (`threads == 1` runs inline,
//! bypassing the pool) are compared against 2- and 8-worker runs via
//! `f64::to_bits`, not approximate equality.

use scorpio::analysis::mc;
use scorpio::analysis::ParallelAnalysis;
use scorpio::kernels::{blackscholes, dct, fisheye, sobel};

const THREAD_COUNTS: [usize; 2] = [2, 8];

#[test]
fn sobel_combine_is_bit_identical_across_thread_counts() {
    let serial = sobel::analysis_combine(12).unwrap();
    for threads in THREAD_COUNTS {
        let parallel = sobel::analysis_combine_threaded(12, threads).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (i, ((sx, sy), (px, py))) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(sx.to_bits(), px.to_bits(), "tx diverged at point {i}, {threads} threads");
            assert_eq!(sy.to_bits(), py.to_bits(), "ty diverged at point {i}, {threads} threads");
        }
    }
}

#[test]
fn blackscholes_batch_is_bit_identical_across_thread_counts() {
    let options = blackscholes::generate_options(48, 7);
    let serial = blackscholes::analysis_options(&options, &ParallelAnalysis::new(1)).unwrap();
    for threads in THREAD_COUNTS {
        let parallel =
            blackscholes::analysis_options(&options, &ParallelAnalysis::new(threads)).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            let s = [s.0, s.1, s.2, s.3];
            let p = [p.0, p.1, p.2, p.3];
            for (block, (a, b)) in ["A", "B", "C", "D"].iter().zip(s.iter().zip(&p)) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "block {block} diverged at option {i}, {threads} threads"
                );
            }
        }
    }
}

#[test]
fn monte_carlo_is_bit_identical_across_thread_counts() {
    let model = |ctx: &mc::McCtx<'_>| {
        let x = ctx.input("x", -0.01, 0.99);
        let mut acc = ctx.constant(0.0);
        for i in 0..5 {
            let t = x.powi(i);
            ctx.intermediate(&t, format!("term{i}"));
            acc = acc + t;
        }
        ctx.output(&acc, "y");
        Ok(())
    };
    let serial = mc::estimate(256, 99, model).unwrap();
    for threads in THREAD_COUNTS {
        let parallel = mc::estimate_threaded(256, 99, threads, model).unwrap();
        assert_eq!(serial.vars.len(), parallel.vars.len());
        for (s, p) in serial.vars.iter().zip(&parallel.vars) {
            assert_eq!(s.name, p.name);
            assert_eq!(
                s.significance_raw.to_bits(),
                p.significance_raw.to_bits(),
                "MC significance of {} diverged at {threads} threads",
                s.name
            );
        }
    }
}

#[test]
fn fisheye_grid_matches_serial_per_pixel_loop() {
    let lens = fisheye::Lens::for_image(1280, 960);
    let (gw, gh) = (8usize, 6);
    // The hand-rolled serial loop the grid replaces.
    let mut expected = Vec::with_capacity(gw * gh);
    for gy in 0..gh {
        for gx in 0..gw {
            let u = (gx as f64 + 0.5) * lens.width as f64 / gw as f64;
            let v = (gy as f64 + 0.5) * lens.height as f64 / gh as f64;
            expected.push(fisheye::analysis_inverse_mapping(&lens, u, v).unwrap());
        }
    }
    for threads in [1, 2, 8] {
        let engine = ParallelAnalysis::new(threads);
        let got = fisheye::analysis_inverse_mapping_grid(&lens, gw, gh, &engine).unwrap();
        assert_eq!(got.len(), expected.len());
        for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
            assert_eq!(e.to_bits(), g.to_bits(), "pixel {i} diverged at {threads} threads");
        }
    }
}

#[test]
fn dct_blocks_match_serial_analysis() {
    let base = dct::natural_test_block();
    // A few distinct blocks derived from the natural test block.
    let blocks: Vec<_> = (0..3)
        .map(|k| {
            let mut b = base;
            for row in &mut b {
                for p in row.iter_mut() {
                    *p = (*p + 7.0 * k as f64).min(255.0);
                }
            }
            b
        })
        .collect();
    let serial = dct::analysis_blocks(&blocks, 8.0, &ParallelAnalysis::new(1)).unwrap();
    let parallel = dct::analysis_blocks(&blocks, 8.0, &ParallelAnalysis::new(2)).unwrap();
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        for (v, (srow, prow)) in s.iter().zip(p).enumerate() {
            for (u, (a, b)) in srow.iter().zip(prow).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "coefficient ({v},{u}) diverged in block {i}"
                );
            }
        }
    }
    // And the batch agrees with the standalone single-block analysis.
    let standalone = dct::coefficient_map(&dct::analysis(&blocks[0], 8.0).unwrap());
    for (srow, prow) in standalone.iter().zip(&serial[0]) {
        for (a, b) in srow.iter().zip(prow) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
