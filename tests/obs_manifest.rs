//! Integration tests for the observability layer against a real kernel
//! run: the run manifest must contain every phase the pipeline
//! registers, round-trip through the serde-based JSON writer/parser,
//! and the Chrome trace export must be valid.
//!
//! `scorpio-obs` state is process-global, so every test serialises on
//! one mutex and resets the sink before starting.

use std::sync::Mutex;

use scorpio::kernels::maclaurin;
use scorpio::obs;
use scorpio::runtime::Executor;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Runs the full Maclaurin pipeline (analysis → Algorithm 1 →
/// ratio-driven execution) inside a session and returns its manifest.
fn instrumented_kernel_run() -> obs::RunManifest {
    let session = obs::RunSession::start("itest_maclaurin");
    let report = maclaurin::analysis(0.49, 8).expect("analysis");
    let partition = report.partition();
    assert_eq!(partition.cut_level, Some(1));
    let executor = Executor::new(2);
    let (value, _stats) = maclaurin::tasked(0.49, 8, &executor, 0.5);
    assert!(value.is_finite());
    let config = vec![
        ("x0".to_owned(), "0.49".to_owned()),
        ("n".to_owned(), "8".to_owned()),
    ];
    let manifest = session.manifest(2, &config);
    obs::disable();
    manifest
}

/// The phases every Maclaurin pipeline run registers — the golden
/// expectation for the manifest's phase tree. Span nesting may differ
/// across refactors, so membership (not position) is checked.
const GOLDEN_PHASES: &[&str] = &[
    "kernel.maclaurin.analysis",
    "record",
    "reverse",
    "significance",
    "simplify",
    "partition",
    "kernel.maclaurin.tasked",
    "taskwait",
    "task_execution",
];

#[test]
fn kernel_manifest_contains_all_registered_phases() {
    let _guard = lock();
    let manifest = instrumented_kernel_run();

    let names = manifest.phase_names();
    for phase in GOLDEN_PHASES {
        assert!(
            names.iter().any(|n| n == phase),
            "manifest is missing phase {phase:?}; got {names:?}"
        );
    }

    // Counters from the record sweep and the task runtime made it in.
    let counter = |name: &str| {
        manifest
            .counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("missing counter {name:?}"))
            .value
    };
    assert!(counter("analysis.nodes_recorded") > 0);
    let executed =
        counter("tasks.accurate") + counter("tasks.approximate") + counter("tasks.dropped");
    assert!(executed > 0, "no tasks accounted");

    // The per-level variance histogram was fed by the partition walk.
    assert!(
        manifest
            .histograms
            .iter()
            .any(|h| h.name == "partition.level_variance" && h.count > 0),
        "partition.level_variance histogram missing or empty"
    );

    // Timing sanity: the root phases on the session thread cannot
    // exceed the wall clock.
    assert!(manifest.wall_clock_ns > 0);
    assert!(manifest.phase_total_ns > 0);
    assert!(manifest.phase_total_ns <= manifest.wall_clock_ns);

    obs::reset();
}

#[test]
fn kernel_manifest_round_trips_through_serde() {
    let _guard = lock();
    let manifest = instrumented_kernel_run();

    let json = manifest.to_json();
    let value = obs::json::parse(&json).expect("manifest JSON parses");

    // Golden top-level schema.
    for key in [
        "name",
        "git",
        "threads",
        "config",
        "wall_clock_ns",
        "phase_total_ns",
        "phases",
        "counters",
        "histograms",
        "task_events",
        "task_events_dropped",
    ] {
        assert!(value.get(key).is_some(), "manifest JSON is missing {key:?}");
    }

    // The tasked run executed under tracing, so the event log is
    // populated and each record carries the flat event schema.
    let events = value.get("task_events").and_then(|v| v.as_arr()).expect("task_events array");
    assert!(!events.is_empty(), "no task events in manifest");
    for e in events {
        for key in ["seq", "t_ns", "event", "label", "worker"] {
            assert!(e.get(key).is_some(), "task event missing {key:?}");
        }
    }
    assert_eq!(value.get("task_events_dropped").and_then(|v| v.as_f64()), Some(0.0));

    assert_eq!(value.get("name").and_then(|v| v.as_str()), Some("itest_maclaurin"));
    assert_eq!(value.get("threads").and_then(|v| v.as_f64()), Some(2.0));
    assert_eq!(
        value.get("wall_clock_ns").and_then(|v| v.as_f64()),
        Some(manifest.wall_clock_ns as f64)
    );

    // Every phase in the tree survives the round trip.
    fn collect_names(node: &obs::json::Value, out: &mut Vec<String>) {
        if let Some(name) = node.get("name").and_then(|v| v.as_str()) {
            out.push(name.to_owned());
        }
        if let Some(children) = node.get("children").and_then(|v| v.as_arr()) {
            for c in children {
                collect_names(c, out);
            }
        }
    }
    let mut parsed_names = Vec::new();
    for root in value.get("phases").and_then(|v| v.as_arr()).expect("phases array") {
        collect_names(root, &mut parsed_names);
    }
    assert_eq!(parsed_names, manifest.phase_names());

    // Counters survive with exact values.
    let counters = value.get("counters").and_then(|v| v.as_arr()).expect("counters");
    assert_eq!(counters.len(), manifest.counters.len());
    for (parsed, original) in counters.iter().zip(&manifest.counters) {
        assert_eq!(parsed.get("name").and_then(|v| v.as_str()), Some(original.name.as_str()));
        assert_eq!(
            parsed.get("value").and_then(|v| v.as_f64()),
            Some(original.value as f64)
        );
    }

    obs::reset();
}

#[test]
fn kernel_chrome_trace_is_valid() {
    let _guard = lock();
    let _manifest = instrumented_kernel_run();

    let events = obs::take_events();
    assert!(!events.is_empty());
    let trace = obs::chrome_trace_json(&events);
    let value = obs::json::parse(&trace).expect("chrome trace parses");
    let trace_events = value
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert_eq!(trace_events.len(), events.len());
    for e in trace_events {
        assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("X"));
        for key in ["name", "ts", "dur", "pid", "tid"] {
            assert!(e.get(key).is_some(), "trace event missing {key:?}");
        }
    }

    obs::reset();
}
