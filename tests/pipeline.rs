//! End-to-end integration tests: analysis → task structure → approximate
//! execution → quality, across crates, for every benchmark.

use scorpio::kernels::{blackscholes, dct, fisheye, maclaurin, nbody, sobel};
use scorpio::quality::{psnr_images, relative_error_l2, SyntheticImage};
use scorpio::runtime::{EnergyModel, Executor};

const RATIOS: [f64; 5] = [0.0, 0.2, 0.5, 0.8, 1.0];

/// Shared harness: asserts the two Fig. 7 structural properties for a
/// kernel sweep — quality improves (weakly) with ratio, energy grows
/// (weakly) with ratio — and that ratio 1 is exact.
fn assert_fig7_shape(label: &str, qualities: &[f64], energies: &[f64], higher_is_better: bool) {
    for (i, w) in qualities.windows(2).enumerate() {
        if higher_is_better {
            assert!(
                w[1] >= w[0] - 0.75,
                "{label}: quality fell {} → {} between ratios {} and {}",
                w[0],
                w[1],
                RATIOS[i],
                RATIOS[i + 1]
            );
        } else {
            assert!(
                w[1] <= w[0] * 1.5 + 1e-12,
                "{label}: error rose {} → {} between ratios {} and {}",
                w[0],
                w[1],
                RATIOS[i],
                RATIOS[i + 1]
            );
        }
    }
    for w in energies.windows(2) {
        assert!(
            w[1] >= w[0] * 0.999,
            "{label}: energy fell with rising ratio: {} → {}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn maclaurin_full_pipeline() {
    let executor = Executor::new(4);
    let model = EnergyModel::xeon_e5_2695v3();

    // Analysis drives the task ranking…
    let report = maclaurin::analysis(0.49, 10).unwrap();
    let partition = report.partition();
    assert_eq!(partition.cut_level, Some(1));

    // …whose execution behaves per Fig. 7.
    let exact = maclaurin::reference(0.49, 10);
    let mut errors = Vec::new();
    let mut energies = Vec::new();
    for ratio in RATIOS {
        let (value, stats) = maclaurin::tasked(0.49, 10, &executor, ratio);
        errors.push((value - exact).abs() / exact.abs());
        energies.push(model.energy(&stats));
    }
    assert_fig7_shape("maclaurin", &errors, &energies, false);
    assert_eq!(errors[4], 0.0);
}

#[test]
fn sobel_full_pipeline() {
    let executor = Executor::new(4);
    let model = EnergyModel::xeon_e5_2695v3();
    let img = SyntheticImage::ValueNoise.render(64, 64, 31);

    let report = sobel::analysis().unwrap();
    let a = sobel::part_significance(&report, sobel::Part::A);
    let b = sobel::part_significance(&report, sobel::Part::B);
    assert!((a / b - 2.0).abs() < 1e-6);

    let full = sobel::reference(&img);
    let mut psnrs = Vec::new();
    let mut energies = Vec::new();
    for ratio in RATIOS {
        let (out, stats) = sobel::tasked(&img, &executor, ratio);
        psnrs.push(psnr_images(&full, &out).min(1e6));
        energies.push(model.energy(&stats));
    }
    assert_fig7_shape("sobel", &psnrs, &energies, true);
}

#[test]
fn dct_full_pipeline() {
    let executor = Executor::new(4);
    let model = EnergyModel::xeon_e5_2695v3();
    let img = SyntheticImage::GaussianBlobs.render(48, 48, 5);

    let full = dct::reference(&img);
    let mut psnrs = Vec::new();
    let mut energies = Vec::new();
    for ratio in RATIOS {
        let (out, stats) = dct::tasked(&img, &executor, ratio);
        psnrs.push(psnr_images(&full, &out).min(1e6));
        energies.push(model.energy(&stats));
    }
    assert_fig7_shape("dct", &psnrs, &energies, true);
    // DC forced accurate: even ratio 0 beats an all-black frame by far.
    assert!(psnrs[0] > 15.0);
}

#[test]
fn fisheye_full_pipeline() {
    let executor = Executor::new(4);
    let model = EnergyModel::xeon_e5_2695v3();
    let lens = fisheye::Lens::for_image(96, 64);
    let img = SyntheticImage::ValueNoise.render(96, 64, 8);

    let full = fisheye::reference(&img, &lens);
    let mut psnrs = Vec::new();
    let mut energies = Vec::new();
    for ratio in RATIOS {
        let (out, stats) = fisheye::tasked_with_blocks(&img, &lens, &executor, ratio, 24, 16);
        psnrs.push(psnr_images(&full, &out).min(1e6));
        energies.push(model.energy(&stats));
    }
    assert_fig7_shape("fisheye", &psnrs, &energies, true);
}

#[test]
fn nbody_full_pipeline() {
    let executor = Executor::new(4);
    let model = EnergyModel::xeon_e5_2695v3();
    let params = nbody::Params::small();

    let exact = nbody::reference(&params).flatten();
    let mut errors = Vec::new();
    let mut energies = Vec::new();
    for ratio in RATIOS {
        let (state, stats) = nbody::tasked(&params, &executor, ratio);
        errors.push(relative_error_l2(&exact, &state.flatten()).max(1e-18));
        energies.push(model.energy(&stats));
    }
    assert_fig7_shape("nbody", &errors, &energies, false);
    // The headline claim: fully approximate stays well-behaved.
    assert!(errors[0] < 0.01, "ratio-0 rel err {}", errors[0]);
}

#[test]
fn blackscholes_full_pipeline() {
    let executor = Executor::new(4);
    let model = EnergyModel::xeon_e5_2695v3();
    let options = blackscholes::generate_options(512, 13);

    let exact = blackscholes::reference(&options);
    let mut errors = Vec::new();
    let mut energies = Vec::new();
    for ratio in RATIOS {
        let (prices, stats) = blackscholes::tasked(&options, 32, &executor, ratio);
        errors.push(relative_error_l2(&exact, &prices).max(1e-18));
        energies.push(model.energy(&stats));
    }
    assert_fig7_shape("blackscholes", &errors, &energies, false);
    assert!(errors[0] < 1e-2);
}

#[test]
fn all_benchmarks_save_energy_when_approximating() {
    // §4.3: energy reduction between 31 % and 91 % across benchmarks at
    // aggressive approximation. We assert the direction and a nontrivial
    // magnitude for every kernel at ratio 0.2 vs 1.0.
    let executor = Executor::new(4);
    let model = EnergyModel::xeon_e5_2695v3();

    let mut reductions = Vec::new();

    // A long series: with only a handful of terms the per-task overhead
    // dominates and there is little energy to win.
    let (_, full) = maclaurin::tasked(0.49, 512, &executor, 1.0);
    let (_, approx) = maclaurin::tasked(0.49, 512, &executor, 0.2);
    reductions.push(("maclaurin", model.energy_reduction(&approx, &full)));

    let img = SyntheticImage::Gradient.render(64, 64, 0);
    let (_, full) = sobel::tasked(&img, &executor, 1.0);
    let (_, approx) = sobel::tasked(&img, &executor, 0.2);
    reductions.push(("sobel", model.energy_reduction(&approx, &full)));

    let (_, full) = dct::tasked(&img, &executor, 1.0);
    let (_, approx) = dct::tasked(&img, &executor, 0.2);
    reductions.push(("dct", model.energy_reduction(&approx, &full)));

    let lens = fisheye::Lens::for_image(64, 64);
    let (_, full) = fisheye::tasked_with_blocks(&img, &lens, &executor, 1.0, 16, 16);
    let (_, approx) = fisheye::tasked_with_blocks(&img, &lens, &executor, 0.2, 16, 16);
    reductions.push(("fisheye", model.energy_reduction(&approx, &full)));

    // Coarse regions: compute per task must dominate dispatch overhead
    // for approximation to pay off (the paper's configuration is coarse).
    let params = nbody::Params::coarse();
    let (_, full) = nbody::tasked(&params, &executor, 1.0);
    let (_, approx) = nbody::tasked(&params, &executor, 0.2);
    reductions.push(("nbody", model.energy_reduction(&approx, &full)));

    let options = blackscholes::generate_options(512, 1);
    let (_, full) = blackscholes::tasked(&options, 32, &executor, 1.0);
    let (_, approx) = blackscholes::tasked(&options, 32, &executor, 0.2);
    reductions.push(("blackscholes", model.energy_reduction(&approx, &full)));

    for (name, r) in &reductions {
        assert!(
            *r > 0.05 && *r < 1.0,
            "{name}: energy reduction {r} out of the meaningful range"
        );
    }
}
