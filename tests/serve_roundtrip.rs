//! End-to-end round trip through the serve layer: a real TCP server on
//! an ephemeral port, mixed-kernel traffic from several client
//! threads, and bit-identity of served reports against direct library
//! calls.
//!
//! The bit-identity check is the serve layer's core correctness claim:
//! a report computed through the shape-keyed tape cache (replaying a
//! trace some *other* request recorded) must serialize byte-for-byte
//! like one computed by a fresh in-process [`Analysis`] run.

use std::thread;

use scorpio::analysis::{Analysis, AnalysisArena, ReplayOrRecord};
use scorpio::kernels::dct;
use scorpio::obs::json::{self, Value};
use scorpio::serve::kernels::KernelRequest;
use scorpio::serve::protocol::vars_to_record;
use scorpio::serve::{Client, Server, ServerConfig, ServerSummary};

/// One analyze line per kernel, covering every structural-parameter
/// field the protocol knows.
const REQUEST_LINES: [&str; 5] = [
    r#"{"kernel":"fisheye","width":48,"height":32,"detail":"full","items":[{"u":3.5,"v":7.25},{"u":40.0,"v":21.5},{"u":11.0,"v":30.0}]}"#,
    r#"{"kernel":"blackscholes","detail":"full","items":[{"spot":100.0,"strike":95.0,"rate":0.03,"volatility":0.25,"time":1.0},{"spot":87.5,"strike":110.0,"rate":0.01,"volatility":0.4,"time":0.5}]}"#,
    r#"{"kernel":"maclaurin","n":9,"detail":"full","items":[0.12,0.31,-0.27,0.44,0.05]}"#,
    r#"{"kernel":"nbody","detail":"full","items":[{"r0":1.1,"radius":0.05},{"r0":1.9,"radius":0.02},{"r0":0.95,"radius":0.08}]}"#,
    // DCT stays at vars detail: its node-level significance graph
    // (12k nodes) takes minutes to compute, far too slow for tier-1.
    // The shared fields are still compared bit-for-bit below.
    r#"{"kernel":"dct","radius":2.0,"detail":"vars","items":[[10,20,30,40,50,60,70,80,15,25,35,45,55,65,75,85,12,22,32,42,52,62,72,82,17,27,37,47,57,67,77,87,11,21,31,41,51,61,71,81,16,26,36,46,56,66,76,86,13,23,33,43,53,63,73,83,18,28,38,48,58,68,78,88]]}"#,
];

fn spawn_server(
    workers: usize,
) -> (
    String,
    thread::JoinHandle<std::io::Result<ServerSummary>>,
) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        cache_capacity: 16,
        manifest: None,
        out_dir: std::env::temp_dir(),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral server");
    let addr = server.local_addr().expect("local_addr").to_string();
    (addr, thread::spawn(move || server.run()))
}

fn assert_ok(reply: &Value) {
    assert_eq!(
        reply.get("ok"),
        Some(&Value::Bool(true)),
        "error reply: {:?}",
        reply.get("error")
    );
}

/// The reports a direct, replay-free library caller would produce for
/// `line`, parsed back through the same JSON writer the server uses.
/// DCT gets a vars-detail baseline (fresh driver per item, so every
/// item takes the pure record path): its full node graph takes minutes
/// to build, which is exactly why the serve request elides it too.
fn direct_report_values(line: &str) -> Vec<Value> {
    let request = KernelRequest::from_value(&json::parse(line).unwrap()).unwrap();
    if let KernelRequest::Dct { radius, items } = &request {
        return items
            .iter()
            .map(|b| {
                let mut driver = ReplayOrRecord::new(Analysis::new());
                let mut arena = AnalysisArena::new();
                let vars = driver
                    .run_vars_in(&mut arena, &dct::block_inputs(b, *radius), |ctx| {
                        dct::register_block(ctx, b, *radius)
                    })
                    .expect("direct dct analysis");
                assert_eq!(driver.stats().records, 1, "baseline must not replay");
                json::parse(&json::to_string(&vars_to_record(&vars))).unwrap()
            })
            .collect();
    }
    request
        .direct_reports()
        .expect("direct analysis")
        .iter()
        .map(|r| json::parse(&json::to_string(&r.to_record())).unwrap())
        .collect()
}

#[test]
fn served_reports_are_bit_identical_to_direct_library_calls() {
    let (addr, server) = spawn_server(2);
    let mut client = Client::connect(&addr).expect("connect");
    for line in REQUEST_LINES {
        let reply = client.request(line).expect("request");
        assert_ok(&reply);
        let served = reply.get("reports").and_then(Value::as_arr).expect("reports");
        let direct = direct_report_values(line);
        assert_eq!(served.len(), direct.len());
        // Value equality is bit-exact for numbers: the json writer
        // round-trips every f64 and both sides use it.
        for (s, d) in served.iter().zip(&direct) {
            assert_eq!(s, d, "served report diverged from direct library call");
        }
        let tasks = reply.get("tasks").and_then(Value::as_arr).expect("tasks");
        assert_eq!(tasks.len(), direct.len(), "one task row per item");
    }
    client.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

#[test]
fn second_wave_hits_the_cache_and_replays_identically() {
    let (addr, server) = spawn_server(2);

    // Wave 1 (cold) and wave 2 (warm) send the *same* mixed traffic
    // from several client threads; every per-line response pair must
    // carry identical reports even though wave 2 is served by cached
    // traces possibly recorded on a different worker.
    let wave = || -> Vec<Value> {
        thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|c| {
                    let addr = &addr;
                    s.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        // Stagger which kernel each thread starts on so
                        // the waves genuinely interleave kernels.
                        (0..REQUEST_LINES.len())
                            .map(|i| {
                                let line = REQUEST_LINES[(c + i) % REQUEST_LINES.len()];
                                let reply = client.request(line).expect("request");
                                assert_ok(&reply);
                                (
                                    (c + i) % REQUEST_LINES.len(),
                                    reply.get("reports").expect("reports").clone(),
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut by_line: Vec<Value> = vec![Value::Null; REQUEST_LINES.len()];
            for handle in handles {
                for (i, reports) in handle.join().expect("client thread") {
                    if by_line[i] == Value::Null {
                        by_line[i] = reports.clone();
                    }
                    // Threads within a wave must agree, too.
                    assert_eq!(by_line[i], reports, "divergent reports within a wave");
                }
            }
            by_line
        })
    };
    let first = wave();
    let mut control = Client::connect(&addr).expect("connect control");
    let after_first = control.stats().expect("stats");
    let second = wave();
    let after_second = control.stats().expect("stats");

    assert_eq!(first, second, "warm wave diverged from cold wave");

    let hits = |v: &Value| {
        v.get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Value::as_f64)
            .expect("cache.hits")
    };
    let misses = |v: &Value| {
        v.get("cache")
            .and_then(|c| c.get("misses"))
            .and_then(Value::as_f64)
            .expect("cache.misses")
    };
    assert!(misses(&after_first) >= 5.0, "cold wave must miss per shape");
    assert!(
        hits(&after_second) > hits(&after_first),
        "second same-shape wave produced no cache hits"
    );
    assert_eq!(
        misses(&after_second),
        misses(&after_first),
        "second wave re-recorded despite the cache"
    );

    control.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

#[test]
fn malformed_and_unknown_requests_get_error_replies_without_killing_the_server() {
    let (addr, server) = spawn_server(1);
    let mut client = Client::connect(&addr).expect("connect");

    let probes = [
        ("{not json at all", "expected"),
        (r#"{"kernel":"warp","items":[1]}"#, "unknown kernel"),
        (r#"{"kernel":"maclaurin","n":4,"items":[]}"#, "empty"),
        (r#"{"kernel":"maclaurin","n":4,"ratio":1.5,"items":[0.2]}"#, "ratio"),
        (r#"{"kernel":"dct","items":[[1,2,3]]}"#, "64"),
    ];
    for (line, _needle) in probes {
        let reply = client.request(line).expect("error reply still arrives");
        assert_eq!(reply.get("ok"), Some(&Value::Bool(false)), "{line}");
        assert!(reply.get("error").and_then(Value::as_str).is_some(), "{line}");
    }

    // The same connection and a fresh one must still be served.
    let reply = client
        .request(r#"{"kernel":"maclaurin","n":4,"items":[0.2]}"#)
        .expect("request after errors");
    assert_ok(&reply);
    let mut fresh = Client::connect(&addr).expect("fresh connect");
    let reply = fresh
        .request(r#"{"kernel":"nbody","items":[{"r0":1.2,"radius":0.03}]}"#)
        .expect("fresh request");
    assert_ok(&reply);

    let stats = fresh.stats().expect("stats");
    assert!(
        stats.get("errors").and_then(Value::as_f64).expect("errors") >= probes.len() as f64,
        "error counter must record the probes"
    );

    fresh.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

/// The served `vars` detail (the cheap default) must agree with the
/// full reports on the values it does carry.
#[test]
fn vars_detail_matches_full_detail_values() {
    let (addr, server) = spawn_server(1);
    let mut client = Client::connect(&addr).expect("connect");

    let vars_line = r#"{"kernel":"maclaurin","n":9,"detail":"vars","items":[0.12,0.31,-0.27]}"#;
    let full_line = r#"{"kernel":"maclaurin","n":9,"detail":"full","items":[0.12,0.31,-0.27]}"#;
    let vars = client.request(vars_line).expect("vars request");
    let full = client.request(full_line).expect("full request");
    assert_ok(&vars);
    assert_ok(&full);
    let vars = vars.get("reports").and_then(Value::as_arr).unwrap();
    let full = full.get("reports").and_then(Value::as_arr).unwrap();
    assert_eq!(vars.len(), full.len());
    for (v, f) in vars.iter().zip(full) {
        assert_eq!(v.get("output_significance_raw"), f.get("output_significance_raw"));
        assert_eq!(v.get("vars"), f.get("vars"));
        // Only the node-level graph is elided in vars detail.
        assert_eq!(v.get("nodes").and_then(Value::as_arr).map(<[Value]>::len), Some(0));
        assert_ne!(f.get("nodes").and_then(Value::as_arr).map(<[Value]>::len), Some(0));
    }

    client.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

// A direct-library sanity anchor: the serve layer's `direct_reports`
// helper really is a fresh-Analysis run (no replay machinery), so the
// bit-identity assertions above compare against the right baseline.
#[test]
fn direct_reports_match_a_handwritten_analysis_run() {
    let line = r#"{"kernel":"maclaurin","n":6,"items":[0.2]}"#;
    let request = KernelRequest::from_value(&json::parse(line).unwrap()).unwrap();
    let from_helper = &request.direct_reports().unwrap()[0];
    let by_hand = Analysis::new()
        .run(|ctx: &scorpio::analysis::Ctx<'_>| {
            scorpio::kernels::maclaurin::register_series(ctx, 0.2, 6)
        })
        .unwrap();
    assert_eq!(
        json::to_string(&from_helper.to_record()),
        json::to_string(&by_hand.to_record())
    );
}
