//! End-to-end JPEG codec scenario: bitrate vs PSNR/SSIM vs modeled
//! energy curves, the random-block-selection ablation, and the
//! adaptive-controller run behind `bench_jpeg` / `BENCH_jpeg.json`.
//!
//! For each checked-in test image the runner analyses per-block
//! significance once (record-once/replay-many through the kernel's
//! analysis path), sweeps the `taskwait` ratio over a grid with that
//! ranking **and** with a seeded random ranking of the same blocks
//! (same accurate-block count per ratio, so bitrates are comparable),
//! and finally lets an [`AdaptiveController`] find the cheapest ratio
//! for a PSNR target. Every encode is decoded back and its container is
//! checked for bit-exactness with [`jpeg::verify_bitstream`].
//! `scorpio_diff` gates the resulting report against
//! `baselines/BENCH_jpeg_small.json`: quality/energy/bitrate drift plus
//! the contract bits (round-trip, significance-dominates-random,
//! adaptive target met).

use scorpio_core::ParallelAnalysis;
use scorpio_kernels::jpeg;
use scorpio_quality::{psnr_images, ssim, GrayImage};
use scorpio_runtime::controller::adaptive::{AdaptiveController, Objective};
use scorpio_runtime::controller::QualityTarget;
use scorpio_runtime::{EnergyModel, Executor};
use serde::Serialize;

use crate::stats::SplitMix64;

/// Schema tag of `BENCH_jpeg.json`.
pub const JPEG_SCHEMA: &str = "scorpio-jpeg-v1";

/// The ratio grid of the sweep.
pub const RATIOS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Cap on adaptive-controller observations per image.
pub const MAX_ADAPTIVE_STEPS: usize = 24;

/// Seed of the random-ranking ablation (fixed: the ablation must be
/// reproducible for the diff gate).
pub const ABLATION_SEED: u64 = 0x05c0_a910_cafe;

/// One measured point of an image's ratio sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JpegPoint {
    /// The requested accurate-block ratio.
    pub ratio: f64,
    /// PSNR (dB) of the decode against the full-ratio reconstruction,
    /// capped at 99 (the two coincide at ratio 1.0).
    pub psnr_db: f64,
    /// SSIM of the decode against the full-ratio reconstruction.
    pub ssim: f64,
    /// Total container size in bits — *actual* entropy-coded bits, not
    /// an estimate.
    pub bits: u64,
    /// Bits per source pixel.
    pub bits_per_pixel: f64,
    /// Modeled energy (J) of the encode's transform + epilogue work.
    pub energy_j: f64,
    /// Blocks transformed with the exact DCT.
    pub accurate_blocks: u64,
    /// Blocks transformed with BinDCT.
    pub approx_blocks: u64,
    /// Whether the container survived the structural bit-exactness
    /// check (decode symbols → rebuild table → re-encode → identical
    /// bytes).
    pub roundtrip_ok: bool,
}

/// The adaptive-controller outcome on one image.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JpegAdaptive {
    /// The PSNR floor the controller pursued (dB, against the
    /// full-ratio reconstruction).
    pub target_psnr_db: f64,
    /// The ratio the controller settled on.
    pub final_ratio: f64,
    /// PSNR measured at the final ratio.
    pub psnr_db: f64,
    /// Modeled energy at the final ratio.
    pub energy_j: f64,
    /// Bits per pixel at the final ratio.
    pub bits_per_pixel: f64,
    /// Controller observations consumed.
    pub steps: u64,
    /// Whether convergence latched before the step cap.
    pub converged: bool,
    /// Whether the final observation met the target.
    pub target_met: bool,
}

/// One image's full scenario result.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JpegImage {
    /// Image name (asset file stem).
    pub name: String,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Number of 8×8 blocks.
    pub blocks: u64,
    /// Significance-ordered sweep, ascending ratio.
    pub curve: Vec<JpegPoint>,
    /// Random-ranking ablation on the same grid (same accurate-block
    /// count per ratio — the PSNR-at-equal-bitrate comparison).
    pub random_curve: Vec<JpegPoint>,
    /// `true` when the significance sweep weakly dominates the random
    /// ablation on PSNR at every grid ratio.
    pub sig_dominates_random: bool,
    /// The closed-loop run.
    pub adaptive: JpegAdaptive,
}

/// The whole report (`BENCH_jpeg.json`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JpegReport {
    /// Format tag, always [`JPEG_SCHEMA`].
    pub schema: String,
    /// Producing harness (`"bench_jpeg"`).
    pub name: String,
    /// `git describe` of the producing tree.
    pub git: String,
    /// Worker threads the run used.
    pub threads: usize,
    /// Whether the reduced `--small` grid was used.
    pub small: bool,
    /// `true` when the producing run dropped task events (see
    /// [`crate::QorReport::degraded`]).
    pub degraded: bool,
    /// Per-image results.
    pub images: Vec<JpegImage>,
}

impl JpegReport {
    /// Serialises the report as JSON.
    pub fn to_json(&self) -> String {
        scorpio_obs::json::to_string(self)
    }
}

/// A random block ranking in `[0, SIGNIFICANCE_CEILING)`, seeded so the
/// ablation is reproducible run to run.
pub fn random_significance(n_blocks: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n_blocks)
        .map(|_| {
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            u * jpeg::SIGNIFICANCE_CEILING * 0.999_999
        })
        .collect()
}

/// Encodes at one ratio with the given ranking and measures the point.
fn measure_point(
    img: &GrayImage,
    executor: &Executor,
    significance: &[f64],
    ratio: f64,
    full: &GrayImage,
    model: &EnergyModel,
) -> (JpegPoint, GrayImage) {
    let enc = jpeg::encode_with_significance(img, executor, significance, ratio);
    let recon = jpeg::decode(&enc.bytes).expect("own encode must decode");
    let roundtrip_ok = jpeg::verify_bitstream(&enc.bytes).unwrap_or(false);
    let point = JpegPoint {
        ratio,
        psnr_db: psnr_images(full, &recon).min(99.0),
        ssim: ssim(full, &recon),
        bits: enc.bits(),
        bits_per_pixel: enc.bits_per_pixel(),
        energy_j: model.energy(&enc.stats),
        accurate_blocks: enc.accurate_blocks() as u64,
        approx_blocks: enc.approx_blocks() as u64,
        roundtrip_ok,
    };
    (point, recon)
}

/// Runs the full scenario on one image: significance sweep, random
/// ablation, dominance verdict, adaptive run. Returns the result plus
/// the significance-sweep reconstructions (ratio, image) so callers can
/// write viewable `.pgm` artifacts.
///
/// # Panics
///
/// Panics if the significance analysis fails (framework errors — none
/// expected on real images).
pub fn run_image(
    name: &str,
    img: &GrayImage,
    executor: &Executor,
    engine: &ParallelAnalysis,
    radius: f64,
    target_psnr_db: f64,
    model: &EnergyModel,
) -> (JpegImage, Vec<(f64, GrayImage)>) {
    let _span = scorpio_obs::span("bench.jpeg.image");
    let significance =
        jpeg::analyze(img, radius, engine).expect("jpeg significance analysis failed");
    let n_blocks = significance.len();

    // The quality yardstick: the all-RealDCT (ratio 1.0) encode — the
    // curves then isolate the *approximation* loss from the ordinary
    // quantisation loss.
    let full_enc = jpeg::encode_with_significance(img, executor, &significance, 1.0);
    let full = jpeg::decode(&full_enc.bytes).expect("full encode must decode");

    let mut curve = Vec::new();
    let mut recons = Vec::new();
    for &ratio in &RATIOS {
        let (point, recon) = measure_point(img, executor, &significance, ratio, &full, model);
        curve.push(point);
        recons.push((ratio, recon));
    }

    let random = random_significance(n_blocks, ABLATION_SEED);
    let random_curve: Vec<JpegPoint> = RATIOS
        .iter()
        .map(|&ratio| measure_point(img, executor, &random, ratio, &full, model).0)
        .collect();

    // Weak dominance on PSNR at equal accurate-block budget (both
    // rankings make ceil(ratio·n) blocks accurate, so bitrates are
    // directly comparable). A hair of tolerance absorbs f64 metric
    // noise at the shared endpoints.
    let sig_dominates_random = curve
        .iter()
        .zip(&random_curve)
        .all(|(s, r)| s.psnr_db >= r.psnr_db - 1e-9);

    // Closed loop: find the cheapest ratio meeting the PSNR target.
    let mut controller = AdaptiveController::new(
        format!("jpeg-{name}"),
        Objective::Quality(QualityTarget::AtLeast(target_psnr_db)),
    );
    controller.seed_from_curve(
        &curve
            .iter()
            .map(|p| (p.ratio, p.psnr_db))
            .collect::<Vec<_>>(),
    );
    let mut last = None;
    for _ in 0..MAX_ADAPTIVE_STEPS {
        let enc = jpeg::encode_adaptive(img, executor, &significance, &mut controller);
        let recon = jpeg::decode(&enc.bytes).expect("adaptive encode must decode");
        let psnr = psnr_images(&full, &recon).min(99.0);
        last = Some((enc, psnr));
        controller.observe(psnr);
        if controller.converged() {
            break;
        }
    }
    let (enc, psnr) = last.expect("adaptive loop runs at least once");
    let adaptive = JpegAdaptive {
        target_psnr_db,
        final_ratio: controller.ratio(),
        psnr_db: psnr,
        energy_j: model.energy(&enc.stats),
        bits_per_pixel: enc.bits_per_pixel(),
        steps: controller.steps(),
        converged: controller.converged(),
        target_met: psnr >= target_psnr_db,
    };

    (
        JpegImage {
            name: name.to_owned(),
            width: img.width(),
            height: img.height(),
            blocks: n_blocks as u64,
            curve,
            random_curve,
            sig_dominates_random,
            adaptive,
        },
        recons,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpio_quality::value_noise;

    #[test]
    fn random_significance_is_seeded_and_bounded() {
        let a = random_significance(32, 7);
        let b = random_significance(32, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| (0.0..jpeg::SIGNIFICANCE_CEILING).contains(&s)));
        assert_ne!(a, random_significance(32, 8));
    }

    #[test]
    fn run_image_produces_a_consistent_report() {
        let img = value_noise(48, 40, 23);
        let executor = Executor::new(1);
        let engine = ParallelAnalysis::new(1);
        let model = EnergyModel::xeon_e5_2695v3();
        let (result, recons) =
            run_image("noise", &img, &executor, &engine, 8.0, 34.0, &model);
        assert_eq!(result.blocks, 6 * 5);
        assert_eq!(result.curve.len(), RATIOS.len());
        assert_eq!(result.random_curve.len(), RATIOS.len());
        assert_eq!(recons.len(), RATIOS.len());
        for (s, r) in result.curve.iter().zip(&result.random_curve) {
            assert!(s.roundtrip_ok && r.roundtrip_ok);
            assert_eq!(s.accurate_blocks, r.accurate_blocks, "equal budget");
            assert!(s.bits > 0);
        }
        // Ratio 1.0 point is the yardstick itself.
        assert_eq!(result.curve.last().unwrap().psnr_db, 99.0);
        // Energy grows with the accurate fraction.
        assert!(result.curve.first().unwrap().energy_j < result.curve.last().unwrap().energy_j);
        // PSNR is monotone (weakly) along the significance curve.
        for w in result.curve.windows(2) {
            assert!(
                w[1].psnr_db >= w[0].psnr_db - 0.5,
                "psnr fell: {} -> {}",
                w[0].psnr_db,
                w[1].psnr_db
            );
        }
        assert!(result.adaptive.steps > 0);
    }

    #[test]
    fn report_serialises_with_schema_tag() {
        let img = value_noise(24, 24, 3);
        let executor = Executor::new(1);
        let engine = ParallelAnalysis::new(1);
        let model = EnergyModel::xeon_e5_2695v3();
        let (result, _) = run_image("tiny", &img, &executor, &engine, 8.0, 30.0, &model);
        let report = JpegReport {
            schema: JPEG_SCHEMA.to_owned(),
            name: "bench_jpeg".to_owned(),
            git: "none".to_owned(),
            threads: 1,
            small: true,
            degraded: false,
            images: vec![result],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"scorpio-jpeg-v1\""));
        let parsed = scorpio_obs::json::parse(&json).expect("round-trip");
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some(JPEG_SCHEMA)
        );
        assert!(parsed.get("images").is_some());
    }
}
