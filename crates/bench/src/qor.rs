//! Quality-of-result (QoR) reports: the per-kernel quality-vs-ratio
//! curves the sweep harness writes to `BENCH_qor.json`, joining the
//! quality metrics from `scorpio-quality` with the runtime's achieved
//! ratio and repeated wall-time samples. `scorpio_diff` compares two of
//! these files point by point and gates on regressions.

use serde::Serialize;

/// Schema tag stamped into every report so `scorpio_diff` can tell QoR
/// reports and run manifests apart (and reject future format changes).
pub const QOR_SCHEMA: &str = "scorpio-qor-v1";

/// One measured point of a kernel's quality-vs-ratio curve.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QorPoint {
    /// The requested accurate-task ratio (the knob).
    pub ratio: f64,
    /// The measured quality at this ratio (in `metric` units).
    pub quality: f64,
    /// Modeled energy in Joules.
    pub energy_j: f64,
    /// The ratio the runtime actually achieved (forced significance-1
    /// tasks can push it above the request).
    pub achieved_ratio: f64,
    /// Tasks executed accurately.
    pub accurate: u64,
    /// Tasks executed with their approximate body.
    pub approximate: u64,
    /// Tasks dropped outright.
    pub dropped: u64,
    /// Wall-clock nanoseconds of each timed repetition (`--reps`),
    /// in measurement order — the raw samples `scorpio_diff` feeds its
    /// statistics.
    pub time_ns_samples: Vec<u64>,
}

/// One kernel's full curve.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QorKernel {
    /// Kernel name (e.g. `"sobel"`).
    pub name: String,
    /// Quality metric of the `quality` values (`"psnr_db"` or
    /// `"rel_error"`).
    pub metric: String,
    /// `true` when larger `quality` is better (PSNR), `false` when
    /// smaller is better (relative error). Spares downstream tools a
    /// hard-coded metric table.
    pub higher_is_better: bool,
    /// The measured points, in ascending ratio order.
    pub points: Vec<QorPoint>,
}

/// The whole report (`BENCH_qor.json`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QorReport {
    /// Format tag, always [`QOR_SCHEMA`].
    pub schema: String,
    /// Producing harness (e.g. `"fig7_sweep"`).
    pub name: String,
    /// `git describe` of the producing tree.
    pub git: String,
    /// Worker threads the sweep ran with.
    pub threads: usize,
    /// Timed repetitions per point.
    pub reps: usize,
    /// Whether the reduced `--small` workloads were used (reports from
    /// different workload sizes are not comparable).
    pub small: bool,
    /// `true` when the producing run dropped task events (ring/spill
    /// overflow, see `scorpio_obs::events_dropped`): the achieved-ratio
    /// and task-tally columns then come from a truncated timeline and
    /// may be biased. Consumers — `scorpio_diff`, and anything seeding
    /// a controller from these curves — must treat such curves as
    /// advisory, not ground truth.
    pub degraded: bool,
    /// Per-kernel curves.
    pub kernels: Vec<QorKernel>,
}

impl QorReport {
    /// Serialises the report as JSON.
    pub fn to_json(&self) -> String {
        scorpio_obs::json::to_string(self)
    }
}
