//! Ablation: what outward rounding costs — enclosure widths of the
//! production (outward-rounded) interval kernels vs the round-to-nearest
//! baseline, and whether the difference ever changes a significance
//! ranking.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin ablation_rounding
//! ```

use scorpio_interval::{nearest, Interval};
use scorpio_kernels::maclaurin;

fn main() {
    println!("=== ablation: outward rounding vs round-to-nearest ===\n");

    // Direct op-level width comparison over a chain of operations.
    println!("width inflation over an iterated chain x ← x·a + b (1000 steps):");
    for (a, b) in [(0.9999, 0.001), (1.0001, -0.0001)] {
        let (ia, ib) = (Interval::point(a), Interval::point(b));
        let mut outward = Interval::new(0.5, 0.5000001);
        let mut plain = outward;
        for _ in 0..1000 {
            outward = outward * ia + ib;
            plain = nearest::add(nearest::mul(plain, ia), ib);
        }
        println!(
            "  a={a:<7} b={b:<8}: outward width {:.3e}, nearest width {:.3e}, ratio {:.3}",
            outward.width(),
            plain.width(),
            outward.width() / plain.width().max(f64::MIN_POSITIVE)
        );
    }

    // Does rounding ever flip a significance ranking? Compare the
    // Maclaurin term ranking against a high-precision reference ranking
    // (widths computed analytically: w(xⁱ) = hiⁱ − loⁱ on a positive
    // box).
    println!("\nmaclaurin term ranking stability:");
    let x0 = 0.49;
    let report = maclaurin::analysis(x0, 8).expect("analysis");
    let measured: Vec<f64> = (1..8)
        .map(|i| report.significance_of(&format!("term{i}")).unwrap())
        .collect();
    let (lo, hi) = (x0 - 0.5, x0 + 0.5);
    let analytic: Vec<f64> = (1..8)
        .map(|i| hi.powi(i) - if i % 2 == 0 { 0.0 } else { lo.powi(i) })
        .collect();
    let mut flips = 0;
    for i in 0..measured.len() {
        for j in (i + 1)..measured.len() {
            if ((measured[i] - measured[j]) * (analytic[i] - analytic[j])) < 0.0 {
                flips += 1;
            }
        }
    }
    println!("  ranking inversions vs analytic widths: {flips} of {} pairs", 21);
    println!(
        "  → outward rounding inflates enclosures by ULP-scale amounts\n\
         (factor ≈ 1 + n·ε over n ops); it never flips a significance\n\
         ranking whose gaps exceed numerical noise, so soundness is free\n\
         for this analysis."
    );
}
