//! Figure 3: significance values of the Maclaurin series terms — the raw
//! graph with aggregation nodes (Fig. 3a) and the simplified graph after
//! Algorithm-1 step S4 (Fig. 3b), plus the S5 variance partition.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin fig3_maclaurin [--no-simplify]
//! ```

use scorpio_kernels::maclaurin;

fn main() {
    let simplify = !std::env::args().any(|a| a == "--no-simplify");
    let (x0, n) = (0.49, 5);
    let report = maclaurin::analysis(x0, n).expect("analysis");

    println!("=== Fig. 3: maclaurin(x ∈ {x0} ± 0.5, N = {n}) ===\n");
    println!("paper reports: term0 = 0, then 0.259 > 0.254 > 0.245 > 0.241\n");
    println!("{:<8} {:>12} {:>12}", "term", "measured", "paper");
    let paper = [0.0, 0.259, 0.254, 0.245, 0.241];
    for (i, paper_value) in paper.iter().enumerate().take(n) {
        let s = report
            .significance_of(&format!("term{i}"))
            .expect("registered term");
        println!("term{i:<4} {s:>12.4} {paper_value:>12.3}");
    }
    println!(
        "result   {:>12.4} {:>12.3}",
        report.significance_of("result").unwrap(),
        1.0
    );

    // Fig. 3a vs 3b.
    let graph = if simplify {
        println!("\n=== Fig. 3b: simplified DynDFG (S4 collapsed the res = res + term chain) ===\n");
        report.graph().simplified()
    } else {
        println!("\n=== Fig. 3a: raw DynDFG (aggregation nodes kept; pass nothing to simplify) ===\n");
        report.graph().clone()
    };
    println!("{}", graph.to_dot("maclaurin"));
    println!(
        "graph height: {} (raw: {})",
        graph.height(),
        report.graph().height()
    );

    // Step S5.
    let partition = graph.partition(1e-3);
    println!("\n=== findSgnfVariance (S5), δ = 1e-3 ===");
    for s in &partition.level_stats {
        println!(
            "  level {}: {} nodes, mean S {:.4}, variance {:.6}",
            s.level, s.count, s.mean, s.variance
        );
    }
    match partition.cut_level {
        Some(l) => println!(
            "→ cut at level {l}: restructure the code so each level-{l} node \
             is the output of one task (§3.2)"
        ),
        None => println!("→ no significance variance above δ: levels are uniform"),
    }

    // Contribution (iii), automated: the generated task skeleton.
    let plan = partition.task_plan();
    println!("\n=== generated task skeleton (fill in the bodies) ===\n");
    print!("{}", plan.to_rust_skeleton("maclaurin"));
}
