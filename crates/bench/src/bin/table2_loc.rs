//! Table 2: lines of code of the sequential and task-based versions of
//! each benchmark, plus the extra code for approximate functions (A) and
//! significance handling (S) — overhead reported as (A + S) / P, as in
//! the paper.
//!
//! The counts are extracted from this repository's kernel sources by
//! brace-matched function-extent analysis, so they regenerate whenever
//! the code changes.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin table2_loc
//! ```

use scorpio_bench::{approx_body_loc, fn_loc};

struct KernelSource {
    name: &'static str,
    domain: &'static str,
    source: &'static str,
    /// Functions making up the sequential version.
    sequential: &'static [&'static str],
    /// Functions making up the parallel (task-based) version.
    parallel: &'static [&'static str],
    /// Function whose approximate closures count towards A.
    tasked_fn: &'static str,
    /// Functions implementing significance assignment (S).
    significance: &'static [&'static str],
}

const KERNELS: &[KernelSource] = &[
    KernelSource {
        name: "Sobel Filter",
        domain: "Image Filter",
        source: include_str!("../../../kernels/src/sobel.rs"),
        sequential: &["reference", "part_contribution", "combine"],
        parallel: &["tasked", "part_contribution", "combine"],
        tasked_fn: "tasked",
        significance: &["significance"],
    },
    KernelSource {
        name: "DCT",
        domain: "Multimedia",
        source: include_str!("../../../kernels/src/dct/mod.rs"),
        sequential: &[
            "reference",
            "forward_block",
            "forward_coefficient",
            "quant_dequant",
            "inverse_block",
        ],
        parallel: &[
            "tasked",
            "forward_coefficient",
            "quant_dequant",
            "inverse_block",
        ],
        tasked_fn: "tasked",
        significance: &["diagonal_significance"],
    },
    KernelSource {
        name: "Fisheye",
        domain: "Multimedia",
        source: include_str!("../../../kernels/src/fisheye.rs"),
        sequential: &["reference", "inverse_mapping", "bicubic", "catmull_rom"],
        parallel: &[
            "tasked_with_blocks",
            "inverse_mapping",
            "bicubic",
            "catmull_rom",
            "bilinear",
        ],
        tasked_fn: "tasked_with_blocks",
        significance: &["block_significance"],
    },
    KernelSource {
        name: "N-Body",
        domain: "Physics",
        source: include_str!("../../../kernels/src/nbody.rs"),
        sequential: &[
            "reference",
            "forces_all_pairs",
            "verlet_step",
            "lj_force",
            "initial_state",
        ],
        parallel: &["tasked", "lj_force", "initial_state", "region_of", "region_center"],
        tasked_fn: "tasked",
        significance: &["pair_significance"],
    },
    KernelSource {
        name: "BlackScholes",
        domain: "Finance",
        source: include_str!("../../../kernels/src/blackscholes.rs"),
        sequential: &["reference", "price", "generate_options"],
        parallel: &["tasked", "price", "generate_options"],
        tasked_fn: "tasked",
        significance: &[],
    },
];

fn sum_fns(source: &str, names: &[&str]) -> usize {
    names
        .iter()
        .map(|n| fn_loc(source, n).unwrap_or_else(|| panic!("function {n} not found")))
        .sum()
}

fn main() {
    println!("=== Table 2: lines of code per benchmark version ===\n");
    println!(
        "{:<14} {:<13} {:>11} {:>13} {:>10} {:>7} {:>12}",
        "Benchmark", "Domain", "Sequential", "Parallel (P)", "Approx (A)", "Sig (S)", "(A+S)/P"
    );
    for k in KERNELS {
        let sequential = sum_fns(k.source, k.sequential);
        let parallel = sum_fns(k.source, k.parallel);
        let approx = approx_body_loc(k.source, k.tasked_fn).unwrap_or(0);
        let sig: usize = k
            .significance
            .iter()
            .map(|n| fn_loc(k.source, n).unwrap_or(0))
            .sum();
        let overhead = (approx + sig) as f64 / parallel as f64 * 100.0;
        println!(
            "{:<14} {:<13} {:>11} {:>13} {:>10} {:>7} {:>11.1}%",
            k.name, k.domain, sequential, parallel, approx, sig, overhead
        );
    }
    println!(
        "\npaper (C++/OpenMP): Sobel 20.7%, DCT ≈0%, Fisheye 19%, N-Body 15.7%,\n\
         BlackScholes 31.5% — same order of magnitude: the programming-model\n\
         overhead of approximation is a modest fraction of the parallel code."
    );
}
