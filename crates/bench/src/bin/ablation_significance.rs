//! Ablation: Eq. 11's interval product `w([u]·∇[u][y])` vs the
//! derivative-only alternative `w(∇[u][y])` as a ranking signal.
//!
//! The paper notes the product is "a worst case scenario, that might
//! introduce a considerable overestimation"; this harness quantifies how
//! the two definitions rank the Maclaurin terms, the DCT coefficients
//! and the BlackScholes blocks.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin ablation_significance
//! ```

use scorpio_core::Report;
use scorpio_kernels::{blackscholes, dct, maclaurin};

/// Kendall-style pair agreement of two rankings (1 = identical order).
fn rank_agreement(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1;
            if ((a[i] - a[j]) * (b[i] - b[j])) >= 0.0 {
                agree += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        agree as f64 / total as f64
    }
}

fn extract(report: &Report, names: &[String]) -> (Vec<f64>, Vec<f64>) {
    let mut product = Vec::new();
    let mut derivative = Vec::new();
    for n in names {
        let v = report.var(n).expect("registered");
        product.push(v.significance_raw);
        derivative.push(v.derivative.width() + v.derivative.mag());
    }
    (product, derivative)
}

fn main() {
    println!("=== ablation: Eq. 11 product vs derivative-only ranking ===\n");

    // Maclaurin terms.
    let report = maclaurin::analysis(0.49, 8).expect("analysis");
    let names: Vec<String> = (0..8).map(|i| format!("term{i}")).collect();
    let (product, derivative) = extract(&report, &names);
    println!("maclaurin terms:");
    println!("  {:<8} {:>14} {:>18}", "term", "Eq.11 product", "derivative-only");
    for (i, n) in names.iter().enumerate() {
        println!("  {n:<8} {:>14.4} {:>18.4}", product[i], derivative[i]);
    }
    println!(
        "  ranking agreement: {:.0}%",
        rank_agreement(&product, &derivative) * 100.0
    );
    println!(
        "  note: all terms have identical ∂y/∂term = 1, so the derivative-only\n\
         ranking is FLAT — only the product exposes Fig. 3's term ordering.\n"
    );

    // DCT coefficients.
    let report = dct::analysis_default().expect("analysis");
    let names: Vec<String> = (0..8)
        .flat_map(|v| (0..8).map(move |u| format!("c{v}_{u}")))
        .collect();
    let (product, derivative) = extract(&report, &names);
    println!("dct coefficients (64):");
    println!(
        "  ranking agreement product vs derivative-only: {:.0}%",
        rank_agreement(&product, &derivative) * 100.0
    );

    // BlackScholes blocks.
    let report = blackscholes::analysis().expect("analysis");
    let names = ["A", "B", "C1", "C2", "D"].map(String::from).to_vec();
    let (product, derivative) = extract(&report, &names);
    println!("\nblackscholes blocks:");
    println!("  {:<4} {:>14} {:>18}", "blk", "Eq.11 product", "derivative-only");
    for (i, n) in names.iter().enumerate() {
        println!("  {n:<4} {:>14.4} {:>18.4}", product[i], derivative[i]);
    }
    println!(
        "  ranking agreement: {:.0}%",
        rank_agreement(&product, &derivative) * 100.0
    );

    println!(
        "\n→ the product (Eq. 11) is the more informative signal whenever\n\
         derivatives are uniform; where both agree, the cheaper derivative\n\
         ranking would suffice — the paper's design choice is justified."
    );
}
