//! §6 future work: cross-check of the interval-AD significances against
//! the Monte-Carlo estimator ("combining the robustness of algorithmic
//! differentiation to Monte Carlo-based methodologies").
//!
//! The MC estimate of `w(u·∇u y)` converges from below to a value
//! enclosed by the interval result; both must agree on rankings.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin mc_crosscheck -- [--threads N]
//! ```
//!
//! `--threads N` fans the Monte-Carlo samples over N workers (default:
//! serial); the estimates are bit-identical at every thread count.
//! `--trace <path>` writes a Chrome trace and a `RUN_mc_crosscheck.json`
//! run manifest.

use scorpio_bench::{finish_trace, out_dir_arg, threads_arg, trace_arg};
use scorpio_core::mc;
use scorpio_kernels::maclaurin;

fn main() {
    let threads = threads_arg().unwrap_or(1);
    let trace_path = trace_arg();
    let session = trace_path
        .as_ref()
        .map(|_| scorpio_obs::RunSession::start("mc_crosscheck"));
    println!(
        "=== Monte-Carlo vs interval-AD significance (maclaurin, N = 6, {threads} thread{}) ===\n",
        if threads == 1 { "" } else { "s" }
    );
    let (x0, n) = (0.49, 6i32);
    let ia = {
        let _span = scorpio_obs::span("interval_analysis");
        maclaurin::analysis(x0, n as usize).expect("interval analysis")
    };

    let closure = move |ctx: &mc::McCtx<'_>| {
        let x = ctx.input("x", x0 - 0.5, x0 + 0.5);
        let mut result = ctx.constant(0.0);
        for i in 0..n {
            let term = x.powi(i);
            ctx.intermediate(&term, format!("term{i}"));
            result = result + term;
        }
        ctx.output(&result, "result");
        Ok(())
    };

    println!("{:<8} {:>12} | MC estimate by sample count", "term", "interval");
    print!("{:<8} {:>12} |", "", "");
    let sample_counts = [16usize, 64, 256, 1024, 4096];
    for s in sample_counts {
        print!(" {s:>9}");
    }
    println!();

    let mc_reports: Vec<mc::McReport> = {
        let _span = scorpio_obs::span("mc_estimation");
        sample_counts
            .iter()
            .map(|&s| mc::estimate_threaded(s, 20_24, threads, closure).expect("mc"))
            .collect()
    };

    let mut converged_below = true;
    for i in 0..n {
        let name = format!("term{i}");
        let ia_raw = ia.var(&name).unwrap().significance_raw;
        print!("{name:<8} {ia_raw:>12.4} |");
        for report in &mc_reports {
            let v = report
                .vars
                .iter()
                .find(|v| v.name == name)
                .unwrap()
                .significance_raw;
            print!(" {v:>9.4}");
            if v > ia_raw + 1e-9 {
                converged_below = false;
            }
        }
        println!();
    }

    println!(
        "\nMC estimates enclosed by the interval result: {}",
        if converged_below { "yes" } else { "NO (bug!)" }
    );

    // Ranking agreement at the largest sample count.
    let final_mc = mc_reports.last().unwrap();
    let mut agree = true;
    for i in 1..(n - 1) {
        let a = ia
            .significance_of(&format!("term{i}"))
            .unwrap();
        let b = ia
            .significance_of(&format!("term{}", i + 1))
            .unwrap();
        let ma = final_mc.significance_of(&format!("term{i}")).unwrap();
        let mb = final_mc
            .significance_of(&format!("term{}", i + 1))
            .unwrap();
        if (a > b) != (ma > mb) {
            agree = false;
        }
    }
    println!("term rankings agree at 4096 samples: {}", if agree { "yes" } else { "no" });
    println!(
        "\n→ sampling reproduces the interval ranking while tolerating\n\
         data-dependent control flow; the interval result stays the sound\n\
         upper envelope. A hybrid (MC for branchy code, IA elsewhere) is\n\
         exactly the future work the paper sketches."
    );

    if let Some(session) = session {
        let config = vec![("threads".to_owned(), threads.to_string())];
        finish_trace(session, &out_dir_arg(), threads, &config, trace_path.as_deref());
    }
}
