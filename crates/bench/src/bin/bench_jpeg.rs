//! End-to-end approximate JPEG codec scenario: bitrate vs quality vs
//! energy on real images.
//!
//! For each checked-in PGM under `assets/` this harness analyses
//! per-block significance (all 8×8 blocks share one tape shape — record
//! once, replay per block), sweeps the accurate-block ratio over the
//! grid with the significance ranking and with a seeded random ranking
//! (the ablation: same accurate-block budget, so PSNR at equal bitrate
//! is directly comparable), runs the closed-loop adaptive controller
//! against a PSNR target, and verifies every container bit-exactly.
//! Results land in `BENCH_jpeg.json` (`scorpio-jpeg-v1`), gated by
//! `scorpio_diff` against `baselines/BENCH_jpeg_small.json`; the
//! ratio-0 and ratio-1 reconstructions are also written as viewable
//! `.pgm` files next to the report.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin bench_jpeg \
//!     [--small] [--threads N] [--out-dir DIR] [--image NAME] \
//!     [--target PSNR] [--trace trace.json]
//! ```
//!
//! `--small` crops each image to its top-left 32×32 tile so the CI gate
//! stays fast; `--image NAME` restricts the run to one asset;
//! `--target PSNR` overrides the default 50 dB adaptive target.

use scorpio_bench::{
    arg_value, finish_trace, jpeg::run_image, out_dir_arg, threads_arg, trace_arg, JpegReport,
    JPEG_SCHEMA,
};
use scorpio_core::ParallelAnalysis;
use scorpio_quality::GrayImage;
use scorpio_runtime::{EnergyModel, Executor};
use std::io::BufReader;
use std::path::Path;

/// The checked-in test images, relative to the repository root.
const ASSETS: [(&str, &str); 2] = [
    ("scene", "assets/scene.pgm"),
    ("texture", "assets/texture.pgm"),
];

/// Significance-analysis perturbation radius (matches
/// `jpeg::EncodeOptions::default()`).
const RADIUS: f64 = 8.0;

/// Default adaptive PSNR floor (dB). Above the all-BinDCT quality of
/// the checked-in images, so the controller genuinely has to search for
/// a partial ratio rather than settling at the floor.
const DEFAULT_TARGET: f64 = 50.0;

/// Side of the `--small` crop, a multiple of the 8-pixel block.
const SMALL_SIDE: usize = 32;

fn load_image(path: &str) -> GrayImage {
    let file = std::fs::File::open(path)
        .unwrap_or_else(|e| panic!("open {path}: {e} (run from the repository root)"));
    GrayImage::read_pgm(BufReader::new(file)).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

fn crop(img: &GrayImage, side: usize) -> GrayImage {
    let w = img.width().min(side);
    let h = img.height().min(side);
    GrayImage::from_fn(w, h, |x, y| img.get(x, y))
}

fn write_recon(out_dir: &Path, name: &str, ratio: f64, img: &GrayImage) {
    let file_name = format!("{name}_r{:03}.pgm", (ratio * 100.0).round() as u32);
    let path = out_dir.join(file_name);
    let file = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("create {}: {e}", path.display()));
    img.write_pgm(std::io::BufWriter::new(file))
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let out_dir = out_dir_arg();
    let only = arg_value("--image");
    let target: f64 = arg_value("--target").map_or(DEFAULT_TARGET, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("invalid --target value {v:?}"))
    });
    let trace_path = trace_arg();
    let session = scorpio_obs::RunSession::start("bench_jpeg");
    let threads = threads_arg().unwrap_or(1);
    let executor = Executor::new(threads);
    let engine = ParallelAnalysis::new(threads);
    let model = EnergyModel::xeon_e5_2695v3();

    if let Some(o) = only.as_deref() {
        let known: Vec<&str> = ASSETS.iter().map(|(n, _)| *n).collect();
        assert!(known.contains(&o), "unknown --image {o:?} (have: {known:?})");
    }
    std::fs::create_dir_all(&out_dir).expect("create --out-dir");

    let mut images = Vec::new();
    for (name, path) in ASSETS {
        if only.as_deref().is_some_and(|o| o != name) {
            continue;
        }
        let mut img = load_image(path);
        if small {
            img = crop(&img, SMALL_SIDE);
        }
        let (result, recons) = run_image(name, &img, &executor, &engine, RADIUS, target, &model);
        println!(
            "\n=== {name} ({}x{}, {} blocks) ===",
            result.width, result.height, result.blocks
        );
        println!("ratio   psnr_db    ssim      bpp  energy_j  rand_psnr  roundtrip");
        for (s, r) in result.curve.iter().zip(&result.random_curve) {
            println!(
                "{:5.2}  {:8.2}  {:.4}  {:7.3}  {:8.4}  {:9.2}  {}",
                s.ratio,
                s.psnr_db,
                s.ssim,
                s.bits_per_pixel,
                s.energy_j,
                r.psnr_db,
                if s.roundtrip_ok && r.roundtrip_ok { "ok" } else { "FAIL" }
            );
        }
        println!(
            "significance dominates random: {}",
            result.sig_dominates_random
        );
        let a = &result.adaptive;
        println!(
            "adaptive: target {:.1} dB -> ratio {:.3}, {:.2} dB, {:.4} J, {:.3} bpp, {} steps, converged: {}, met: {}",
            a.target_psnr_db, a.final_ratio, a.psnr_db, a.energy_j, a.bits_per_pixel,
            a.steps, a.converged, a.target_met
        );
        for (ratio, recon) in &recons {
            if *ratio == 0.0 || *ratio == 1.0 {
                write_recon(&out_dir, name, *ratio, recon);
            }
        }
        images.push(result);
    }

    let degraded = scorpio_obs::events_dropped() > 0;
    if degraded {
        eprintln!(
            "warning: {} task events were dropped — marking report degraded",
            scorpio_obs::events_dropped()
        );
    }
    let report = JpegReport {
        schema: JPEG_SCHEMA.to_owned(),
        name: "bench_jpeg".to_owned(),
        git: scorpio_obs::git_describe(),
        threads: executor.threads(),
        small,
        degraded,
        images,
    };
    let path = out_dir.join("BENCH_jpeg.json");
    std::fs::write(&path, report.to_json()).expect("write BENCH_jpeg.json");
    println!(
        "\nwrote {} ({} images; ratio-0/ratio-1 reconstructions alongside)",
        path.display(),
        report.images.len()
    );

    let mut config = vec![
        ("small".to_owned(), small.to_string()),
        ("threads".to_owned(), executor.threads().to_string()),
        ("target".to_owned(), target.to_string()),
    ];
    if let Some(i) = only {
        config.push(("image".to_owned(), i));
    }
    finish_trace(
        session,
        &out_dir,
        executor.threads(),
        &config,
        trace_path.as_deref(),
    );
}
