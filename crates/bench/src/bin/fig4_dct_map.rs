//! Figure 4: the 8×8 DCT coefficient significance map — "the top left
//! corner has the highest value and drops in a wave-like pattern towards
//! the opposite corner", matching image-compression expert wisdom.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin fig4_dct_map
//! ```

use scorpio_bench::{heat_map, matrix_table};
use scorpio_kernels::dct;

fn main() {
    println!("=== Fig. 4: DCT coefficient significances (8×8 block pipeline) ===\n");
    println!(
        "analysis: forward DCT → quantisation surrogate → IDCT → clip,\n\
         inputs profiled on a natural-image-like block ± 8 grey levels\n"
    );
    let report = dct::analysis_default().expect("analysis");
    let map = dct::coefficient_map(&report);
    let rows: Vec<Vec<f64>> = map.iter().map(|r| r.to_vec()).collect();

    println!("significance values (row = v, col = u):");
    print!("{}", matrix_table(&rows, 4));

    println!("\nheat map (darker = more significant):");
    print!("{}", heat_map(&rows));

    // The zig-zag reading the paper highlights.
    println!("\nmean significance per zig-zag diagonal (u + v = d):");
    for d in 0..dct::DIAGONALS {
        let cells: Vec<f64> = (0..dct::BLOCK)
            .flat_map(|v| (0..dct::BLOCK).map(move |u| (u, v)))
            .filter(|&(u, v)| u + v == d)
            .map(|(u, v)| map[v][u])
            .collect();
        let mean = cells.iter().sum::<f64>() / cells.len() as f64;
        let bar = "#".repeat((mean * 400.0).round() as usize);
        println!("  d = {d:>2}: {mean:>8.4}  {bar}");
    }
    println!(
        "\n→ the diagonal decay justifies the 15 diagonal tasks with\n\
         monotonically decreasing significance used by the tasked DCT."
    );
}
