//! Analysis-as-a-service daemon: serves significance-analysis requests
//! over newline-delimited JSON TCP until told to shut down.
//!
//! ```text
//! scorpio_serve [--addr 127.0.0.1:7070] [--workers N] [--cache-capacity N]
//!               [--out-dir DIR] [--no-manifest] [--no-obs] [--obs-detail]
//!               [--metrics-addr 127.0.0.1:9090]
//! ```
//!
//! The server keeps a shape-keyed cache of compiled analysis traces
//! shared across its worker pool, so repeated traffic from the same
//! kernel shape replays without re-recording (see
//! `docs/architecture.md`, "The serve layer"). On `{"cmd":"shutdown"}`
//! it writes `RUN_serve.json` (per-kernel latency histograms, task
//! events, cache counters) into `--out-dir` and prints a lifetime
//! summary.
//!
//! Drive it with `scorpio_load` (mixed-kernel load + `BENCH_serve.json`
//! ablation) or any line client:
//!
//! ```text
//! {"id":1,"kernel":"maclaurin","n":12,"ratio":0.5,"items":[0.3,0.4]}
//! ```
//!
//! The server is live-observable while it runs: `{"cmd":"metrics"}`
//! returns the Prometheus exposition (also served over HTTP at
//! `--metrics-addr` when given), `{"cmd":"window"}` the per-kernel
//! sliding-window SLO telemetry, `{"cmd":"exemplars"}` the
//! tail-retained slow/error span trees. Watch a running server with
//! `scorpio_top --addr <addr>` / `scorpio_trace --addr <addr>`.
//! `--no-obs` disables span/event tracing (the `bench_obs` ablation
//! baseline); windows and metrics stay on either way. `--obs-detail`
//! additionally records per-item interior spans (`replay`, `reverse`,
//! `significance`, lane sweeps) in exemplar trees, at extra per-request
//! cost.

use scorpio_bench::{arg_value, flag_present, out_dir_arg};
use scorpio_serve::kernels::KERNEL_NAMES;
use scorpio_serve::{Server, ServerConfig};

fn main() -> std::io::Result<()> {
    let config = ServerConfig {
        addr: arg_value("--addr").unwrap_or_else(|| "127.0.0.1:7070".to_string()),
        workers: arg_value("--workers")
            .map(|v| v.parse().expect("--workers must be a positive integer"))
            .unwrap_or(2),
        cache_capacity: arg_value("--cache-capacity")
            .map(|v| v.parse().expect("--cache-capacity must be a positive integer"))
            .unwrap_or(64),
        manifest: (!flag_present("--no-manifest")).then(|| "serve".to_string()),
        out_dir: out_dir_arg(),
        obs: !flag_present("--no-obs"),
        obs_detail: flag_present("--obs-detail"),
        metrics_addr: arg_value("--metrics-addr"),
    };
    assert!(config.workers > 0, "--workers must be at least 1");
    assert!(config.cache_capacity > 0, "--cache-capacity must be at least 1");

    let manifest_note = match &config.manifest {
        Some(name) => format!("RUN_{name}.json -> {}", config.out_dir.display()),
        None => "manifest disabled".to_string(),
    };
    let workers = config.workers;
    let cache_capacity = config.cache_capacity;
    let server = Server::bind(config)?;
    println!(
        "scorpio_serve listening on {} ({} workers, cache capacity {}, {})",
        server.local_addr()?,
        workers,
        cache_capacity,
        manifest_note,
    );
    if let Some(metrics_addr) = server.metrics_local_addr() {
        println!("metrics sidecar (Prometheus text exposition) on http://{metrics_addr}/metrics");
    }

    let summary = server.run()?;
    println!(
        "served {} requests ({} errors); cache hits {} / misses {} ({:.1}% hit rate), {} evictions",
        summary.requests,
        summary.errors,
        summary.cache.hits,
        summary.cache.misses,
        summary.cache.hit_rate() * 100.0,
        summary.cache.evictions,
    );
    println!(
        "replay totals: {} replays, {} records, {} fallbacks, {} lane blocks",
        summary.replay.replays,
        summary.replay.records,
        summary.replay.fallbacks,
        summary.replay.lane_blocks,
    );
    for (kernel, n) in KERNEL_NAMES.iter().zip(summary.kernel_requests) {
        if n > 0 {
            println!("  {kernel}: {n} requests");
        }
    }
    Ok(())
}
