//! Mixed-kernel load generator and cold/warm-cache ablation for
//! `scorpio_serve`, writing `BENCH_serve.json`.
//!
//! ```text
//! scorpio_load [--addr HOST:PORT]          # default: spawn an in-process server
//!              [--connections N] [--requests N] [--batch N] [--seed N]
//!              [--ratios R1,R2,...] [--cold-reps N] [--warm-reps N]
//!              [--mode closed|open] [--rps N]
//!              [--workers N] [--cache-capacity N] [--out-dir DIR]
//!              [--smoke]
//! ```
//!
//! Three phases, all driven by a deterministic SplitMix64 stream:
//!
//! 1. **Cold ablation** — per kernel, `--cold-reps` single-item
//!    requests each preceded by `cache_clear`, so every one pays the
//!    full record-compile cost.
//! 2. **Warm ablation** — per kernel, `--warm-reps` single-item
//!    requests against the populated cache (every reply must say
//!    `cached: true`); the cold/warm ratio is the record-vs-replay
//!    speedup as seen over the wire.
//! 3. **Steady state** — `--connections` client threads send
//!    `--requests` mixed-kernel batch requests (closed loop, or open
//!    loop paced at `--rps`); the cache-counter delta gives the
//!    steady-state hit rate.
//!
//! `--smoke` instead sends one request per kernel plus a malformed
//! line and an unknown kernel (both must produce error replies without
//! killing the server), then checks the live-observability surface —
//! the `metrics` verb must render valid Prometheus exposition, every
//! kernel's sliding window must have seen the traffic, and a
//! client-supplied trace id must round-trip into the exemplar dump as
//! a span tree — and exits non-zero on any failure. This is what the
//! repo's verify workflow runs.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::thread;
use std::time::{Duration, Instant};

use scorpio_bench::{arg_value, flag_present, out_dir_arg};
use scorpio_core::audit::SplitMix64;
use scorpio_obs::json::{self, Value};
use scorpio_serve::kernels::KERNEL_NAMES;
use scorpio_serve::{Client, Server, ServerConfig, ServerSummary};
use serde::Serialize;

/// Fixed structural parameters: one shape per kernel keeps the
/// ablation honest (the cache holds exactly five traces).
const FISHEYE_DIM: usize = 64;
const MACLAURIN_N: usize = 12;
const DCT_RADIUS: f64 = 1.0;

#[derive(Serialize)]
struct LatencySummary {
    reps: usize,
    mean_us: f64,
    p50_us: f64,
    p90_us: f64,
    p99_us: f64,
}

/// Cold/warm ablation for one kernel. *Wire* latency is what the
/// client observes (includes loopback + thread-handoff overhead, which
/// the cache cannot help); *service* time is the server-side
/// `server_ns` for the same requests — record+compile vs replay, the
/// work the cache actually removes. The headline speedup is the
/// service-time p50 ratio.
#[derive(Serialize)]
struct KernelAblation {
    kernel: &'static str,
    cold_wire: LatencySummary,
    warm_wire: LatencySummary,
    cold_service: LatencySummary,
    warm_service: LatencySummary,
    warm_vs_cold_speedup: f64,
    warm_vs_cold_wire_speedup: f64,
}

#[derive(Serialize)]
struct SteadyKernel {
    kernel: &'static str,
    requests: u64,
    cached_fraction: f64,
}

#[derive(Serialize)]
struct SteadySummary {
    requests: usize,
    batch: usize,
    connections: usize,
    mode: String,
    seconds: f64,
    requests_per_sec: f64,
    items_per_sec: f64,
    latency: LatencySummary,
    service: LatencySummary,
    cache_hit_rate: f64,
    per_kernel: Vec<SteadyKernel>,
}

#[derive(Serialize)]
struct ServerSection {
    workers: u64,
    requests: u64,
    errors: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_insertions: u64,
    cache_evictions: u64,
    cache_len: u64,
    cache_capacity: u64,
    replays: u64,
    records: u64,
    fallbacks: u64,
    lane_blocks: u64,
}

#[derive(Serialize)]
struct BenchReport {
    schema: &'static str,
    seed: u64,
    ratios: Vec<f64>,
    batch: usize,
    connections: usize,
    cold_reps: usize,
    warm_reps: usize,
    in_process_server: bool,
    server_workers: usize,
    available_parallelism: usize,
    kernels: Vec<KernelAblation>,
    steady: SteadySummary,
    server: ServerSection,
}

/// Builds one deterministic analyze-request line for kernel
/// `KERNEL_NAMES[kernel]` with `batch` items.
fn request_line(id: u64, kernel: usize, batch: usize, ratio: f64, rng: &mut SplitMix64) -> String {
    let mut line = format!(
        r#"{{"id":{id},"kernel":"{}","ratio":{ratio}"#,
        KERNEL_NAMES[kernel]
    );
    match KERNEL_NAMES[kernel] {
        "fisheye" => {
            line.push_str(&format!(r#","width":{FISHEYE_DIM},"height":{FISHEYE_DIM}"#));
        }
        "maclaurin" => line.push_str(&format!(r#","n":{MACLAURIN_N}"#)),
        "dct" => line.push_str(&format!(r#","radius":{DCT_RADIUS}"#)),
        _ => {}
    }
    line.push_str(r#","items":["#);
    for i in 0..batch {
        if i > 0 {
            line.push(',');
        }
        match KERNEL_NAMES[kernel] {
            "fisheye" => {
                let u = rng.next_f64() * FISHEYE_DIM as f64;
                let v = rng.next_f64() * FISHEYE_DIM as f64;
                line.push_str(&format!(r#"{{"u":{u},"v":{v}}}"#));
            }
            "blackscholes" => {
                let spot = 80.0 + 40.0 * rng.next_f64();
                let strike = 80.0 + 40.0 * rng.next_f64();
                let rate = 0.01 + 0.04 * rng.next_f64();
                let vol = 0.1 + 0.4 * rng.next_f64();
                let time = 0.25 + 1.75 * rng.next_f64();
                line.push_str(&format!(
                    r#"{{"spot":{spot},"strike":{strike},"rate":{rate},"volatility":{vol},"time":{time}}}"#
                ));
            }
            "dct" => {
                line.push('[');
                for p in 0..64 {
                    if p > 0 {
                        line.push(',');
                    }
                    line.push_str(&format!("{:.3}", rng.next_f64() * 255.0));
                }
                line.push(']');
            }
            "maclaurin" => line.push_str(&format!("{}", rng.next_f64() * 0.9 - 0.45)),
            "nbody" => {
                let r0 = 0.9 + 1.1 * rng.next_f64();
                let radius = 0.01 + 0.09 * rng.next_f64();
                line.push_str(&format!(r#"{{"r0":{r0},"radius":{radius}}}"#));
            }
            _ => unreachable!("unserved kernel"),
        }
    }
    line.push_str("]}");
    line
}

fn is_ok(v: &Value) -> bool {
    matches!(v.get("ok"), Some(Value::Bool(true)))
}

fn is_cached(v: &Value) -> bool {
    matches!(v.get("cached"), Some(Value::Bool(true)))
}

/// Nearest-rank percentile over an unsorted latency sample.
fn summarize(samples_us: &[f64]) -> LatencySummary {
    assert!(!samples_us.is_empty(), "latency sample must be non-empty");
    let mut sorted = samples_us.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pick = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
    LatencySummary {
        reps: sorted.len(),
        mean_us: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50_us: pick(0.50),
        p90_us: pick(0.90),
        p99_us: pick(0.99),
    }
}

/// Reads `section.key` (or a top-level `key`) out of a stats response.
fn stat_u64(v: &Value, section: Option<&str>, key: &str) -> u64 {
    let obj = match section {
        Some(s) => v.get(s).unwrap_or(&Value::Null),
        None => v,
    };
    obj.get(key).and_then(Value::as_f64).unwrap_or(0.0) as u64
}

/// One timed request, returning the reply, the client-observed wire
/// latency and the server-reported service time, both in µs. Panics
/// (failing the bench loudly) on transport errors or error replies —
/// load results against a half-dead server would be meaningless.
fn timed_request(client: &mut Client, line: &str) -> (Value, f64, f64) {
    let start = Instant::now();
    let reply = client.request(line).expect("serve request failed");
    let wire_us = start.elapsed().as_secs_f64() * 1e6;
    assert!(
        is_ok(&reply),
        "server returned an error reply: {}",
        reply.get("error").and_then(Value::as_str).unwrap_or("?")
    );
    let service_us = reply.get("server_ns").and_then(Value::as_f64).unwrap_or(0.0) / 1e3;
    (reply, wire_us, service_us)
}

/// Spawns an in-process server on an ephemeral port, returning its
/// address and the `run()` thread.
fn spawn_server(
    workers: usize,
    cache_capacity: usize,
    out_dir: std::path::PathBuf,
) -> (SocketAddr, thread::JoinHandle<std::io::Result<ServerSummary>>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        cache_capacity,
        manifest: Some("serve".to_string()),
        out_dir,
        ..ServerConfig::default()
    })
    .expect("bind in-process server");
    let addr = server.local_addr().expect("server local_addr");
    (addr, thread::spawn(move || server.run()))
}

/// One request per kernel, malformed-line and unknown-kernel error
/// probes, then a stats check — the verify-workflow smoke.
fn run_smoke(addr: &str, ratio: f64, seed: u64) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut rng = SplitMix64::new(seed);
    for (k, kernel) in KERNEL_NAMES.iter().enumerate() {
        let line = request_line(1 + k as u64, k, 2, ratio, &mut rng);
        let reply = client.request(&line).map_err(|e| format!("{kernel}: {e}"))?;
        if !is_ok(&reply) {
            return Err(format!(
                "{kernel}: error reply: {}",
                reply.get("error").and_then(Value::as_str).unwrap_or("?")
            ));
        }
        let reports = reply.get("reports").and_then(Value::as_arr).map_or(0, <[Value]>::len);
        let tasks = reply.get("tasks").and_then(Value::as_arr).map_or(0, <[Value]>::len);
        if reports != 2 || tasks != 2 {
            return Err(format!("{kernel}: expected 2 reports + 2 tasks, got {reports} + {tasks}"));
        }
        println!("smoke {kernel}: ok ({reports} reports)");
    }
    // Both error paths must answer on the same connection, and the
    // server must keep serving afterwards.
    let bad = client
        .request(r#"{"kernel": oops"#)
        .map_err(|e| format!("malformed probe: {e}"))?;
    if is_ok(&bad) {
        return Err("malformed request was not rejected".to_string());
    }
    let unknown = client
        .request(r#"{"id":9,"kernel":"warp","items":[1]}"#)
        .map_err(|e| format!("unknown-kernel probe: {e}"))?;
    let msg = unknown.get("error").and_then(Value::as_str).unwrap_or("");
    if is_ok(&unknown) || !msg.contains("unknown kernel") {
        return Err(format!("unknown kernel was not rejected: {msg:?}"));
    }
    let stats = client.stats().map_err(|e| format!("stats after errors: {e}"))?;
    if !is_ok(&stats) || stat_u64(&stats, None, "errors") < 2 {
        return Err("stats did not record the two error probes".to_string());
    }
    println!(
        "smoke errors: ok (malformed + unknown kernel rejected, server still serving, {} requests total)",
        stat_u64(&stats, None, "requests")
    );

    // Live-observability surface, on the same connection.
    let body = client.metrics().map_err(|e| format!("metrics verb: {e}"))?;
    let samples = scorpio_obs::expose::validate_exposition(&body)
        .map_err(|e| format!("metrics verb returned invalid exposition: {e}"))?;
    println!("smoke metrics: ok ({samples} samples of valid Prometheus exposition)");

    let windows = client.window().map_err(|e| format!("window verb: {e}"))?;
    let empty = Vec::new();
    let kernels = windows.get("kernels").and_then(Value::as_arr).unwrap_or(&empty);
    for (k, kernel) in KERNEL_NAMES.iter().enumerate() {
        // The 1m span: wide enough that a slow box cannot rotate the
        // smoke's own traffic out before this check runs.
        let seen = kernels
            .iter()
            .find(|rec| rec.get("kernel").and_then(Value::as_str) == Some(*kernel))
            .and_then(|rec| rec.get("spans"))
            .and_then(Value::as_arr)
            .and_then(|spans| {
                spans
                    .iter()
                    .find(|s| s.get("span").and_then(Value::as_str) == Some("1m"))
            })
            .and_then(|s| s.get("requests"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        if seen <= 0.0 {
            return Err(format!("window verb: {kernel} 1m window is empty (kernel {k})"));
        }
    }
    println!("smoke windows: ok (all {} kernels report 1m traffic)", KERNEL_NAMES.len());

    let mut traced = request_line(99, 0, 1, ratio, &mut rng);
    traced.insert_str(traced.len() - 1, r#","trace_id":"beef""#);
    let reply = client.request(&traced).map_err(|e| format!("traced probe: {e}"))?;
    if reply.get("trace_id").and_then(Value::as_str) != Some("000000000000beef") {
        return Err("traced probe: reply did not echo the supplied trace id".to_string());
    }
    let dump = client.exemplars().map_err(|e| format!("exemplars verb: {e}"))?;
    let found = dump
        .get("exemplars")
        .and_then(Value::as_arr)
        .unwrap_or(&empty)
        .iter()
        .find(|e| e.get("trace_id").and_then(Value::as_str) == Some("000000000000beef"))
        .ok_or("traced probe: trace id not retained in the exemplar ring")?;
    let spans = found.get("spans").and_then(Value::as_arr).unwrap_or(&empty);
    if !spans
        .iter()
        .any(|s| s.get("path").and_then(Value::as_str) == Some("serve.request"))
    {
        return Err("traced probe: exemplar has no serve.request root span".to_string());
    }
    println!("smoke trace: ok (trace id beef round-tripped into a {}-span exemplar)", spans.len());
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let usize_arg = |flag: &str, default: usize| {
        arg_value(flag).map_or(default, |v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} must be a non-negative integer"))
        })
    };
    let out_dir = out_dir_arg();
    let seed = usize_arg("--seed", 42) as u64;
    let batch = usize_arg("--batch", 6).max(1);
    let connections = usize_arg("--connections", 2).max(1);
    let requests = usize_arg("--requests", 200).max(connections);
    let cold_reps = usize_arg("--cold-reps", 3).max(1);
    let warm_reps = usize_arg("--warm-reps", cold_reps.max(10));
    let workers = usize_arg("--workers", 2).max(1);
    let cache_capacity = usize_arg("--cache-capacity", 64).max(1);
    let mode = arg_value("--mode").unwrap_or_else(|| "closed".to_string());
    assert!(mode == "closed" || mode == "open", "--mode must be closed or open");
    let rps: f64 = arg_value("--rps").map_or(100.0, |v| v.parse().expect("--rps must be a number"));
    assert!(rps > 0.0, "--rps must be positive");
    let ratios: Vec<f64> = arg_value("--ratios")
        .unwrap_or_else(|| "1.0,0.7,0.4".to_string())
        .split(',')
        .map(|r| {
            let r: f64 = r.trim().parse().expect("--ratios must be comma-separated numbers");
            assert!((0.0..=1.0).contains(&r), "ratios must be in [0, 1]");
            r
        })
        .collect();
    assert!(!ratios.is_empty(), "--ratios must name at least one ratio");

    // Point at a running server, or host one in this process.
    let (addr, server_handle) = match arg_value("--addr") {
        Some(addr) => (addr, None),
        None => {
            let (addr, handle) = spawn_server(workers, cache_capacity, out_dir.clone());
            println!("spawned in-process server on {addr} ({workers} workers)");
            (addr.to_string(), Some(handle))
        }
    };
    let in_process = server_handle.is_some();
    let shutdown_server = |handle: Option<thread::JoinHandle<std::io::Result<ServerSummary>>>| {
        if let Some(handle) = handle {
            let mut client = Client::connect(&addr).expect("connect for shutdown");
            client.shutdown().expect("shutdown request");
            let summary = handle.join().expect("server thread").expect("server run");
            println!(
                "server closed: {} requests, {} cache hits / {} misses",
                summary.requests, summary.cache.hits, summary.cache.misses
            );
        }
    };

    if flag_present("--smoke") {
        let result = run_smoke(&addr, ratios[0], seed);
        shutdown_server(server_handle);
        return match result {
            Ok(()) => {
                println!("smoke: all checks passed");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("smoke FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // ── Phase 1+2: cold vs warm ablation, one kernel at a time ──────
    // Single-item requests so each cold sample pays exactly one
    // record+compile and each warm sample is exactly one replay.
    let mut client = Client::connect(&addr).expect("connect to server");
    let mut rng = SplitMix64::new(seed);
    let mut kernels = Vec::with_capacity(KERNEL_NAMES.len());
    for (k, kernel) in KERNEL_NAMES.iter().enumerate() {
        let mut cold_wire = Vec::with_capacity(cold_reps);
        let mut cold_service = Vec::with_capacity(cold_reps);
        for rep in 0..cold_reps {
            client.cache_clear().expect("cache_clear");
            let line = request_line(1000 + rep as u64, k, 1, ratios[0], &mut rng);
            let (reply, wire, service) = timed_request(&mut client, &line);
            assert!(!is_cached(&reply), "{kernel}: cold request hit the cache");
            cold_wire.push(wire);
            cold_service.push(service);
        }
        // One untimed fill so every timed warm sample replays.
        timed_request(&mut client, &request_line(1999, k, 1, ratios[0], &mut rng));
        let mut warm_wire = Vec::with_capacity(warm_reps);
        let mut warm_service = Vec::with_capacity(warm_reps);
        for rep in 0..warm_reps {
            let line = request_line(2000 + rep as u64, k, 1, ratios[0], &mut rng);
            let (reply, wire, service) = timed_request(&mut client, &line);
            assert!(is_cached(&reply), "{kernel}: warm request missed the cache");
            warm_wire.push(wire);
            warm_service.push(service);
        }
        let cold_wire = summarize(&cold_wire);
        let warm_wire = summarize(&warm_wire);
        let cold_service = summarize(&cold_service);
        let warm_service = summarize(&warm_service);
        let speedup = cold_service.p50_us / warm_service.p50_us;
        let wire_speedup = cold_wire.p50_us / warm_wire.p50_us;
        println!(
            "{kernel:>13}: service cold p50 {:>8.1} µs, warm p50 {:>7.1} µs ({speedup:.2}x); \
             wire cold p50 {:>8.1} µs, warm p50 {:>7.1} µs ({wire_speedup:.2}x)",
            cold_service.p50_us, warm_service.p50_us, cold_wire.p50_us, warm_wire.p50_us
        );
        kernels.push(KernelAblation {
            kernel,
            cold_wire,
            warm_wire,
            cold_service,
            warm_service,
            warm_vs_cold_speedup: speedup,
            warm_vs_cold_wire_speedup: wire_speedup,
        });
    }

    // ── Phase 3: steady-state mixed traffic ─────────────────────────
    // Prime every kernel's trace (the last ablation pass cleared the
    // earlier kernels' entries), then measure from a counter snapshot.
    for k in 0..KERNEL_NAMES.len() {
        timed_request(&mut client, &request_line(2999, k, 1, ratios[0], &mut rng));
    }
    let before = client.stats().expect("stats before steady phase");
    let pace = (mode == "open").then(|| Duration::from_secs_f64(connections as f64 / rps));
    let steady_start = Instant::now();
    let samples: Vec<(usize, f64, f64, bool)> = thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let addr = &addr;
                let ratios = &ratios;
                // Spread the request remainder over the first threads.
                let quota = requests / connections + usize::from(c < requests % connections);
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect steady client");
                    let mut rng = SplitMix64::new(seed ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let start = Instant::now();
                    let mut samples = Vec::with_capacity(quota);
                    for i in 0..quota {
                        if let Some(pace) = pace {
                            let due = pace * i as u32;
                            if let Some(wait) = due.checked_sub(start.elapsed()) {
                                thread::sleep(wait);
                            }
                        }
                        let kernel = rng.below(KERNEL_NAMES.len());
                        let ratio = ratios[rng.below(ratios.len())];
                        let line = request_line(10_000 + i as u64, kernel, batch, ratio, &mut rng);
                        let (reply, wire, service) = timed_request(&mut client, &line);
                        samples.push((kernel, wire, service, is_cached(&reply)));
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("steady client thread"))
            .collect()
    });
    let steady_seconds = steady_start.elapsed().as_secs_f64();
    let after = client.stats().expect("stats after steady phase");

    let hits = stat_u64(&after, Some("cache"), "hits") - stat_u64(&before, Some("cache"), "hits");
    let misses =
        stat_u64(&after, Some("cache"), "misses") - stat_u64(&before, Some("cache"), "misses");
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let per_kernel: Vec<SteadyKernel> = KERNEL_NAMES
        .iter()
        .enumerate()
        .map(|(k, kernel)| {
            let total = samples.iter().filter(|(sk, ..)| *sk == k).count() as u64;
            let cached = samples.iter().filter(|(sk, .., c)| *sk == k && *c).count() as u64;
            SteadyKernel {
                kernel,
                requests: total,
                cached_fraction: cached as f64 / total.max(1) as f64,
            }
        })
        .collect();
    let latencies: Vec<f64> = samples.iter().map(|&(_, wire, _, _)| wire).collect();
    let services: Vec<f64> = samples.iter().map(|&(_, _, service, _)| service).collect();
    let steady = SteadySummary {
        requests: samples.len(),
        batch,
        connections,
        mode: mode.clone(),
        seconds: steady_seconds,
        requests_per_sec: samples.len() as f64 / steady_seconds,
        items_per_sec: (samples.len() * batch) as f64 / steady_seconds,
        latency: summarize(&latencies),
        service: summarize(&services),
        cache_hit_rate: hit_rate,
        per_kernel,
    };
    println!(
        "steady state ({mode} loop): {} requests × {batch} items in {steady_seconds:.2} s \
         ({:.0} req/s, p50 {:.1} µs, cache hit rate {:.1}%)",
        steady.requests,
        steady.requests_per_sec,
        steady.latency.p50_us,
        hit_rate * 100.0
    );

    let server = ServerSection {
        workers: stat_u64(&after, None, "workers"),
        requests: stat_u64(&after, None, "requests"),
        errors: stat_u64(&after, None, "errors"),
        cache_hits: stat_u64(&after, Some("cache"), "hits"),
        cache_misses: stat_u64(&after, Some("cache"), "misses"),
        cache_insertions: stat_u64(&after, Some("cache"), "insertions"),
        cache_evictions: stat_u64(&after, Some("cache"), "evictions"),
        cache_len: stat_u64(&after, Some("cache"), "len"),
        cache_capacity: stat_u64(&after, Some("cache"), "capacity"),
        replays: stat_u64(&after, Some("replay"), "replays"),
        records: stat_u64(&after, Some("replay"), "records"),
        fallbacks: stat_u64(&after, Some("replay"), "fallbacks"),
        lane_blocks: stat_u64(&after, Some("replay"), "lane_blocks"),
    };
    let report = BenchReport {
        schema: "scorpio-serve-bench-v1",
        seed,
        ratios,
        batch,
        connections,
        cold_reps,
        warm_reps,
        in_process_server: in_process,
        server_workers: workers,
        available_parallelism: thread::available_parallelism().map_or(1, std::num::NonZero::get),
        kernels,
        steady,
        server,
    };
    std::fs::create_dir_all(&out_dir).expect("create --out-dir");
    let path = out_dir.join("BENCH_serve.json");
    std::fs::write(&path, json::to_string(&report) + "\n").expect("write BENCH_serve.json");
    println!("wrote {}", path.display());

    shutdown_server(server_handle);
    ExitCode::SUCCESS
}
