//! Figure 7 (the paper's main result): output quality and energy
//! consumption for the five benchmarks as a function of the ratio of
//! accurately executed tasks, with loop perforation as the baseline.
//!
//! Prints one table per benchmark, writes `fig7_results.csv` and a
//! `BENCH_qor.json` quality-of-result report (per-kernel
//! quality-vs-ratio curves joined with the runtime's achieved ratio,
//! task tallies and repeated wall-time samples — the input to the
//! `scorpio_diff` regression gate), and ends with the §4.3 summary
//! block (energy reductions; PSNR/error advantages over perforation).
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin fig7_sweep \
//!     [--small] [--threads N] [--reps N] [--out-dir DIR] [--trace trace.json] \
//!     [--adaptive [--target Q]]
//! ```
//!
//! `--threads N` sizes the task-execution worker pool (default: one
//! worker per available core). `--reps N` (default 3) repeats the
//! timed significance run of every point, recording each wall time in
//! the QoR report. `--out-dir DIR` (default `out/`) is where all
//! artifacts land. `--trace <path>` enables scorpio-obs
//! instrumentation: the run writes a Chrome-trace file to `<path>`,
//! a `RUN_fig7_sweep.json` run manifest, and an
//! `EVENTS_fig7_sweep.jsonl` structured task-event log (one JSON
//! object per executed/dropped task and per `taskwait`).
//!
//! `--adaptive` additionally closes the loop on every kernel after its
//! static sweep: an `AdaptiveController` seeded from the just-measured
//! curve searches for the cheapest ratio meeting the kernel's default
//! quality target (see `scorpio_bench::adaptive::default_objective`),
//! and the verdicts land in `BENCH_adaptive.json` next to the QoR
//! report. `--target Q` overrides every kernel's default threshold
//! with `Q` (keeping each kernel's metric direction) — mostly useful
//! with the single-kernel `bench_adaptive` harness, since one number
//! rarely fits PSNR and relative-error kernels at once.

use scorpio_bench::{
    adaptive::{resolve_objective, run_adaptive, MAX_STEPS},
    arg_value, finish_trace, flag_present, out_dir_arg, reps_arg, threads_arg, to_csv, trace_arg,
    AdaptiveKernel, AdaptiveReport, QorKernel, QorPoint, QorReport, SweepRow, ADAPTIVE_SCHEMA,
    QOR_SCHEMA,
};
use scorpio_kernels::{blackscholes, dct, fisheye, nbody, sobel};
use scorpio_quality::{psnr_images, relative_error_l2, GrayImage, SyntheticImage};
use scorpio_runtime::{EnergyModel, ExecutionStats, Executor};

const RATIOS: [f64; 5] = [0.0, 0.2, 0.5, 0.8, 1.0];

/// One sweep row: (ratio, sig quality, sig energy, perf quality, perf energy).
type Row = (f64, f64, f64, Option<f64>, Option<f64>);

struct BenchResult {
    name: &'static str,
    metric: &'static str,
    rows: Vec<Row>,
}

impl BenchResult {
    fn print(&self) {
        println!("\n=== {} (quality: {}) ===", self.name, self.metric);
        println!(
            "{:>6} | {:>14} {:>12} | {:>14} {:>12}",
            "ratio", "sig quality", "sig E(J)", "perf quality", "perf E(J)"
        );
        let fmt_q = |v: f64| {
            if self.metric == "rel_error" {
                format!("{v:>14.4e}")
            } else {
                format!("{v:>14.4}")
            }
        };
        for (ratio, sq, se, pq, pe) in &self.rows {
            println!(
                "{ratio:>6.1} | {} {se:>12.4} | {} {}",
                fmt_q(*sq),
                match pq {
                    Some(v) => fmt_q(*v),
                    None => format!("{:>14}", "n/a"),
                },
                match pe {
                    Some(v) => format!("{v:>12.4}"),
                    None => format!("{:>12}", "n/a"),
                }
            );
        }
    }

    fn csv_rows(&self) -> Vec<SweepRow> {
        let metric = self.metric;
        let mut out = Vec::new();
        for (ratio, sq, se, pq, pe) in &self.rows {
            out.push(SweepRow {
                benchmark: self.name,
                method: "significance",
                ratio: *ratio,
                quality_metric: metric,
                quality: *sq,
                energy_j: *se,
            });
            if let (Some(q), Some(e)) = (pq, pe) {
                out.push(SweepRow {
                    benchmark: self.name,
                    method: "perforation",
                    ratio: *ratio,
                    quality_metric: metric,
                    quality: *q,
                    energy_j: *e,
                });
            }
        }
        out
    }

    /// Mean quality advantage of significance over perforation across
    /// the approximate ratios (dB for PSNR metrics, error ratio for
    /// relative-error metrics).
    fn quality_advantage(&self) -> Option<f64> {
        let diffs: Vec<f64> = self
            .rows
            .iter()
            .filter(|(r, ..)| *r < 1.0)
            .filter_map(|(_, sq, _, pq, _)| pq.map(|pq| (*sq, pq)))
            .map(|(sq, pq)| {
                if self.metric == "psnr_db" {
                    let cap = |v: f64| v.min(99.0);
                    cap(sq) - cap(pq)
                } else {
                    // error ratio (how many times larger the perforated
                    // error is), in log10.
                    (pq.max(1e-18) / sq.max(1e-18)).log10()
                }
            })
            .collect();
        if diffs.is_empty() {
            None
        } else {
            Some(diffs.iter().sum::<f64>() / diffs.len() as f64)
        }
    }

    /// Energy reduction of the significance version at the most
    /// aggressive approximation vs the fully accurate run.
    fn energy_reduction(&self) -> f64 {
        let full = self.rows.last().unwrap().2;
        let min = self.rows.first().unwrap().2;
        1.0 - min / full
    }
}

fn image_workload(small: bool, seed: u64) -> GrayImage {
    let size = if small { 96 } else { 512 };
    SyntheticImage::GaussianBlobs.render(size, size, seed)
}

/// Runs `f`, returning its result and the elapsed wall nanoseconds.
fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_nanos() as u64)
}

/// Runs the closed loop on one kernel, seeded from its just-measured
/// static curve, reusing the sweep's significance closure.
fn adapt_kernel(
    curve: &QorKernel,
    target_override: Option<f64>,
    model: &EnergyModel,
    sig: &dyn Fn(f64) -> ((f64, ExecutionStats), u64),
) -> AdaptiveKernel {
    let objective = resolve_objective(&curve.name, target_override);
    let verdict = run_adaptive(curve, objective, MAX_STEPS, model, |r| sig(r).0);
    println!(
        "[adaptive] {:<14} {} {} → ratio {:.3}, quality {:.4}, {:.4} J, {} steps, converged: {}, \
         target met: {}, dominates static: {}",
        verdict.name,
        verdict.target_kind,
        verdict.target,
        verdict.adaptive.final_ratio,
        verdict.adaptive.quality,
        verdict.adaptive.energy_j,
        verdict.adaptive.steps,
        verdict.adaptive.converged,
        verdict.target_met,
        verdict.dominates,
    );
    verdict
}

/// Sweeps one kernel over [`RATIOS`]: the significance run is repeated
/// `reps` times per point (each wall time sampled for `scorpio_diff`'s
/// statistics), the perforation baseline — deterministic and not part
/// of the QoR curve — once. Returns the printable table and the QoR
/// curve; a `ratio` marker event is emitted per point while tracing.
fn sweep(
    name: &'static str,
    metric: &'static str,
    reps: usize,
    model: &EnergyModel,
    sig: impl Fn(f64) -> ((f64, ExecutionStats), u64),
    perf: Option<&dyn Fn(f64) -> (f64, ExecutionStats)>,
) -> (BenchResult, QorKernel) {
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &ratio in &RATIOS {
        scorpio_obs::ratio_event(name, ratio);
        let mut samples = Vec::with_capacity(reps);
        let mut quality = f64::NAN;
        let mut stats = ExecutionStats::default();
        for _ in 0..reps {
            let ((q, s), ns) = sig(ratio);
            samples.push(ns);
            quality = q;
            stats = s;
        }
        let energy_j = model.energy(&stats);
        let (pq, pe) = match perf {
            Some(run) => {
                let (q, s) = run(ratio);
                (Some(q), Some(model.energy(&s)))
            }
            None => (None, None),
        };
        rows.push((ratio, quality, energy_j, pq, pe));
        points.push(QorPoint {
            ratio,
            quality,
            energy_j,
            achieved_ratio: stats.accurate as f64 / stats.total().max(1) as f64,
            accurate: stats.accurate as u64,
            approximate: stats.approximate as u64,
            dropped: stats.dropped as u64,
            time_ns_samples: samples,
        });
    }
    (
        BenchResult { name, metric, rows },
        QorKernel {
            name: name.to_owned(),
            metric: metric.to_owned(),
            higher_is_better: metric == "psnr_db",
            points,
        },
    )
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let out_dir = out_dir_arg();
    let reps = reps_arg(3);
    let adaptive = flag_present("--adaptive");
    let target_override: Option<f64> = arg_value("--target").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("invalid --target value {v:?}"))
    });
    assert!(
        adaptive || target_override.is_none(),
        "--target only makes sense together with --adaptive"
    );
    let trace_path = trace_arg();
    let session = trace_path
        .as_ref()
        .map(|_| scorpio_obs::RunSession::start("fig7_sweep"));
    let executor = match threads_arg() {
        Some(threads) => Executor::new(threads),
        None => Executor::with_available_parallelism(),
    };
    let model = EnergyModel::xeon_e5_2695v3();
    let mut results = Vec::new();
    let mut kernels = Vec::new();
    let mut adaptive_kernels: Vec<AdaptiveKernel> = Vec::new();
    let mut push = |(result, kernel): (BenchResult, QorKernel)| {
        results.push(result);
        kernels.push(kernel);
    };

    // ── Sobel ────────────────────────────────────────────────────────
    {
        let _span = scorpio_obs::span("sobel");
        let img = image_workload(small, 101);
        eprintln!("[sobel] {}×{}", img.width(), img.height());
        let full = sobel::reference(&img);
        let sig = |ratio: f64| {
            let ((out, stats), ns) = timed(|| sobel::tasked(&img, &executor, ratio));
            ((psnr_images(&full, &out).min(99.0), stats), ns)
        };
        let (result, kernel) = sweep(
            "sobel",
            "psnr_db",
            reps,
            &model,
            sig,
            Some(&|ratio| {
                let (perf, stats) = sobel::perforated(&img, ratio);
                (psnr_images(&full, &perf).min(99.0), stats)
            }),
        );
        if adaptive {
            adaptive_kernels.push(adapt_kernel(&kernel, target_override, &model, &sig));
        }
        push((result, kernel));
    }

    // ── DCT ──────────────────────────────────────────────────────────
    {
        let _span = scorpio_obs::span("dct");
        let img = if small {
            image_workload(true, 202)
        } else {
            SyntheticImage::GaussianBlobs.render(256, 256, 202)
        };
        eprintln!("[dct] {}×{}", img.width(), img.height());
        let full = dct::reference(&img);
        let sig = |ratio: f64| {
            let ((out, stats), ns) = timed(|| dct::tasked(&img, &executor, ratio));
            ((psnr_images(&full, &out).min(99.0), stats), ns)
        };
        let (result, kernel) = sweep(
            "dct",
            "psnr_db",
            reps,
            &model,
            sig,
            Some(&|ratio| {
                let (perf, stats) = dct::perforated(&img, ratio);
                (psnr_images(&full, &perf).min(99.0), stats)
            }),
        );
        if adaptive {
            adaptive_kernels.push(adapt_kernel(&kernel, target_override, &model, &sig));
        }
        push((result, kernel));
    }

    // ── Fisheye ──────────────────────────────────────────────────────
    {
        let _span = scorpio_obs::span("fisheye");
        let (w, h, bw, bh) = if small {
            (160, 120, 32, 24)
        } else {
            (1280, 960, 128, 64)
        };
        let lens = fisheye::Lens::for_image(w, h);
        let img = SyntheticImage::ValueNoise.render(w, h, 303);
        eprintln!("[fisheye] {w}×{h}, blocks {bw}×{bh}");
        let full = fisheye::reference(&img, &lens);
        let sig = |ratio: f64| {
            let ((out, stats), ns) =
                timed(|| fisheye::tasked_with_blocks(&img, &lens, &executor, ratio, bw, bh));
            ((psnr_images(&full, &out).min(99.0), stats), ns)
        };
        let (result, kernel) = sweep(
            "fisheye",
            "psnr_db",
            reps,
            &model,
            sig,
            Some(&|ratio| {
                let (perf, stats) = fisheye::perforated(&img, &lens, ratio);
                (psnr_images(&full, &perf).min(99.0), stats)
            }),
        );
        if adaptive {
            adaptive_kernels.push(adapt_kernel(&kernel, target_override, &model, &sig));
        }
        push((result, kernel));
    }

    // ── N-Body ───────────────────────────────────────────────────────
    {
        let _span = scorpio_obs::span("nbody");
        let params = if small {
            nbody::Params::small()
        } else {
            nbody::Params::evaluation()
        };
        eprintln!(
            "[nbody] {} atoms, {} regions, {} steps",
            params.atoms(),
            params.regions.pow(3),
            params.steps
        );
        let exact = nbody::reference(&params).flatten();
        let sig = |ratio: f64| {
            let ((state, stats), ns) = timed(|| nbody::tasked(&params, &executor, ratio));
            (
                (relative_error_l2(&exact, &state.flatten()).max(1e-18), stats),
                ns,
            )
        };
        let (result, kernel) = sweep(
            "nbody",
            "rel_error",
            reps,
            &model,
            sig,
            Some(&|ratio| {
                let (perf, stats) = nbody::perforated(&params, ratio);
                (relative_error_l2(&exact, &perf.flatten()).max(1e-18), stats)
            }),
        );
        if adaptive {
            adaptive_kernels.push(adapt_kernel(&kernel, target_override, &model, &sig));
        }
        push((result, kernel));
    }

    // ── BlackScholes (perforation not applicable, §4.2) ─────────────
    {
        let _span = scorpio_obs::span("blackscholes");
        let n = if small { 4096 } else { 65_536 };
        let options = blackscholes::generate_options(n, 404);
        eprintln!("[blackscholes] {n} options");
        let exact = blackscholes::reference(&options);
        let sig = |ratio: f64| {
            let ((prices, stats), ns) =
                timed(|| blackscholes::tasked(&options, 256, &executor, ratio));
            ((relative_error_l2(&exact, &prices).max(1e-18), stats), ns)
        };
        let (result, kernel) = sweep("blackscholes", "rel_error", reps, &model, sig, None);
        if adaptive {
            adaptive_kernels.push(adapt_kernel(&kernel, target_override, &model, &sig));
        }
        push((result, kernel));
    }

    // ── Output ───────────────────────────────────────────────────────
    std::fs::create_dir_all(&out_dir).expect("create --out-dir");
    let mut csv_rows = Vec::new();
    for r in &results {
        r.print();
        csv_rows.extend(r.csv_rows());
    }
    let csv_path = out_dir.join("fig7_results.csv");
    std::fs::write(&csv_path, to_csv(&csv_rows)).expect("write fig7_results.csv");
    println!("\nwrote {} ({} rows)", csv_path.display(), csv_rows.len());

    // A non-empty drop counter means the event ring (or its spill)
    // overflowed: the achieved-ratio/task-tally columns then come from
    // a truncated timeline, so the report is marked and `scorpio_diff`
    // will warn whenever it consumes it.
    let degraded = scorpio_obs::events_dropped() > 0;
    if degraded {
        eprintln!(
            "warning: {} task events were dropped — marking reports degraded",
            scorpio_obs::events_dropped()
        );
    }
    let qor = QorReport {
        schema: QOR_SCHEMA.to_owned(),
        name: "fig7_sweep".to_owned(),
        git: scorpio_obs::git_describe(),
        threads: executor.threads(),
        reps,
        small,
        degraded,
        kernels,
    };
    let qor_path = out_dir.join("BENCH_qor.json");
    std::fs::write(&qor_path, qor.to_json()).expect("write BENCH_qor.json");
    println!(
        "wrote {} ({} kernels × {} ratios, {reps} timing reps)",
        qor_path.display(),
        qor.kernels.len(),
        RATIOS.len()
    );

    if adaptive {
        let report = AdaptiveReport {
            schema: ADAPTIVE_SCHEMA.to_owned(),
            name: "fig7_sweep".to_owned(),
            git: scorpio_obs::git_describe(),
            threads: executor.threads(),
            small,
            degraded,
            kernels: adaptive_kernels,
        };
        let path = out_dir.join("BENCH_adaptive.json");
        std::fs::write(&path, report.to_json()).expect("write BENCH_adaptive.json");
        println!(
            "wrote {} ({} kernels, adaptive vs best static)",
            path.display(),
            report.kernels.len()
        );
    }

    // §4.3 summary block.
    println!("\n=== §4.3 summary ===");
    let mut reductions = Vec::new();
    for r in &results {
        let red = r.energy_reduction();
        reductions.push(red);
        match r.quality_advantage() {
            Some(adv) if r.metric == "psnr_db" => println!(
                "{:<14} energy reduction at ratio 0: {:>5.1}% | mean PSNR advantage over perforation: {:+.2} dB",
                r.name,
                red * 100.0,
                adv
            ),
            Some(adv) => println!(
                "{:<14} energy reduction at ratio 0: {:>5.1}% | perforated error is 10^{:.1} times larger on average",
                r.name,
                red * 100.0,
                adv
            ),
            None => println!(
                "{:<14} energy reduction at ratio 0: {:>5.1}% | perforation n/a (no loop to perforate)",
                r.name,
                red * 100.0
            ),
        }
    }
    let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
    println!(
        "\nmean energy reduction across benchmarks: {:.0}% (paper: 56% mean, 31–91% range)",
        mean * 100.0
    );

    if let Some(session) = session {
        let mut config = vec![
            ("small".to_owned(), small.to_string()),
            ("threads".to_owned(), executor.threads().to_string()),
            ("reps".to_owned(), reps.to_string()),
            ("adaptive".to_owned(), adaptive.to_string()),
        ];
        if let Some(q) = target_override {
            config.push(("target".to_owned(), q.to_string()));
        }
        finish_trace(
            session,
            &out_dir,
            executor.threads(),
            &config,
            trace_path.as_deref(),
        );
    }
}
