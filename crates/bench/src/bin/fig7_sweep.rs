//! Figure 7 (the paper's main result): output quality and energy
//! consumption for the five benchmarks as a function of the ratio of
//! accurately executed tasks, with loop perforation as the baseline.
//!
//! Prints one table per benchmark, writes `fig7_results.csv`, and ends
//! with the §4.3 summary block (energy reductions; PSNR/error advantages
//! over perforation).
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin fig7_sweep [--small] [--threads N] [--trace trace.json]
//! ```
//!
//! `--threads N` sizes the task-execution worker pool (default: one
//! worker per available core). `--trace <path>` enables scorpio-obs
//! instrumentation: the run writes a Chrome-trace file to `<path>`
//! (open it in `about:tracing` / Perfetto) and a `RUN_fig7_sweep.json`
//! run manifest with per-phase timings and counters.

use scorpio_bench::{finish_trace, threads_arg, to_csv, trace_arg, SweepRow};
use scorpio_kernels::{blackscholes, dct, fisheye, nbody, sobel};
use scorpio_quality::{psnr_images, relative_error_l2, GrayImage, SyntheticImage};
use scorpio_runtime::{EnergyModel, ExecutionStats, Executor};

const RATIOS: [f64; 5] = [0.0, 0.2, 0.5, 0.8, 1.0];

/// One sweep row: (ratio, sig quality, sig energy, perf quality, perf energy).
type Row = (f64, f64, f64, Option<f64>, Option<f64>);

struct BenchResult {
    name: &'static str,
    metric: &'static str,
    rows: Vec<Row>,
}

impl BenchResult {
    fn print(&self) {
        println!("\n=== {} (quality: {}) ===", self.name, self.metric);
        println!(
            "{:>6} | {:>14} {:>12} | {:>14} {:>12}",
            "ratio", "sig quality", "sig E(J)", "perf quality", "perf E(J)"
        );
        let fmt_q = |v: f64| {
            if self.metric == "rel_error" {
                format!("{v:>14.4e}")
            } else {
                format!("{v:>14.4}")
            }
        };
        for (ratio, sq, se, pq, pe) in &self.rows {
            println!(
                "{ratio:>6.1} | {} {se:>12.4} | {} {}",
                fmt_q(*sq),
                match pq {
                    Some(v) => fmt_q(*v),
                    None => format!("{:>14}", "n/a"),
                },
                match pe {
                    Some(v) => format!("{v:>12.4}"),
                    None => format!("{:>12}", "n/a"),
                }
            );
        }
    }

    fn csv_rows(&self) -> Vec<SweepRow> {
        let metric = self.metric;
        let mut out = Vec::new();
        for (ratio, sq, se, pq, pe) in &self.rows {
            out.push(SweepRow {
                benchmark: self.name,
                method: "significance",
                ratio: *ratio,
                quality_metric: metric,
                quality: *sq,
                energy_j: *se,
            });
            if let (Some(q), Some(e)) = (pq, pe) {
                out.push(SweepRow {
                    benchmark: self.name,
                    method: "perforation",
                    ratio: *ratio,
                    quality_metric: metric,
                    quality: *q,
                    energy_j: *e,
                });
            }
        }
        out
    }

    /// Mean quality advantage of significance over perforation across
    /// the approximate ratios (dB for PSNR metrics, error ratio for
    /// relative-error metrics).
    fn quality_advantage(&self) -> Option<f64> {
        let diffs: Vec<f64> = self
            .rows
            .iter()
            .filter(|(r, ..)| *r < 1.0)
            .filter_map(|(_, sq, _, pq, _)| pq.map(|pq| (*sq, pq)))
            .map(|(sq, pq)| {
                if self.metric == "psnr_db" {
                    let cap = |v: f64| v.min(99.0);
                    cap(sq) - cap(pq)
                } else {
                    // error ratio (how many times larger the perforated
                    // error is), in log10.
                    (pq.max(1e-18) / sq.max(1e-18)).log10()
                }
            })
            .collect();
        if diffs.is_empty() {
            None
        } else {
            Some(diffs.iter().sum::<f64>() / diffs.len() as f64)
        }
    }

    /// Energy reduction of the significance version at the most
    /// aggressive approximation vs the fully accurate run.
    fn energy_reduction(&self) -> f64 {
        let full = self.rows.last().unwrap().2;
        let min = self.rows.first().unwrap().2;
        1.0 - min / full
    }
}

fn image_workload(small: bool, seed: u64) -> GrayImage {
    let size = if small { 96 } else { 512 };
    SyntheticImage::GaussianBlobs.render(size, size, seed)
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let trace_path = trace_arg();
    let session = trace_path
        .as_ref()
        .map(|_| scorpio_obs::RunSession::start("fig7_sweep"));
    let executor = match threads_arg() {
        Some(threads) => Executor::new(threads),
        None => Executor::with_available_parallelism(),
    };
    let model = EnergyModel::xeon_e5_2695v3();
    let energy = |s: &ExecutionStats| model.energy(s);
    let mut results = Vec::new();

    // ── Sobel ────────────────────────────────────────────────────────
    {
        let _span = scorpio_obs::span("sobel");
        let img = image_workload(small, 101);
        eprintln!("[sobel] {}×{}", img.width(), img.height());
        let full = sobel::reference(&img);
        let rows = RATIOS
            .iter()
            .map(|&ratio| {
                let (out, stats) = sobel::tasked(&img, &executor, ratio);
                let (perf, perf_stats) = sobel::perforated(&img, ratio);
                (
                    ratio,
                    psnr_images(&full, &out).min(99.0),
                    energy(&stats),
                    Some(psnr_images(&full, &perf).min(99.0)),
                    Some(energy(&perf_stats)),
                )
            })
            .collect();
        results.push(BenchResult {
            name: "sobel",
            metric: "psnr_db",
            rows,
        });
    }

    // ── DCT ──────────────────────────────────────────────────────────
    {
        let _span = scorpio_obs::span("dct");
        let img = if small {
            image_workload(true, 202)
        } else {
            SyntheticImage::GaussianBlobs.render(256, 256, 202)
        };
        eprintln!("[dct] {}×{}", img.width(), img.height());
        let full = dct::reference(&img);
        let rows = RATIOS
            .iter()
            .map(|&ratio| {
                let (out, stats) = dct::tasked(&img, &executor, ratio);
                let (perf, perf_stats) = dct::perforated(&img, ratio);
                (
                    ratio,
                    psnr_images(&full, &out).min(99.0),
                    energy(&stats),
                    Some(psnr_images(&full, &perf).min(99.0)),
                    Some(energy(&perf_stats)),
                )
            })
            .collect();
        results.push(BenchResult {
            name: "dct",
            metric: "psnr_db",
            rows,
        });
    }

    // ── Fisheye ──────────────────────────────────────────────────────
    {
        let _span = scorpio_obs::span("fisheye");
        let (w, h, bw, bh) = if small {
            (160, 120, 32, 24)
        } else {
            (1280, 960, 128, 64)
        };
        let lens = fisheye::Lens::for_image(w, h);
        let img = SyntheticImage::ValueNoise.render(w, h, 303);
        eprintln!("[fisheye] {w}×{h}, blocks {bw}×{bh}");
        let full = fisheye::reference(&img, &lens);
        let rows = RATIOS
            .iter()
            .map(|&ratio| {
                let (out, stats) =
                    fisheye::tasked_with_blocks(&img, &lens, &executor, ratio, bw, bh);
                let (perf, perf_stats) = fisheye::perforated(&img, &lens, ratio);
                (
                    ratio,
                    psnr_images(&full, &out).min(99.0),
                    energy(&stats),
                    Some(psnr_images(&full, &perf).min(99.0)),
                    Some(energy(&perf_stats)),
                )
            })
            .collect();
        results.push(BenchResult {
            name: "fisheye",
            metric: "psnr_db",
            rows,
        });
    }

    // ── N-Body ───────────────────────────────────────────────────────
    {
        let _span = scorpio_obs::span("nbody");
        let params = if small {
            nbody::Params::small()
        } else {
            nbody::Params::evaluation()
        };
        eprintln!(
            "[nbody] {} atoms, {} regions, {} steps",
            params.atoms(),
            params.regions.pow(3),
            params.steps
        );
        let exact = nbody::reference(&params).flatten();
        let rows = RATIOS
            .iter()
            .map(|&ratio| {
                let (state, stats) = nbody::tasked(&params, &executor, ratio);
                let (perf, perf_stats) = nbody::perforated(&params, ratio);
                (
                    ratio,
                    relative_error_l2(&exact, &state.flatten()).max(1e-18),
                    energy(&stats),
                    Some(relative_error_l2(&exact, &perf.flatten()).max(1e-18)),
                    Some(energy(&perf_stats)),
                )
            })
            .collect();
        results.push(BenchResult {
            name: "nbody",
            metric: "rel_error",
            rows,
        });
    }

    // ── BlackScholes (perforation not applicable, §4.2) ─────────────
    {
        let _span = scorpio_obs::span("blackscholes");
        let n = if small { 4096 } else { 65_536 };
        let options = blackscholes::generate_options(n, 404);
        eprintln!("[blackscholes] {n} options");
        let exact = blackscholes::reference(&options);
        let rows = RATIOS
            .iter()
            .map(|&ratio| {
                let (prices, stats) = blackscholes::tasked(&options, 256, &executor, ratio);
                (
                    ratio,
                    relative_error_l2(&exact, &prices).max(1e-18),
                    energy(&stats),
                    None,
                    None,
                )
            })
            .collect();
        results.push(BenchResult {
            name: "blackscholes",
            metric: "rel_error",
            rows,
        });
    }

    // ── Output ───────────────────────────────────────────────────────
    let mut csv_rows = Vec::new();
    for r in &results {
        r.print();
        csv_rows.extend(r.csv_rows());
    }
    std::fs::write("fig7_results.csv", to_csv(&csv_rows)).expect("write fig7_results.csv");
    println!("\nwrote fig7_results.csv ({} rows)", csv_rows.len());

    // §4.3 summary block.
    println!("\n=== §4.3 summary ===");
    let mut reductions = Vec::new();
    for r in &results {
        let red = r.energy_reduction();
        reductions.push(red);
        match r.quality_advantage() {
            Some(adv) if r.metric == "psnr_db" => println!(
                "{:<14} energy reduction at ratio 0: {:>5.1}% | mean PSNR advantage over perforation: {:+.2} dB",
                r.name,
                red * 100.0,
                adv
            ),
            Some(adv) => println!(
                "{:<14} energy reduction at ratio 0: {:>5.1}% | perforated error is 10^{:.1} times larger on average",
                r.name,
                red * 100.0,
                adv
            ),
            None => println!(
                "{:<14} energy reduction at ratio 0: {:>5.1}% | perforation n/a (no loop to perforate)",
                r.name,
                red * 100.0
            ),
        }
    }
    let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
    println!(
        "\nmean energy reduction across benchmarks: {:.0}% (paper: 56% mean, 31–91% range)",
        mean * 100.0
    );

    if let Some(session) = session {
        let config = vec![
            ("small".to_owned(), small.to_string()),
            ("threads".to_owned(), executor.threads().to_string()),
        ];
        finish_trace(session, executor.threads(), &config, trace_path.as_deref());
    }
}
