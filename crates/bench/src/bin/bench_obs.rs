//! Live-observability overhead ablation and contract check, writing
//! `BENCH_obs.json`.
//!
//! ```text
//! bench_obs [--requests N] [--reps N] [--batch N] [--workers N]
//!           [--seed N] [--bound PCT] [--out-dir DIR]
//! ```
//!
//! Measures the cost of the daemon's default telemetry (stage-level
//! spans, per-request trace capture, sliding windows, metrics) on the
//! served mixed-workload latency. Because tracing is a process-global
//! switch, the two arms run **paired and interleaved**: each rep spawns
//! an untraced in-process server (after `scorpio_obs::disable()`),
//! primes and measures the warm mixed workload, then does the same
//! against a traced server — so slow drift on a loaded box hits both
//! arms of a rep alike. The headline overhead is the **median of the
//! per-rep deltas** of mixed-workload p50 service time, gated at
//! `--bound` percent (default 5, the issue's acceptance bound) and
//! machine-independently enforced from the checked-in baseline by
//! `scorpio_diff --gate --quality-only`.
//!
//! A final traced server (with the HTTP metrics sidecar) exercises the
//! live-scrape contract under load:
//!
//! * a client-supplied trace id must round-trip into the exemplar dump
//!   as a reassemblable span tree (root `serve.request` plus nested
//!   children, all stamped with the id);
//! * the `metrics` verb — and the HTTP sidecar — must render valid
//!   Prometheus text exposition;
//! * every loaded kernel's 10s sliding window must report the traffic.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::thread;

use scorpio_bench::{arg_value, out_dir_arg, ObsContract, ObsMode, ObsReport, OBS_SCHEMA};
use scorpio_core::audit::SplitMix64;
use scorpio_obs::expose::validate_exposition;
use scorpio_obs::json::{self, Value};
use scorpio_serve::{Client, Server, ServerConfig, ServerSummary};

/// Kernels the ablation loads, with one fixed shape each. Moderate
/// batches keep per-request service time well above the fixed cost of
/// a span guard, so the overhead number reflects steady serving, not
/// clock-read noise.
const KERNELS: [&str; 3] = ["maclaurin", "dct", "fisheye"];
const BATCH_DEFAULT: usize = 16;
const FISHEYE_DIM: usize = 32;
const MACLAURIN_N: usize = 12;

/// The trace id the round-trip probe supplies (hex on the wire).
const PROBE_TRACE_ID: &str = "c0ffee";
const PROBE_TRACE_ID_FULL: &str = "0000000000c0ffee";

fn request_line(id: u64, kernel: &str, batch: usize, rng: &mut SplitMix64) -> String {
    let mut line = format!(r#"{{"id":{id},"kernel":"{kernel}","ratio":0.7"#);
    match kernel {
        "fisheye" => {
            line.push_str(&format!(r#","width":{FISHEYE_DIM},"height":{FISHEYE_DIM}"#));
        }
        "maclaurin" => line.push_str(&format!(r#","n":{MACLAURIN_N}"#)),
        "dct" => line.push_str(r#","radius":1.0"#),
        _ => unreachable!("unserved kernel"),
    }
    line.push_str(r#","items":["#);
    for i in 0..batch {
        if i > 0 {
            line.push(',');
        }
        match kernel {
            "fisheye" => {
                let u = rng.next_f64() * FISHEYE_DIM as f64;
                let v = rng.next_f64() * FISHEYE_DIM as f64;
                line.push_str(&format!(r#"{{"u":{u},"v":{v}}}"#));
            }
            "dct" => {
                line.push('[');
                for p in 0..64 {
                    if p > 0 {
                        line.push(',');
                    }
                    line.push_str(&format!("{:.3}", rng.next_f64() * 255.0));
                }
                line.push(']');
            }
            "maclaurin" => line.push_str(&format!("{}", rng.next_f64() * 0.9 - 0.45)),
            _ => unreachable!("unserved kernel"),
        }
    }
    line.push_str("]}");
    line
}

fn is_ok(v: &Value) -> bool {
    matches!(v.get("ok"), Some(Value::Bool(true)))
}

/// Sends one analyze line, asserting success, and returns the reply.
fn send_ok(client: &mut Client, line: &str) -> Value {
    let reply = client.request(line).expect("analyze request failed");
    assert!(
        is_ok(&reply),
        "server returned an error reply: {}",
        reply.get("error").and_then(Value::as_str).unwrap_or("?")
    );
    reply
}

fn spawn_server(
    workers: usize,
    obs: bool,
    metrics: bool,
    out_dir: std::path::PathBuf,
) -> (SocketAddr, Option<SocketAddr>, thread::JoinHandle<std::io::Result<ServerSummary>>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        obs,
        metrics_addr: metrics.then(|| "127.0.0.1:0".to_string()),
        out_dir,
        ..ServerConfig::default()
    })
    .expect("bind in-process server");
    let addr = server.local_addr().expect("server local_addr");
    let metrics_addr = server.metrics_local_addr();
    (addr, metrics_addr, thread::spawn(move || server.run()))
}

/// Scrapes the HTTP metrics sidecar once and returns the response body.
fn scrape_sidecar(addr: SocketAddr) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics sidecar");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")
        .expect("write scrape request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read scrape response");
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "sidecar did not answer 200: {:?}",
        response.lines().next()
    );
    let body_at = response.find("\r\n\r\n").expect("sidecar response without header break");
    response[body_at + 4..].to_string()
}

/// Sends the traced probe and verifies the id round-trips into a
/// reassemblable span tree in the exemplar dump. Must run while the
/// exemplar ring still has room, so retention is unconditional.
fn check_trace_roundtrip(client: &mut Client, rng: &mut SplitMix64) -> bool {
    let mut line = request_line(777, "maclaurin", 4, rng);
    line.insert_str(line.len() - 1, &format!(r#","trace_id":"{PROBE_TRACE_ID}""#));
    let reply = send_ok(client, &line);
    if reply.get("trace_id").and_then(Value::as_str) != Some(PROBE_TRACE_ID_FULL) {
        eprintln!("trace probe: reply did not echo the supplied trace id");
        return false;
    }
    let dump = client.exemplars().expect("exemplars request");
    let Some(exemplars) = dump.get("exemplars").and_then(Value::as_arr) else {
        eprintln!("trace probe: exemplars reply without exemplar list");
        return false;
    };
    let Some(ex) = exemplars
        .iter()
        .find(|e| e.get("trace_id").and_then(Value::as_str) == Some(PROBE_TRACE_ID_FULL))
    else {
        eprintln!("trace probe: supplied trace id not retained in the exemplar ring");
        return false;
    };
    let spans = ex.get("spans").and_then(Value::as_arr).unwrap_or(&[]);
    let has_root = spans
        .iter()
        .any(|s| s.get("path").and_then(Value::as_str) == Some("serve.request"));
    let has_child = spans.iter().any(|s| {
        s.get("path")
            .and_then(Value::as_str)
            .is_some_and(|p| p.starts_with("serve.request/"))
    });
    if !has_root || !has_child {
        eprintln!(
            "trace probe: span tree not reassemblable ({} spans, root: {has_root}, nested: {has_child})",
            spans.len()
        );
        return false;
    }
    true
}

/// `true` when every loaded kernel's sliding window saw requests. The
/// 1m span is the liveness probe: on a badly loaded box the contract
/// phase can stretch past the 10s span's retention (its rotation is
/// covered by the obs crate's unit and property tests), while 60s of
/// slack keeps the check deterministic.
fn check_windows(client: &mut Client) -> bool {
    let windows = client.window().expect("window request");
    let kernels = windows.get("kernels").and_then(Value::as_arr).unwrap_or(&[]);
    let mut ok = true;
    for kernel in KERNELS {
        let seen = kernels
            .iter()
            .find(|k| k.get("kernel").and_then(Value::as_str) == Some(kernel))
            .and_then(|k| k.get("spans"))
            .and_then(Value::as_arr)
            .and_then(|spans| {
                spans
                    .iter()
                    .find(|s| s.get("span").and_then(Value::as_str) == Some("1m"))
            })
            .and_then(|s| s.get("requests"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        if seen <= 0.0 {
            eprintln!("window check: {kernel} 1m window is empty");
            ok = false;
        }
    }
    ok
}

/// Nearest-rank percentile over an unsorted nanosecond sample.
fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

/// One measurement arm of one rep: spawns a server, primes every
/// kernel's tape, measures `requests` warm analyze requests round-robin
/// across the kernels, and returns their server-reported `server_ns`.
fn measure_arm(
    obs: bool,
    requests: usize,
    batch: usize,
    workers: usize,
    seed: u64,
    out_dir: &std::path::Path,
) -> Vec<f64> {
    if !obs {
        // Tracing is process-global and a previous traced arm leaves it
        // on; the untraced arm must actively turn it off.
        scorpio_obs::disable();
    }
    let (addr, _, handle) = spawn_server(workers, obs, false, out_dir.to_path_buf());
    let mut client = Client::connect(addr).expect("connect to server");
    let mut rng = SplitMix64::new(seed);
    for kernel in KERNELS {
        send_ok(&mut client, &request_line(1, kernel, batch, &mut rng));
        send_ok(&mut client, &request_line(2, kernel, batch, &mut rng));
    }
    let mut service_ns = Vec::with_capacity(requests);
    for i in 0..requests {
        let kernel = KERNELS[i % KERNELS.len()];
        let reply = send_ok(&mut client, &request_line(100 + i as u64, kernel, batch, &mut rng));
        assert!(
            matches!(reply.get("cached"), Some(Value::Bool(true))),
            "{kernel}: warm request missed the cache"
        );
        service_ns.push(reply.get("server_ns").and_then(Value::as_f64).unwrap_or(0.0));
    }
    client.shutdown().expect("shutdown request");
    handle.join().expect("server thread").expect("server run");
    service_ns
}

/// The live-scrape contract run: a traced server with the metrics
/// sidecar, probed and loaded. Returns
/// `(exposition_valid, exposition_samples, windows_nonempty,
/// trace_roundtrip)`.
fn run_contract(
    batch: usize,
    workers: usize,
    seed: u64,
    out_dir: &std::path::Path,
) -> (bool, u64, bool, bool) {
    let (addr, metrics_addr, handle) = spawn_server(workers, true, true, out_dir.to_path_buf());
    let mut client = Client::connect(addr).expect("connect to server");
    let mut rng = SplitMix64::new(seed);

    // Trace round-trip probe first: the exemplar ring is empty, so the
    // probe is retained unconditionally.
    let trace_roundtrip = check_trace_roundtrip(&mut client, &mut rng);

    // Load every kernel so the windows and per-kernel metrics are warm.
    for kernel in KERNELS {
        for id in 0..4 {
            send_ok(&mut client, &request_line(10 + id, kernel, batch, &mut rng));
        }
    }

    let body = client.metrics().expect("metrics verb");
    let verb_samples = match validate_exposition(&body) {
        Ok(n) => Some(n as u64),
        Err(e) => {
            eprintln!("metrics verb: invalid exposition: {e}");
            None
        }
    };
    let sidecar_body = scrape_sidecar(metrics_addr.expect("sidecar bound"));
    let sidecar_ok = match validate_exposition(&sidecar_body) {
        Ok(_) => true,
        Err(e) => {
            eprintln!("metrics sidecar: invalid exposition: {e}");
            false
        }
    };
    let windows_nonempty = check_windows(&mut client);
    client.shutdown().expect("shutdown request");
    handle.join().expect("server thread").expect("server run");
    (
        verb_samples.is_some() && sidecar_ok,
        verb_samples.unwrap_or(0),
        windows_nonempty,
        trace_roundtrip,
    )
}

fn main() -> ExitCode {
    let usize_arg = |flag: &str, default: usize| {
        arg_value(flag).map_or(default, |v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} must be a non-negative integer"))
        })
    };
    let out_dir = out_dir_arg();
    let requests = usize_arg("--requests", 120).max(KERNELS.len());
    let reps = usize_arg("--reps", 5).max(1);
    let batch = usize_arg("--batch", BATCH_DEFAULT).max(1);
    let workers = usize_arg("--workers", 2).max(1);
    let seed = usize_arg("--seed", 42) as u64;
    let bound_pct: f64 =
        arg_value("--bound").map_or(5.0, |v| v.parse().expect("--bound must be a number"));
    let per_rep = requests.div_ceil(reps).max(KERNELS.len());

    // Paired interleaved reps: off then on, back to back, so machine
    // drift lands on both arms of a rep alike.
    let mut off_ns = Vec::with_capacity(reps * per_rep);
    let mut on_ns = Vec::with_capacity(reps * per_rep);
    let mut deltas = Vec::with_capacity(reps);
    for rep in 0..reps {
        let rep_seed = seed.wrapping_add(rep as u64);
        let off = measure_arm(false, per_rep, batch, workers, rep_seed, &out_dir);
        let on = measure_arm(true, per_rep, batch, workers, rep_seed, &out_dir);
        let (p50_off, p50_on) = (percentile(&off, 0.50), percentile(&on, 0.50));
        let delta_pct = (p50_on - p50_off) / p50_off * 100.0;
        println!(
            "rep {}/{reps}: p50 off {:.1} µs, on {:.1} µs, delta {delta_pct:+.2}%",
            rep + 1,
            p50_off / 1e3,
            p50_on / 1e3
        );
        deltas.push(delta_pct);
        off_ns.extend(off);
        on_ns.extend(on);
    }
    let overhead_pct = percentile(&deltas, 0.50);
    let overhead_within_bound = overhead_pct <= bound_pct;
    println!(
        "tracing overhead: {overhead_pct:+.2}% of untraced mixed-workload p50 \
         (median of {reps} paired reps, bound {bound_pct}%) — {}",
        if overhead_within_bound { "within bound" } else { "OVER BOUND" }
    );

    let mode_row = |obs: bool, ns: &[f64]| ObsMode {
        obs,
        requests: ns.len() as u64,
        service_p50_ns: percentile(ns, 0.50),
        service_p90_ns: percentile(ns, 0.90),
        service_mean_ns: ns.iter().sum::<f64>() / ns.len().max(1) as f64,
    };
    let on = mode_row(true, &on_ns);
    let off = mode_row(false, &off_ns);

    // Live-scrape contract on a dedicated traced server, after the
    // measurement so its sidecar and probe traffic cannot perturb it.
    let (exposition_valid, exposition_samples, windows_nonempty, trace_roundtrip) =
        run_contract(batch, workers, seed, &out_dir);

    let contract = ObsContract {
        exposition_valid,
        exposition_samples,
        windows_nonempty,
        trace_roundtrip,
        overhead_within_bound,
    };
    let ok = contract.exposition_valid
        && contract.windows_nonempty
        && contract.trace_roundtrip
        && contract.overhead_within_bound;
    let report = ObsReport {
        schema: OBS_SCHEMA.to_string(),
        workers,
        requests_per_mode: (reps * per_rep) as u64,
        overhead_bound_pct: bound_pct,
        overhead_pct,
        contract,
        modes: vec![on, off],
    };
    std::fs::create_dir_all(&out_dir).expect("create --out-dir");
    let path = out_dir.join("BENCH_obs.json");
    std::fs::write(&path, json::to_string(&report) + "\n").expect("write BENCH_obs.json");
    println!("wrote {}", path.display());

    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_obs FAILED: live-observability contract violated");
        ExitCode::FAILURE
    }
}
