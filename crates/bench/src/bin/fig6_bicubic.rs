//! Figure 6: significance of the 4×4 BicubicInterp window pixels for the
//! interpolated output — the inner 2×2 pixel pairs dominate, justifying
//! the 2×2 bilinear approximate sampling.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin fig6_bicubic
//! ```

use scorpio_bench::{heat_map, matrix_table};
use scorpio_kernels::fisheye::analysis_bicubic;

fn main() {
    println!("=== Fig. 6: BicubicInterp 4×4 window significances ===\n");
    println!("interpolation point ranges over the central cell (grey box of Fig. 6i)\n");
    let (_, map) = analysis_bicubic().expect("analysis");
    let rows: Vec<Vec<f64>> = map.iter().map(|r| r.to_vec()).collect();

    println!("significance values (row = j, col = i):");
    print!("{}", matrix_table(&rows, 4));
    println!("\nheat map (darker = more significant):");
    print!("{}", heat_map(&rows));

    // The paper's pixel-pair groups (Fig. 6a–6h letters).
    let inner: f64 = (1..3).flat_map(|j| (1..3).map(move |i| map[j][i])).sum();
    let outer: f64 = (0..4)
        .flat_map(|j| (0..4).map(move |i| (i, j)))
        .filter(|&(i, j)| !(1..3).contains(&i) || !(1..3).contains(&j))
        .map(|(i, j)| map[j][i])
        .sum();
    println!("\ninner 2×2 total: {inner:.4}");
    println!("outer ring total: {outer:.4}");
    println!("inner / outer:   {:.2}×", inner / outer);
    println!(
        "\n→ the two most significant pixel pairs are the central ones\n\
         (Fig. 6c/6e): tasks with approximate InverseMapping also use\n\
         only the inner 2×2 for interpolation (transitive significance)."
    );
}
