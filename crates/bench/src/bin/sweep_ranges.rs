//! §6 future work: "extending significance analysis to a wider range of
//! input intervals to accommodate the fact that code significance is
//! input-dependent for some benchmarks" — the input-range sweep.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin sweep_ranges
//! ```

use scorpio_core::sweep::sweep_input_scale;
use scorpio_core::Analysis;

fn main() {
    let scales = [0.25, 0.5, 1.0, 1.5, 2.0];

    // ── Maclaurin: ranking is stable across widths ─────────────────────
    println!("=== maclaurin: term ranking vs input width ===\n");
    let sweep = sweep_input_scale(&Analysis::new(), &scales, |ctx| {
        let x = ctx.input_centered("x", 0.25, 0.25);
        let mut acc = ctx.constant(0.0);
        for i in 0..6 {
            let t = x.powi(i);
            ctx.intermediate(&t, format!("term{i}"));
            acc = acc + t;
        }
        ctx.output(&acc, "y");
        Ok(())
    })
    .expect("sweep");
    print!("{:<8}", "scale");
    for p in &sweep.points {
        print!(" {:>9.2}", p.scale);
    }
    println!();
    for i in 0..6 {
        let name = format!("term{i}");
        print!("{name:<8}");
        for v in sweep.trajectory(&name).unwrap() {
            print!(" {v:>9.4}");
        }
        println!();
    }
    println!(
        "ranking stability across scales: {:.0}%\n",
        sweep.ranking_stability() * 100.0
    );

    // ── BlackScholes: the block ranking's input dependence ────────────
    println!("=== blackscholes: block ranking vs parameter-range width ===\n");
    let sweep = sweep_input_scale(&Analysis::new(), &scales, |ctx| {
        let spot = ctx.input("spot", 80.0, 120.0);
        let strike = ctx.input("strike", 90.0, 110.0);
        let rate = ctx.input("rate", 0.03, 0.08);
        let vol = ctx.input("vol", 0.2, 0.5);
        let time = ctx.input("time", 0.5, 1.5);
        let sqrt_t = time.sqrt();
        let d1 = ((spot / strike).ln() + (rate + vol.sqr() * 0.5) * time) / (vol * sqrt_t);
        ctx.intermediate(&d1, "A");
        let d2 = d1 - vol * sqrt_t;
        ctx.intermediate(&d2, "B");
        let nd1 = d1.cndf();
        ctx.intermediate(&nd1, "C1");
        let nd2 = d2.cndf();
        ctx.intermediate(&nd2, "C2");
        let disc = (-(rate * time)).exp();
        ctx.intermediate(&disc, "D");
        let price = spot * nd1 - strike * disc * nd2;
        ctx.output(&price, "price");
        Ok(())
    })
    .expect("sweep");
    print!("{:<8}", "scale");
    for p in &sweep.points {
        print!(" {:>9.2}", p.scale);
    }
    println!();
    for name in ["A", "B", "C1", "C2", "D"] {
        print!("{name:<8}");
        for v in sweep.trajectory(name).unwrap() {
            print!(" {v:>9.4}");
        }
        println!();
    }
    println!(
        "ranking stability across scales: {:.0}%",
        sweep.ranking_stability() * 100.0
    );
    println!(
        "\n→ where stability is below 100%, a single-profile significance\n\
         assignment is input-dependent (the paper's §6 caveat); the sweep\n\
         pinpoints which rankings to re-derive per deployment input range."
    );
}
