//! Rate/quality view of the DCT approximation: the paper's §4.1.2 frames
//! DCT as a video-compression stage, so dropping low-significance
//! diagonals has a *second* payoff beyond compute — a smaller encoded
//! stream. This harness sweeps the ratio knob and reports PSNR, SSIM and
//! the entropy-estimated bitrate side by side.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin dct_bitrate
//! ```

use scorpio_kernels::dct::{self, codec};
use scorpio_quality::{psnr_images, ssim, GrayImage, SyntheticImage};
use scorpio_runtime::Executor;

/// Re-encodes the reconstructed image's blocks to estimate the stream
/// size the coefficients that survived approximation would need.
fn image_bits(img: &GrayImage) -> f64 {
    let blocks_x = img.width().div_ceil(dct::BLOCK);
    let blocks_y = img.height().div_ceil(dct::BLOCK);
    let mut blocks = Vec::with_capacity(blocks_x * blocks_y);
    for by in 0..blocks_y {
        for bx in 0..blocks_x {
            let mut block = [[0.0; dct::BLOCK]; dct::BLOCK];
            for (y, row) in block.iter_mut().enumerate() {
                for (x, p) in row.iter_mut().enumerate() {
                    *p = img.get_clamped(
                        (bx * dct::BLOCK + x) as isize,
                        (by * dct::BLOCK + y) as isize,
                    );
                }
            }
            blocks.push(dct::forward_block(&block));
        }
    }
    codec::estimate_image_bits(&blocks)
}

fn main() {
    let img = SyntheticImage::ValueNoise.render(128, 128, 31);
    let executor = Executor::with_available_parallelism();
    let full = dct::reference(&img);
    let full_bits = image_bits(&full);
    let pixels = (img.width() * img.height()) as f64;

    println!("=== DCT rate/quality vs the ratio knob ({}×{}) ===\n", img.width(), img.height());
    println!(
        "{:>6} {:>10} {:>8} {:>12} {:>10}",
        "ratio", "PSNR(dB)", "SSIM", "bits/pixel", "vs full"
    );
    for ratio in [1.0, 0.8, 0.6, 0.4, 0.2, 0.0] {
        let (out, _) = dct::tasked(&img, &executor, ratio);
        let bits = image_bits(&out);
        println!(
            "{ratio:>6.1} {:>10.2} {:>8.4} {:>12.3} {:>9.1}%",
            psnr_images(&full, &out).min(99.0),
            ssim(&full, &out),
            bits / pixels,
            bits / full_bits * 100.0,
        );
    }
    println!(
        "\n→ frequency truncation by significance lowers the bitrate along\n\
         with the compute: the approximation Pareto front has three axes\n\
         (quality, energy, rate), all driven by the single ratio knob."
    );
}
