//! Figure 5: significance map of the Fisheye InverseMapping kernel over
//! a 1280×960 output image — border pixels' coordinate computations are
//! the most sensitive, centre pixels the least.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin fig5_inverse_mapping
//! ```

use scorpio_bench::heat_map;
use scorpio_kernels::fisheye::{analysis_inverse_mapping, Lens};

fn main() {
    let lens = Lens::for_image(1280, 960);
    // Sample a 32×24 grid of output pixels (one analysis run each —
    // 768 profile runs, each a handful of DynDFG nodes).
    let (gw, gh) = (32usize, 24usize);
    println!(
        "=== Fig. 5: InverseMapping significance over {}×{} (grid {gw}×{gh}) ===\n",
        lens.width, lens.height
    );

    let mut rows = Vec::with_capacity(gh);
    for gy in 0..gh {
        let mut row = Vec::with_capacity(gw);
        for gx in 0..gw {
            let u = (gx as f64 + 0.5) * lens.width as f64 / gw as f64;
            let v = (gy as f64 + 0.5) * lens.height as f64 / gh as f64;
            let s = analysis_inverse_mapping(&lens, u, v).expect("analysis");
            row.push(s);
        }
        rows.push(row);
    }

    println!("heat map (darker = more significant):");
    print!("{}", heat_map(&rows));

    // Radial profile along the half-diagonal.
    println!("\nradial profile (centre → corner):");
    let (cx, cy) = lens.center();
    for k in 0..=10 {
        let t = k as f64 / 10.0;
        let u = cx + t * (cx - 2.0);
        let v = cy + t * (cy - 2.0);
        let s = analysis_inverse_mapping(&lens, u, v).expect("analysis");
        let bar = "#".repeat(((s).sqrt() * 2.0).min(70.0) as usize);
        println!("  r/rmax = {t:>4.1}: S = {s:>10.3}  {bar}");
    }
    println!(
        "\n→ the paper's Fig. 5 pattern: border blocks get high task\n\
         significance, central blocks low (the fisheye lens magnified\n\
         peripheral content, so correcting it is border-sensitive)."
    );
}
