//! Figure 5: significance map of the Fisheye InverseMapping kernel over
//! a 1280×960 output image — border pixels' coordinate computations are
//! the most sensitive, centre pixels the least.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin fig5_inverse_mapping -- [--threads N]
//! ```
//!
//! The per-pixel analyses are independent, so `--threads N` fans them
//! over the parallel analysis engine (default: serial). The map is
//! bit-identical at every thread count. `--trace <path>` additionally
//! writes a Chrome trace to `<path>` and a `RUN_fig5_inverse_mapping.json`
//! run manifest.

use scorpio_bench::{finish_trace, heat_map, out_dir_arg, threads_arg, trace_arg};
use scorpio_core::ParallelAnalysis;
use scorpio_kernels::fisheye::{analysis_inverse_mapping, analysis_inverse_mapping_grid, Lens};

fn main() {
    let threads = threads_arg().unwrap_or(1);
    let trace_path = trace_arg();
    let session = trace_path
        .as_ref()
        .map(|_| scorpio_obs::RunSession::start("fig5_inverse_mapping"));
    let lens = Lens::for_image(1280, 960);
    // Sample a 32×24 grid of output pixels (one analysis run each —
    // 768 profile runs, each a handful of DynDFG nodes).
    let (gw, gh) = (32usize, 24usize);
    println!(
        "=== Fig. 5: InverseMapping significance over {}×{} (grid {gw}×{gh}, {threads} thread{}) ===\n",
        lens.width,
        lens.height,
        if threads == 1 { "" } else { "s" }
    );

    let engine = ParallelAnalysis::new(threads);
    let flat = {
        let _span = scorpio_obs::span("grid_analysis");
        analysis_inverse_mapping_grid(&lens, gw, gh, &engine).expect("analysis")
    };
    let rows: Vec<Vec<f64>> = flat.chunks(gw).map(|r| r.to_vec()).collect();

    println!("heat map (darker = more significant):");
    print!("{}", heat_map(&rows));

    // Radial profile along the half-diagonal.
    println!("\nradial profile (centre → corner):");
    {
        let _span = scorpio_obs::span("radial_profile");
        let (cx, cy) = lens.center();
        for k in 0..=10 {
            let t = k as f64 / 10.0;
            let u = cx + t * (cx - 2.0);
            let v = cy + t * (cy - 2.0);
            let s = analysis_inverse_mapping(&lens, u, v).expect("analysis");
            let bar = "#".repeat(((s).sqrt() * 2.0).min(70.0) as usize);
            println!("  r/rmax = {t:>4.1}: S = {s:>10.3}  {bar}");
        }
    }
    println!(
        "\n→ the paper's Fig. 5 pattern: border blocks get high task\n\
         significance, central blocks low (the fisheye lens magnified\n\
         peripheral content, so correcting it is border-sensitive)."
    );

    if let Some(session) = session {
        let config = vec![
            ("threads".to_owned(), threads.to_string()),
            ("grid".to_owned(), format!("{gw}x{gh}")),
        ];
        finish_trace(session, &out_dir_arg(), threads, &config, trace_path.as_deref());
    }
}
