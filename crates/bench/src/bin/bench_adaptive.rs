//! Adaptive-controller ablation: closed-loop ratio control vs the best
//! static ratio, per kernel.
//!
//! For each of the five benchmarks this harness (1) measures the static
//! quality-vs-ratio curve on the Fig. 7 ratio grid, (2) picks the
//! cheapest grid point meeting the kernel's quality target (the "best
//! static" yardstick), and (3) lets an
//! `scorpio_runtime::controller::adaptive::AdaptiveController` — seeded
//! from that same curve — search for the cheapest ratio online, one
//! execution per controller step. The verdicts land in
//! `BENCH_adaptive.json` (`scorpio-adaptive-v1`), which
//! `scorpio_diff --gate` checks against `baselines/`: on every kernel
//! with a non-flat curve the controller must converge, meet its target,
//! and spend no more modeled energy than the best static ratio.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin bench_adaptive \
//!     [--small] [--threads N] [--out-dir DIR] [--kernel NAME] \
//!     [--target Q] [--trace trace.json]
//! ```
//!
//! `--kernel NAME` restricts the run to one benchmark; `--target Q`
//! overrides the kernel's default threshold (keeping its metric
//! direction) — mostly useful together with `--kernel`, since one
//! number rarely fits PSNR and relative-error kernels at once.
//!
//! Observability is always on: the run writes a
//! `RUN_bench_adaptive.json` manifest and an
//! `EVENTS_bench_adaptive.jsonl` log whose `ratio_decision` events are
//! the controller's full decision sequence (one per observation, with
//! before/after ratios and the quality signal). `--trace <path>` adds a
//! Chrome-trace file.

use scorpio_bench::{
    adaptive::{resolve_objective, run_adaptive, MAX_STEPS},
    arg_value, finish_trace, out_dir_arg, threads_arg, trace_arg, AdaptiveKernel, AdaptiveReport,
    QorKernel, QorPoint, ADAPTIVE_SCHEMA,
};
use scorpio_kernels::{blackscholes, dct, fisheye, nbody, sobel};
use scorpio_quality::{psnr_images, relative_error_l2, SyntheticImage};
use scorpio_runtime::{EnergyModel, ExecutionStats, Executor};

const RATIOS: [f64; 5] = [0.0, 0.2, 0.5, 0.8, 1.0];

/// Measures one kernel's static curve on the ratio grid, then runs the
/// closed loop against it.
fn run_kernel(
    name: &'static str,
    metric: &'static str,
    model: &EnergyModel,
    target_override: Option<f64>,
    mut eval: impl FnMut(f64) -> (f64, ExecutionStats),
) -> AdaptiveKernel {
    let _span = scorpio_obs::span(name);
    let mut points = Vec::new();
    for &ratio in &RATIOS {
        scorpio_obs::ratio_event(name, ratio);
        let t0 = std::time::Instant::now();
        let (quality, stats) = eval(ratio);
        let ns = t0.elapsed().as_nanos() as u64;
        points.push(QorPoint {
            ratio,
            quality,
            energy_j: model.energy(&stats),
            achieved_ratio: stats.accurate as f64 / stats.total().max(1) as f64,
            accurate: stats.accurate as u64,
            approximate: stats.approximate as u64,
            dropped: stats.dropped as u64,
            time_ns_samples: vec![ns],
        });
    }
    let curve = QorKernel {
        name: name.to_owned(),
        metric: metric.to_owned(),
        higher_is_better: metric == "psnr_db",
        points,
    };
    let objective = resolve_objective(name, target_override);
    run_adaptive(&curve, objective, MAX_STEPS, model, &mut eval)
}

fn print_verdict(k: &AdaptiveKernel) {
    println!("\n=== {} ({} {} {}) ===", k.name, k.metric, k.target_kind, k.target);
    match &k.best_static {
        Some(s) => println!(
            "best static : ratio {:.2}, quality {:.4}, {:.4} J",
            s.ratio, s.quality, s.energy_j
        ),
        None => println!("best static : none (no grid point meets the target)"),
    }
    println!(
        "adaptive    : ratio {:.3}, quality {:.4}, {:.4} J — {} steps ({} evals), converged: {}{}",
        k.adaptive.final_ratio,
        k.adaptive.quality,
        k.adaptive.energy_j,
        k.adaptive.steps,
        k.adaptive.evals,
        k.adaptive.converged,
        match k.adaptive.converged_step {
            Some(s) => format!(" (at step {s})"),
            None => String::new(),
        }
    );
    println!(
        "verdict     : target met: {}, dominates static: {}{}",
        k.target_met,
        k.dominates,
        if k.non_flat { "" } else { " (flat curve — exempt)" }
    );
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let out_dir = out_dir_arg();
    let only = arg_value("--kernel");
    let target_override: Option<f64> = arg_value("--target").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("invalid --target value {v:?}"))
    });
    let trace_path = trace_arg();
    // Observability is always on here: the controller's decision events
    // are part of the harness's contract (they document *why* the final
    // ratio is what it is), so the run manifest is not optional.
    let session = scorpio_obs::RunSession::start("bench_adaptive");
    let executor = match threads_arg() {
        Some(threads) => Executor::new(threads),
        None => Executor::with_available_parallelism(),
    };
    let model = EnergyModel::xeon_e5_2695v3();
    let want = |name: &str| only.as_deref().is_none_or(|o| o == name);
    let mut known = Vec::new();
    let mut kernels: Vec<AdaptiveKernel> = Vec::new();

    known.push("sobel");
    if want("sobel") {
        let size = if small { 96 } else { 512 };
        let img = SyntheticImage::GaussianBlobs.render(size, size, 101);
        let full = sobel::reference(&img);
        kernels.push(run_kernel("sobel", "psnr_db", &model, target_override, |r| {
            let (out, stats) = sobel::tasked(&img, &executor, r);
            (psnr_images(&full, &out).min(99.0), stats)
        }));
    }

    known.push("dct");
    if want("dct") {
        let size = if small { 96 } else { 256 };
        let img = SyntheticImage::GaussianBlobs.render(size, size, 202);
        let full = dct::reference(&img);
        kernels.push(run_kernel("dct", "psnr_db", &model, target_override, |r| {
            let (out, stats) = dct::tasked(&img, &executor, r);
            (psnr_images(&full, &out).min(99.0), stats)
        }));
    }

    known.push("fisheye");
    if want("fisheye") {
        let (w, h, bw, bh) = if small {
            (160, 120, 32, 24)
        } else {
            (1280, 960, 128, 64)
        };
        let lens = fisheye::Lens::for_image(w, h);
        let img = SyntheticImage::ValueNoise.render(w, h, 303);
        let full = fisheye::reference(&img, &lens);
        kernels.push(run_kernel("fisheye", "psnr_db", &model, target_override, |r| {
            let (out, stats) = fisheye::tasked_with_blocks(&img, &lens, &executor, r, bw, bh);
            (psnr_images(&full, &out).min(99.0), stats)
        }));
    }

    known.push("nbody");
    if want("nbody") {
        let params = if small {
            nbody::Params::small()
        } else {
            nbody::Params::evaluation()
        };
        let exact = nbody::reference(&params).flatten();
        kernels.push(run_kernel("nbody", "rel_error", &model, target_override, |r| {
            let (state, stats) = nbody::tasked(&params, &executor, r);
            (relative_error_l2(&exact, &state.flatten()).max(1e-18), stats)
        }));
    }

    known.push("blackscholes");
    if want("blackscholes") {
        let n = if small { 4096 } else { 65_536 };
        let options = blackscholes::generate_options(n, 404);
        let exact = blackscholes::reference(&options);
        kernels.push(run_kernel(
            "blackscholes",
            "rel_error",
            &model,
            target_override,
            |r| {
                let (prices, stats) = blackscholes::tasked(&options, 256, &executor, r);
                (relative_error_l2(&exact, &prices).max(1e-18), stats)
            },
        ));
    }

    if let Some(o) = only.as_deref() {
        assert!(known.contains(&o), "unknown --kernel {o:?} (have: {known:?})");
    }

    for k in &kernels {
        print_verdict(k);
    }
    let failing: Vec<String> = kernels
        .iter()
        .filter(|k| k.non_flat && !(k.target_met && k.dominates && k.adaptive.converged))
        .map(|k| k.name.clone())
        .collect();

    let degraded = scorpio_obs::events_dropped() > 0;
    if degraded {
        eprintln!(
            "warning: {} task events were dropped — marking report degraded",
            scorpio_obs::events_dropped()
        );
    }
    let report = AdaptiveReport {
        schema: ADAPTIVE_SCHEMA.to_owned(),
        name: "bench_adaptive".to_owned(),
        git: scorpio_obs::git_describe(),
        threads: executor.threads(),
        small,
        degraded,
        kernels,
    };
    std::fs::create_dir_all(&out_dir).expect("create --out-dir");
    let path = out_dir.join("BENCH_adaptive.json");
    std::fs::write(&path, report.to_json()).expect("write BENCH_adaptive.json");
    println!(
        "\nwrote {} ({} kernels, adaptive vs best static)",
        path.display(),
        report.kernels.len()
    );
    if failing.is_empty() {
        println!("all non-flat kernels: target met at energy ≤ best static");
    } else {
        println!("NOT dominating on: {failing:?}");
    }

    let mut config = vec![
        ("small".to_owned(), small.to_string()),
        ("threads".to_owned(), executor.threads().to_string()),
    ];
    if let Some(k) = only {
        config.push(("kernel".to_owned(), k));
    }
    if let Some(q) = target_override {
        config.push(("target".to_owned(), q.to_string()));
    }
    finish_trace(
        session,
        &out_dir,
        executor.threads(),
        &config,
        trace_path.as_deref(),
    );
}
