//! `top` for a running scorpio_serve daemon: a refreshing per-kernel
//! table of sliding-window SLO telemetry.
//!
//! ```text
//! scorpio_top --addr 127.0.0.1:7070 [--interval-ms 1000] [--count N]
//!             [--span 10s|1m|5m] [--no-clear]
//! ```
//!
//! Each tick polls the `stats` and `window` verbs over one protocol
//! connection and renders request rate, error rate, latency quantiles,
//! cache hit rate and requested→achieved ratio per kernel, plus the
//! server-lifetime header (uptime, totals, drop counters). `--count N`
//! bounds the number of refreshes (`--count 1` prints one table and
//! exits — the verify workflow's smoke); without it the loop runs until
//! the server goes away or the process is interrupted. `--no-clear`
//! appends tables instead of redrawing in place (for logs/pipes).

use std::process::ExitCode;

use scorpio_bench::{arg_value, flag_present};
use scorpio_obs::json::Value;
use scorpio_serve::Client;

fn fmt_ms(ns: Option<f64>) -> String {
    match ns {
        Some(ns) if ns > 0.0 => format!("{:.2}", ns / 1e6),
        _ => "-".to_string(),
    }
}

fn fmt_pct(frac: Option<f64>) -> String {
    match frac {
        Some(f) if f.is_finite() => format!("{:.1}%", f * 100.0),
        _ => "-".to_string(),
    }
}

fn fmt_ratio(v: Option<f64>) -> String {
    match v {
        Some(f) if f.is_finite() => format!("{f:.2}"),
        _ => "-".to_string(),
    }
}

fn num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

/// Renders one refresh: the lifetime header from `stats` and the
/// per-kernel table from `window`.
fn render(stats: &Value, window: &Value, span: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let uptime_s = num(stats, "uptime_ms").unwrap_or(0.0) / 1e3;
    let _ = writeln!(
        out,
        "scorpio_serve up {uptime_s:.0}s — {} requests, {} errors, cache {} hits / {} misses, dropped {} events / {} spans",
        num(stats, "requests").unwrap_or(0.0),
        num(stats, "errors").unwrap_or(0.0),
        stats.get("cache").and_then(|c| num(c, "hits")).unwrap_or(0.0),
        stats.get("cache").and_then(|c| num(c, "misses")).unwrap_or(0.0),
        num(stats, "events_dropped").unwrap_or(0.0),
        num(stats, "spans_dropped").unwrap_or(0.0),
    );
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>7} {:>9} {:>9} {:>9} {:>7} {:>11}   [{span} window]",
        "KERNEL", "REQ/S", "ERR", "P50 MS", "P90 MS", "P99 MS", "HIT", "RATIO r→a"
    );
    let empty = Vec::new();
    let kernels = window.get("kernels").and_then(Value::as_arr).unwrap_or(&empty);
    for k in kernels {
        let name = k.get("kernel").and_then(Value::as_str).unwrap_or("?");
        let Some(w) = k
            .get("spans")
            .and_then(Value::as_arr)
            .and_then(|spans| {
                spans
                    .iter()
                    .find(|s| s.get("span").and_then(Value::as_str) == Some(span))
            })
        else {
            continue;
        };
        if num(w, "requests").unwrap_or(0.0) <= 0.0 {
            continue;
        }
        let ratio = format!(
            "{}→{}",
            fmt_ratio(num(w, "requested_ratio")),
            fmt_ratio(num(w, "achieved_ratio"))
        );
        let _ = writeln!(
            out,
            "{:<14} {:>8.2} {:>7} {:>9} {:>9} {:>9} {:>7} {:>11}",
            name,
            num(w, "rate_per_s").unwrap_or(0.0),
            fmt_pct(num(w, "error_rate")),
            fmt_ms(num(w, "p50_ns")),
            fmt_ms(num(w, "p90_ns")),
            fmt_ms(num(w, "p99_ns")),
            fmt_pct(num(w, "cache_hit_rate")),
            ratio,
        );
    }
    if kernels.iter().all(|k| {
        k.get("spans")
            .and_then(Value::as_arr)
            .and_then(|spans| {
                spans
                    .iter()
                    .find(|s| s.get("span").and_then(Value::as_str) == Some(span))
            })
            .and_then(|w| num(w, "requests"))
            .unwrap_or(0.0)
            <= 0.0
    }) {
        let _ = writeln!(out, "(no traffic in the {span} window)");
    }
    out
}

fn main() -> ExitCode {
    let addr = arg_value("--addr").unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let interval_ms: u64 = arg_value("--interval-ms")
        .map_or(1000, |v| v.parse().expect("--interval-ms must be an integer"));
    let count: Option<u64> =
        arg_value("--count").map(|v| v.parse().expect("--count must be an integer"));
    let span = arg_value("--span").unwrap_or_else(|| "10s".to_string());
    assert!(
        ["10s", "1m", "5m"].contains(&span.as_str()),
        "--span must be one of 10s, 1m, 5m"
    );
    let clear = !flag_present("--no-clear") && count != Some(1);

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("scorpio_top: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ticks = 0u64;
    loop {
        let (stats, window) = match (client.stats(), client.window()) {
            (Ok(s), Ok(w)) => (s, w),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("scorpio_top: server at {addr} went away: {e}");
                return ExitCode::FAILURE;
            }
        };
        let table = render(&stats, &window, &span);
        if clear {
            // ANSI clear + home: redraw in place.
            print!("\x1b[2J\x1b[H");
        }
        print!("{table}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        ticks += 1;
        if count.is_some_and(|c| ticks >= c) {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpio_obs::json::parse;

    #[test]
    fn render_formats_active_kernels_and_header() {
        let stats = parse(
            r#"{"uptime_ms":12000,"requests":40,"errors":1,
                "cache":{"hits":30,"misses":10},
                "events_dropped":0,"spans_dropped":0}"#,
        )
        .unwrap();
        let window = parse(
            r#"{"kernels":[
                {"kernel":"maclaurin","spans":[
                    {"span":"10s","requests":12,"rate_per_s":1.2,
                     "error_rate":0.0,"p50_ns":95000.0,"p90_ns":120000.0,
                     "p99_ns":150000.0,"cache_hit_rate":0.9,
                     "requested_ratio":0.7,"achieved_ratio":0.72}]},
                {"kernel":"sobel","spans":[
                    {"span":"10s","requests":0}]}
            ]}"#,
        )
        .unwrap();
        let out = render(&stats, &window, "10s");
        assert!(out.contains("up 12s"), "header uptime: {out}");
        assert!(out.contains("maclaurin"), "active kernel row: {out}");
        assert!(out.contains("0.70→0.72"), "ratio column: {out}");
        assert!(!out.contains("sobel"), "idle kernel skipped: {out}");
    }

    #[test]
    fn render_reports_idle_window() {
        let stats = parse(r#"{"uptime_ms":1000,"requests":0,"errors":0}"#).unwrap();
        let window = parse(r#"{"kernels":[]}"#).unwrap();
        let out = render(&stats, &window, "1m");
        assert!(out.contains("no traffic in the 1m window"), "{out}");
    }
}
