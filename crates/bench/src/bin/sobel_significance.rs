//! §4.1.1: Sobel convolution block ranking — block A (coefficients ±2)
//! is twice as significant as blocks B and C (coefficients ±1), and the
//! combine stage shows little variance.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin sobel_significance
//! ```

use scorpio_kernels::sobel;

fn main() {
    println!("=== §4.1.1: Sobel block significances ===\n");
    let report = sobel::analysis().expect("analysis");
    print!("{report}");

    let a = sobel::part_significance(&report, sobel::Part::A);
    let b = sobel::part_significance(&report, sobel::Part::B);
    let c = sobel::part_significance(&report, sobel::Part::C);
    println!("\nper-part significances:");
    println!("  A (±2 coefficients): {a:.4}");
    println!("  B (±1 corner, Gx):   {b:.4}");
    println!("  C (±1 corner, Gy):   {c:.4}");
    println!("  A / B = {:.3}   A / C = {:.3}", a / b, a / c);

    println!("\ntask significances derived for the runtime:");
    for part in sobel::Part::all() {
        println!(
            "  part {part:?}: significance({}) {}",
            part.significance(),
            if part.significance() >= 1.0 {
                "→ always accurate"
            } else {
                "→ accurate only when the ratio demands it"
            }
        );
    }
    println!(
        "\n→ with one third of the convolution tasks at significance 1.0,\n\
         B and C only execute accurately above ratio 1/3 (§4.1.1)."
    );
}
