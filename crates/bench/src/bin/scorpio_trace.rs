//! Span-waterfall viewer for a running scorpio_serve daemon's
//! tail-retained exemplars.
//!
//! ```text
//! scorpio_trace --addr 127.0.0.1:7070 [--limit N] [--id HEX] [--errors]
//! ```
//!
//! Fetches the `exemplars` verb (the bounded ring of slowest requests
//! plus recent errors), picks the `--limit` slowest (default 5) — or
//! the one matching `--id`, or only errors with `--errors` — and
//! renders each as an indented span waterfall: one row per span, a bar
//! scaled to the request's wall clock, and a per-span self-time column
//! (duration minus direct children). The footer attributes the
//! request's critical path: the chain of largest-child spans from the
//! root, with each hop's self time — where the latency actually went.

use std::process::ExitCode;

use scorpio_bench::{arg_value, flag_present};
use scorpio_obs::json::Value;
use scorpio_serve::Client;

const BAR_WIDTH: usize = 32;

/// One span row lifted out of the exemplar JSON.
#[derive(Debug, Clone)]
struct Span {
    path: String,
    name: String,
    start_ns: f64,
    dur_ns: f64,
    depth: usize,
}

fn spans_of(exemplar: &Value) -> Vec<Span> {
    let empty = Vec::new();
    exemplar
        .get("spans")
        .and_then(Value::as_arr)
        .unwrap_or(&empty)
        .iter()
        .map(|s| Span {
            path: s.get("path").and_then(Value::as_str).unwrap_or("?").to_string(),
            name: s.get("name").and_then(Value::as_str).unwrap_or("?").to_string(),
            start_ns: s.get("start_ns").and_then(Value::as_f64).unwrap_or(0.0),
            dur_ns: s.get("dur_ns").and_then(Value::as_f64).unwrap_or(0.0),
            depth: s.get("depth").and_then(Value::as_f64).unwrap_or(0.0) as usize,
        })
        .collect()
}

fn parent_path(path: &str) -> Option<&str> {
    path.rsplit_once('/').map(|(parent, _)| parent)
}

/// Sum of the direct children's durations of `span`.
fn children_ns(spans: &[Span], span: &Span) -> f64 {
    spans
        .iter()
        .filter(|c| parent_path(&c.path) == Some(span.path.as_str()))
        .map(|c| c.dur_ns)
        .sum()
}

/// Self time: duration not covered by direct children (clamped at 0 —
/// children from other worker threads can overlap the parent).
fn self_ns(spans: &[Span], span: &Span) -> f64 {
    (span.dur_ns - children_ns(spans, span)).max(0.0)
}

fn fmt_us(ns: f64) -> String {
    format!("{:.1} µs", ns / 1e3)
}

/// The chain of largest direct children from the root span down, with
/// each hop's self time — the request's critical path.
fn critical_path(spans: &[Span]) -> Vec<(String, f64)> {
    let mut chain = Vec::new();
    let Some(mut cur) = spans
        .iter()
        .filter(|s| !s.path.contains('/'))
        .max_by(|a, b| a.dur_ns.total_cmp(&b.dur_ns))
    else {
        return chain;
    };
    loop {
        chain.push((cur.name.clone(), self_ns(spans, cur)));
        let next = spans
            .iter()
            .filter(|c| parent_path(&c.path) == Some(cur.path.as_str()))
            .max_by(|a, b| a.dur_ns.total_cmp(&b.dur_ns));
        match next {
            Some(n) => cur = n,
            None => return chain,
        }
    }
}

/// Renders one exemplar: header, waterfall, critical-path footer.
fn render(exemplar: &Value) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let trace_id = exemplar.get("trace_id").and_then(Value::as_str).unwrap_or("?");
    let kernel = exemplar.get("kernel").and_then(Value::as_str).unwrap_or("?");
    let ok = matches!(exemplar.get("ok"), Some(Value::Bool(true)));
    let cached = matches!(exemplar.get("cached"), Some(Value::Bool(true)));
    let latency = exemplar.get("latency_ns").and_then(Value::as_f64).unwrap_or(0.0);
    let events = exemplar
        .get("events")
        .and_then(Value::as_arr)
        .map_or(0, <[Value]>::len);
    let mut spans = spans_of(exemplar);
    let _ = writeln!(
        out,
        "trace {trace_id}  {kernel}  {}{}  latency {}  ({} spans, {events} events)",
        if ok { "ok" } else { "ERROR" },
        if cached { " cached" } else { "" },
        fmt_us(latency),
        spans.len(),
    );
    if spans.is_empty() {
        let _ = writeln!(out, "  (no spans captured — server tracing off?)");
        return out;
    }
    spans.sort_by(|a, b| a.start_ns.total_cmp(&b.start_ns).then(a.depth.cmp(&b.depth)));
    let t0 = spans.iter().map(|s| s.start_ns).fold(f64::INFINITY, f64::min);
    let t1 = spans
        .iter()
        .map(|s| s.start_ns + s.dur_ns)
        .fold(f64::NEG_INFINITY, f64::max);
    let total = (t1 - t0).max(1.0);
    let name_width = spans
        .iter()
        .map(|s| s.name.len() + 2 * s.depth)
        .max()
        .unwrap_or(0);
    for s in &spans {
        let indent = "  ".repeat(s.depth);
        let offset = ((s.start_ns - t0) / total * BAR_WIDTH as f64).floor() as usize;
        let offset = offset.min(BAR_WIDTH - 1);
        let len = ((s.dur_ns / total) * BAR_WIDTH as f64).ceil() as usize;
        let len = len.clamp(1, BAR_WIDTH - offset);
        let mut bar = String::with_capacity(BAR_WIDTH);
        bar.push_str(&".".repeat(offset));
        bar.push_str(&"#".repeat(len));
        bar.push_str(&".".repeat(BAR_WIDTH - offset - len));
        let _ = writeln!(
            out,
            "  {indent}{:<pad$} {:>10} {:>10}  |{bar}|",
            s.name,
            fmt_us(s.dur_ns),
            fmt_us(self_ns(&spans, s)),
            pad = name_width - 2 * s.depth,
        );
    }
    let chain = critical_path(&spans);
    if !chain.is_empty() {
        let rendered: Vec<String> = chain
            .iter()
            .map(|(name, self_t)| format!("{name} (self {})", fmt_us(*self_t)))
            .collect();
        let _ = writeln!(out, "  critical path: {}", rendered.join(" -> "));
    }
    out
}

fn main() -> ExitCode {
    let addr = arg_value("--addr").unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let limit: usize =
        arg_value("--limit").map_or(5, |v| v.parse().expect("--limit must be an integer"));
    let id = arg_value("--id");
    let errors_only = flag_present("--errors");

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("scorpio_trace: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dump = match client.exemplars() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("scorpio_trace: exemplars request failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let empty = Vec::new();
    let mut exemplars: Vec<&Value> = dump
        .get("exemplars")
        .and_then(Value::as_arr)
        .unwrap_or(&empty)
        .iter()
        .filter(|e| {
            if errors_only && matches!(e.get("ok"), Some(Value::Bool(true))) {
                return false;
            }
            match &id {
                // Match full ids and unpadded suffixes alike.
                Some(id) => e
                    .get("trace_id")
                    .and_then(Value::as_str)
                    .is_some_and(|t| t == id || t.trim_start_matches('0') == id.trim_start_matches('0')),
                None => true,
            }
        })
        .collect();
    exemplars.sort_by(|a, b| {
        let la = a.get("latency_ns").and_then(Value::as_f64).unwrap_or(0.0);
        let lb = b.get("latency_ns").and_then(Value::as_f64).unwrap_or(0.0);
        lb.total_cmp(&la)
    });
    exemplars.truncate(limit.max(1));
    if exemplars.is_empty() {
        println!(
            "no exemplars retained{} ({} requests passed the ring)",
            if id.is_some() { " for that id" } else { "" },
            dump.get("passed").and_then(Value::as_f64).unwrap_or(0.0)
        );
        return ExitCode::SUCCESS;
    }
    for (i, exemplar) in exemplars.iter().enumerate() {
        if i > 0 {
            println!();
        }
        print!("{}", render(exemplar));
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpio_obs::json::parse;

    fn sample() -> Value {
        parse(
            r#"{"trace_id":"0000000000c0ffee","kernel":"maclaurin","ok":true,
                "cached":true,"latency_ns":100000.0,
                "spans":[
                  {"path":"serve.request","name":"serve.request",
                   "start_ns":1000.0,"dur_ns":100000.0,"tid":0,"depth":0},
                  {"path":"serve.request/serve.analyze","name":"serve.analyze",
                   "start_ns":2000.0,"dur_ns":80000.0,"tid":0,"depth":1},
                  {"path":"serve.request/serve.serialize","name":"serve.serialize",
                   "start_ns":90000.0,"dur_ns":5000.0,"tid":0,"depth":1}],
                "events":[]}"#,
        )
        .unwrap()
    }

    #[test]
    fn render_shows_tree_and_critical_path() {
        let out = render(&sample());
        assert!(out.contains("trace 0000000000c0ffee"), "{out}");
        assert!(out.contains("serve.analyze"), "{out}");
        // Root self time excludes both children: 100 − 85 = 15 µs.
        assert!(
            out.contains("critical path: serve.request (self 15.0 µs) -> serve.analyze (self 80.0 µs)"),
            "{out}"
        );
    }

    #[test]
    fn critical_path_picks_largest_child() {
        let spans = spans_of(&sample());
        let chain = critical_path(&spans);
        let names: Vec<&str> = chain.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["serve.request", "serve.analyze"]);
    }
}
