//! Soundness-audit battery: runs the differential containment oracles
//! of `scorpio_core::audit` over the paper's five evaluation kernels
//! (plus the Maclaurin worked example), the cross-mode bit-identity
//! oracle, and a random-DAG fuzz sweep over every operator family,
//! then writes `AUDIT.json` and exits non-zero if any oracle observed
//! a violation.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin scorpio_audit            # full battery
//! cargo run --release -p scorpio-bench --bin scorpio_audit -- --quick # CI-sized
//! ```
//!
//! Full mode samples ≥ 100 000 concrete points per kernel; `--quick`
//! drops to 2 000 points and a smaller fuzz sweep (seconds, suitable
//! for the verify recipe). `--trace <path>` writes a Chrome trace and
//! a `RUN_scorpio_audit.json` run manifest.

use std::fmt::Write as _;
use std::time::Instant;

use scorpio_bench::{finish_trace, out_dir_arg, trace_arg};
use scorpio_core::audit::{
    audit_containment, audit_cross_mode, minimal_repro, AuditConfig, AuditOutcome, DagSpec,
    OpFamily, SplitMix64,
};
use scorpio_core::Report;
use scorpio_kernels::{blackscholes, dct, fisheye, maclaurin, nbody, sobel};

/// One kernel's aggregated battery result.
struct KernelResult {
    name: &'static str,
    reports: usize,
    outcome: AuditOutcome,
    empty_nodes: usize,
    secs: f64,
}

/// Audits `reports`, splitting `total_points` across them evenly.
fn audit_kernel(
    name: &'static str,
    reports: &[Report],
    total_points: usize,
    seed: u64,
) -> KernelResult {
    let t0 = Instant::now();
    let per_report = (total_points / reports.len()).max(1);
    let mut outcome = AuditOutcome::empty();
    let mut empty_nodes = 0;
    for (i, report) in reports.iter().enumerate() {
        let cfg = AuditConfig {
            points: per_report,
            seed: seed ^ (i as u64).wrapping_mul(0x9E37_79B9),
            max_violations: 16,
        };
        outcome.merge(&audit_containment(report, &cfg), 16);
        empty_nodes += report.empty_enclosures().len();
    }
    KernelResult {
        name,
        reports: reports.len(),
        outcome,
        empty_nodes,
        secs: t0.elapsed().as_secs_f64(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trace_path = trace_arg();
    let session = trace_path
        .as_ref()
        .map(|_| scorpio_obs::RunSession::start("scorpio_audit"));
    let points_per_kernel: usize = if quick { 2_000 } else { 100_000 };
    let fuzz_cases_per_family: usize = if quick { 60 } else { 1_000 };
    let fuzz_points: usize = if quick { 30 } else { 60 };
    let t_start = Instant::now();

    println!(
        "=== scorpio_audit: {} points/kernel, {} fuzz cases/family ===\n",
        points_per_kernel, fuzz_cases_per_family
    );

    // ── Kernel batteries ─────────────────────────────────────────────
    // Small-trace kernels spread their point budget over several
    // operating points; the large-trace ones (Sobel, DCT, the full
    // BlackScholes chain) use a single report.
    let kernels = {
        let _span = scorpio_obs::span("kernel_batteries");
        let maclaurin_reports: Vec<Report> = [0.2, 0.49, 0.8, 1.2]
            .iter()
            .map(|&x0| maclaurin::analysis(x0, 8).expect("maclaurin analysis"))
            .collect();
        let sobel_reports = vec![sobel::analysis().expect("sobel analysis")];
        let dct_reports = vec![dct::analysis_default().expect("dct analysis")];
        let bs_reports = vec![blackscholes::analysis().expect("blackscholes analysis")];
        let lens = fisheye::Lens::for_image(1280, 960);
        let fisheye_reports: Vec<Report> = [(640.0, 480.0), (200.0, 150.0), (1100.0, 900.0)]
            .iter()
            .map(|&(u, v)| {
                fisheye::analysis_inverse_mapping_report(&lens, u, v).expect("fisheye analysis")
            })
            .collect();
        let nbody_reports: Vec<Report> = [(1.0, 0.05), (1.5, 0.1), (2.5, 0.2)]
            .iter()
            .map(|&(r0, rad)| nbody::analysis_pair_report(r0, rad).expect("nbody analysis"))
            .collect();

        [
            audit_kernel("maclaurin", &maclaurin_reports, points_per_kernel, 0xA11D_0001),
            audit_kernel("sobel", &sobel_reports, points_per_kernel, 0xA11D_0002),
            audit_kernel("dct", &dct_reports, points_per_kernel, 0xA11D_0003),
            audit_kernel("blackscholes", &bs_reports, points_per_kernel, 0xA11D_0004),
            audit_kernel("fisheye", &fisheye_reports, points_per_kernel, 0xA11D_0005),
            audit_kernel("nbody", &nbody_reports, points_per_kernel, 0xA11D_0006),
        ]
    };

    let mut total_violations = 0u64;
    for k in &kernels {
        total_violations += k.outcome.violation_count;
        println!(
            "{:<13} {:>2} report(s)  {:>10} checks  {:>3} violations  {:>8} domain misses  \
             {:>2} empty nodes  {:.2}s",
            k.name,
            k.reports,
            k.outcome.checks,
            k.outcome.violation_count,
            k.outcome.domain_misses,
            k.empty_nodes,
            k.secs
        );
        for v in &k.outcome.violations {
            println!("    {v}");
        }
    }

    // ── Cross-mode bit-identity ──────────────────────────────────────
    println!("\ncross-mode bit-identity:");
    let mut cross_results: Vec<(&'static str, usize, bool, usize)> = Vec::new();
    {
        let _span = scorpio_obs::span("cross_mode");
        let cross = audit_cross_mode(|ctx| {
            let x = ctx.input_centered("x", 0.49, 0.5);
            let mut acc = ctx.constant(0.0);
            for i in 0..8 {
                acc = acc + x.powi(i);
            }
            ctx.output(&acc, "result");
            Ok(())
        })
        .expect("cross-mode maclaurin");
        cross_results.push(("maclaurin", cross.nodes, cross.replayed, cross.mismatches.len()));
        let mut fuzz_rng = SplitMix64::new(0xC105_5AFE);
        for family in OpFamily::ALL {
            let spec = DagSpec::random(family, &mut fuzz_rng);
            let out = audit_cross_mode(|ctx| spec.register(ctx)).expect("cross-mode dag");
            cross_results.push((family.name(), out.nodes, out.replayed, out.mismatches.len()));
        }
    }
    let mut cross_mismatches = 0usize;
    for (name, nodes, replayed, mismatches) in &cross_results {
        cross_mismatches += mismatches;
        println!(
            "  {:<15} {:>5} nodes  replayed={}  {} mismatch(es)",
            name, nodes, replayed, mismatches
        );
    }

    // ── Random-DAG fuzz sweep ────────────────────────────────────────
    println!("\nDAG fuzz sweep ({fuzz_cases_per_family} cases/family):");
    let mut fuzz_violations = 0u64;
    let mut fuzz_summaries: Vec<(&'static str, u64, u64)> = Vec::new();
    let _fuzz_span = scorpio_obs::span("dag_fuzz");
    for family in OpFamily::ALL {
        let mut rng = SplitMix64::new(0xDA6_0000 + family as u64);
        let mut checks = 0u64;
        let mut fam_violations = 0u64;
        for case in 0..fuzz_cases_per_family {
            let spec = DagSpec::random(family, &mut rng);
            let cfg = AuditConfig {
                points: fuzz_points,
                seed: 0xF12_0000 + case as u64,
                max_violations: 4,
            };
            let out = spec.audit(&cfg).expect("dag analysis");
            checks += out.checks;
            if !out.is_sound() {
                fam_violations += out.violation_count;
                let fails = |s: &DagSpec| {
                    s.audit(&cfg).map(|o| !o.is_sound()).unwrap_or(false)
                };
                let small = minimal_repro(&spec, &fails);
                println!(
                    "  {} case {case}: {} violation(s); minimal repro:\n{small}",
                    family.name(),
                    out.violation_count
                );
                for v in &out.violations {
                    println!("    {v}");
                }
            }
        }
        fuzz_violations += fam_violations;
        fuzz_summaries.push((family.name(), checks, fam_violations));
        println!(
            "  {:<15} {:>10} checks  {} violation(s)",
            family.name(),
            checks,
            fam_violations
        );
    }
    drop(_fuzz_span);

    // ── Aggregate coverage ───────────────────────────────────────────
    let mut total = AuditOutcome::empty();
    for k in &kernels {
        total.merge(&k.outcome, 0);
    }
    println!("\nper-op coverage (kernel batteries):");
    for (mnemonic, count) in total.coverage() {
        println!("  {mnemonic:<8} {count}");
    }

    let wall = t_start.elapsed().as_secs_f64();
    let sound = total_violations == 0 && fuzz_violations == 0 && cross_mismatches == 0;

    // ── AUDIT.json ───────────────────────────────────────────────────
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"points_per_kernel\": {points_per_kernel},");
    let _ = writeln!(json, "  \"kernels\": [");
    for (i, k) in kernels.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"reports\": {}, \"points\": {}, \"checks\": {}, \
             \"violations\": {}, \"domain_misses\": {}, \"empty_nodes\": {}, \
             \"seconds\": {:.3}}}{}",
            k.name,
            k.reports,
            k.outcome.points,
            k.outcome.checks,
            k.outcome.violation_count,
            k.outcome.domain_misses,
            k.empty_nodes,
            k.secs,
            if i + 1 < kernels.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"cross_mode\": [");
    for (i, (name, nodes, replayed, mismatches)) in cross_results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"nodes\": {nodes}, \"replayed\": {replayed}, \
             \"mismatches\": {mismatches}}}{}",
            if i + 1 < cross_results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"fuzz\": [");
    for (i, (name, checks, violations)) in fuzz_summaries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"family\": \"{name}\", \"cases\": {fuzz_cases_per_family}, \
             \"checks\": {checks}, \"violations\": {violations}}}{}",
            if i + 1 < fuzz_summaries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"op_coverage\": {{");
    let cov: Vec<(&'static str, u64)> = total.coverage().collect();
    for (i, (mnemonic, count)) in cov.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{mnemonic}\": {count}{}",
            if i + 1 < cov.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"wall_seconds\": {wall:.3},");
    let _ = writeln!(json, "  \"sound\": {sound}");
    json.push_str("}\n");
    let out_dir = out_dir_arg();
    std::fs::create_dir_all(&out_dir).expect("create --out-dir");
    let audit_path = out_dir.join("AUDIT.json");
    std::fs::write(&audit_path, &json).expect("write AUDIT.json");

    println!(
        "\nwrote {} — {} ({wall:.1}s)",
        audit_path.display(),
        if sound { "SOUND" } else { "VIOLATIONS FOUND" }
    );

    if let Some(session) = session {
        let config = vec![
            ("quick".to_owned(), quick.to_string()),
            ("points_per_kernel".to_owned(), points_per_kernel.to_string()),
        ];
        finish_trace(session, &out_dir, 1, &config, trace_path.as_deref());
    }
    if !sound {
        std::process::exit(1);
    }
}
