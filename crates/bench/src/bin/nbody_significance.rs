//! §4.1.4: N-Body significance vs inter-atom distance — "the greater the
//! distance between atom A and atom B, the less the kinematic properties
//! of one affect the other".
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin nbody_significance
//! ```

use scorpio_kernels::nbody;

fn main() {
    println!("=== §4.1.4: Lennard-Jones pair significance vs distance ===\n");
    println!("{:>8} {:>16}  profile", "r (σ)", "significance");
    let mut prev: Option<f64> = None;
    for r0 in [1.15, 1.3, 1.5, 1.8, 2.2, 2.7, 3.3, 4.0, 5.0, 6.5] {
        let s = nbody::analysis_pair(r0, 0.05).expect("analysis");
        let bar_len = ((s.max(1e-12)).log10() + 12.0).max(0.0) as usize;
        println!("{r0:>8.2} {s:>16.4e}  {}", "#".repeat(bar_len));
        if let Some(p) = prev {
            assert!(s < p, "significance must decay with distance");
        }
        prev = Some(s);
    }

    // Map distances to the region decomposition the runtime uses.
    let params = nbody::Params::evaluation();
    println!(
        "\nregion decomposition ({}³ regions over a {:.1}σ box):",
        params.regions,
        params.box_len()
    );
    let atom = [0.6, 0.6, 0.6];
    let mut sig: Vec<(usize, f64)> = (0..params.regions.pow(3))
        .map(|r| (r, nbody::pair_significance(atom, r, &params)))
        .collect();
    sig.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("  most significant regions for the corner atom:");
    for (r, s) in sig.iter().take(5) {
        println!("    region {r:>3}: task significance {s:.3}");
    }
    println!("  least significant:");
    for (r, s) in sig.iter().rev().take(3) {
        println!("    region {r:>3}: task significance {s:.3}");
    }
    println!(
        "\n→ the runtime approximates far regions first (centre-of-mass\n\
         collapse), which is why even ratio 0 stays accurate in Fig. 7."
    );
}
