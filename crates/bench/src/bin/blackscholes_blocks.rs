//! §4.1.5: BlackScholes block ranking — sig(A) > sig(B) ≫ sig(C) >
//! sig(D), so the CNDF and discount blocks are the ones approximated
//! with fastmath.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin blackscholes_blocks
//! ```

use scorpio_kernels::blackscholes as bs;

fn main() {
    println!("=== §4.1.5: BlackScholes block significances ===\n");
    let report = bs::analysis().expect("analysis");
    print!("{report}");

    let (a, b, c, d) = bs::block_significances(&report);
    println!("\nblock ranking (paper: sig(A) > sig(B) ≫ sig(C) > sig(D)):");
    println!("  A (d1):             {a:>10.4}");
    println!("  B (d2):             {b:>10.4}");
    println!("  C (CNDF values):    {c:>10.4}");
    println!("  D (discount e^-rT): {d:>10.4}");
    println!("  B / C = {:.1} (the paper's '≫')", b / c);

    // Show the effect of the chosen approximation.
    let opts = bs::generate_options(10_000, 4);
    let exact: Vec<f64> = opts.iter().map(bs::price).collect();
    let approx: Vec<f64> = opts.iter().map(bs::price_approx).collect();
    let max_rel = exact
        .iter()
        .zip(&approx)
        .map(|(e, a)| ((e - a) / e.abs().max(1e-9)).abs())
        .fold(0.0f64, f64::max);
    println!(
        "\napproximating C/D with fastmath over {} options: max rel err {max_rel:.2e}",
        opts.len()
    );
    println!("→ the low-significance blocks tolerate the cheap math (§4.1.5).");
}
