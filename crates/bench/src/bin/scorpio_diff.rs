//! Run-to-run comparison and regression gate.
//!
//! Loads two artifacts written by the harness binaries — two
//! `RUN_*.json` run manifests, two `BENCH_qor.json` QoR reports, or
//! two `BENCH_adaptive.json` controller-ablation reports — and
//! compares them item by item (see `scorpio_bench::diff`): QoR curves
//! pointwise with metric-direction awareness, repeated timing samples
//! with Welch's t-test (bootstrap CI fallback), manifest
//! phases/counters against a relative threshold, and adaptive reports
//! both on drift and on the absolute controller contract (every
//! non-flat kernel must meet its target, converge, and dominate the
//! best static ratio). Inputs marked `degraded` (the producing run
//! overflowed its event ring) are compared normally but flagged with a
//! WARNING line.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin scorpio_diff -- \
//!     baseline.json candidate.json [--gate] [--threshold PCT] \
//!     [--quality-only] [--reps N] [--seed S]
//! ```
//!
//! * `--gate` — exit non-zero (1) when any statistically significant
//!   regression beyond the threshold is found.
//! * `--threshold PCT` — relative-change gate threshold in percent
//!   (default 5).
//! * `--quality-only` — compare only machine-independent items
//!   (quality, modeled energy, achieved ratios, counters); use this
//!   when gating against a baseline produced on different hardware.
//! * `--reps N` — bootstrap resamples for the CI fallback
//!   (default 1000).
//! * `--seed S` — bootstrap seed (default 0x5ca1ab1e).
//!
//! Exit codes: 0 = clean (or regressions found without `--gate`),
//! 1 = gated regression, 2 = usage or file error.

use std::path::PathBuf;
use std::process::ExitCode;

use scorpio_bench::diff::{diff_files, DiffOptions};

struct Args {
    baseline: PathBuf,
    candidate: PathBuf,
    gate: bool,
    opts: DiffOptions,
}

fn usage() -> ! {
    eprintln!(
        "usage: scorpio_diff <baseline.json> <candidate.json> \
         [--gate] [--threshold PCT] [--quality-only] [--reps N] [--seed S]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut gate = false;
    let mut opts = DiffOptions::default();
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--gate" => gate = true,
            "--quality-only" => opts.quality_only = true,
            "--threshold" => {
                opts.threshold_pct = value(&mut args, "--threshold")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--reps" => {
                opts.resamples = value(&mut args, "--reps")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--seed" => {
                opts.seed = value(&mut args, "--seed")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                // --flag=value forms.
                let parse_kv = |prefix: &str| flag.strip_prefix(prefix).map(str::to_owned);
                if let Some(v) = parse_kv("--threshold=") {
                    opts.threshold_pct = v.parse().unwrap_or_else(|_| usage());
                } else if let Some(v) = parse_kv("--reps=") {
                    opts.resamples = v.parse().unwrap_or_else(|_| usage());
                } else if let Some(v) = parse_kv("--seed=") {
                    opts.seed = v.parse().unwrap_or_else(|_| usage());
                } else {
                    eprintln!("unknown flag {flag}");
                    usage();
                }
            }
            _ => positional.push(PathBuf::from(a)),
        }
    }
    if positional.len() != 2 {
        usage();
    }
    let candidate = positional.pop().expect("two positionals");
    let baseline = positional.pop().expect("two positionals");
    Args {
        baseline,
        candidate,
        gate,
        opts,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let report = match diff_files(&args.baseline, &args.candidate, &args.opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scorpio_diff: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render());
    let regressions = report.regressions();
    if args.gate && regressions > 0 {
        println!(
            "gate: FAILED — {regressions} regression(s) beyond {:.1}%",
            args.opts.threshold_pct
        );
        return ExitCode::from(1);
    }
    if args.gate {
        println!("gate: passed (threshold {:.1}%)", args.opts.threshold_pct);
    }
    ExitCode::SUCCESS
}
