//! Figure 1 / Listings 1–3: the annotated DynDFG of
//! `f(x) = cos(exp(sin(x) + x) − x)` with local partial derivatives, and
//! the interval derivatives available after the adjoint sweep.
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin fig1_dyndfg
//! ```

use scorpio_adjoint::{dot_options, Tape};
use scorpio_core::Analysis;
use scorpio_interval::Interval;

fn main() {
    let domain = Interval::new(0.2, 0.8);

    // Raw tape view (Fig. 1a): nodes u0..u5 with edge partials.
    let tape = Tape::<Interval>::new();
    let x = tape.var(domain);
    let y = ((x.sin() + x).exp() - x).cos();
    println!("=== Fig. 1a: DynDFG with local partial derivatives ===\n");
    println!("{}", tape.to_dot(&dot_options()));
    println!("elementary operations recorded: {}", tape.len());
    for (op, count) in tape.op_histogram() {
        println!("  {op:>6}: {count}");
    }

    // Adjoint sweep (Fig. 1b): interval derivatives of y wrt every node.
    let adj = tape.adjoints(&[(y.id(), Interval::ONE)]);
    println!("\n=== Fig. 1b: interval derivatives ∇[u_j][y] after the reverse sweep ===\n");
    for (id, d) in adj.iter() {
        println!("  ∇[{id}][y] = {d}");
    }

    // The same through the analysis front-end, with Eq. 11 significances.
    let report = Analysis::new()
        .run(|ctx| {
            let x = ctx.input("x0", domain.inf(), domain.sup());
            let u1 = x.sin();
            ctx.intermediate(&u1, "u1=sin(x)");
            let u2 = u1 + x;
            ctx.intermediate(&u2, "u2=u1+x");
            let u3 = u2.exp();
            ctx.intermediate(&u3, "u3=exp(u2)");
            let u4 = u3 - x;
            ctx.intermediate(&u4, "u4=u3-x");
            let y = u4.cos();
            ctx.output(&y, "y=cos(u4)");
            Ok(())
        })
        .expect("branch-free analysis");
    println!("\n=== Eq. 11 significances for the registered chain ===\n");
    print!("{report}");
}
