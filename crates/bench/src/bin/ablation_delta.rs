//! Ablation: sensitivity of the Algorithm-1 level cut to the variance
//! threshold δ ("parameter δ is dependent on application characteristics
//! and the sensitivity required by the programmer", §3.1).
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin ablation_delta
//! ```

use scorpio_core::Analysis;
use scorpio_kernels::maclaurin;

fn main() {
    println!("=== ablation: δ sensitivity of findSgnfVariance (S5) ===\n");

    let deltas = [0.0, 1e-6, 1e-4, 1e-3, 1e-2, 5e-2, 1e-1, 1.0];

    // Maclaurin: terms at level 1 with variance ≈ 0.008 (one zero term
    // among near-equal ones).
    println!("maclaurin (N = 8):");
    let report = maclaurin::analysis(0.49, 8).expect("analysis");
    let simplified = report.graph().simplified();
    for &delta in &deltas {
        let p = simplified.partition(delta);
        println!(
            "  δ = {delta:<8.0e} → cut level {:?} ({} levels examined)",
            p.cut_level,
            p.level_stats.len()
        );
    }

    // A two-scale function: big variance at level 1, small at level 2 —
    // shows the cut moving as δ crosses each variance.
    println!("\ntwo-scale synthetic kernel:");
    let report = Analysis::new()
        .run(|ctx| {
            let x = ctx.input("x", 0.0, 1.0);
            // Level-2-ish structure: two mildly different branches.
            let a = x * 1.0;
            let b = x * 1.05;
            // Level 1: hugely different contributions.
            let big = (a + b) * 100.0;
            let small = x * 0.001;
            let y = big + small;
            ctx.output(&y, "y");
            Ok(())
        })
        .expect("analysis");
    let simplified = report.graph().simplified();
    for &delta in &deltas {
        let p = simplified.partition(delta);
        let variances: Vec<String> = p
            .level_stats
            .iter()
            .map(|s| format!("L{}={:.2e}", s.level, s.variance))
            .collect();
        println!(
            "  δ = {delta:<8.0e} → cut level {:?}; variances [{}]",
            p.cut_level,
            variances.join(", ")
        );
    }

    println!(
        "\n→ small δ cuts at the first level with any variation (fine task\n\
         granularity); large δ searches deeper or leaves the graph whole.\n\
         The paper's guidance — δ is an application-specific sensitivity\n\
         knob — holds: there is no single correct value."
    );
}
