//! Parallel-engine benchmark harness: measures analyses/second for the
//! Fig. 5 InverseMapping per-pixel batch at 1/2/4/8 workers, the
//! tape-reuse ablation (warm arena vs fresh tape per analysis), the
//! replay ablation (compiled-trace replay vs re-recording) at one
//! worker, and the lane-width ablation (1/2/4/8 replay lanes, one
//! worker) over the fisheye grid, a BlackScholes book and a DCT block
//! batch, then writes the results to `BENCH_parallel.json` in
//! `--out-dir` (default `out/`).
//!
//! ```sh
//! cargo run --release -p scorpio-bench --bin bench_parallel -- [--small] [--out-dir DIR]
//! ```
//!
//! Speedups are relative to the one-worker engine (which runs inline,
//! without any pool synchronisation). `available_parallelism` is
//! recorded alongside: on a machine with fewer cores than workers the
//! extra workers time-slice one core and the speedup saturates at the
//! core count.

use std::fmt::Write as _;
use std::time::Instant;

use scorpio_core::{Analysis, AnalysisArena, ParallelAnalysis, ReplayOrRecord};
use scorpio_kernels::fisheye::{
    analysis_inverse_mapping, analysis_inverse_mapping_grid, analysis_inverse_mapping_grid_lanes,
    analysis_inverse_mapping_in, analysis_inverse_mapping_replay_in, Lens,
};
use scorpio_kernels::{blackscholes, dct};

/// Worker counts the scaling sweep measures.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Replay lane widths the lane ablation measures.
const LANE_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Timing repetitions; the minimum is reported (classic best-of-N to
/// shed scheduler noise).
const REPS: usize = 5;

fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// One kernel's lane-width ablation rows: `(lanes, seconds,
/// items_per_sec, speedup_vs_scalar)` at each [`LANE_WIDTHS`] entry,
/// timed by `run(lanes)` (best of [`REPS`], one warm-up run first).
fn lane_sweep(
    kernel: &str,
    items: usize,
    mut run: impl FnMut(usize),
) -> Vec<(usize, f64, f64, f64)> {
    println!("\nlane ablation: {kernel} (1 worker, {items} items)");
    println!("{:>8} {:>12} {:>16} {:>9}", "lanes", "time (ms)", "items/sec", "speedup");
    let mut rows = Vec::new();
    let mut scalar_s = f64::NAN;
    for &lanes in &LANE_WIDTHS {
        run(lanes); // warm-up (allocation, first-touch, icache)
        let secs = time_best(REPS, || run(lanes));
        if lanes == 1 {
            scalar_s = secs;
        }
        let speedup = scalar_s / secs;
        let rate = items as f64 / secs;
        println!("{lanes:>8} {:>12.3} {rate:>16.0} {speedup:>8.2}x", secs * 1e3);
        rows.push((lanes, secs, rate, speedup));
    }
    rows
}

/// Serializes one kernel's lane ablation into a JSON object.
fn lane_json(kernel: &str, items: usize, rows: &[(usize, f64, f64, f64)]) -> String {
    let widths: Vec<String> = rows
        .iter()
        .map(|(lanes, secs, rate, speedup)| {
            format!(
                "{{\"lanes\": {lanes}, \"seconds\": {secs:.6}, \
                 \"items_per_sec\": {rate:.1}, \"speedup_vs_scalar\": {speedup:.3}}}"
            )
        })
        .collect();
    format!(
        "{{\"kernel\": \"{kernel}\", \"items\": {items}, \"widths\": [{}]}}",
        widths.join(", ")
    )
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    // The Fig. 5 sample grid (small: the figure harness' own 32×24;
    // default: 64×48 for longer, steadier timings).
    let (gw, gh) = if small { (32usize, 24usize) } else { (64, 48) };
    let analyses = gw * gh;
    let lens = Lens::for_image(1280, 960);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "=== Parallel-engine benchmark: Fig. 5 grid {gw}×{gh} ({analyses} analyses), \
         {cores} core{} ===\n",
        if cores == 1 { "" } else { "s" }
    );

    // ── Scaling sweep ────────────────────────────────────────────────
    let mut rows = Vec::new();
    let mut serial_s = f64::NAN;
    println!("{:>8} {:>12} {:>16} {:>9}", "threads", "time (ms)", "analyses/sec", "speedup");
    for &threads in &WORKER_COUNTS {
        let engine = ParallelAnalysis::new(threads);
        // One warm-up run (first-touch allocation, thread spawn paths).
        let baseline = analysis_inverse_mapping_grid(&lens, gw, gh, &engine).expect("analysis");
        let secs = time_best(REPS, || {
            let out = analysis_inverse_mapping_grid(&lens, gw, gh, &engine).expect("analysis");
            assert_eq!(out.len(), baseline.len());
        });
        if threads == 1 {
            serial_s = secs;
        }
        let speedup = serial_s / secs;
        let rate = analyses as f64 / secs;
        println!(
            "{threads:>8} {:>12.3} {rate:>16.0} {speedup:>8.2}x",
            secs * 1e3
        );
        rows.push((threads, secs, rate, speedup));
    }

    // ── Tape-reuse ablation (one worker) ─────────────────────────────
    // The same per-pixel analysis run serially: a fresh tape per call
    // vs one warm arena reused across all calls.
    let pixels: Vec<(f64, f64)> = (0..analyses)
        .map(|i| {
            let (gx, gy) = (i % gw, i / gw);
            (
                (gx as f64 + 0.5) * lens.width as f64 / gw as f64,
                (gy as f64 + 0.5) * lens.height as f64 / gh as f64,
            )
        })
        .collect();
    let fresh_s = time_best(REPS, || {
        for &(u, v) in &pixels {
            analysis_inverse_mapping(&lens, u, v).expect("analysis");
        }
    });
    let mut arena = AnalysisArena::new();
    let arena_s = time_best(REPS, || {
        for &(u, v) in &pixels {
            analysis_inverse_mapping_in(&mut arena, &lens, u, v).expect("analysis");
        }
    });
    let reuse_speedup = fresh_s / arena_s;
    println!(
        "\ntape-reuse ablation (1 worker, {analyses} analyses):\n\
         {:>14}: {:>9.3} ms\n{:>14}: {:>9.3} ms  ({reuse_speedup:.2}x)",
        "fresh tape",
        fresh_s * 1e3,
        "warm arena",
        arena_s * 1e3,
    );

    // ── Replay ablation (one worker) ─────────────────────────────────
    // The same per-pixel batch once more, through the record-once /
    // replay-many driver: the first pixel records + compiles, every
    // further pixel replays the compiled trace with its own input
    // boxes. Compared against the fresh-recording and warm-arena
    // re-recording loops above; results are bit-identical throughout.
    let mut replay_arena = AnalysisArena::new();
    let mut replay_driver = ReplayOrRecord::new(Analysis::new());
    let replay_s = time_best(REPS, || {
        for &(u, v) in &pixels {
            analysis_inverse_mapping_replay_in(&mut replay_driver, &mut replay_arena, &lens, u, v)
                .expect("analysis");
        }
    });
    let replay_vs_fresh = fresh_s / replay_s;
    let replay_vs_arena = arena_s / replay_s;
    println!(
        "\nreplay ablation (1 worker, {analyses} analyses):\n\
         {:>14}: {:>9.3} ms\n{:>14}: {:>9.3} ms\n\
         {:>14}: {:>9.3} ms  ({replay_vs_fresh:.2}x vs fresh, {replay_vs_arena:.2}x vs arena)",
        "fresh record",
        fresh_s * 1e3,
        "arena record",
        arena_s * 1e3,
        "replay",
        replay_s * 1e3,
    );
    let stats = replay_driver.stats();
    println!(
        "replay stats: {} records, {} replays, {} fallbacks",
        stats.records, stats.replays, stats.fallbacks
    );

    // ── Lane-width ablation (one worker) ─────────────────────────────
    // The lane-blocked replay engine at 1/2/4/8 lanes per compiled-trace
    // walk, judged by single-thread throughput: the fisheye grid above,
    // a BlackScholes option book, and a DCT block batch. Width 1 routes
    // through the per-item scalar replay path, so its row is the true
    // scalar baseline; results are bit-identical at every width.
    let lane_engine = ParallelAnalysis::new(1);
    let fisheye_rows = lane_sweep("fisheye_grid", analyses, |lanes| {
        let out = match lanes {
            1 => analysis_inverse_mapping_grid_lanes::<1>(&lens, gw, gh, &lane_engine),
            2 => analysis_inverse_mapping_grid_lanes::<2>(&lens, gw, gh, &lane_engine),
            4 => analysis_inverse_mapping_grid_lanes::<4>(&lens, gw, gh, &lane_engine),
            8 => analysis_inverse_mapping_grid_lanes::<8>(&lens, gw, gh, &lane_engine),
            _ => unreachable!("unmeasured lane width"),
        };
        assert_eq!(out.expect("analysis").len(), analyses);
    });

    let book = blackscholes::generate_options(if small { 256 } else { 1024 }, 42);
    let bs_rows = lane_sweep("blackscholes_book", book.len(), |lanes| {
        let out = match lanes {
            1 => blackscholes::analysis_options_lanes::<1>(&book, &lane_engine),
            2 => blackscholes::analysis_options_lanes::<2>(&book, &lane_engine),
            4 => blackscholes::analysis_options_lanes::<4>(&book, &lane_engine),
            8 => blackscholes::analysis_options_lanes::<8>(&book, &lane_engine),
            _ => unreachable!("unmeasured lane width"),
        };
        assert_eq!(out.expect("analysis").len(), book.len());
    });

    // Deterministic pseudo-image blocks (LCG pixels, no RNG dependency).
    let dct_blocks: Vec<[[f64; dct::BLOCK]; dct::BLOCK]> = {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        (0..if small { 8 } else { 16 })
            .map(|_| {
                let mut b = [[0.0; dct::BLOCK]; dct::BLOCK];
                for row in &mut b {
                    for p in row.iter_mut() {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        *p = (state >> 56) as f64; // 0..=255
                    }
                }
                b
            })
            .collect()
    };
    let dct_rows = lane_sweep("dct_blocks", dct_blocks.len(), |lanes| {
        let out = match lanes {
            1 => dct::analysis_blocks_lanes::<1>(&dct_blocks, 8.0, &lane_engine),
            2 => dct::analysis_blocks_lanes::<2>(&dct_blocks, 8.0, &lane_engine),
            4 => dct::analysis_blocks_lanes::<4>(&dct_blocks, 8.0, &lane_engine),
            8 => dct::analysis_blocks_lanes::<8>(&dct_blocks, 8.0, &lane_engine),
            _ => unreachable!("unmeasured lane width"),
        };
        assert_eq!(out.expect("analysis").len(), dct_blocks.len());
    });

    // ── BENCH_parallel.json ──────────────────────────────────────────
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"fig5_inverse_mapping\",");
    let _ = writeln!(json, "  \"grid\": [{gw}, {gh}],");
    let _ = writeln!(json, "  \"analyses\": {analyses},");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"workers\": [");
    for (i, (threads, secs, rate, speedup)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {threads}, \"seconds\": {secs:.6}, \
             \"analyses_per_sec\": {rate:.1}, \"speedup_vs_serial\": {speedup:.3}}}{}",
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"tape_reuse\": {{\"fresh_seconds\": {fresh_s:.6}, \
         \"arena_seconds\": {arena_s:.6}, \"speedup\": {reuse_speedup:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"compiled_replay\": {{\"fresh_seconds\": {fresh_s:.6}, \
         \"arena_seconds\": {arena_s:.6}, \"replay_seconds\": {replay_s:.6}, \
         \"speedup_vs_fresh\": {replay_vs_fresh:.3}, \
         \"speedup_vs_arena\": {replay_vs_arena:.3}, \
         \"records\": {}, \"replays\": {}, \"fallbacks\": {}}},",
        stats.records, stats.replays, stats.fallbacks
    );
    let _ = writeln!(json, "  \"lane_replay\": {{\"kernels\": [");
    let kernel_objs = [
        lane_json("fisheye_grid", analyses, &fisheye_rows),
        lane_json("blackscholes_book", book.len(), &bs_rows),
        lane_json("dct_blocks", dct_blocks.len(), &dct_rows),
    ];
    for (i, obj) in kernel_objs.iter().enumerate() {
        let _ = writeln!(json, "    {obj}{}", if i + 1 < kernel_objs.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ]}}");
    json.push_str("}\n");
    let out_dir = scorpio_bench::out_dir_arg();
    std::fs::create_dir_all(&out_dir).expect("create --out-dir");
    let path = out_dir.join("BENCH_parallel.json");
    std::fs::write(&path, &json).expect("write BENCH_parallel.json");
    println!("\nwrote {}", path.display());
}
