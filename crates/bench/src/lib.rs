//! Shared helpers for the figure/table harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! CGO'16 paper (see DESIGN.md for the experiment index); this library
//! holds the presentation plumbing they share.

#![warn(missing_docs)]

pub mod adaptive;
pub mod diff;
pub mod jpeg;
pub mod obs;
pub mod qor;
pub mod stats;

pub use adaptive::{
    AdaptiveKernel, AdaptiveOutcome, AdaptiveReport, StaticBest, ADAPTIVE_SCHEMA,
};
pub use jpeg::{JpegAdaptive, JpegImage, JpegPoint, JpegReport, JPEG_SCHEMA};
pub use obs::{ObsContract, ObsMode, ObsReport, OBS_SCHEMA};
pub use qor::{QorKernel, QorPoint, QorReport, QOR_SCHEMA};

use std::fmt::Write as _;

/// Renders a matrix of values as an ASCII heat map: one glyph per cell,
/// darker glyph = higher value (the terminal stand-in for the paper's
/// grayscale figures).
///
/// NaN and infinite values render as `?`.
///
/// ```
/// use scorpio_bench::heat_map;
/// let map = heat_map(&[vec![0.0, 0.5], vec![0.75, 1.0]]);
/// assert_eq!(map.lines().count(), 2);
/// ```
pub fn heat_map(rows: &[Vec<f64>]) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let finite: Vec<f64> = rows
        .iter()
        .flatten()
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let mut out = String::new();
    for row in rows {
        for &v in row {
            if !v.is_finite() {
                out.push('?');
                continue;
            }
            let t = ((v - lo) / span).clamp(0.0, 1.0);
            let idx = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Formats a numeric matrix with a fixed precision, row per line.
///
/// ```
/// use scorpio_bench::matrix_table;
/// let t = matrix_table(&[vec![1.0, 2.0]], 2);
/// assert!(t.contains("1.00"));
/// ```
pub fn matrix_table(rows: &[Vec<f64>], precision: usize) -> String {
    let mut out = String::new();
    for row in rows {
        for v in row {
            let _ = write!(out, " {v:>9.precision$}");
        }
        out.push('\n');
    }
    out
}

/// Parses the shared `--threads N` worker-count knob from the process
/// arguments (accepts both `--threads N` and `--threads=N`). Returns
/// `None` when the flag is absent so each harness can pick its own
/// default (serial for the analysis figures, machine-sized for the
/// execution sweep).
///
/// # Panics
///
/// Panics on a missing, non-numeric, or zero value so a mistyped knob
/// fails loudly instead of silently running serially.
pub fn threads_arg() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            let v = args.next().expect("--threads needs a value");
            return Some(parse_threads(&v));
        }
        if let Some(v) = a.strip_prefix("--threads=") {
            return Some(parse_threads(v));
        }
    }
    None
}

fn parse_threads(v: &str) -> usize {
    let n: usize = v
        .parse()
        .unwrap_or_else(|_| panic!("invalid --threads value {v:?}"));
    assert!(n > 0, "--threads must be at least 1");
    n
}

/// Reads the value of a `--flag value` / `--flag=value` argument pair
/// from the process arguments, if present.
///
/// # Panics
///
/// Panics if the flag is given without a value.
pub fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return Some(args.next().unwrap_or_else(|| panic!("{flag} needs a value")));
        }
        if let Some(v) = a.strip_prefix(flag) {
            if let Some(v) = v.strip_prefix('=') {
                assert!(!v.is_empty(), "{flag} needs a value");
                return Some(v.to_string());
            }
        }
    }
    None
}

/// `true` when the bare `--flag` switch appears in the process
/// arguments.
pub fn flag_present(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Parses the shared `--out-dir <dir>` knob: the directory the harness
/// binaries write their artifacts into (`fig7_results.csv`,
/// `RUN_*.json`, `BENCH_*.json`, event logs…). Defaults to `out/` so
/// generated files never land in the repository root; the directory is
/// created on first write.
///
/// # Panics
///
/// Panics if the flag is given without a value.
pub fn out_dir_arg() -> std::path::PathBuf {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--out-dir" {
            let v = args.next().expect("--out-dir needs a directory");
            return v.into();
        }
        if let Some(v) = a.strip_prefix("--out-dir=") {
            assert!(!v.is_empty(), "--out-dir needs a directory");
            return v.into();
        }
    }
    std::path::PathBuf::from("out")
}

/// Parses the shared `--reps N` knob: how many timed repetitions of
/// each measured point a harness records (for run-to-run statistics in
/// `scorpio_diff`). Returns `default` when absent.
///
/// # Panics
///
/// Panics on a missing, non-numeric, or zero value.
pub fn reps_arg(default: usize) -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--reps" {
            let v = args.next().expect("--reps needs a value");
            return parse_reps(&v);
        }
        if let Some(v) = a.strip_prefix("--reps=") {
            return parse_reps(v);
        }
    }
    default
}

fn parse_reps(v: &str) -> usize {
    let n: usize = v
        .parse()
        .unwrap_or_else(|_| panic!("invalid --reps value {v:?}"));
    assert!(n > 0, "--reps must be at least 1");
    n
}

/// Parses the shared `--trace <path>` observability knob from the
/// process arguments (accepts both `--trace path` and `--trace=path`).
/// When present, the harness enables `scorpio-obs` instrumentation for
/// the run and writes a Chrome-trace-format file to the given path
/// (viewable in `about:tracing` / Perfetto) next to the
/// `RUN_<name>.json` run manifest.
///
/// # Panics
///
/// Panics if the flag is given without a value.
pub fn trace_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            let v = args.next().expect("--trace needs a path");
            return Some(v.into());
        }
        if let Some(v) = a.strip_prefix("--trace=") {
            assert!(!v.is_empty(), "--trace needs a path");
            return Some(v.into());
        }
    }
    None
}

/// Standard end-of-run observability hook for the harness binaries:
/// finishes `session`, writing `RUN_<name>.json` into `out_dir`, the
/// Chrome trace to `trace_path` when given, and — when the run emitted
/// structured task events — `EVENTS_<name>.jsonl` (one event object per
/// line) next to the manifest. Prints a one-line summary of where the
/// artifacts went and how much of the wall clock the instrumented
/// phases covered.
///
/// The session must have been started with [`scorpio_obs::RunSession::start`]
/// before the measured work; `config` records the harness knobs in the
/// manifest.
pub fn finish_trace(
    session: scorpio_obs::RunSession,
    out_dir: &std::path::Path,
    threads: usize,
    config: &[(String, String)],
    trace_path: Option<&std::path::Path>,
) {
    let name = session.name().to_owned();
    match session.finish_in(out_dir, threads, config, trace_path) {
        Ok(manifest) => {
            let coverage = if manifest.wall_clock_ns > 0 {
                100.0 * manifest.phase_total_ns as f64 / manifest.wall_clock_ns as f64
            } else {
                0.0
            };
            let manifest_path = out_dir.join(format!("RUN_{name}.json"));
            let mut wrote = match trace_path {
                Some(p) => format!("{} and {}", p.display(), manifest_path.display()),
                None => manifest_path.display().to_string(),
            };
            if !manifest.task_events.is_empty() {
                let events_path = out_dir.join(format!("EVENTS_{name}.jsonl"));
                match std::fs::write(&events_path, scorpio_obs::records_jsonl(&manifest.task_events))
                {
                    Ok(()) => {
                        let _ = write!(
                            wrote,
                            " and {} ({} events, {} dropped)",
                            events_path.display(),
                            manifest.task_events.len(),
                            manifest.task_events_dropped
                        );
                    }
                    Err(e) => eprintln!("trace: failed to write {}: {e}", events_path.display()),
                }
            }
            println!("trace: wrote {wrote} ({coverage:.1}% of wall clock in phases)");
        }
        Err(e) => eprintln!("trace: failed to write run artifacts: {e}"),
    }
}

/// One row of the Fig. 7 sweep CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// `"significance"` or `"perforation"`.
    pub method: &'static str,
    /// The accurate-computation ratio knob.
    pub ratio: f64,
    /// `"psnr_db"` or `"rel_error"`.
    pub quality_metric: &'static str,
    /// The measured quality value.
    pub quality: f64,
    /// Modeled energy in Joules.
    pub energy_j: f64,
}

/// Serialises sweep rows as CSV (with header).
///
/// ```
/// use scorpio_bench::{to_csv, SweepRow};
/// let csv = to_csv(&[SweepRow {
///     benchmark: "sobel", method: "significance", ratio: 0.5,
///     quality_metric: "psnr_db", quality: 30.0, energy_j: 2.5,
/// }]);
/// assert!(csv.starts_with("benchmark,"));
/// assert!(csv.contains("sobel"));
/// ```
pub fn to_csv(rows: &[SweepRow]) -> String {
    let mut out = String::from("benchmark,method,ratio,quality_metric,quality,energy_j\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            r.benchmark, r.method, r.ratio, r.quality_metric, r.quality, r.energy_j
        );
    }
    out
}

/// Counts the source lines of the body of function `name` in `source`
/// (first match), by brace balancing from the signature. Used by the
/// Table 2 line-count harness. Returns `None` if not found.
///
/// ```
/// use scorpio_bench::fn_loc;
/// let src = "fn a() {\n let x = 1;\n}\nfn b() {}\n";
/// assert_eq!(fn_loc(src, "a"), Some(3));
/// ```
pub fn fn_loc(source: &str, name: &str) -> Option<usize> {
    let needle = format!("fn {name}");
    let mut search_from = 0;
    loop {
        let at = source[search_from..].find(&needle)? + search_from;
        // Make sure the match is the full identifier (next char not
        // alphanumeric).
        let after = source[at + needle.len()..].chars().next();
        if matches!(after, Some(c) if c.is_alphanumeric() || c == '_') {
            search_from = at + needle.len();
            continue;
        }
        let open = source[at..].find('{')? + at;
        let close = matching_brace(source, open)?;
        let lines = source[at..=close].lines().count();
        return Some(lines);
    }
}

/// Counts the lines spanned by every `Some(move |ctx` approximate-body
/// closure inside function `name` — the paper's "Approx. Function (A)"
/// column.
pub fn approx_body_loc(source: &str, name: &str) -> Option<usize> {
    let needle = format!("fn {name}");
    let at = source.find(&needle)?;
    let open = source[at..].find('{')? + at;
    let close = matching_brace(source, open)?;
    let body = &source[open..=close];
    let mut total = 0;
    let mut from = 0;
    while let Some(pos) = body[from..].find("Some(move |ctx") {
        let start = from + pos + 4; // the '(' of Some(
        if let Some(end) = matching_paren(body, start) {
            total += body[start..=end].lines().count();
            from = end;
        } else {
            break;
        }
    }
    Some(total)
}

fn matching_brace(source: &str, open: usize) -> Option<usize> {
    matching_delim(source, open, b'{', b'}')
}

fn matching_paren(source: &str, open: usize) -> Option<usize> {
    matching_delim(source, open, b'(', b')')
}

/// Finds the index of the delimiter matching the one at `open`,
/// ignoring string/char literals well enough for rustfmt-formatted code.
fn matching_delim(source: &str, open: usize, od: u8, cd: u8) -> Option<usize> {
    let bytes = source.as_bytes();
    debug_assert_eq!(bytes[open], od);
    let mut depth = 0usize;
    let mut in_string = false;
    let mut i = open;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            if b == b'\\' {
                i += 2;
                continue;
            }
            if b == b'"' {
                in_string = false;
            }
        } else if b == b'"' {
            in_string = true;
        } else if b == od {
            depth += 1;
        } else if b == cd {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_accepts_positive_counts() {
        assert_eq!(parse_threads("1"), 1);
        assert_eq!(parse_threads("16"), 16);
    }

    #[test]
    #[should_panic(expected = "--threads must be at least 1")]
    fn parse_threads_rejects_zero() {
        parse_threads("0");
    }

    #[test]
    #[should_panic(expected = "invalid --threads value")]
    fn parse_threads_rejects_garbage() {
        parse_threads("eight");
    }

    #[test]
    fn heat_map_extremes() {
        let map = heat_map(&[vec![0.0, 1.0]]);
        assert!(map.starts_with(' '));
        assert!(map.contains('@'));
    }

    #[test]
    fn heat_map_handles_nan() {
        let map = heat_map(&[vec![f64::NAN, 1.0, 2.0]]);
        assert!(map.starts_with('?'));
    }

    #[test]
    fn csv_round_numbers() {
        let csv = to_csv(&[SweepRow {
            benchmark: "dct",
            method: "perforation",
            ratio: 0.2,
            quality_metric: "psnr_db",
            quality: 25.5,
            energy_j: 1.25,
        }]);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("dct,perforation,0.2,psnr_db,25.5,1.25"));
    }

    #[test]
    fn fn_loc_brace_matching() {
        let src = r#"
pub fn outer() {
    if true {
        nested();
    }
}
fn other() { one_liner(); }
"#;
        assert_eq!(fn_loc(src, "outer"), Some(5));
        assert_eq!(fn_loc(src, "other"), Some(1));
        assert_eq!(fn_loc(src, "missing"), None);
    }

    #[test]
    fn fn_loc_skips_prefix_matches() {
        let src = "fn foobar() {\n}\nfn foo() {\n  x();\n}\n";
        assert_eq!(fn_loc(src, "foo"), Some(3));
    }

    #[test]
    fn approx_body_counts_closures() {
        let src = r#"
fn tasked() {
    group.spawn(
        0.5,
        move |ctx| { accurate(); },
        Some(move |ctx| {
            approx();
        }),
    );
}
"#;
        let loc = approx_body_loc(src, "tasked").unwrap();
        assert!(loc >= 3, "counted {loc}");
    }

    #[test]
    fn strings_do_not_confuse_matching() {
        let src = "fn f() {\n let s = \"}\";\n done();\n}\n";
        assert_eq!(fn_loc(src, "f"), Some(4));
    }
}
