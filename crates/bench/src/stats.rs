//! Repeated-sample statistics for the run-to-run regression gate:
//! Welch's unequal-variance t-test (with a real p-value via the
//! regularised incomplete beta function) and a seeded bootstrap
//! confidence interval for the difference of means.
//!
//! Everything here is deterministic — the bootstrap uses an explicit
//! SplitMix64 seed — so `scorpio_diff` verdicts are reproducible.

/// Result of a Welch two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welch {
    /// The t statistic (`mean_b − mean_a` over the pooled standard
    /// error); positive when `b`'s mean is larger.
    pub t: f64,
    /// Welch–Satterthwaite effective degrees of freedom.
    pub df: f64,
    /// Two-sided p-value of the null hypothesis "equal means".
    pub p: f64,
}

/// Arithmetic mean (`NaN` for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased (n−1) sample variance (`NaN` for fewer than two samples).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Welch's unequal-variance t-test of "mean(a) == mean(b)".
///
/// Returns `None` when either sample has fewer than two observations,
/// or when both samples are exactly constant (zero variance): with no
/// spread there is no sampling distribution to test against — callers
/// should fall back to an exact comparison of the two constants.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<Welch> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (va, vb) = (variance(a), variance(b));
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 || !se2.is_finite() {
        return None;
    }
    let t = (mean(b) - mean(a)) / se2.sqrt();
    // Welch–Satterthwaite.
    let df = se2 * se2
        / ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0));
    let p = student_t_two_sided_p(t, df);
    Some(Welch { t, df, p })
}

/// Two-sided p-value of a Student-t statistic with `df` degrees of
/// freedom: `P(|T| >= |t|) = I_{df/(df+t²)}(df/2, 1/2)`.
pub fn student_t_two_sided_p(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    if df <= 0.0 {
        return 1.0;
    }
    reg_inc_beta(df / 2.0, 0.5, df / (df + t * t)).clamp(0.0, 1.0)
}

/// Natural log of the gamma function (Lanczos approximation, g=7).
fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, c) in COEF.iter().enumerate() {
        acc += c / (x + i as f64 + 1.0);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularised incomplete beta function `I_x(a, b)` via the Lentz
/// continued fraction (Numerical Recipes §6.4).
fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // The continued fraction converges fastest for x < (a+1)/(a+b+2);
    // use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a) otherwise.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - reg_inc_beta(b, a, 1.0 - x)
    }
}

fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const EPS: f64 = 3e-16;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=200 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Deterministic SplitMix64 stream (same generator the vendored `rand`
/// shim builds on) — good enough statistical quality for bootstrap
/// resampling and fully reproducible from the seed.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n` (`n > 0`).
    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Percentile bootstrap confidence interval for `mean(b) − mean(a)`.
///
/// Draws `resamples` bootstrap replicates (seeded, deterministic) and
/// returns the `(alpha/2, 1 − alpha/2)` percentile interval of the
/// replicated mean difference. Returns `None` when either sample is
/// empty or `resamples == 0`.
pub fn bootstrap_mean_diff_ci(
    a: &[f64],
    b: &[f64],
    resamples: usize,
    seed: u64,
    alpha: f64,
) -> Option<(f64, f64)> {
    if a.is_empty() || b.is_empty() || resamples == 0 {
        return None;
    }
    let mut rng = SplitMix64::new(seed);
    let mut diffs = Vec::with_capacity(resamples);
    let resample_mean = |xs: &[f64], rng: &mut SplitMix64| {
        let mut sum = 0.0;
        for _ in 0..xs.len() {
            sum += xs[rng.index(xs.len())];
        }
        sum / xs.len() as f64
    };
    for _ in 0..resamples {
        let ma = resample_mean(a, &mut rng);
        let mb = resample_mean(b, &mut rng);
        diffs.push(mb - ma);
    }
    diffs.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let pick = |q: f64| {
        let idx = ((diffs.len() - 1) as f64 * q).round() as usize;
        diffs[idx.min(diffs.len() - 1)]
    };
    Some((pick(alpha / 2.0), pick(1.0 - alpha / 2.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(close(variance(&[1.0, 2.0, 3.0]), 1.0, 1e-12));
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
        assert!(close(ln_gamma(1.0), 0.0, 1e-10));
        assert!(close(ln_gamma(2.0), 0.0, 1e-10));
        assert!(close(ln_gamma(5.0), 24.0f64.ln(), 1e-10));
        assert!(close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10));
    }

    #[test]
    fn t_distribution_known_quantiles() {
        // For df=10, t=2.228 is the 97.5% quantile → two-sided p ≈ 0.05.
        assert!(close(student_t_two_sided_p(2.228, 10.0), 0.05, 1e-3));
        // t=0 is no evidence at all.
        assert!(close(student_t_two_sided_p(0.0, 5.0), 1.0, 1e-12));
        // Very large t → p ≈ 0.
        assert!(student_t_two_sided_p(50.0, 10.0) < 1e-9);
    }

    #[test]
    fn welch_identical_samples_do_not_reject() {
        let a = [10.0, 11.0, 9.5, 10.5, 10.2];
        let w = welch_t_test(&a, &a).expect("testable");
        assert!(close(w.t, 0.0, 1e-12));
        assert!(close(w.p, 1.0, 1e-9));
    }

    #[test]
    fn welch_detects_a_clear_shift() {
        let a = [100.0, 101.0, 99.0, 100.5, 99.5];
        let b = [110.0, 111.0, 109.0, 110.5, 109.5]; // +10%
        let w = welch_t_test(&a, &b).expect("testable");
        assert!(w.t > 10.0, "t = {}", w.t);
        assert!(w.p < 1e-6, "p = {}", w.p);
    }

    #[test]
    fn welch_needs_spread_and_size() {
        assert!(welch_t_test(&[1.0], &[2.0, 3.0]).is_none());
        assert!(welch_t_test(&[5.0, 5.0], &[5.0, 5.0]).is_none());
    }

    #[test]
    fn bootstrap_brackets_a_real_shift_and_is_deterministic() {
        let a = [100.0, 101.0, 99.0, 100.5, 99.5, 100.2];
        let b = [110.0, 111.0, 109.0, 110.5, 109.5, 110.2];
        let ci = bootstrap_mean_diff_ci(&a, &b, 1000, 42, 0.05).expect("ci");
        assert!(ci.0 > 0.0, "CI {ci:?} must exclude zero");
        assert!(ci.0 <= 10.0 && 10.0 <= ci.1, "CI {ci:?} should bracket +10");
        let again = bootstrap_mean_diff_ci(&a, &b, 1000, 42, 0.05).expect("ci");
        assert_eq!(ci, again, "same seed must reproduce the interval");
    }

    #[test]
    fn bootstrap_identical_samples_cover_zero() {
        let a = [10.0, 10.5, 9.5, 10.1, 9.9];
        let ci = bootstrap_mean_diff_ci(&a, &a, 500, 7, 0.05).expect("ci");
        assert!(ci.0 <= 0.0 && 0.0 <= ci.1, "CI {ci:?} must cover zero");
    }
}
