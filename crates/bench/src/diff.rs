//! Run-to-run comparison and the regression gate behind `scorpio_diff`.
//!
//! Loads two artifacts produced by the harness binaries — either two
//! `RUN_*.json` run manifests or two `BENCH_qor.json` QoR reports —
//! and compares them item by item:
//!
//! * **QoR reports** are compared pointwise per kernel: quality and
//!   modeled energy with metric-direction awareness (PSNR up is good,
//!   relative error down is good), achieved ratio exactly, and the
//!   repeated wall-time samples with Welch's t-test (falling back to a
//!   seeded bootstrap CI when the t-test is undefined) so a timing
//!   regression must be *statistically significant*, not just noisy.
//! * **Run manifests** carry one sample per phase/counter, so phase
//!   timings and counters are compared against the plain relative
//!   threshold.
//!
//! [`DiffReport::regressions`] drives the `--gate` exit code.

use std::fmt::Write as _;
use std::path::Path;

use scorpio_obs::json::{parse, Value};

use crate::stats;

/// What kind of artifact a JSON file turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A `BENCH_qor.json` QoR report ([`crate::QorReport`]).
    Qor,
    /// A `RUN_*.json` run manifest (`scorpio_obs::RunManifest`).
    RunManifest,
    /// A `BENCH_adaptive.json` controller-vs-static ablation
    /// ([`crate::AdaptiveReport`]).
    Adaptive,
    /// A `BENCH_jpeg.json` end-to-end codec scenario report
    /// ([`crate::JpegReport`]).
    Jpeg,
    /// A `BENCH_obs.json` live-observability ablation report
    /// ([`crate::ObsReport`]).
    Obs,
}

/// Knobs of one comparison.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Relative-change gate threshold in percent (a regression must be
    /// worse than this to fire).
    pub threshold_pct: f64,
    /// Compare only machine-independent items (quality, energy model,
    /// achieved ratios, counters) — skip wall-time comparisons so a
    /// checked-in baseline gates identically on any host.
    pub quality_only: bool,
    /// Bootstrap resamples used when the t-test is undefined.
    pub resamples: usize,
    /// Bootstrap seed (verdicts are deterministic in it).
    pub seed: u64,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            threshold_pct: 5.0,
            quality_only: false,
            resamples: 1000,
            seed: 0x5ca1_ab1e,
        }
    }
}

/// Verdict on one compared item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Better than baseline beyond the threshold.
    Improvement,
    /// Within the threshold (or not significant).
    Unchanged,
    /// Worse than baseline beyond the threshold (and significant where
    /// repeated samples exist).
    Regression,
}

impl Severity {
    fn tag(self) -> &'static str {
        match self {
            Severity::Improvement => "BETTER",
            Severity::Unchanged => "ok",
            Severity::Regression => "REGRESSION",
        }
    }
}

/// One compared item.
#[derive(Debug, Clone)]
pub struct Finding {
    /// What was compared (e.g. `"sobel @ ratio 0.5 · quality(psnr_db)"`).
    pub item: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// Signed relative change in percent, oriented so **positive means
    /// worse** (direction-aware for quality metrics).
    pub worse_pct: f64,
    /// Two-sided p-value where repeated samples allowed a test.
    pub p_value: Option<f64>,
    /// The verdict.
    pub severity: Severity,
    /// Free-form annotation (which test ran, fallbacks taken…).
    pub note: String,
}

/// The full comparison result.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Kind of the two artifacts.
    pub kind: ArtifactKind,
    /// Every compared item, in artifact order.
    pub findings: Vec<Finding>,
    /// Non-gating caveats about the *inputs* — e.g. either side was
    /// produced by a run that dropped task events (`degraded: true` in
    /// QoR/adaptive reports, `task_events_dropped > 0` in manifests),
    /// so its curves may be biased. Rendered prominently but never an
    /// exit-code regression by itself.
    pub warnings: Vec<String>,
}

impl DiffReport {
    /// Number of regressions found.
    pub fn regressions(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Regression)
            .count()
    }

    /// Human-readable table of every finding plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let kind = match self.kind {
            ArtifactKind::Qor => "QoR report",
            ArtifactKind::RunManifest => "run manifest",
            ArtifactKind::Adaptive => "adaptive-controller report",
            ArtifactKind::Jpeg => "JPEG scenario report",
            ArtifactKind::Obs => "live-observability ablation report",
        };
        let _ = writeln!(out, "comparing {kind}s: {} items", self.findings.len());
        for w in &self.warnings {
            let _ = writeln!(out, "WARNING: {w}");
        }
        for f in &self.findings {
            let p = match f.p_value {
                Some(p) => format!(" p={p:.4}"),
                None => String::new(),
            };
            let note = if f.note.is_empty() {
                String::new()
            } else {
                format!(" [{}]", f.note)
            };
            let _ = writeln!(
                out,
                "{:<12} {:<48} {:>14.6} -> {:>14.6} ({:+.2}%{p}){note}",
                f.severity.tag(),
                f.item,
                f.baseline,
                f.candidate,
                f.worse_pct,
            );
        }
        let regs = self.regressions();
        let better = self
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Improvement)
            .count();
        let _ = writeln!(
            out,
            "summary: {regs} regression(s), {better} improvement(s), {} unchanged",
            self.findings.len() - regs - better
        );
        out
    }
}

/// Loads and parses one artifact file.
///
/// # Errors
///
/// Returns a message naming the path on I/O or JSON syntax errors.
pub fn load(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))
}

/// Identifies which artifact kind a parsed file is.
///
/// # Errors
///
/// Returns a message when the value is neither a known QoR schema nor
/// a run manifest.
pub fn detect(value: &Value) -> Result<ArtifactKind, String> {
    if let Some(schema) = value.get("schema").and_then(Value::as_str) {
        return if schema == crate::QOR_SCHEMA {
            Ok(ArtifactKind::Qor)
        } else if schema == crate::ADAPTIVE_SCHEMA {
            Ok(ArtifactKind::Adaptive)
        } else if schema == crate::JPEG_SCHEMA {
            Ok(ArtifactKind::Jpeg)
        } else if schema == crate::OBS_SCHEMA {
            Ok(ArtifactKind::Obs)
        } else {
            Err(format!("unsupported schema {schema:?}"))
        };
    }
    if value.get("phases").is_some() && value.get("wall_clock_ns").is_some() {
        return Ok(ArtifactKind::RunManifest);
    }
    Err(
        "not a BENCH_qor.json QoR report, BENCH_adaptive.json adaptive report, \
         BENCH_jpeg.json JPEG scenario report, BENCH_obs.json observability \
         report or RUN_*.json run manifest"
            .to_owned(),
    )
}

/// Compares two parsed artifacts of the same kind.
///
/// # Errors
///
/// Returns a message when the kinds differ or either file is malformed.
pub fn diff_values(base: &Value, cand: &Value, opts: &DiffOptions) -> Result<DiffReport, String> {
    let kind = detect(base)?;
    let cand_kind = detect(cand)?;
    if kind != cand_kind {
        return Err(format!(
            "cannot compare a {kind:?} against a {cand_kind:?}"
        ));
    }
    let findings = match kind {
        ArtifactKind::Qor => diff_qor(base, cand, opts)?,
        ArtifactKind::RunManifest => diff_manifest(base, cand, opts)?,
        ArtifactKind::Adaptive => diff_adaptive(base, cand, opts)?,
        ArtifactKind::Jpeg => diff_jpeg(base, cand, opts)?,
        ArtifactKind::Obs => diff_obs(base, cand, opts)?,
    };
    let mut warnings = Vec::new();
    for (side, value) in [("baseline", base), ("candidate", cand)] {
        if let Some(w) = degraded_input(side, value, kind) {
            warnings.push(w);
        }
    }
    Ok(DiffReport {
        kind,
        findings,
        warnings,
    })
}

/// A caveat string when `value` was produced by a run that dropped
/// task events (so its telemetry-derived columns may be biased).
fn degraded_input(side: &str, value: &Value, kind: ArtifactKind) -> Option<String> {
    match kind {
        ArtifactKind::Qor | ArtifactKind::Adaptive | ArtifactKind::Jpeg | ArtifactKind::Obs => {
            matches!(value.get("degraded"), Some(Value::Bool(true))).then(|| {
                format!(
                    "{side} is degraded (its run dropped task events; \
                     achieved-ratio and task tallies may be biased)"
                )
            })
        }
        ArtifactKind::RunManifest => value
            .get("task_events_dropped")
            .and_then(Value::as_f64)
            .filter(|&d| d > 0.0)
            .map(|d| {
                format!(
                    "{side} manifest dropped {d:.0} task event(s); \
                     its event timeline is truncated"
                )
            }),
    }
}

/// [`load`] + [`diff_values`] over two files.
///
/// # Errors
///
/// Propagates loading and comparison errors.
pub fn diff_files(
    baseline: &Path,
    candidate: &Path,
    opts: &DiffOptions,
) -> Result<DiffReport, String> {
    let base = load(baseline)?;
    let cand = load(candidate)?;
    diff_values(&base, &cand, opts)
}

// ───────────────────────── QoR comparison ─────────────────────────

fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn samples(v: &Value) -> Vec<f64> {
    v.get("time_ns_samples")
        .and_then(Value::as_arr)
        .map(|a| a.iter().filter_map(Value::as_f64).collect())
        .unwrap_or_default()
}

/// Relative "how much worse" in percent: positive = candidate worse.
/// `higher_is_better` orients quality metrics; timings and errors pass
/// `false`.
fn worse_pct(base: f64, cand: f64, higher_is_better: bool) -> f64 {
    let denom = base.abs().max(1e-12);
    let raw = (cand - base) / denom * 100.0;
    if higher_is_better {
        -raw
    } else {
        raw
    }
}

fn threshold_verdict(worse: f64, threshold_pct: f64) -> Severity {
    if worse > threshold_pct {
        Severity::Regression
    } else if worse < -threshold_pct {
        Severity::Improvement
    } else {
        Severity::Unchanged
    }
}

fn diff_qor(base: &Value, cand: &Value, opts: &DiffOptions) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let base_kernels = base
        .get("kernels")
        .and_then(Value::as_arr)
        .ok_or("baseline QoR report has no kernels array")?;
    let cand_kernels = cand
        .get("kernels")
        .and_then(Value::as_arr)
        .ok_or("candidate QoR report has no kernels array")?;

    for bk in base_kernels {
        let name = str_field(bk, "name")?;
        let metric = str_field(bk, "metric")?;
        let higher_is_better = matches!(bk.get("higher_is_better"), Some(Value::Bool(true)));
        let Some(ck) = cand_kernels
            .iter()
            .find(|k| k.get("name").and_then(Value::as_str) == Some(name))
        else {
            findings.push(Finding {
                item: format!("{name} (kernel)"),
                baseline: 1.0,
                candidate: 0.0,
                worse_pct: 100.0,
                p_value: None,
                severity: Severity::Regression,
                note: "kernel missing from candidate".to_owned(),
            });
            continue;
        };
        let empty = Vec::new();
        let b_points = bk.get("points").and_then(Value::as_arr).unwrap_or(&empty);
        let c_points = ck.get("points").and_then(Value::as_arr).unwrap_or(&empty);
        for bp in b_points {
            let ratio = f64_field(bp, "ratio")?;
            let Some(cp) = c_points.iter().find(|p| {
                p.get("ratio")
                    .and_then(Value::as_f64)
                    .is_some_and(|r| (r - ratio).abs() < 1e-9)
            }) else {
                findings.push(Finding {
                    item: format!("{name} @ ratio {ratio} (point)"),
                    baseline: 1.0,
                    candidate: 0.0,
                    worse_pct: 100.0,
                    p_value: None,
                    severity: Severity::Regression,
                    note: "point missing from candidate".to_owned(),
                });
                continue;
            };
            let at = |what: &str| format!("{name} @ ratio {ratio} · {what}");

            // Quality, metric-direction aware.
            let (bq, cq) = (f64_field(bp, "quality")?, f64_field(cp, "quality")?);
            let worse = worse_pct(bq, cq, higher_is_better);
            findings.push(Finding {
                item: at(&format!("quality({metric})")),
                baseline: bq,
                candidate: cq,
                worse_pct: worse,
                p_value: None,
                severity: threshold_verdict(worse, opts.threshold_pct),
                note: String::new(),
            });

            // Modeled energy: deterministic, lower is better.
            let (be, ce) = (f64_field(bp, "energy_j")?, f64_field(cp, "energy_j")?);
            let worse = worse_pct(be, ce, false);
            findings.push(Finding {
                item: at("energy_j"),
                baseline: be,
                candidate: ce,
                worse_pct: worse,
                p_value: None,
                severity: threshold_verdict(worse, opts.threshold_pct),
                note: String::new(),
            });

            // Achieved ratio: the runtime's scheduling decision is
            // deterministic — any drift is a behaviour change.
            let (br, cr) = (
                f64_field(bp, "achieved_ratio")?,
                f64_field(cp, "achieved_ratio")?,
            );
            if (br - cr).abs() > 1e-9 {
                findings.push(Finding {
                    item: at("achieved_ratio"),
                    baseline: br,
                    candidate: cr,
                    worse_pct: worse_pct(br, cr, false).abs(),
                    p_value: None,
                    severity: Severity::Regression,
                    note: "scheduling decision changed".to_owned(),
                });
            }

            // Wall time: statistical over the repeated samples.
            if !opts.quality_only {
                findings.push(compare_time_samples(
                    &at("time_ns"),
                    &samples(bp),
                    &samples(cp),
                    opts,
                ));
            }
        }
    }
    Ok(findings)
}

/// Compares two repeated-timing sample sets: the mean change must
/// exceed the threshold *and* be statistically significant (Welch
/// p < 0.05, or — when the t-test is undefined, e.g. constant
/// samples — a bootstrap 95% CI excluding zero) to count as a
/// regression or an improvement.
fn compare_time_samples(item: &str, base: &[f64], cand: &[f64], opts: &DiffOptions) -> Finding {
    let (mb, mc) = (stats::mean(base), stats::mean(cand));
    if base.is_empty() || cand.is_empty() {
        return Finding {
            item: item.to_owned(),
            baseline: mb,
            candidate: mc,
            worse_pct: 0.0,
            p_value: None,
            severity: Severity::Unchanged,
            note: "no timing samples".to_owned(),
        };
    }
    let worse = worse_pct(mb, mc, false);
    let (significant, p_value, note) = match stats::welch_t_test(base, cand) {
        Some(w) => (w.p < 0.05, Some(w.p), format!("welch df={:.1}", w.df)),
        None => match stats::bootstrap_mean_diff_ci(base, cand, opts.resamples, opts.seed, 0.05) {
            Some((lo, hi)) => (
                lo > 0.0 || hi < 0.0,
                None,
                format!("bootstrap ci=[{lo:.1}, {hi:.1}]"),
            ),
            // Single constant samples on both sides: exact compare.
            None => (mb != mc, None, "single sample".to_owned()),
        },
    };
    let severity = if significant {
        threshold_verdict(worse, opts.threshold_pct)
    } else {
        Severity::Unchanged
    };
    Finding {
        item: item.to_owned(),
        baseline: mb,
        candidate: mc,
        worse_pct: worse,
        p_value,
        severity,
        note,
    }
}

// ─────────────────── adaptive-report comparison ───────────────────

fn bool_field(v: &Value, key: &str) -> bool {
    matches!(v.get(key), Some(Value::Bool(true)))
}

/// Compares two `BENCH_adaptive.json` reports. Two layers:
///
/// * **Self-contained gate on the candidate** — on every kernel with a
///   non-flat QoR curve the controller must have met its target,
///   converged, and dominated the best static ratio (energy ≤ the
///   cheapest static grid point that meets the target). These are
///   absolute properties of the candidate run; the baseline only
///   supplies the kernel list.
/// * **Cross-file drift** — adaptive quality (metric-direction aware),
///   modeled energy, and convergence step count (with generous slack:
///   only a >1.5×+2 blow-up gates) against the checked-in baseline.
fn diff_adaptive(base: &Value, cand: &Value, opts: &DiffOptions) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let base_kernels = base
        .get("kernels")
        .and_then(Value::as_arr)
        .ok_or("baseline adaptive report has no kernels array")?;
    let cand_kernels = cand
        .get("kernels")
        .and_then(Value::as_arr)
        .ok_or("candidate adaptive report has no kernels array")?;

    for bk in base_kernels {
        let name = str_field(bk, "name")?;
        let metric = str_field(bk, "metric")?;
        let higher_is_better = bool_field(bk, "higher_is_better");
        let Some(ck) = cand_kernels
            .iter()
            .find(|k| k.get("name").and_then(Value::as_str) == Some(name))
        else {
            findings.push(Finding {
                item: format!("{name} (kernel)"),
                baseline: 1.0,
                candidate: 0.0,
                worse_pct: 100.0,
                p_value: None,
                severity: Severity::Regression,
                note: "kernel missing from candidate".to_owned(),
            });
            continue;
        };

        let non_flat = bool_field(ck, "non_flat");
        let converged = ck
            .get("adaptive")
            .is_some_and(|a| bool_field(a, "converged"));
        let checks = [
            ("target_met", bool_field(ck, "target_met")),
            ("converged", converged),
            ("dominates best static", bool_field(ck, "dominates")),
        ];
        for (what, ok) in checks {
            let (severity, note) = if ok {
                (Severity::Unchanged, String::new())
            } else if non_flat {
                (Severity::Regression, "controller contract violated".to_owned())
            } else {
                (
                    Severity::Unchanged,
                    "flat QoR curve — not required to dominate".to_owned(),
                )
            };
            findings.push(Finding {
                item: format!("{name} · {what}"),
                baseline: 1.0,
                candidate: if ok { 1.0 } else { 0.0 },
                worse_pct: if ok { 0.0 } else { 100.0 },
                p_value: None,
                severity,
                note,
            });
        }

        let (Some(ba), Some(ca)) = (bk.get("adaptive"), ck.get("adaptive")) else {
            findings.push(Finding {
                item: format!("{name} · adaptive"),
                baseline: 1.0,
                candidate: 0.0,
                worse_pct: 100.0,
                p_value: None,
                severity: Severity::Regression,
                note: "adaptive result missing".to_owned(),
            });
            continue;
        };

        let (bq, cq) = (f64_field(ba, "quality")?, f64_field(ca, "quality")?);
        let worse = worse_pct(bq, cq, higher_is_better);
        findings.push(Finding {
            item: format!("{name} · adaptive quality({metric})"),
            baseline: bq,
            candidate: cq,
            worse_pct: worse,
            p_value: None,
            severity: threshold_verdict(worse, opts.threshold_pct),
            note: String::new(),
        });

        let (be, ce) = (f64_field(ba, "energy_j")?, f64_field(ca, "energy_j")?);
        let worse = worse_pct(be, ce, false);
        findings.push(Finding {
            item: format!("{name} · adaptive energy_j"),
            baseline: be,
            candidate: ce,
            worse_pct: worse,
            p_value: None,
            severity: threshold_verdict(worse, opts.threshold_pct),
            note: String::new(),
        });

        let (bs, cs) = (f64_field(ba, "steps")?, f64_field(ca, "steps")?);
        findings.push(Finding {
            item: format!("{name} · convergence steps"),
            baseline: bs,
            candidate: cs,
            worse_pct: worse_pct(bs.max(1.0), cs, false),
            p_value: None,
            severity: if cs > bs * 1.5 + 2.0 {
                Severity::Regression
            } else {
                Severity::Unchanged
            },
            note: "slack: gates only past 1.5x + 2".to_owned(),
        });
    }
    Ok(findings)
}

// ──────────────────── JPEG-scenario comparison ────────────────────

/// Compares two `BENCH_jpeg.json` reports. Two layers, mirroring the
/// adaptive gate:
///
/// * **Self-contained contract on the candidate** — on every image,
///   each sweep point's container must round-trip bit-exactly, the
///   significance-ordered sweep must weakly dominate the random-block
///   ablation on PSNR, and the adaptive run must converge and meet its
///   target. Absolute properties of the candidate run; the baseline
///   only supplies the image list.
/// * **Cross-file drift** — per curve point PSNR/SSIM (higher is
///   better), modeled energy (lower is better), bits-per-pixel (actual
///   entropy-coded size: drift in either direction gates, like a
///   counter), and the accurate-block tally (deterministic scheduling:
///   any change gates exactly); plus the adaptive outcome's quality,
///   energy, and step count (with the same 1.5×+2 slack).
fn diff_jpeg(base: &Value, cand: &Value, opts: &DiffOptions) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let base_images = base
        .get("images")
        .and_then(Value::as_arr)
        .ok_or("baseline JPEG report has no images array")?;
    let cand_images = cand
        .get("images")
        .and_then(Value::as_arr)
        .ok_or("candidate JPEG report has no images array")?;

    for bi in base_images {
        let name = str_field(bi, "name")?;
        let Some(ci) = cand_images
            .iter()
            .find(|i| i.get("name").and_then(Value::as_str) == Some(name))
        else {
            findings.push(Finding {
                item: format!("{name} (image)"),
                baseline: 1.0,
                candidate: 0.0,
                worse_pct: 100.0,
                p_value: None,
                severity: Severity::Regression,
                note: "image missing from candidate".to_owned(),
            });
            continue;
        };

        // Candidate contract bits.
        let adaptive_ok = |key: &str| ci.get("adaptive").is_some_and(|a| bool_field(a, key));
        let all_roundtrip = |curve: &str| {
            ci.get(curve)
                .and_then(Value::as_arr)
                .is_some_and(|pts| !pts.is_empty() && pts.iter().all(|p| bool_field(p, "roundtrip_ok")))
        };
        let checks = [
            (
                "bitstreams round-trip",
                all_roundtrip("curve") && all_roundtrip("random_curve"),
            ),
            (
                "significance dominates random",
                bool_field(ci, "sig_dominates_random"),
            ),
            ("adaptive target_met", adaptive_ok("target_met")),
            ("adaptive converged", adaptive_ok("converged")),
        ];
        for (what, ok) in checks {
            findings.push(Finding {
                item: format!("{name} · {what}"),
                baseline: 1.0,
                candidate: if ok { 1.0 } else { 0.0 },
                worse_pct: if ok { 0.0 } else { 100.0 },
                p_value: None,
                severity: if ok {
                    Severity::Unchanged
                } else {
                    Severity::Regression
                },
                note: if ok {
                    String::new()
                } else {
                    "codec contract violated".to_owned()
                },
            });
        }

        // Cross-file drift, per sweep point of both curves.
        for curve in ["curve", "random_curve"] {
            let empty = Vec::new();
            let b_points = bi.get(curve).and_then(Value::as_arr).unwrap_or(&empty);
            let c_points = ci.get(curve).and_then(Value::as_arr).unwrap_or(&empty);
            for bp in b_points {
                let ratio = f64_field(bp, "ratio")?;
                let Some(cp) = c_points.iter().find(|p| {
                    p.get("ratio")
                        .and_then(Value::as_f64)
                        .is_some_and(|r| (r - ratio).abs() < 1e-9)
                }) else {
                    findings.push(Finding {
                        item: format!("{name} {curve} @ ratio {ratio} (point)"),
                        baseline: 1.0,
                        candidate: 0.0,
                        worse_pct: 100.0,
                        p_value: None,
                        severity: Severity::Regression,
                        note: "point missing from candidate".to_owned(),
                    });
                    continue;
                };
                let at = |what: &str| format!("{name} {curve} @ ratio {ratio} · {what}");

                for (what, higher_is_better) in [("psnr_db", true), ("ssim", true)] {
                    let (bq, cq) = (f64_field(bp, what)?, f64_field(cp, what)?);
                    let worse = worse_pct(bq, cq, higher_is_better);
                    findings.push(Finding {
                        item: at(what),
                        baseline: bq,
                        candidate: cq,
                        worse_pct: worse,
                        p_value: None,
                        severity: threshold_verdict(worse, opts.threshold_pct),
                        note: String::new(),
                    });
                }

                let (be, ce) = (f64_field(bp, "energy_j")?, f64_field(cp, "energy_j")?);
                let worse = worse_pct(be, ce, false);
                findings.push(Finding {
                    item: at("energy_j"),
                    baseline: be,
                    candidate: ce,
                    worse_pct: worse,
                    p_value: None,
                    severity: threshold_verdict(worse, opts.threshold_pct),
                    note: String::new(),
                });

                // Bitrate: real entropy-coded size — like a counter,
                // unexpected shrinkage is as suspicious as growth.
                let (bb, cb) = (
                    f64_field(bp, "bits_per_pixel")?,
                    f64_field(cp, "bits_per_pixel")?,
                );
                let change = worse_pct(bb, cb, false);
                findings.push(Finding {
                    item: at("bits_per_pixel"),
                    baseline: bb,
                    candidate: cb,
                    worse_pct: change.abs(),
                    p_value: None,
                    severity: if change.abs() > opts.threshold_pct {
                        Severity::Regression
                    } else {
                        Severity::Unchanged
                    },
                    note: String::new(),
                });

                // Accurate-block tally: ceil(ratio·n) is deterministic.
                let (ba, ca) = (
                    f64_field(bp, "accurate_blocks")?,
                    f64_field(cp, "accurate_blocks")?,
                );
                if (ba - ca).abs() > 1e-9 {
                    findings.push(Finding {
                        item: at("accurate_blocks"),
                        baseline: ba,
                        candidate: ca,
                        worse_pct: worse_pct(ba, ca, false).abs(),
                        p_value: None,
                        severity: Severity::Regression,
                        note: "scheduling decision changed".to_owned(),
                    });
                }
            }
        }

        // Adaptive-outcome drift.
        let (Some(ba), Some(ca)) = (bi.get("adaptive"), ci.get("adaptive")) else {
            findings.push(Finding {
                item: format!("{name} · adaptive"),
                baseline: 1.0,
                candidate: 0.0,
                worse_pct: 100.0,
                p_value: None,
                severity: Severity::Regression,
                note: "adaptive result missing".to_owned(),
            });
            continue;
        };
        for (what, higher_is_better) in [("psnr_db", true), ("energy_j", false)] {
            let (bv, cv) = (f64_field(ba, what)?, f64_field(ca, what)?);
            let worse = worse_pct(bv, cv, higher_is_better);
            findings.push(Finding {
                item: format!("{name} · adaptive {what}"),
                baseline: bv,
                candidate: cv,
                worse_pct: worse,
                p_value: None,
                severity: threshold_verdict(worse, opts.threshold_pct),
                note: String::new(),
            });
        }
        let (bs, cs) = (f64_field(ba, "steps")?, f64_field(ca, "steps")?);
        findings.push(Finding {
            item: format!("{name} · adaptive steps"),
            baseline: bs,
            candidate: cs,
            worse_pct: worse_pct(bs.max(1.0), cs, false),
            p_value: None,
            severity: if cs > bs * 1.5 + 2.0 {
                Severity::Regression
            } else {
                Severity::Unchanged
            },
            note: "slack: gates only past 1.5x + 2".to_owned(),
        });
    }
    Ok(findings)
}

// ─────────────────────── manifest comparison ───────────────────────

/// Flattens the manifest phase tree into `path → total_ns`.
fn flatten_phases(value: &Value, prefix: &str, out: &mut Vec<(String, f64)>) {
    let Some(phases) = value.as_arr() else { return };
    for p in phases {
        let Some(name) = p.get("name").and_then(Value::as_str) else {
            continue;
        };
        let path = if prefix.is_empty() {
            name.to_owned()
        } else {
            format!("{prefix}/{name}")
        };
        let total = p.get("total_ns").and_then(Value::as_f64).unwrap_or(0.0);
        out.push((path.clone(), total));
        if let Some(children) = p.get("children") {
            flatten_phases(children, &path, out);
        }
    }
}

fn manifest_counters(value: &Value) -> Vec<(String, f64)> {
    value
        .get("counters")
        .and_then(Value::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|c| {
                    let name = c.get("name").and_then(Value::as_str)?;
                    let v = c.get("value").and_then(Value::as_f64)?;
                    Some((name.to_owned(), v))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn diff_manifest(base: &Value, cand: &Value, opts: &DiffOptions) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();

    // Timings: one sample each, plain relative threshold.
    if !opts.quality_only {
        let wall = |v: &Value| f64_field(v, "wall_clock_ns");
        let (bw, cw) = (wall(base)?, wall(cand)?);
        let worse = worse_pct(bw, cw, false);
        findings.push(Finding {
            item: "wall_clock_ns".to_owned(),
            baseline: bw,
            candidate: cw,
            worse_pct: worse,
            p_value: None,
            severity: threshold_verdict(worse, opts.threshold_pct),
            note: "single sample".to_owned(),
        });

        let mut b_phases = Vec::new();
        let mut c_phases = Vec::new();
        if let Some(p) = base.get("phases") {
            flatten_phases(p, "", &mut b_phases);
        }
        if let Some(p) = cand.get("phases") {
            flatten_phases(p, "", &mut c_phases);
        }
        for (path, bt) in &b_phases {
            let Some((_, ct)) = c_phases.iter().find(|(p, _)| p == path) else {
                findings.push(Finding {
                    item: format!("phase {path}"),
                    baseline: *bt,
                    candidate: 0.0,
                    worse_pct: 100.0,
                    p_value: None,
                    severity: Severity::Regression,
                    note: "phase missing from candidate".to_owned(),
                });
                continue;
            };
            let worse = worse_pct(*bt, *ct, false);
            findings.push(Finding {
                item: format!("phase {path}"),
                baseline: *bt,
                candidate: *ct,
                worse_pct: worse,
                p_value: None,
                severity: threshold_verdict(worse, opts.threshold_pct),
                note: "single sample".to_owned(),
            });
        }
    }

    // Counters: work accounting is deterministic, so any drift beyond
    // the threshold in either direction is flagged.
    let b_counters = manifest_counters(base);
    let c_counters = manifest_counters(cand);
    for (name, bv) in &b_counters {
        let Some((_, cv)) = c_counters.iter().find(|(n, _)| n == name) else {
            findings.push(Finding {
                item: format!("counter {name}"),
                baseline: *bv,
                candidate: 0.0,
                worse_pct: 100.0,
                p_value: None,
                severity: Severity::Regression,
                note: "counter missing from candidate".to_owned(),
            });
            continue;
        };
        let change = worse_pct(*bv, *cv, false);
        findings.push(Finding {
            item: format!("counter {name}"),
            baseline: *bv,
            candidate: *cv,
            worse_pct: change.abs(),
            p_value: None,
            severity: if change.abs() > opts.threshold_pct {
                Severity::Regression
            } else {
                Severity::Unchanged
            },
            note: String::new(),
        });
    }
    Ok(findings)
}

// ─────────────── live-observability report comparison ───────────────

/// Compares two `BENCH_obs.json` reports. Mirrors the adaptive gate's
/// two layers:
///
/// * **Self-contained contract on the candidate** — the exposition must
///   validate, the windows must be non-empty, the trace id must
///   round-trip into the exemplar dump, and the measured tracing
///   overhead must stay within the report's own bound. These are
///   absolute machine-independent properties, so they gate under
///   `--quality-only`.
/// * **Relative timing columns** — per-arm service p50/p90 against the
///   baseline, skipped under `--quality-only` (wall time is not
///   portable across hosts).
fn diff_obs(base: &Value, cand: &Value, opts: &DiffOptions) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let contract = cand
        .get("contract")
        .ok_or("candidate obs report has no contract object")?;
    let checks = [
        ("exposition_valid", "metrics body failed Prometheus validation"),
        ("windows_nonempty", "sliding windows empty under load"),
        ("trace_roundtrip", "trace id did not round-trip to the exemplar dump"),
        ("overhead_within_bound", "tracing overhead exceeded the bound"),
    ];
    for (what, why) in checks {
        let ok = bool_field(contract, what);
        findings.push(Finding {
            item: format!("contract · {what}"),
            baseline: 1.0,
            candidate: if ok { 1.0 } else { 0.0 },
            worse_pct: if ok { 0.0 } else { 100.0 },
            p_value: None,
            severity: if ok {
                Severity::Unchanged
            } else {
                Severity::Regression
            },
            note: if ok {
                String::new()
            } else {
                format!("observability contract violated: {why}")
            },
        });
    }

    let bound = f64_field(cand, "overhead_bound_pct")?;
    let overhead = f64_field(cand, "overhead_pct")?;
    findings.push(Finding {
        item: "tracing overhead_pct (vs untraced p50)".to_owned(),
        baseline: bound,
        candidate: overhead,
        worse_pct: 0.0,
        p_value: None,
        severity: Severity::Unchanged,
        note: format!("informational; gated by the overhead_within_bound bit at {bound}%"),
    });

    if !opts.quality_only {
        let base_modes = base
            .get("modes")
            .and_then(Value::as_arr)
            .ok_or("baseline obs report has no modes array")?;
        let cand_modes = cand
            .get("modes")
            .and_then(Value::as_arr)
            .ok_or("candidate obs report has no modes array")?;
        for bm in base_modes {
            let obs_on = bool_field(bm, "obs");
            let label = if obs_on { "obs-on" } else { "obs-off" };
            let Some(cm) = cand_modes
                .iter()
                .find(|m| bool_field(m, "obs") == obs_on)
            else {
                findings.push(Finding {
                    item: format!("{label} (mode)"),
                    baseline: 1.0,
                    candidate: 0.0,
                    worse_pct: 100.0,
                    p_value: None,
                    severity: Severity::Regression,
                    note: "mode missing from candidate".to_owned(),
                });
                continue;
            };
            for col in ["service_p50_ns", "service_p90_ns"] {
                let (bv, cv) = (f64_field(bm, col)?, f64_field(cm, col)?);
                let worse = worse_pct(bv, cv, false);
                findings.push(Finding {
                    item: format!("{label} · {col}"),
                    baseline: bv,
                    candidate: cv,
                    worse_pct: worse,
                    p_value: None,
                    severity: threshold_verdict(worse, opts.threshold_pct),
                    note: String::new(),
                });
            }
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QorKernel, QorPoint, QorReport, QOR_SCHEMA};

    fn report(time_scale: f64, quality_delta: f64) -> Value {
        let point = |ratio: f64| QorPoint {
            ratio,
            quality: 30.0 + 10.0 * ratio + quality_delta,
            energy_j: 1.0 + ratio,
            achieved_ratio: ratio,
            accurate: (ratio * 10.0) as u64,
            approximate: 10 - (ratio * 10.0) as u64,
            dropped: 0,
            time_ns_samples: [1000.0, 1010.0, 990.0, 1005.0, 995.0]
                .iter()
                .map(|t| (t * time_scale) as u64)
                .collect(),
        };
        let r = QorReport {
            schema: QOR_SCHEMA.to_owned(),
            name: "test".to_owned(),
            git: "deadbeef".to_owned(),
            threads: 1,
            reps: 5,
            small: true,
            degraded: false,
            kernels: vec![QorKernel {
                name: "sobel".to_owned(),
                metric: "psnr_db".to_owned(),
                higher_is_better: true,
                points: vec![point(0.0), point(0.5), point(1.0)],
            }],
        };
        parse(&r.to_json()).expect("round-trip")
    }

    #[test]
    fn detect_distinguishes_kinds() {
        let qor = report(1.0, 0.0);
        assert_eq!(detect(&qor), Ok(ArtifactKind::Qor));
        let manifest = parse(r#"{"phases": [], "wall_clock_ns": 5}"#).unwrap();
        assert_eq!(detect(&manifest), Ok(ArtifactKind::RunManifest));
        assert!(detect(&parse("{}").unwrap()).is_err());
    }

    #[test]
    fn self_comparison_is_clean() {
        let r = report(1.0, 0.0);
        let d = diff_values(&r, &r, &DiffOptions::default()).expect("diff");
        assert_eq!(d.regressions(), 0, "{}", d.render());
    }

    #[test]
    fn injected_slowdown_gates() {
        let base = report(1.0, 0.0);
        let slow = report(1.10, 0.0); // +10% on every timing sample
        let d = diff_values(&base, &slow, &DiffOptions::default()).expect("diff");
        assert!(d.regressions() >= 3, "{}", d.render());
        assert!(d
            .findings
            .iter()
            .any(|f| f.item.contains("time_ns")
                && f.severity == Severity::Regression
                && f.p_value.is_some_and(|p| p < 0.05)));
    }

    #[test]
    fn slowdown_is_invisible_in_quality_only_mode() {
        let base = report(1.0, 0.0);
        let slow = report(1.10, 0.0);
        let opts = DiffOptions {
            quality_only: true,
            ..DiffOptions::default()
        };
        let d = diff_values(&base, &slow, &opts).expect("diff");
        assert_eq!(d.regressions(), 0, "{}", d.render());
    }

    #[test]
    fn quality_drop_gates_with_metric_direction() {
        let base = report(1.0, 0.0);
        let worse = report(1.0, -10.0); // PSNR down = worse
        let d = diff_values(&base, &worse, &DiffOptions::default()).expect("diff");
        assert!(
            d.findings
                .iter()
                .any(|f| f.item.contains("quality") && f.severity == Severity::Regression),
            "{}",
            d.render()
        );
        // And a PSNR *increase* is an improvement, not a regression.
        let better = report(1.0, 10.0);
        let d = diff_values(&base, &better, &DiffOptions::default()).expect("diff");
        assert_eq!(d.regressions(), 0, "{}", d.render());
        assert!(d
            .findings
            .iter()
            .any(|f| f.severity == Severity::Improvement));
    }

    #[test]
    fn small_noise_does_not_gate() {
        let base = report(1.0, 0.0);
        // 1% timing drift, under the 5% threshold.
        let near = report(1.01, 0.0);
        let d = diff_values(&base, &near, &DiffOptions::default()).expect("diff");
        assert_eq!(d.regressions(), 0, "{}", d.render());
    }

    #[test]
    fn missing_kernel_is_a_regression() {
        let base = report(1.0, 0.0);
        let mut r = QorReport {
            schema: QOR_SCHEMA.to_owned(),
            name: "test".to_owned(),
            git: "deadbeef".to_owned(),
            threads: 1,
            reps: 5,
            degraded: false,
            small: true,
            kernels: vec![],
        };
        r.kernels.clear();
        let empty = parse(&r.to_json()).unwrap();
        let d = diff_values(&base, &empty, &DiffOptions::default()).expect("diff");
        assert_eq!(d.regressions(), 1);
        assert!(d.findings[0].note.contains("kernel missing"));
    }

    #[test]
    fn manifest_phase_slowdown_gates() {
        let mk = |wall: f64, phase: f64| {
            parse(&format!(
                r#"{{"wall_clock_ns": {wall}, "phases": [
                    {{"name": "analyze", "total_ns": {phase}, "count": 1, "children": [
                        {{"name": "sweep", "total_ns": {phase}, "count": 1, "children": []}}
                    ]}}
                ], "counters": [{{"name": "tasks.accurate", "value": 10}}]}}"#
            ))
            .unwrap()
        };
        let base = mk(1000.0, 800.0);
        let d = diff_values(&base, &mk(1000.0, 1000.0), &DiffOptions::default()).unwrap();
        assert!(
            d.findings
                .iter()
                .any(|f| f.item == "phase analyze" && f.severity == Severity::Regression),
            "{}",
            d.render()
        );
        assert!(d.findings.iter().any(|f| f.item == "phase analyze/sweep"));
        // Self-compare is clean.
        let d = diff_values(&base, &base, &DiffOptions::default()).unwrap();
        assert_eq!(d.regressions(), 0);
    }

    #[test]
    fn manifest_counter_drift_gates_both_directions() {
        let mk = |v: u64| {
            parse(&format!(
                r#"{{"wall_clock_ns": 1000, "phases": [],
                     "counters": [{{"name": "tasks.accurate", "value": {v}}}]}}"#
            ))
            .unwrap()
        };
        let opts = DiffOptions::default();
        let up = diff_values(&mk(100), &mk(150), &opts).unwrap();
        assert_eq!(up.regressions(), 1, "{}", up.render());
        let down = diff_values(&mk(100), &mk(50), &opts).unwrap();
        assert_eq!(down.regressions(), 1, "{}", down.render());
    }

    /// One-kernel adaptive report with the given contract bits.
    fn adaptive_report(ok: bool, degraded: bool, steps: u64) -> Value {
        use crate::adaptive::{
            AdaptiveKernel, AdaptiveOutcome, AdaptiveReport, StaticBest, ADAPTIVE_SCHEMA,
        };
        let r = AdaptiveReport {
            schema: ADAPTIVE_SCHEMA.to_owned(),
            name: "test".to_owned(),
            git: "deadbeef".to_owned(),
            threads: 1,
            small: true,
            degraded,
            kernels: vec![AdaptiveKernel {
                name: "sobel".to_owned(),
                metric: "psnr_db".to_owned(),
                higher_is_better: true,
                target_kind: "at_least".to_owned(),
                target: 25.0,
                non_flat: true,
                best_static: Some(StaticBest {
                    ratio: 0.8,
                    quality: 28.9,
                    energy_j: 2.0,
                }),
                adaptive: AdaptiveOutcome {
                    final_ratio: 0.62,
                    quality: 25.4,
                    energy_j: 1.6,
                    steps,
                    converged: ok,
                    converged_step: ok.then(|| steps.saturating_sub(1)),
                    evals: steps + 1,
                    non_finite: 0,
                },
                target_met: ok,
                dominates: ok,
            }],
        };
        parse(&r.to_json()).expect("round-trip")
    }

    #[test]
    fn detect_recognises_adaptive_reports() {
        assert_eq!(
            detect(&adaptive_report(true, false, 6)),
            Ok(ArtifactKind::Adaptive)
        );
    }

    #[test]
    fn adaptive_self_comparison_is_clean() {
        let r = adaptive_report(true, false, 6);
        let d = diff_values(&r, &r, &DiffOptions::default()).expect("diff");
        assert_eq!(d.regressions(), 0, "{}", d.render());
        assert!(d.warnings.is_empty());
    }

    #[test]
    fn broken_controller_contract_gates() {
        let base = adaptive_report(true, false, 6);
        let bad = adaptive_report(false, false, 6);
        let d = diff_values(&base, &bad, &DiffOptions::default()).expect("diff");
        // target_met, converged, and dominance all broke.
        assert_eq!(d.regressions(), 3, "{}", d.render());
        assert!(d.render().contains("dominates best static"));
    }

    #[test]
    fn convergence_step_blowup_gates_with_slack() {
        let base = adaptive_report(true, false, 6);
        // 8 steps is within 6·1.5 + 2 = 11: fine.
        let near = adaptive_report(true, false, 8);
        let d = diff_values(&base, &near, &DiffOptions::default()).expect("diff");
        assert_eq!(d.regressions(), 0, "{}", d.render());
        // 20 steps is a blow-up.
        let slow = adaptive_report(true, false, 20);
        let d = diff_values(&base, &slow, &DiffOptions::default()).expect("diff");
        assert_eq!(d.regressions(), 1, "{}", d.render());
        assert!(d.render().contains("convergence steps"));
    }

    /// One-image JPEG scenario report with controllable contract bits
    /// and a PSNR offset on the significance curve.
    fn jpeg_report(ok: bool, psnr_delta: f64) -> Value {
        use crate::jpeg::{JpegAdaptive, JpegImage, JpegPoint, JpegReport, JPEG_SCHEMA};
        let point = |ratio: f64, delta: f64| JpegPoint {
            ratio,
            psnr_db: 40.0 + 20.0 * ratio + delta,
            ssim: 0.99 + 0.01 * ratio,
            bits: 4096,
            bits_per_pixel: 1.5,
            energy_j: 0.002 + 0.02 * ratio,
            accurate_blocks: (ratio * 16.0).ceil() as u64,
            approx_blocks: 16 - (ratio * 16.0).ceil() as u64,
            roundtrip_ok: ok,
        };
        let r = JpegReport {
            schema: JPEG_SCHEMA.to_owned(),
            name: "bench_jpeg".to_owned(),
            git: "deadbeef".to_owned(),
            threads: 1,
            small: true,
            degraded: false,
            images: vec![JpegImage {
                name: "scene".to_owned(),
                width: 32,
                height: 32,
                blocks: 16,
                curve: [0.0, 0.5, 1.0].map(|r| point(r, psnr_delta)).to_vec(),
                random_curve: [0.0, 0.5, 1.0].map(|r| point(r, -5.0)).to_vec(),
                sig_dominates_random: ok,
                adaptive: JpegAdaptive {
                    target_psnr_db: 50.0,
                    final_ratio: 0.4,
                    psnr_db: 51.0,
                    energy_j: 0.01,
                    bits_per_pixel: 1.5,
                    steps: 3,
                    converged: ok,
                    target_met: ok,
                },
            }],
        };
        parse(&r.to_json()).expect("round-trip")
    }

    #[test]
    fn detect_recognises_jpeg_reports() {
        assert_eq!(detect(&jpeg_report(true, 0.0)), Ok(ArtifactKind::Jpeg));
    }

    #[test]
    fn jpeg_self_comparison_is_clean() {
        let r = jpeg_report(true, 0.0);
        let d = diff_values(&r, &r, &DiffOptions::default()).expect("diff");
        assert_eq!(d.regressions(), 0, "{}", d.render());
    }

    #[test]
    fn broken_codec_contract_gates() {
        let base = jpeg_report(true, 0.0);
        let bad = jpeg_report(false, 0.0);
        let d = diff_values(&base, &bad, &DiffOptions::default()).expect("diff");
        // round-trip, dominance, target_met, converged all broke.
        assert_eq!(d.regressions(), 4, "{}", d.render());
        assert!(d.render().contains("significance dominates random"));
        assert!(d.render().contains("bitstreams round-trip"));
    }

    #[test]
    fn jpeg_psnr_drop_gates() {
        let base = jpeg_report(true, 0.0);
        let worse = jpeg_report(true, -10.0);
        let d = diff_values(&base, &worse, &DiffOptions::default()).expect("diff");
        assert!(
            d.findings
                .iter()
                .any(|f| f.item.contains("curve") && f.item.contains("psnr_db")
                    && f.severity == Severity::Regression),
            "{}",
            d.render()
        );
        // A PSNR *gain* on the significance curve never gates.
        let better = jpeg_report(true, 10.0);
        let d = diff_values(&base, &better, &DiffOptions::default()).expect("diff");
        assert_eq!(d.regressions(), 0, "{}", d.render());
    }

    #[test]
    fn jpeg_missing_image_is_a_regression() {
        let base = jpeg_report(true, 0.0);
        let mut empty = jpeg_report(true, 0.0);
        if let Value::Obj(entries) = &mut empty {
            entries.retain(|(k, _)| k != "images");
            entries.push(("images".to_owned(), Value::Arr(vec![])));
        }
        let d = diff_values(&base, &empty, &DiffOptions::default()).expect("diff");
        assert_eq!(d.regressions(), 1, "{}", d.render());
        assert!(d.findings[0].note.contains("image missing"));
    }

    #[test]
    fn degraded_inputs_surface_as_warnings() {
        let clean = adaptive_report(true, false, 6);
        let degraded = adaptive_report(true, true, 6);
        let d = diff_values(&clean, &degraded, &DiffOptions::default()).expect("diff");
        assert_eq!(d.regressions(), 0, "degraded warns, not gates: {}", d.render());
        assert_eq!(d.warnings.len(), 1);
        assert!(d.render().contains("WARNING"), "{}", d.render());

        // Same flag on a QoR report.
        let mut q = report(1.0, 0.0);
        let dq = diff_values(&q, &q, &DiffOptions::default()).expect("diff");
        assert!(dq.warnings.is_empty());
        if let Value::Obj(entries) = &mut q {
            entries.retain(|(k, _)| k != "degraded");
            entries.push(("degraded".to_owned(), Value::Bool(true)));
        }
        let dq = diff_values(&q, &q, &DiffOptions::default()).expect("diff");
        assert_eq!(dq.warnings.len(), 2, "both sides degraded: {:?}", dq.warnings);
    }
}
