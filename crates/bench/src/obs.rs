//! The live-observability ablation report (`BENCH_obs.json`).
//!
//! `bench_obs` runs the same warm serving workload against two
//! in-process servers — one with span/event tracing enabled
//! (`obs: true`, the daemon default) and one with it disabled — and
//! records the per-request service-time distribution of each, plus the
//! live-scrape contract: the `metrics` verb must render valid
//! Prometheus exposition under load, the sliding windows must be
//! non-empty, a client-supplied trace id must round-trip into the
//! exemplar dump, and the tracing overhead must stay within
//! [`ObsReport::overhead_bound_pct`] of the untraced service-time p50.
//!
//! The contract bits are machine-independent, so
//! `scorpio_diff --gate --quality-only` against
//! `baselines/BENCH_obs_small.json` enforces them on any host; raw
//! nanosecond columns only gate in full (same-machine) mode.

use serde::Serialize;

/// Format tag of `BENCH_obs.json`.
pub const OBS_SCHEMA: &str = "scorpio-obs-v1";

/// The machine-independent live-observability contract.
#[derive(Debug, Clone, Serialize)]
pub struct ObsContract {
    /// The `metrics` verb's body passed
    /// [`scorpio_obs::expose::validate_exposition`] while the server
    /// was under load.
    pub exposition_valid: bool,
    /// Samples the validated exposition contained.
    pub exposition_samples: u64,
    /// Every loaded kernel's 10s window reported the requests that
    /// were just sent.
    pub windows_nonempty: bool,
    /// A client-supplied trace id came back in the analyze response
    /// *and* named a reassemblable span tree in the exemplar dump
    /// (root span plus nested children, all stamped with the id).
    pub trace_roundtrip: bool,
    /// Measured tracing overhead stayed within
    /// [`ObsReport::overhead_bound_pct`] of the untraced p50.
    pub overhead_within_bound: bool,
}

/// One ablation arm: the serving workload with tracing on or off.
#[derive(Debug, Clone, Serialize)]
pub struct ObsMode {
    /// Whether span/event tracing was enabled.
    pub obs: bool,
    /// Warm analyze requests measured.
    pub requests: u64,
    /// Median service time, nanoseconds.
    pub service_p50_ns: f64,
    /// 90th-percentile service time, nanoseconds.
    pub service_p90_ns: f64,
    /// Mean service time, nanoseconds.
    pub service_mean_ns: f64,
}

/// The `BENCH_obs.json` artifact.
#[derive(Debug, Clone, Serialize)]
pub struct ObsReport {
    /// Format tag, always [`OBS_SCHEMA`].
    pub schema: String,
    /// Worker-pool size used by both arms.
    pub workers: usize,
    /// Warm requests measured per arm.
    pub requests_per_mode: u64,
    /// The acceptance bound on tracing overhead, percent of the
    /// untraced p50 (the issue fixes it at 5%).
    pub overhead_bound_pct: f64,
    /// Measured overhead: `(p50_on - p50_off) / p50_off · 100`
    /// (negative when tracing measured faster — noise on a 1-core
    /// container).
    pub overhead_pct: f64,
    /// The machine-independent contract bits.
    pub contract: ObsContract,
    /// The two arms, tracing-on first.
    pub modes: Vec<ObsMode>,
}

impl ObsReport {
    /// The schema tag a parsed artifact must carry to be this kind.
    pub fn matches_schema(value: &scorpio_obs::json::Value) -> bool {
        value
            .get("schema")
            .and_then(scorpio_obs::json::Value::as_str)
            == Some(OBS_SCHEMA)
    }
}
