//! Adaptive-controller ablation: closed-loop ratio control vs the best
//! static ratio.
//!
//! The static Fig. 7 sweep answers "what quality does each ratio buy";
//! this module answers the operational question the paper's §3.2 knob
//! exists for: *given a quality target, can the runtime find the
//! cheapest ratio by itself?* [`run_adaptive`] drives one kernel's
//! [`AdaptiveController`] loop — execute at the current ratio, feed the
//! measured quality (or modeled energy) back, let the controller step —
//! until it converges or a step budget runs out, then scores the result
//! against the best *static* grid point from the same kernel's QoR
//! curve. The per-kernel outcomes aggregate into `BENCH_adaptive.json`
//! ([`ADAPTIVE_SCHEMA`]), which `scorpio_diff --gate` checks against a
//! checked-in baseline: on every kernel with a non-flat quality curve
//! the controller must meet its target and use no more energy than the
//! cheapest target-meeting static ratio.

use crate::qor::QorKernel;
use scorpio_runtime::controller::adaptive::{AdaptiveController, Objective};
use scorpio_runtime::controller::QualityTarget;
use scorpio_runtime::{EnergyModel, ExecutionStats};
use serde::Serialize;

/// Schema tag of `BENCH_adaptive.json`, so `scorpio_diff` can tell the
/// ablation report apart from QoR reports and run manifests.
pub const ADAPTIVE_SCHEMA: &str = "scorpio-adaptive-v1";

/// Default cap on closed-loop iterations per kernel. The controller's
/// bracket halves in width every couple of steps, so a well-behaved
/// kernel converges in well under half of this; hitting the cap means
/// `converged: false` in the report, which the diff gate flags on
/// non-flat kernels.
pub const MAX_STEPS: usize = 32;

/// The cheapest static grid point meeting the objective (for quality
/// targets), or the best-quality point within budget (for energy
/// budgets) — the yardstick the controller has to beat or match.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StaticBest {
    /// The grid ratio.
    pub ratio: f64,
    /// Quality measured at that ratio in the static sweep.
    pub quality: f64,
    /// Modeled energy at that ratio in the static sweep.
    pub energy_j: f64,
}

/// What the closed loop ended at.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AdaptiveOutcome {
    /// The ratio the controller settled on.
    pub final_ratio: f64,
    /// Quality measured at [`AdaptiveOutcome::final_ratio`].
    pub quality: f64,
    /// Modeled energy at the final ratio.
    pub energy_j: f64,
    /// Controller observations consumed.
    pub steps: u64,
    /// Whether the controller latched convergence before the step cap.
    pub converged: bool,
    /// Zero-based observation index at which convergence latched.
    pub converged_step: Option<u64>,
    /// Kernel executions spent (≥ `steps`: a confirming run is added
    /// when the last observation still moved the ratio).
    pub evals: u64,
    /// Non-finite quality signals the controller absorbed (held, not
    /// chased — see the NaN-immunity contract of the controller).
    pub non_finite: u64,
}

/// One kernel's adaptive-vs-static verdict.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AdaptiveKernel {
    /// Kernel name (e.g. `"sobel"`).
    pub name: String,
    /// Quality metric of the `quality` values.
    pub metric: String,
    /// `true` when larger quality values are better.
    pub higher_is_better: bool,
    /// Objective direction: `"at_least"`, `"at_most"`, or
    /// `"energy_budget"`.
    pub target_kind: String,
    /// The objective's threshold value.
    pub target: f64,
    /// `true` when the static QoR curve actually varies with the ratio.
    /// A flat curve (blackscholes' synthetic error metric) gives the
    /// controller nothing to trade, so flat kernels are reported but
    /// exempt from the dominance gate.
    pub non_flat: bool,
    /// The static yardstick, absent when no grid point meets the
    /// objective.
    pub best_static: Option<StaticBest>,
    /// The closed-loop result.
    pub adaptive: AdaptiveOutcome,
    /// Whether the final observation satisfies the objective.
    pub target_met: bool,
    /// The gate predicate: on non-flat kernels, target met at energy no
    /// worse than [`AdaptiveKernel::best_static`] (quality no worse,
    /// for energy budgets). Flat kernels pass vacuously.
    pub dominates: bool,
}

/// The whole report (`BENCH_adaptive.json`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AdaptiveReport {
    /// Format tag, always [`ADAPTIVE_SCHEMA`].
    pub schema: String,
    /// Producing harness (e.g. `"bench_adaptive"`).
    pub name: String,
    /// `git describe` of the producing tree.
    pub git: String,
    /// Worker threads the runs used.
    pub threads: usize,
    /// Whether the reduced `--small` workloads were used.
    pub small: bool,
    /// `true` when the producing run dropped task events — achieved
    /// ratios (and anything seeded from them) may then be biased; see
    /// [`crate::QorReport::degraded`].
    pub degraded: bool,
    /// Per-kernel verdicts.
    pub kernels: Vec<AdaptiveKernel>,
}

impl AdaptiveReport {
    /// Serialises the report as JSON.
    pub fn to_json(&self) -> String {
        scorpio_obs::json::to_string(self)
    }
}

/// The per-kernel quality objective the harnesses default to when no
/// `--target` override is given. Values are chosen to sit strictly
/// inside each kernel's measured quality range so the controller has a
/// real crossing to find (on both the `--small` and full workloads).
/// Returns `None` for unknown kernel names.
pub fn default_objective(kernel: &str) -> Option<Objective> {
    Some(match kernel {
        "sobel" => Objective::Quality(QualityTarget::AtLeast(25.0)),
        "dct" => Objective::Quality(QualityTarget::AtLeast(40.0)),
        "fisheye" => Objective::Quality(QualityTarget::AtLeast(30.0)),
        "nbody" => Objective::Quality(QualityTarget::AtMost(1e-5)),
        "blackscholes" => Objective::Quality(QualityTarget::AtMost(1e-3)),
        _ => return None,
    })
}

/// The objective a harness pursues for `kernel`: the per-kernel
/// default, with an optional `--target` override replacing the
/// threshold while keeping the metric direction.
///
/// # Panics
///
/// Panics when `kernel` has no default objective (unknown name).
pub fn resolve_objective(kernel: &str, target_override: Option<f64>) -> Objective {
    let base = default_objective(kernel)
        .unwrap_or_else(|| panic!("no default quality target for kernel {kernel:?}"));
    match (base, target_override) {
        (objective, None) => objective,
        (Objective::Quality(QualityTarget::AtLeast(_)), Some(q)) => {
            Objective::Quality(QualityTarget::AtLeast(q))
        }
        (Objective::Quality(QualityTarget::AtMost(_)), Some(q)) => {
            Objective::Quality(QualityTarget::AtMost(q))
        }
        (Objective::EnergyBudget(_), Some(q)) => Objective::EnergyBudget(q),
    }
}

/// Splits an objective into the `(target_kind, target)` report fields.
pub fn objective_fields(objective: Objective) -> (&'static str, f64) {
    match objective {
        Objective::Quality(QualityTarget::AtLeast(t)) => ("at_least", t),
        Objective::Quality(QualityTarget::AtMost(t)) => ("at_most", t),
        Objective::EnergyBudget(b) => ("energy_budget", b),
    }
}

/// `true` when the curve's quality actually responds to the ratio knob
/// (relative spread beyond noise). Flat curves are exempt from the
/// dominance gate: there is no trade-off for the controller to win.
pub fn non_flat(curve: &QorKernel) -> bool {
    let finite: Vec<f64> = curve
        .points
        .iter()
        .map(|p| p.quality)
        .filter(|q| q.is_finite())
        .collect();
    let (Some(lo), Some(hi)) = (
        finite.iter().copied().reduce(f64::min),
        finite.iter().copied().reduce(f64::max),
    ) else {
        return false;
    };
    hi - lo > 1e-6 * hi.abs().max(1.0)
}

/// Picks the static yardstick off a measured curve: for quality
/// targets, the minimum-energy point meeting the target; for energy
/// budgets, the best-quality point within budget. `None` when no grid
/// point qualifies.
pub fn best_static(curve: &QorKernel, objective: Objective) -> Option<StaticBest> {
    let candidates = curve.points.iter().filter(|p| match objective {
        Objective::Quality(t) => t.met_by(p.quality),
        Objective::EnergyBudget(b) => p.energy_j <= b,
    });
    let winner = match objective {
        Objective::Quality(_) => {
            candidates.min_by(|a, b| a.energy_j.total_cmp(&b.energy_j))
        }
        Objective::EnergyBudget(_) => candidates.max_by(|a, b| {
            if curve.higher_is_better {
                a.quality.total_cmp(&b.quality)
            } else {
                b.quality.total_cmp(&a.quality)
            }
        }),
    }?;
    Some(StaticBest {
        ratio: winner.ratio,
        quality: winner.quality,
        energy_j: winner.energy_j,
    })
}

/// Drives the closed loop for one kernel and scores it against the
/// static curve.
///
/// `curve` is the kernel's static QoR sweep (used to seed the
/// controller's starting ratio and to pick [`StaticBest`]); `eval` runs
/// the kernel once at a given ratio and returns the measured quality
/// and execution statistics. The loop stops at convergence or after
/// `max_steps` observations; when the final observation still moved the
/// ratio, one confirming execution at the settled ratio produces the
/// reported quality/energy.
pub fn run_adaptive(
    curve: &QorKernel,
    objective: Objective,
    max_steps: usize,
    model: &EnergyModel,
    mut eval: impl FnMut(f64) -> (f64, ExecutionStats),
) -> AdaptiveKernel {
    let mut controller = AdaptiveController::new(curve.name.clone(), objective);
    let seed: Vec<(f64, f64)> = curve.points.iter().map(|p| (p.ratio, p.quality)).collect();
    controller.seed_from_curve(&seed);

    let mut evals = 0u64;
    let mut quality = f64::NAN;
    let mut energy_j = f64::NAN;
    let mut moved_after_measuring = false;
    for _ in 0..max_steps {
        let ratio = controller.ratio();
        let (q, stats) = eval(ratio);
        evals += 1;
        let e = model.energy(&stats);
        controller.record_execution(&stats);
        let signal = match objective {
            Objective::Quality(_) => q,
            Objective::EnergyBudget(_) => e,
        };
        let decision = controller.observe(signal);
        quality = q;
        energy_j = e;
        moved_after_measuring = decision.ratio_after != decision.ratio_before;
        if controller.converged() {
            break;
        }
    }
    if moved_after_measuring {
        // The last observation stepped the ratio, so the recorded
        // quality belongs to the pre-step ratio: confirm at the settled
        // one.
        let (q, stats) = eval(controller.ratio());
        evals += 1;
        quality = q;
        energy_j = model.energy(&stats);
    }

    let target_met = match objective {
        Objective::Quality(t) => t.met_by(quality),
        Objective::EnergyBudget(b) => energy_j <= b,
    };
    let flat_exempt = !non_flat(curve);
    let best = best_static(curve, objective);
    let dominates = flat_exempt
        || (target_met
            && match (&objective, &best) {
                (_, None) => true,
                (Objective::Quality(_), Some(s)) => {
                    energy_j <= s.energy_j * (1.0 + 1e-9) + 1e-12
                }
                (Objective::EnergyBudget(_), Some(s)) => {
                    if curve.higher_is_better {
                        quality >= s.quality
                    } else {
                        quality <= s.quality
                    }
                }
            });
    let (target_kind, target) = objective_fields(objective);
    AdaptiveKernel {
        name: curve.name.clone(),
        metric: curve.metric.clone(),
        higher_is_better: curve.higher_is_better,
        target_kind: target_kind.to_owned(),
        target,
        non_flat: !flat_exempt,
        best_static: best,
        adaptive: AdaptiveOutcome {
            final_ratio: controller.ratio(),
            quality,
            energy_j,
            steps: controller.steps(),
            converged: controller.converged(),
            converged_step: controller.converged_at(),
            evals,
            non_finite: controller.non_finite_observations(),
        },
        target_met,
        dominates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qor::QorPoint;

    /// A synthetic kernel: `tasks` tasks, quality follows `q(ratio)`,
    /// energy proportional to accurate task count (the runtime's
    /// ceil-quantised schedule).
    fn synth_eval(
        tasks: usize,
        q: impl Fn(f64) -> f64,
    ) -> impl FnMut(f64) -> (f64, ExecutionStats) {
        move |ratio: f64| {
            let accurate = (ratio * tasks as f64).ceil() as usize;
            let stats = ExecutionStats {
                accurate,
                approximate: tasks - accurate,
                dropped: 0,
                accurate_ops: accurate as u64 * 1000,
                approx_ops: (tasks - accurate) as u64 * 10,
            };
            (q(ratio), stats)
        }
    }

    fn synth_curve(name: &str, tasks: usize, q: impl Fn(f64) -> f64) -> QorKernel {
        let model = EnergyModel::xeon_e5_2695v3();
        let mut eval = synth_eval(tasks, &q);
        let points = [0.0, 0.2, 0.5, 0.8, 1.0]
            .into_iter()
            .map(|ratio| {
                let (quality, stats) = eval(ratio);
                QorPoint {
                    ratio,
                    quality,
                    energy_j: model.energy(&stats),
                    achieved_ratio: stats.accurate as f64 / stats.total() as f64,
                    accurate: stats.accurate as u64,
                    approximate: stats.approximate as u64,
                    dropped: 0,
                    time_ns_samples: vec![1_000],
                }
            })
            .collect();
        QorKernel {
            name: name.to_owned(),
            metric: "psnr_db".to_owned(),
            higher_is_better: true,
            points,
        }
    }

    #[test]
    fn adaptive_meets_target_and_dominates_on_a_ramp() {
        let q = |r: f64| 20.0 + 40.0 * r; // crosses 30 dB at r = 0.25
        let curve = synth_curve("ramp", 200, q);
        let model = EnergyModel::xeon_e5_2695v3();
        let k = run_adaptive(
            &curve,
            Objective::Quality(QualityTarget::AtLeast(30.0)),
            MAX_STEPS,
            &model,
            synth_eval(200, q),
        );
        assert!(k.non_flat);
        assert!(k.adaptive.converged, "did not converge: {k:?}");
        assert!(k.target_met, "missed target: {k:?}");
        assert!(k.dominates, "worse than static: {k:?}");
        // Best static is the 0.5 grid point (the 0.2 point sits below
        // 30 dB); the controller should land near 0.25.
        let s = k.best_static.as_ref().unwrap();
        assert_eq!(s.ratio, 0.5);
        assert!(k.adaptive.energy_j < s.energy_j);
        assert!(k.adaptive.final_ratio < 0.45, "ratio {}", k.adaptive.final_ratio);
    }

    #[test]
    fn flat_curve_is_exempt_from_dominance() {
        let q = |_: f64| 42.0;
        let curve = synth_curve("flat", 50, q);
        let model = EnergyModel::xeon_e5_2695v3();
        let k = run_adaptive(
            &curve,
            Objective::Quality(QualityTarget::AtLeast(99.0)), // unreachable
            MAX_STEPS,
            &model,
            synth_eval(50, q),
        );
        assert!(!k.non_flat);
        assert!(!k.target_met);
        assert!(k.dominates, "flat kernels pass vacuously");
    }

    #[test]
    fn unreachable_target_on_varying_curve_fails_the_gate() {
        let q = |r: f64| 20.0 + 10.0 * r; // tops out at 30 dB
        let curve = synth_curve("capped", 50, q);
        let model = EnergyModel::xeon_e5_2695v3();
        let k = run_adaptive(
            &curve,
            Objective::Quality(QualityTarget::AtLeast(60.0)),
            MAX_STEPS,
            &model,
            synth_eval(50, q),
        );
        assert!(k.non_flat);
        assert!(!k.target_met);
        assert!(!k.dominates);
        assert!(k.best_static.is_none(), "no static point meets 60 dB");
    }

    #[test]
    fn default_objectives_cover_the_five_kernels() {
        for name in ["sobel", "dct", "fisheye", "nbody", "blackscholes"] {
            assert!(default_objective(name).is_some(), "{name}");
        }
        assert!(default_objective("mandelbrot").is_none());
    }

    #[test]
    fn report_serialises_with_schema_tag() {
        let q = |r: f64| 20.0 + 40.0 * r;
        let curve = synth_curve("ramp", 40, q);
        let model = EnergyModel::xeon_e5_2695v3();
        let k = run_adaptive(
            &curve,
            Objective::Quality(QualityTarget::AtLeast(30.0)),
            MAX_STEPS,
            &model,
            synth_eval(40, q),
        );
        let report = AdaptiveReport {
            schema: ADAPTIVE_SCHEMA.to_owned(),
            name: "test".to_owned(),
            git: "none".to_owned(),
            threads: 1,
            small: true,
            degraded: false,
            kernels: vec![k],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"scorpio-adaptive-v1\""));
        assert!(json.contains("\"dominates\":true"));
        let parsed = scorpio_obs::json::parse(&json).expect("round-trip");
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some(ADAPTIVE_SCHEMA)
        );
    }
}
