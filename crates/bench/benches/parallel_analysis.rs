//! Criterion benches for the parallel analysis engine: the Fig. 5
//! InverseMapping per-pixel batch at 1/2/4/8 workers, the tape-reuse
//! ablation (one warm arena vs a fresh tape per analysis), the
//! compiled-replay ablation (record-once / replay-many vs re-recording)
//! at a single worker, the lane-replay ablation (1/2/4/8 replay lanes
//! per compiled-trace walk), and the scorpio-obs overhead check (the
//! same analysis batch with tracing disabled vs enabled — disabled must
//! be within noise of the pre-instrumentation baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use scorpio_core::{Analysis, AnalysisArena, ParallelAnalysis, ReplayOrRecord};
use scorpio_kernels::fisheye::{
    analysis_inverse_mapping, analysis_inverse_mapping_grid, analysis_inverse_mapping_grid_lanes,
    analysis_inverse_mapping_in, analysis_inverse_mapping_replay_in, Lens,
};

fn bench_grid_scaling(c: &mut Criterion) {
    let lens = Lens::for_image(1280, 960);
    let mut group = c.benchmark_group("parallel_grid");
    for threads in [1usize, 2, 4, 8] {
        let engine = ParallelAnalysis::new(threads);
        group.bench_with_input(
            BenchmarkId::new("fig5_32x24", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    black_box(analysis_inverse_mapping_grid(&lens, 32, 24, &engine).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_tape_reuse(c: &mut Criterion) {
    let lens = Lens::for_image(1280, 960);
    let mut group = c.benchmark_group("tape_reuse");
    // 64 analyses along the image's horizontal midline per iteration.
    let pixels: Vec<f64> = (0..64).map(|i| 10.0 + i as f64 * 19.0).collect();
    group.bench_function("fresh_tape", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &u in &pixels {
                acc += analysis_inverse_mapping(&lens, u, 480.0).unwrap();
            }
            black_box(acc)
        })
    });
    group.bench_function("arena_reuse", |b| {
        let mut arena = AnalysisArena::new();
        b.iter(|| {
            let mut acc = 0.0;
            for &u in &pixels {
                acc += analysis_inverse_mapping_in(&mut arena, &lens, u, 480.0).unwrap();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_compiled_replay(c: &mut Criterion) {
    let lens = Lens::for_image(1280, 960);
    let mut group = c.benchmark_group("compiled_replay");
    // Same 64-analysis midline batch as `tape_reuse`, so the three
    // recording strategies are directly comparable across groups.
    let pixels: Vec<f64> = (0..64).map(|i| 10.0 + i as f64 * 19.0).collect();
    group.bench_function("rerecord", |b| {
        let mut arena = AnalysisArena::new();
        b.iter(|| {
            let mut acc = 0.0;
            for &u in &pixels {
                acc += analysis_inverse_mapping_in(&mut arena, &lens, u, 480.0).unwrap();
            }
            black_box(acc)
        })
    });
    group.bench_function("replay", |b| {
        let mut arena = AnalysisArena::new();
        let mut driver = ReplayOrRecord::new(Analysis::new());
        b.iter(|| {
            let mut acc = 0.0;
            for &u in &pixels {
                acc += analysis_inverse_mapping_replay_in(&mut driver, &mut arena, &lens, u, 480.0)
                    .unwrap();
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// Lane-replay ablation: the 32×24 Fig. 5 grid on one worker at
/// 1/2/4/8 replay lanes per compiled-trace walk. Width 1 routes every
/// item through the per-item scalar replay path, so its row is the
/// scalar baseline the wider rows are judged against; results are
/// bit-identical at every width.
fn bench_lane_replay(c: &mut Criterion) {
    let lens = Lens::for_image(1280, 960);
    let engine = ParallelAnalysis::new(1);
    let mut group = c.benchmark_group("lane_replay");
    macro_rules! lane_case {
        ($lanes:literal) => {
            group.bench_with_input(
                BenchmarkId::new("fig5_32x24", $lanes),
                &$lanes,
                |b, _| {
                    b.iter(|| {
                        black_box(
                            analysis_inverse_mapping_grid_lanes::<$lanes>(&lens, 32, 24, &engine)
                                .unwrap(),
                        )
                    })
                },
            );
        };
    }
    lane_case!(1);
    lane_case!(2);
    lane_case!(4);
    lane_case!(8);
    group.finish();
}

/// Observability overhead: the identical 64-analysis batch with the
/// `scorpio-obs` layer off (the default — every instrumentation site
/// is a single relaxed atomic load) and on (spans + counters recorded
/// into the global sink). The `obs_disabled` case is the acceptance
/// gate: it must sit within ~2% of the pre-instrumentation baseline.
fn bench_obs_overhead(c: &mut Criterion) {
    let lens = Lens::for_image(1280, 960);
    let mut group = c.benchmark_group("obs_overhead");
    let pixels: Vec<f64> = (0..64).map(|i| 10.0 + i as f64 * 19.0).collect();
    scorpio_obs::disable();
    scorpio_obs::reset();
    group.bench_function("obs_disabled", |b| {
        let mut arena = AnalysisArena::new();
        b.iter(|| {
            let mut acc = 0.0;
            for &u in &pixels {
                acc += analysis_inverse_mapping_in(&mut arena, &lens, u, 480.0).unwrap();
            }
            black_box(acc)
        })
    });
    group.bench_function("obs_enabled", |b| {
        let mut arena = AnalysisArena::new();
        scorpio_obs::enable();
        b.iter(|| {
            // Keep the sink bounded: drain the recorded events each
            // iteration so the bench measures recording, not Vec growth.
            scorpio_obs::take_events();
            let mut acc = 0.0;
            for &u in &pixels {
                acc += analysis_inverse_mapping_in(&mut arena, &lens, u, 480.0).unwrap();
            }
            black_box(acc)
        });
        scorpio_obs::disable();
        scorpio_obs::reset();
    });
    // Task-event emission in isolation: with tracing disabled each call
    // is one relaxed atomic load and an early return, so the disabled
    // case must be within noise of doing nothing at all. The enabled
    // case measures the lock-free per-thread ring push (the ring wraps
    // and counts drops once full; wrapping is steady-state and is what
    // a traced run pays per task).
    group.bench_function("task_event_disabled", |b| {
        scorpio_obs::disable();
        b.iter(|| {
            for i in 0..64u64 {
                scorpio_obs::task_event(
                    black_box("bench"),
                    black_box(i),
                    0.5,
                    scorpio_obs::TaskClass::Accurate,
                    100,
                );
            }
        })
    });
    group.bench_function("task_event_enabled", |b| {
        scorpio_obs::enable();
        b.iter(|| {
            for i in 0..64u64 {
                scorpio_obs::task_event(
                    black_box("bench"),
                    black_box(i),
                    0.5,
                    scorpio_obs::TaskClass::Accurate,
                    100,
                );
            }
        });
        scorpio_obs::disable();
        scorpio_obs::reset();
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_grid_scaling,
    bench_tape_reuse,
    bench_compiled_replay,
    bench_lane_replay,
    bench_obs_overhead
);
criterion_main!(benches);
