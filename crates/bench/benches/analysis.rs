//! Criterion benches for the analysis machinery itself: recording
//! overhead, reverse-sweep cost, Algorithm-1 graph transforms, and the
//! splitting/Monte-Carlo extensions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use scorpio_adjoint::Tape;
use scorpio_core::{mc, Analysis};
use scorpio_interval::Interval;

/// A medium-size recording workload: an unrolled polynomial pipeline.
fn record_chain(tape: &Tape<Interval>, n: usize) -> scorpio_adjoint::Var<'_, Interval> {
    let x = tape.var(Interval::new(0.1, 0.9));
    let mut acc = tape.constant(Interval::ZERO);
    for i in 0..n {
        let t = (x * (i as f64 / n as f64)).sin() * x.exp();
        acc = acc + t;
    }
    acc
}

fn bench_recording(c: &mut Criterion) {
    let mut group = c.benchmark_group("recording");
    for n in [100usize, 1000, 10_000] {
        group.bench_with_input(BenchmarkId::new("interval_tape", n), &n, |b, &n| {
            b.iter(|| {
                let tape = Tape::<Interval>::with_capacity(8 * n);
                black_box(record_chain(&tape, n).value())
            })
        });
        group.bench_with_input(BenchmarkId::new("f64_tape", n), &n, |b, &n| {
            b.iter(|| {
                let tape = Tape::<f64>::with_capacity(8 * n);
                let x = tape.var(0.5);
                let mut acc = tape.constant(0.0);
                for i in 0..n {
                    acc = acc + (x * (i as f64 / n as f64)).sin() * x.exp();
                }
                black_box(acc.value())
            })
        });
    }
    group.finish();
}

fn bench_adjoint_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("adjoint_sweep");
    for n in [1000usize, 10_000] {
        let tape = Tape::<Interval>::with_capacity(8 * n);
        let y = record_chain(&tape, n);
        group.bench_with_input(BenchmarkId::new("reverse", n), &n, |b, _| {
            b.iter(|| black_box(tape.adjoints(&[(y.id(), Interval::ONE)])))
        });
        group.bench_with_input(BenchmarkId::new("tangent", n), &n, |b, _| {
            let inputs = tape.inputs();
            b.iter(|| black_box(tape.tangents(&[(inputs[0], Interval::ONE)])))
        });
    }
    group.finish();
}

fn bench_full_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    group.bench_function("maclaurin_n16", |b| {
        b.iter(|| {
            black_box(
                Analysis::new()
                    .run(|ctx| {
                        let x = ctx.input("x", -0.01, 0.99);
                        let mut acc = ctx.constant(0.0);
                        for i in 0..16 {
                            let t = x.powi(i);
                            ctx.intermediate(&t, format!("t{i}"));
                            acc = acc + t;
                        }
                        ctx.output(&acc, "y");
                        Ok(())
                    })
                    .unwrap(),
            )
        })
    });
    group.bench_function("workflow_simplify_partition", |b| {
        let report = Analysis::new()
            .run(|ctx| {
                let x = ctx.input("x", -0.01, 0.99);
                let mut acc = ctx.constant(0.0);
                for i in 0..64 {
                    acc = acc + x.powi(i);
                }
                ctx.output(&acc, "y");
                Ok(())
            })
            .unwrap();
        b.iter(|| black_box(report.graph().simplified().partition(1e-3)))
    });
    group.bench_function("mc_estimate_256", |b| {
        b.iter(|| {
            black_box(
                mc::estimate(256, 1, |ctx| {
                    let x = ctx.input("x", 0.0, 1.0);
                    let y = (x.sin() + x.sqr()).exp();
                    ctx.output(&y, "y");
                    Ok(())
                })
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_recording, bench_adjoint_sweep, bench_full_analysis);
criterion_main!(benches);
