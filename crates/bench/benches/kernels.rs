//! Criterion benches: execution time of every benchmark kernel at the
//! Fig. 7 ratio points, for the reference, significance-tasked and
//! perforated versions, plus task-granularity sweeps (the ablation of
//! DESIGN.md §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use scorpio_kernels::{blackscholes, dct, fisheye, maclaurin, nbody, sobel};
use scorpio_quality::SyntheticImage;
use scorpio_runtime::Executor;

const RATIOS: [f64; 3] = [0.0, 0.5, 1.0];

fn bench_maclaurin(c: &mut Criterion) {
    let executor = Executor::new(4);
    let mut group = c.benchmark_group("maclaurin");
    group.bench_function("reference", |b| {
        b.iter(|| black_box(maclaurin::reference(black_box(0.49), 256)))
    });
    for ratio in RATIOS {
        group.bench_with_input(BenchmarkId::new("tasked", ratio), &ratio, |b, &r| {
            b.iter(|| black_box(maclaurin::tasked(0.49, 256, &executor, r)))
        });
    }
    group.bench_function("perforated_0.5", |b| {
        b.iter(|| black_box(maclaurin::perforated(0.49, 256, 0.5)))
    });
    group.finish();
}

fn bench_sobel(c: &mut Criterion) {
    let executor = Executor::new(4);
    let img = SyntheticImage::GaussianBlobs.render(128, 128, 1);
    let mut group = c.benchmark_group("sobel_128");
    group.bench_function("reference", |b| b.iter(|| black_box(sobel::reference(&img))));
    for ratio in RATIOS {
        group.bench_with_input(BenchmarkId::new("tasked", ratio), &ratio, |b, &r| {
            b.iter(|| black_box(sobel::tasked(&img, &executor, r)))
        });
    }
    group.bench_function("perforated_0.5", |b| {
        b.iter(|| black_box(sobel::perforated(&img, 0.5)))
    });
    group.finish();
}

fn bench_dct(c: &mut Criterion) {
    let executor = Executor::new(4);
    let img = SyntheticImage::GaussianBlobs.render(64, 64, 2);
    let mut group = c.benchmark_group("dct_64");
    group.bench_function("reference", |b| b.iter(|| black_box(dct::reference(&img))));
    for ratio in RATIOS {
        group.bench_with_input(BenchmarkId::new("tasked", ratio), &ratio, |b, &r| {
            b.iter(|| black_box(dct::tasked(&img, &executor, r)))
        });
    }
    group.finish();
}

fn bench_fisheye(c: &mut Criterion) {
    let executor = Executor::new(4);
    let lens = fisheye::Lens::for_image(160, 120);
    let img = SyntheticImage::ValueNoise.render(160, 120, 3);
    let mut group = c.benchmark_group("fisheye_160x120");
    group.bench_function("reference", |b| {
        b.iter(|| black_box(fisheye::reference(&img, &lens)))
    });
    for ratio in RATIOS {
        group.bench_with_input(BenchmarkId::new("tasked", ratio), &ratio, |b, &r| {
            b.iter(|| black_box(fisheye::tasked_with_blocks(&img, &lens, &executor, r, 32, 24)))
        });
    }
    // Task-granularity ablation (DESIGN.md §6): block size sweep.
    for (bw, bh) in [(16, 12), (32, 24), (80, 60)] {
        group.bench_with_input(
            BenchmarkId::new("tasked_block", format!("{bw}x{bh}")),
            &(bw, bh),
            |b, &(bw, bh)| {
                b.iter(|| {
                    black_box(fisheye::tasked_with_blocks(
                        &img, &lens, &executor, 0.5, bw, bh,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_nbody(c: &mut Criterion) {
    let executor = Executor::new(4);
    let params = nbody::Params::small();
    let mut group = c.benchmark_group("nbody_125");
    group.sample_size(20);
    group.bench_function("reference", |b| b.iter(|| black_box(nbody::reference(&params))));
    for ratio in RATIOS {
        group.bench_with_input(BenchmarkId::new("tasked", ratio), &ratio, |b, &r| {
            b.iter(|| black_box(nbody::tasked(&params, &executor, r)))
        });
    }
    group.bench_function("perforated_0.5", |b| {
        b.iter(|| black_box(nbody::perforated(&params, 0.5)))
    });
    // Region-granularity ablation (DESIGN.md §6).
    for regions in [2usize, 3, 5] {
        let p = nbody::Params {
            regions,
            ..nbody::Params::small()
        };
        group.bench_with_input(BenchmarkId::new("tasked_regions", regions), &p, |b, p| {
            b.iter(|| black_box(nbody::tasked(p, &executor, 0.5)))
        });
    }
    group.finish();
}

fn bench_blackscholes(c: &mut Criterion) {
    let executor = Executor::new(4);
    let options = blackscholes::generate_options(8192, 7);
    let mut group = c.benchmark_group("blackscholes_8192");
    group.bench_function("reference", |b| {
        b.iter(|| black_box(blackscholes::reference(&options)))
    });
    for ratio in RATIOS {
        group.bench_with_input(BenchmarkId::new("tasked", ratio), &ratio, |b, &r| {
            b.iter(|| black_box(blackscholes::tasked(&options, 256, &executor, r)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_maclaurin,
    bench_sobel,
    bench_dct,
    bench_fisheye,
    bench_nbody,
    bench_blackscholes
);
criterion_main!(benches);
