//! Criterion benches for the interval substrate: op throughput with and
//! without outward rounding (the rounding-cost ablation), and the
//! transcendental kernels against raw `f64`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use scorpio_fastmath::{fast_cndf, fast_exp, fast_pow};
use scorpio_interval::{nearest, real, Interval};

fn bench_arithmetic(c: &mut Criterion) {
    let a = Interval::new(0.1, 0.7);
    let b = Interval::new(-0.4, 1.3);
    let mut group = c.benchmark_group("interval_arith");
    group.bench_function("add_outward", |bch| bch.iter(|| black_box(black_box(a) + black_box(b))));
    group.bench_function("add_nearest", |bch| {
        bch.iter(|| black_box(nearest::add(black_box(a), black_box(b))))
    });
    group.bench_function("mul_outward", |bch| bch.iter(|| black_box(black_box(a) * black_box(b))));
    group.bench_function("mul_nearest", |bch| {
        bch.iter(|| black_box(nearest::mul(black_box(a), black_box(b))))
    });
    group.bench_function("div_outward", |bch| {
        let d = Interval::new(1.5, 2.5);
        bch.iter(|| black_box(black_box(a) / black_box(d)))
    });
    group.finish();
}

fn bench_transcendentals(c: &mut Criterion) {
    let x = Interval::new(0.2, 1.4);
    let mut group = c.benchmark_group("interval_transcendental");
    group.bench_function("sin", |b| b.iter(|| black_box(black_box(x).sin())));
    group.bench_function("exp", |b| b.iter(|| black_box(black_box(x).exp())));
    group.bench_function("ln", |b| b.iter(|| black_box(black_box(x).ln())));
    group.bench_function("powi_5", |b| b.iter(|| black_box(black_box(x).powi(5))));
    group.bench_function("erf", |b| b.iter(|| black_box(black_box(x).erf())));
    group.bench_function("cndf", |b| b.iter(|| black_box(black_box(x).cndf())));
    group.finish();
}

fn bench_fastmath_vs_libm(c: &mut Criterion) {
    let mut group = c.benchmark_group("fastmath_vs_libm");
    group.bench_function("exp_libm", |b| b.iter(|| black_box(black_box(1.234f64).exp())));
    group.bench_function("exp_fast", |b| b.iter(|| black_box(fast_exp(black_box(1.234)))));
    group.bench_function("pow_libm", |b| {
        b.iter(|| black_box(black_box(2.7f64).powf(black_box(3.2))))
    });
    group.bench_function("pow_fast", |b| {
        b.iter(|| black_box(fast_pow(black_box(2.7), black_box(3.2))))
    });
    group.bench_function("cndf_cody", |b| b.iter(|| black_box(real::cndf(black_box(0.7)))));
    group.bench_function("cndf_fast", |b| b.iter(|| black_box(fast_cndf(black_box(0.7)))));
    group.finish();
}

criterion_group!(benches, bench_arithmetic, bench_transcendentals, bench_fastmath_vs_libm);
criterion_main!(benches);
