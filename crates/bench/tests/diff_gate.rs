//! End-to-end tests of the `scorpio_diff` binary: the regression gate
//! must fail (exit 1) on a synthetically injected slowdown or quality
//! loss and pass (exit 0) on self-comparison.

use std::path::PathBuf;
use std::process::Command;

use scorpio_bench::{QorKernel, QorPoint, QorReport, QOR_SCHEMA};

/// Builds a three-kernel QoR report; `time_scale` multiplies every
/// timing sample, `quality_delta` shifts the PSNR-like metric.
fn report(time_scale: f64, quality_delta: f64) -> QorReport {
    let kernel = |name: &str, higher: bool| QorKernel {
        name: name.to_owned(),
        metric: if higher { "psnr_db" } else { "rel_error" }.to_owned(),
        higher_is_better: higher,
        points: [0.0, 0.5, 1.0]
            .iter()
            .map(|&ratio| QorPoint {
                ratio,
                quality: if higher {
                    30.0 + 10.0 * ratio + quality_delta
                } else {
                    (1e-3 * (1.0 - ratio)).max(1e-18)
                },
                energy_j: 1.0 + ratio,
                achieved_ratio: ratio,
                accurate: (ratio * 10.0) as u64,
                approximate: 10 - (ratio * 10.0) as u64,
                dropped: 0,
                // Tight samples: ±1% noise, so a 10% shift is
                // unambiguous to the t-test.
                time_ns_samples: [10_000.0, 10_100.0, 9_900.0, 10_050.0, 9_950.0]
                    .iter()
                    .map(|t| (t * time_scale) as u64)
                    .collect(),
            })
            .collect(),
    };
    QorReport {
        schema: QOR_SCHEMA.to_owned(),
        name: "diff_gate_test".to_owned(),
        git: "test".to_owned(),
        threads: 1,
        reps: 5,
        small: true,
        degraded: false,
        kernels: vec![
            kernel("sobel", true),
            kernel("dct", true),
            kernel("nbody", false),
        ],
    }
}

fn write_report(dir: &std::path::Path, name: &str, r: &QorReport) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, r.to_json()).expect("write report");
    path
}

fn scorpio_diff(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_scorpio_diff"))
        .args(args)
        .output()
        .expect("run scorpio_diff")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scorpio_diff_gate_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn gate_passes_on_self_comparison() {
    let dir = temp_dir("self");
    let base = write_report(&dir, "base.json", &report(1.0, 0.0));
    let out = scorpio_diff(&[
        base.to_str().unwrap(),
        base.to_str().unwrap(),
        "--gate",
        "--threshold",
        "5",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "self-comparison must pass the gate:\n{stdout}"
    );
    assert!(stdout.contains("0 regression(s)"), "{stdout}");
    assert!(stdout.contains("gate: passed"), "{stdout}");
}

#[test]
fn gate_fails_on_injected_slowdown() {
    let dir = temp_dir("slow");
    let base = write_report(&dir, "base.json", &report(1.0, 0.0));
    let slow = write_report(&dir, "slow.json", &report(1.10, 0.0));
    let out = scorpio_diff(&[
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
        "--gate",
        "--threshold",
        "5",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "10% slowdown must fail the gate:\n{stdout}"
    );
    assert!(stdout.contains("gate: FAILED"), "{stdout}");
    assert!(stdout.contains("time_ns"), "{stdout}");
}

#[test]
fn quality_only_ignores_timing_but_catches_quality_loss() {
    let dir = temp_dir("quality");
    let base = write_report(&dir, "base.json", &report(1.0, 0.0));
    // Slower but same quality: --quality-only must pass.
    let slow = write_report(&dir, "slow.json", &report(1.5, 0.0));
    let out = scorpio_diff(&[
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
        "--gate",
        "--quality-only",
    ]);
    assert!(
        out.status.success(),
        "--quality-only must ignore timings:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    // Quality loss must still gate.
    let worse = write_report(&dir, "worse.json", &report(1.0, -10.0));
    let out = scorpio_diff(&[
        base.to_str().unwrap(),
        worse.to_str().unwrap(),
        "--gate",
        "--quality-only",
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "PSNR drop must fail the gate:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn bad_input_exits_with_usage_error() {
    let dir = temp_dir("bad");
    let bogus = dir.join("bogus.json");
    std::fs::write(&bogus, "not json").expect("write bogus file");
    let out = scorpio_diff(&[bogus.to_str().unwrap(), bogus.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let out = scorpio_diff(&["one-arg-only"]);
    assert_eq!(out.status.code(), Some(2));
}
