//! End-to-end tests of the closed-loop harnesses: `bench_adaptive`
//! must produce a `BENCH_adaptive.json` whose non-flat kernels meet
//! their targets at no more energy than the best static ratio, with
//! the controller's decision sequence exported as `ratio_decision`
//! events; `fig7_sweep --adaptive` must produce the same artifact from
//! the full sweep.

use std::path::PathBuf;
use std::process::Command;

use scorpio_obs::json::{parse, Value};

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("scorpio_adaptive_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn read_json(path: &PathBuf) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    parse(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

#[test]
fn bench_adaptive_sobel_meets_target_and_exports_decisions() {
    let dir = temp_dir("sobel");
    let status = Command::new(env!("CARGO_BIN_EXE_bench_adaptive"))
        .args(["--small", "--threads", "1", "--kernel", "sobel", "--out-dir"])
        .arg(&dir)
        .status()
        .expect("run bench_adaptive");
    assert!(status.success(), "bench_adaptive failed: {status}");

    let report = read_json(&dir.join("BENCH_adaptive.json"));
    assert_eq!(
        report.get("schema").and_then(Value::as_str),
        Some("scorpio-adaptive-v1")
    );
    let kernels = report.get("kernels").and_then(Value::as_arr).unwrap();
    assert_eq!(kernels.len(), 1);
    let sobel = &kernels[0];
    assert_eq!(sobel.get("name").and_then(Value::as_str), Some("sobel"));
    assert_eq!(sobel.get("non_flat"), Some(&Value::Bool(true)));
    assert_eq!(sobel.get("target_met"), Some(&Value::Bool(true)));
    assert_eq!(sobel.get("dominates"), Some(&Value::Bool(true)));
    let adaptive = sobel.get("adaptive").expect("adaptive outcome");
    assert_eq!(adaptive.get("converged"), Some(&Value::Bool(true)));
    let final_ratio = adaptive.get("final_ratio").and_then(Value::as_f64).unwrap();
    assert!((0.0..=1.0).contains(&final_ratio), "ratio {final_ratio}");
    let static_energy = sobel
        .get("best_static")
        .and_then(|s| s.get("energy_j"))
        .and_then(Value::as_f64)
        .expect("sobel has a target-meeting static point");
    let adaptive_energy = adaptive.get("energy_j").and_then(Value::as_f64).unwrap();
    assert!(
        adaptive_energy <= static_energy * (1.0 + 1e-9),
        "adaptive {adaptive_energy} J vs static {static_energy} J"
    );

    // The controller's decision sequence is part of the exported run:
    // every observation shows up as a ratio_decision event.
    let events = std::fs::read_to_string(dir.join("EVENTS_bench_adaptive.jsonl"))
        .expect("events log");
    let decisions: Vec<&str> = events
        .lines()
        .filter(|l| l.contains("\"event\":\"ratio_decision\""))
        .collect();
    let steps = adaptive.get("steps").and_then(Value::as_f64).unwrap() as usize;
    assert_eq!(decisions.len(), steps, "one event per observation");
    assert!(
        decisions.last().unwrap().contains("\"decision\":\"converged\""),
        "last decision: {:?}",
        decisions.last()
    );
    // And the run manifest embeds the same records.
    let manifest = std::fs::read_to_string(dir.join("RUN_bench_adaptive.json"))
        .expect("run manifest");
    assert!(manifest.contains("ratio_decision"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig7_sweep_adaptive_covers_all_kernels_and_passes_its_own_gate() {
    let dir = temp_dir("fig7");
    let status = Command::new(env!("CARGO_BIN_EXE_fig7_sweep"))
        .args(["--small", "--threads", "1", "--reps", "1", "--adaptive", "--out-dir"])
        .arg(&dir)
        .status()
        .expect("run fig7_sweep");
    assert!(status.success(), "fig7_sweep failed: {status}");

    let report = read_json(&dir.join("BENCH_adaptive.json"));
    let kernels = report.get("kernels").and_then(Value::as_arr).unwrap();
    assert_eq!(kernels.len(), 5, "all five benchmarks adapt");
    for k in kernels {
        let name = k.get("name").and_then(Value::as_str).unwrap();
        assert_eq!(
            k.get("dominates"),
            Some(&Value::Bool(true)),
            "{name} does not dominate its best static ratio"
        );
    }
    // The QoR report rides along and carries the degradation marker.
    let qor = read_json(&dir.join("BENCH_qor.json"));
    assert!(qor.get("degraded").is_some(), "QoR report has degraded flag");

    // Self-comparison through the scorpio_diff gate is clean.
    let status = Command::new(env!("CARGO_BIN_EXE_scorpio_diff"))
        .arg(dir.join("BENCH_adaptive.json"))
        .arg(dir.join("BENCH_adaptive.json"))
        .args(["--gate", "--quality-only"])
        .status()
        .expect("run scorpio_diff");
    assert!(status.success(), "self-gate failed: {status}");

    let _ = std::fs::remove_dir_all(&dir);
}
