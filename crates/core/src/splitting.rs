//! Interval-splitting extension (§2.2 "ongoing research", §6 future work).
//!
//! When an interval comparison is ambiguous the base analysis terminates
//! with [`AnalysisError::AmbiguousBranch`]. This module implements the
//! remedy the paper leaves as ongoing research: **bisect** an input range
//! and analyse each subdomain separately — control flow eventually becomes
//! unique on small enough boxes (for almost-everywhere-continuous
//! predicates) — then merge the per-subdomain results conservatively.
//!
//! Merging rules:
//! * enclosures and interval derivatives → convex hull over subdomains;
//! * significances → maximum over subdomains (a task must be treated as
//!   significant if it is significant on *any* part of the input domain).

use scorpio_interval::Interval;

use crate::error::AnalysisError;
use crate::report::{Report, VarKind};
use crate::session::Analysis;

/// A merged registered-variable summary across subdomains.
#[derive(Debug, Clone)]
pub struct SplitVar {
    /// Registration name.
    pub name: String,
    /// Role in the computation.
    pub kind: VarKind,
    /// Hull of the per-subdomain enclosures.
    pub enclosure: Interval,
    /// Hull of the per-subdomain interval derivatives.
    pub derivative: Interval,
    /// Maximum normalized significance over subdomains.
    pub significance: f64,
}

/// Result of an analysis with interval splitting.
#[derive(Debug)]
pub struct SplitReport {
    /// Merged per-variable summaries (registration order of the first
    /// subdomain).
    pub vars: Vec<SplitVar>,
    /// The input boxes of the subdomains that were successfully analysed.
    pub subdomains: Vec<Vec<Interval>>,
    /// Per-subdomain full reports, aligned with `subdomains`.
    pub reports: Vec<Report>,
    /// Boundary slivers that stayed ambiguous at the depth limit, with the
    /// offending condition. These shrink geometrically with `max_depth`;
    /// their omission is the machine-granularity coverage loss documented
    /// in DESIGN.md.
    pub unresolved: Vec<(Vec<Interval>, String)>,
}

impl SplitReport {
    /// Merged normalized significance (max over subdomains) of a
    /// registered variable.
    pub fn significance_of(&self, name: &str) -> Option<f64> {
        self.vars
            .iter()
            .find(|v| v.name == name)
            .map(|v| v.significance)
    }
}

/// Runs `f` with automatic bisection of input ranges on ambiguous
/// branches, up to `max_depth` splits along any one path.
///
/// `f` must be re-runnable (it is invoked once per attempted subdomain),
/// which mirrors the profile-driven nature of the analysis.
///
/// # Errors
///
/// * [`AnalysisError::SplitDepthExhausted`] if a branch stays ambiguous
///   at the depth limit.
/// * [`AnalysisError::NothingToSplit`] if an ambiguous branch occurs but
///   every input range is a point.
/// * Any other [`AnalysisError`] from the underlying runs.
///
/// # Examples
///
/// ```
/// use scorpio_core::splitting::run_with_splitting;
/// use scorpio_core::Analysis;
///
/// // |x| via a data-dependent branch: ambiguous over [-1, 1] as a whole,
/// // resolvable after one bisection at 0.
/// let report = run_with_splitting(&Analysis::new(), 8, |ctx| {
///     let x = ctx.input("x", -1.0, 1.0);
///     let negative = ctx.branch(x.value().certainly_lt(0.0.into()), "x < 0")?;
///     let y = if negative { -x } else { x };
///     ctx.output(&y, "y");
///     Ok(())
/// }).unwrap();
///
/// assert_eq!(report.subdomains.len(), 2);
/// let y = &report.vars.iter().find(|v| v.name == "y").unwrap();
/// assert!(y.enclosure.encloses(scorpio_interval::Interval::new(0.0, 1.0)));
/// ```
pub fn run_with_splitting<F>(
    analysis: &Analysis,
    max_depth: usize,
    f: F,
) -> Result<SplitReport, AnalysisError>
where
    F: Fn(&crate::Ctx<'_>) -> Result<(), AnalysisError>,
{
    let mut reports = Vec::new();
    let mut subdomains = Vec::new();
    let mut unresolved: Vec<(Vec<Interval>, String)> = Vec::new();
    // Work stack of (input-overrides, depth). An empty override list means
    // "use the declared ranges".
    let mut stack: Vec<(Vec<Interval>, usize)> = vec![(Vec::new(), 0)];

    while let Some((overrides, depth)) = stack.pop() {
        match analysis.run_with_overrides(&f, overrides.clone()) {
            Ok((report, _declared)) => {
                subdomains.push(if overrides.is_empty() {
                    report
                        .registered_of(VarKind::Input)
                        .map(|v| v.enclosure)
                        .collect()
                } else {
                    overrides
                });
                reports.push(report);
            }
            Err(AnalysisError::AmbiguousBranch { condition }) => {
                if depth >= max_depth {
                    // Record the sliver and move on; only fail if nothing
                    // at all resolves (see below).
                    let box_now = if overrides.is_empty() {
                        probe_declared_inputs(analysis, &f)?
                    } else {
                        overrides
                    };
                    unresolved.push((box_now, condition));
                    continue;
                }
                // Recover the declared ranges by dry-running registration:
                // run_with_overrides returned Err before reporting, so we
                // re-derive the box from the overrides or a probe run.
                let box_now = if overrides.is_empty() {
                    probe_declared_inputs(analysis, &f)?
                } else {
                    overrides
                };
                // Split the widest input.
                let widest = box_now
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        a.1.width()
                            .partial_cmp(&b.1.width())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i);
                let Some(widest) = widest else {
                    return Err(AnalysisError::NothingToSplit);
                };
                let Some(halves) = box_now[widest].bisect() else {
                    return Err(AnalysisError::NothingToSplit);
                };
                // Half-open split: the midpoint belongs to the upper half
                // only, so a predicate boundary hit exactly by the split
                // resolves on both sides instead of staying ambiguous
                // forever. The open sliver between adjacent floats is the
                // only domain loss.
                let lower_hi = scorpio_interval::next_down(halves.lower.sup());
                let mut lower = box_now.clone();
                lower[widest] = Interval::new(halves.lower.inf(), lower_hi.max(halves.lower.inf()));
                let mut upper = box_now;
                upper[widest] = halves.upper;
                stack.push((lower, depth + 1));
                stack.push((upper, depth + 1));
            }
            Err(other) => return Err(other),
        }
    }

    if reports.is_empty() {
        // Nothing resolved at all: surface the depth failure.
        if let Some((_, condition)) = unresolved.into_iter().next() {
            return Err(AnalysisError::SplitDepthExhausted {
                condition,
                max_depth,
            });
        }
        return Err(AnalysisError::NothingToSplit);
    }

    // Merge registered variables by name across subdomain reports.
    let mut vars: Vec<SplitVar> = Vec::new();
    for report in &reports {
        for v in report.registered() {
            match vars.iter_mut().find(|m| m.name == v.name) {
                Some(m) => {
                    m.enclosure = m.enclosure.hull(v.enclosure);
                    m.derivative = m.derivative.hull(v.derivative);
                    m.significance = m.significance.max(v.significance);
                }
                None => vars.push(SplitVar {
                    name: v.name.clone(),
                    kind: v.kind,
                    enclosure: v.enclosure,
                    derivative: v.derivative,
                    significance: v.significance,
                }),
            }
        }
    }

    Ok(SplitReport {
        vars,
        subdomains,
        reports,
        unresolved,
    })
}

/// Runs the closure just far enough to learn the declared input ranges.
/// The closure may fail with an ambiguous branch *after* declaring its
/// inputs — exactly the situation we are probing for.
fn probe_declared_inputs<F>(
    analysis: &Analysis,
    f: &F,
) -> Result<Vec<Interval>, AnalysisError>
where
    F: Fn(&crate::Ctx<'_>) -> Result<(), AnalysisError>,
{
    match analysis.probe_inputs(f) {
        Ok(declared) if !declared.is_empty() => Ok(declared),
        Ok(_) => Err(AnalysisError::NothingToSplit),
        Err(e) => Err(e),
    }
}

impl Analysis {
    /// Runs the closure only to harvest declared input ranges, tolerating
    /// an ambiguous-branch failure (which necessarily happens after the
    /// inputs involved were declared).
    pub(crate) fn probe_inputs<F>(&self, f: &F) -> Result<Vec<Interval>, AnalysisError>
    where
        F: Fn(&crate::Ctx<'_>) -> Result<(), AnalysisError>,
    {
        use scorpio_adjoint::Tape;
        let tape = Tape::<Interval>::new();
        let ctx = crate::Ctx::new(&tape, Vec::new());
        match f(&ctx) {
            Ok(()) | Err(AnalysisError::AmbiguousBranch { .. }) => Ok(ctx.declared_inputs()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_resolve_abs_branch() {
        let report = run_with_splitting(&Analysis::new(), 4, |ctx| {
            let x = ctx.input("x", -2.0, 2.0);
            let neg = ctx.branch(x.value().certainly_lt(0.0.into()), "x < 0")?;
            let y = if neg { -x } else { x };
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();
        assert_eq!(report.subdomains.len(), 2);
        let y = report.vars.iter().find(|v| v.name == "y").unwrap();
        // |x| over [-2, 2] ⊆ merged enclosure.
        assert!(y.enclosure.encloses(Interval::new(0.0, 2.0)));
    }

    #[test]
    fn nested_splits() {
        // Three-way piecewise function: needs two levels of splitting.
        let report = run_with_splitting(&Analysis::new(), 8, |ctx| {
            let x = ctx.input("x", 0.0, 4.0);
            let lo = ctx.branch(x.value().certainly_lt(1.0.into()), "x < 1")?;
            let y = if lo {
                x * 2.0
            } else {
                let hi = ctx.branch(x.value().certainly_gt(3.0.into()), "x > 3")?;
                if hi {
                    x * 4.0
                } else {
                    x * 3.0
                }
            };
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();
        assert!(report.subdomains.len() >= 3);
        // Union of subdomains covers the declared domain.
        let hull = report
            .subdomains
            .iter()
            .map(|b| b[0])
            .fold(Interval::EMPTY, |acc, iv| acc.hull(iv));
        assert_eq!(hull, Interval::new(0.0, 4.0));
    }

    #[test]
    fn depth_exhaustion_reports_condition() {
        // A branch at an irrational threshold keeps being ambiguous near
        // the split point for a while; depth 0 must fail immediately.
        let err = run_with_splitting(&Analysis::new(), 0, |ctx| {
            let x = ctx.input("x", 0.0, 1.0);
            let _ = ctx.branch(x.value().certainly_lt(0.5.into()), "x < 0.5")?;
            ctx.output(&x, "y");
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, AnalysisError::SplitDepthExhausted { .. }));
    }

    #[test]
    fn point_inputs_cannot_split() {
        let err = run_with_splitting(&Analysis::new(), 4, |ctx| {
            let x = ctx.input("x", 1.0, 1.0);
            // Always-ambiguous artificial branch.
            let _ = ctx.branch(scorpio_interval::Trichotomy::Ambiguous, "artificial")?;
            ctx.output(&x, "y");
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, AnalysisError::NothingToSplit));
    }

    #[test]
    fn no_split_needed_returns_single_subdomain() {
        let report = run_with_splitting(&Analysis::new(), 4, |ctx| {
            let x = ctx.input("x", 0.0, 1.0);
            let y = x.sqr();
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();
        assert_eq!(report.subdomains.len(), 1);
        assert_eq!(report.reports.len(), 1);
    }
}
