//! From analysis to task structure: the paper's contribution (iii) —
//! "we integrate this significance ranking to a task-based programming
//! model" — automated one step further: a [`Partition`] is turned into a
//! concrete [`TaskPlan`] (which nodes become task outputs, with which
//! significances) and a Rust skeleton the developer fills in.

use std::fmt::Write as _;

use crate::graph::SigNode;
use crate::workflow::Partition;

/// One suggested task: produce the value of a cut-level DynDFG node.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSuggestion {
    /// Task name (registration name of the node when available,
    /// otherwise `task_u<id>`).
    pub name: String,
    /// The DynDFG node whose value the task computes.
    pub node_id: usize,
    /// Operation mnemonic of the node (what the task body ends with).
    pub op: String,
    /// Normalized significance from the analysis.
    pub significance: f64,
    /// Runtime task significance: rescaled so the most significant
    /// suggestion gets 1.0 (forced accurate) and the rest keep their
    /// relative ranking in `(0, 1)`.
    pub task_significance: f64,
}

/// A complete task-structure suggestion for one analysed kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskPlan {
    /// The level whose nodes become task outputs (§3.2: "the nodes of
    /// graph Gout at level L are the outputs of those tasks").
    pub level: usize,
    /// Whether the level came from a variance cut (or is the fallback
    /// level 1 when the graph is significance-uniform).
    pub from_variance_cut: bool,
    /// The suggested tasks, most significant first.
    pub tasks: Vec<TaskSuggestion>,
}

impl Partition {
    /// Derives the task plan from this partition: one task per live node
    /// at the cut level (constants are skipped — they need no task),
    /// ranked by significance.
    pub fn task_plan(&self) -> TaskPlan {
        let (level, from_cut) = match self.cut_level {
            Some(l) => (l, true),
            None => (1, false),
        };
        let mut nodes: Vec<&SigNode> = self
            .graph
            .level_nodes(level)
            .into_iter()
            .filter(|n| n.op != scorpio_adjoint::Op::Const && n.op != scorpio_adjoint::Op::Input)
            .collect();
        nodes.sort_by(|a, b| {
            b.significance
                .partial_cmp(&a.significance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        let max_sig = nodes
            .first()
            .map(|n| n.significance)
            .filter(|s| *s > 0.0)
            .unwrap_or(1.0);
        let tasks = nodes
            .into_iter()
            .map(|n| TaskSuggestion {
                name: n
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("task_u{}", n.id)),
                node_id: n.id,
                op: n.op.to_string(),
                significance: n.significance,
                task_significance: if n.significance >= max_sig {
                    1.0
                } else {
                    (n.significance / max_sig).clamp(0.0, 0.99)
                },
            })
            .collect();
        TaskPlan {
            level,
            from_variance_cut: from_cut,
            tasks,
        }
    }
}

impl TaskPlan {
    /// Renders a Rust skeleton using the `scorpio-runtime` API: one
    /// `spawn` per suggested task with its significance filled in, plus
    /// the `taskwait` with the ratio knob — the Listing-7 restructuring,
    /// generated.
    ///
    /// The bodies are `todo!()` stubs: deciding *how* to approximate
    /// remains the developer's insight (§3.2), but the structure and the
    /// ranking come from the analysis.
    pub fn to_rust_skeleton(&self, kernel_name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "/// Task-restructured `{kernel_name}` generated from the significance analysis."
        );
        let _ = writeln!(
            out,
            "/// Cut level: {} ({}).",
            self.level,
            if self.from_variance_cut {
                "variance cut"
            } else {
                "uniform significance; level 1 fallback"
            }
        );
        let _ = writeln!(
            out,
            "pub fn {kernel_name}_tasked(executor: &Executor, ratio: f64) -> ExecutionStats {{"
        );
        let _ = writeln!(
            out,
            "    let mut group = TaskGroup::new(\"{kernel_name}\");"
        );
        for t in &self.tasks {
            let _ = writeln!(out, "    // {}: {} (S = {:.4})", t.name, t.op, t.significance);
            let _ = writeln!(out, "    group.spawn(");
            let _ = writeln!(out, "        {:.4},", t.task_significance);
            let _ = writeln!(
                out,
                "        |ctx| todo!(\"accurate body producing {}\"),",
                t.name
            );
            let _ = writeln!(
                out,
                "        Some(|ctx: &TaskCtx| todo!(\"approximate body for {}\")),",
                t.name
            );
            let _ = writeln!(out, "    );");
        }
        let _ = writeln!(out, "    group.taskwait(executor, ratio)");
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Analysis;

    fn maclaurin_partition() -> crate::Partition {
        Analysis::new()
            .run(|ctx| {
                let x = ctx.input_centered("x", 0.49, 0.5);
                let mut acc = ctx.constant(0.0);
                for i in 0..5 {
                    let t = x.powi(i);
                    ctx.intermediate(&t, format!("term{i}"));
                    acc = acc + t;
                }
                ctx.output(&acc, "result");
                Ok(())
            })
            .unwrap()
            .partition()
    }

    #[test]
    fn plan_has_one_task_per_term() {
        let plan = maclaurin_partition().task_plan();
        assert_eq!(plan.level, 1);
        assert!(plan.from_variance_cut);
        // 5 term nodes (the constant seed is skipped).
        assert_eq!(plan.tasks.len(), 5);
        // Most significant first, with the top one forced accurate.
        assert_eq!(plan.tasks[0].name, "term1");
        assert_eq!(plan.tasks[0].task_significance, 1.0);
        for w in plan.tasks.windows(2) {
            assert!(w[0].significance >= w[1].significance);
        }
        // term0 is the least significant suggestion.
        assert_eq!(plan.tasks.last().unwrap().name, "term0");
        // term0's significance is ULP noise from the outward-rounded
        // adjoint sweep, i.e. numerically zero.
        assert!(plan.tasks.last().unwrap().task_significance < 1e-12);
    }

    #[test]
    fn skeleton_contains_spawns_and_ranking() {
        let plan = maclaurin_partition().task_plan();
        let skeleton = plan.to_rust_skeleton("maclaurin");
        assert!(skeleton.contains("TaskGroup::new(\"maclaurin\")"));
        assert_eq!(skeleton.matches("group.spawn(").count(), 5);
        assert!(skeleton.contains("group.taskwait(executor, ratio)"));
        assert!(skeleton.contains("term1"));
        // Valid-ish shape: braces balance.
        assert_eq!(
            skeleton.matches('{').count(),
            skeleton.matches('}').count() + skeleton.matches("{kernel").count()
        );
    }

    #[test]
    fn uniform_graph_falls_back_to_level_one() {
        let partition = Analysis::new()
            .run(|ctx| {
                let x = ctx.input("x", 0.0, 1.0);
                let y = x.exp();
                ctx.output(&y, "y");
                Ok(())
            })
            .unwrap()
            .partition();
        let plan = partition.task_plan();
        assert!(!plan.from_variance_cut);
        assert_eq!(plan.level, 1);
    }
}
