//! Monte-Carlo significance estimation (§6 future work: "combining the
//! robustness of algorithmic differentiation to Monte Carlo-based
//! methodologies").
//!
//! Instead of one interval sweep over the whole input box, this estimator
//! samples concrete input points, runs point-valued adjoint AD at each
//! sample, and measures the **empirical width** of the per-variable
//! product `u_j · ∇_{u_j} y` across samples — the sampling analogue of
//! Eq. 11. By construction the estimate converges (from below) to a value
//! enclosed by the interval significance, which is exactly the
//! relationship the `mc_crosscheck` bench quantifies.
//!
//! Unlike the interval analysis, sampling tolerates data-dependent control
//! flow without splitting: each sample follows its own concrete trace.
//!
//! # Record once, replay many
//!
//! Samples of a branch-free model all share one trace shape, so the
//! estimators record and [compile](CompiledTape) the *first* sample's
//! trace, then **replay** it for the remaining samples — drawing each
//! sample's input values by replaying the recorded input ranges through
//! the sample's own RNG — instead of re-recording the DynDFG every
//! time. Replay is guarded twice: a trace that resolved any
//! [`McCtx::branch`] is never replayed (its shape is value-dependent),
//! and the second sample is both re-recorded *and* replayed, with the
//! estimator falling back to full re-recording unless the two agree
//! bit-for-bit. [`McReport::replayed_samples`] reports which path ran.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scorpio_adjoint::{CompiledTape, LaneReplayBuffers, NodeId, ReplayBuffers, Tape, Var};

use crate::error::AnalysisError;
use crate::report::VarKind;

/// Lane width of the Monte-Carlo sample-replay loops: full blocks of
/// this many samples share one walk of the compiled op stream
/// ([`CompiledTape::replay_lanes`]); the trailing partial block replays
/// per sample. Same width rationale as [`crate::parallel::DEFAULT_LANES`].
const MC_LANES: usize = crate::parallel::DEFAULT_LANES;

/// Active value for Monte-Carlo runs: point-valued AD.
pub type McVarValue<'t> = Var<'t, f64>;

/// Registration context for one Monte-Carlo sample run.
#[derive(Debug)]
pub struct McCtx<'t> {
    tape: &'t Tape<f64>,
    entries: RefCell<Vec<(String, NodeId, VarKind)>>,
    rng: RefCell<StdRng>,
    /// Declared input ranges in call order — the recipe the replay path
    /// uses to re-draw input values for later samples.
    ranges: RefCell<Vec<(f64, f64)>>,
    /// Set when the closure resolved any branch: the trace shape is then
    /// value-dependent and must not be replayed for other samples.
    branched: Cell<bool>,
}

impl<'t> McCtx<'t> {
    fn new(tape: &'t Tape<f64>, rng: StdRng) -> McCtx<'t> {
        McCtx {
            tape,
            entries: RefCell::new(Vec::new()),
            rng: RefCell::new(rng),
            ranges: RefCell::new(Vec::new()),
            branched: Cell::new(false),
        }
    }

    /// Declares input `name` with range `[lo, hi]`; the returned active
    /// value carries a uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn input(&self, name: impl Into<String>, lo: f64, hi: f64) -> McVarValue<'t> {
        assert!(lo <= hi, "McCtx::input: inverted range");
        self.ranges.borrow_mut().push((lo, hi));
        let x = if lo == hi {
            lo
        } else {
            self.rng.borrow_mut().gen_range(lo..=hi)
        };
        let var = self.tape.var(x);
        self.entries
            .borrow_mut()
            .push((name.into(), var.id(), VarKind::Input));
        var
    }

    /// Records a constant.
    pub fn constant(&self, value: f64) -> McVarValue<'t> {
        self.tape.constant(value)
    }

    /// Registers a named intermediate.
    pub fn intermediate(&self, var: &McVarValue<'t>, name: impl Into<String>) {
        self.entries
            .borrow_mut()
            .push((name.into(), var.id(), VarKind::Intermediate));
    }

    /// Registers an output (adjoint seed 1).
    pub fn output(&self, var: &McVarValue<'t>, name: impl Into<String>) {
        self.entries
            .borrow_mut()
            .push((name.into(), var.id(), VarKind::Output));
    }

    /// Concrete control flow: never ambiguous under sampling.
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` mirrors [`crate::Ctx::branch`] so the
    /// same closure shape works for both analyses.
    pub fn branch(&self, condition: bool, _description: &str) -> Result<bool, AnalysisError> {
        self.branched.set(true);
        Ok(condition)
    }
}

/// Accumulated Monte-Carlo estimate for one registered variable.
#[derive(Debug, Clone)]
pub struct McVar {
    /// Registration name.
    pub name: String,
    /// Role in the computation.
    pub kind: VarKind,
    /// Smallest sampled product `u · ∇_u y`.
    pub product_min: f64,
    /// Largest sampled product.
    pub product_max: f64,
    /// Raw empirical significance `product_max − product_min`.
    pub significance_raw: f64,
    /// Significance normalized by the summed output widths (same scale as
    /// [`crate::Report`]).
    pub significance: f64,
}

/// Result of a Monte-Carlo estimation run.
#[derive(Debug, Clone)]
pub struct McReport {
    /// Per-variable estimates in first-seen order.
    pub vars: Vec<McVar>,
    /// Number of samples drawn.
    pub samples: usize,
    /// How many samples were served by replaying the compiled trace
    /// instead of re-recording (0 when the model branched or the
    /// verification sample disagreed; see the [module docs](self)).
    pub replayed_samples: usize,
}

impl McReport {
    /// Normalized significance estimate of a registered variable.
    pub fn significance_of(&self, name: &str) -> Option<f64> {
        self.vars
            .iter()
            .find(|v| v.name == name)
            .map(|v| v.significance)
    }
}

/// Runs `samples` point-AD evaluations of `f` and estimates significances
/// from the empirical spread of `u · ∇_u y`.
///
/// # Errors
///
/// Propagates closure errors and [`AnalysisError::NoOutputs`] if a sample
/// registers no output.
///
/// # Panics
///
/// Panics if `samples == 0`.
///
/// # Examples
///
/// ```
/// use scorpio_core::mc::estimate;
///
/// let report = estimate(256, 42, |ctx| {
///     let x = ctx.input("x", 0.0, 1.0);
///     let t1 = x.powi(1);
///     ctx.intermediate(&t1, "t1");
///     let t3 = x.powi(3);
///     ctx.intermediate(&t3, "t3");
///     let y = t1 + t3;
///     ctx.output(&y, "y");
///     Ok(())
/// }).unwrap();
///
/// // d y / d t_i = 1, so the estimate is the empirical width of x^i,
/// // which shrinks with i on [0, 1]... but only slightly: both ≈ 1.
/// let s1 = report.significance_of("t1").unwrap();
/// let s3 = report.significance_of("t3").unwrap();
/// assert!(s1 > 0.0 && s3 > 0.0 && s1 >= s3 * 0.9);
/// ```
pub fn estimate<F>(samples: usize, seed: u64, f: F) -> Result<McReport, AnalysisError>
where
    F: Fn(&McCtx<'_>) -> Result<(), AnalysisError>,
{
    assert!(samples > 0, "estimate: need at least one sample");
    let sample_seeds = draw_sample_seeds(samples, seed);
    let tape = Tape::<f64>::new();
    let mut scratch = Vec::new();
    let mut per_sample = Vec::with_capacity(samples);

    let (first, trace) = record_sample(&tape, &mut scratch, sample_seeds[0], &f)?;
    per_sample.push(first);

    let mut replayed = 0usize;
    let mut rest = &sample_seeds[1..];
    if !rest.is_empty() {
        if let Some(compiled) = verified_compile(&tape, &trace, &mut scratch, rest[0], &f)? {
            // Sample 1 was recorded inside verified_compile and matched
            // its replay bitwise; push the recorded copy and replay on.
            per_sample.push(compiled.verify_entries);
            rest = &rest[1..];
            // Full lane blocks share one walk of the op stream; the
            // trailing remainder replays per sample (bit-identical
            // either way).
            let mut lane_buf = LaneReplayBuffers::new();
            let mut staging = Vec::new();
            let mut chunks = rest.chunks_exact(MC_LANES);
            for block in chunks.by_ref() {
                per_sample.extend(replay_sample_block(
                    &compiled.tape,
                    &trace,
                    &mut lane_buf,
                    &mut staging,
                    block,
                ));
            }
            let mut buf = ReplayBuffers::new();
            let mut values = Vec::new();
            for &s in chunks.remainder() {
                per_sample.push(replay_sample(
                    &compiled.tape,
                    &trace,
                    &mut buf,
                    &mut values,
                    s,
                ));
            }
            replayed = rest.len();
            rest = &[];
        }
    }
    for &s in rest {
        per_sample.push(run_sample(&tape, &mut scratch, s, &f)?);
    }
    let mut report = merge_samples(per_sample)?;
    report.replayed_samples = replayed;
    Ok(report)
}

/// [`estimate`] with the samples fanned over `threads` workers, each
/// worker reusing one tape arena and adjoint scratch buffer across all
/// the samples it claims.
///
/// The estimate is **bit-identical** to the serial [`estimate`] with
/// the same `seed`: per-sample RNG seeds are pre-drawn from the master
/// generator in the serial order, every sample's trace and reverse
/// sweep compute the same floating-point operations wherever they run,
/// and the per-sample results are merged serially in sample order.
///
/// # Errors
///
/// Propagates the error of the lowest-indexed failing sample (the one
/// the serial loop would hit first), independent of scheduling.
///
/// # Panics
///
/// Panics if `samples == 0` or `threads == 0`.
pub fn estimate_threaded<F>(
    samples: usize,
    seed: u64,
    threads: usize,
    f: F,
) -> Result<McReport, AnalysisError>
where
    F: Fn(&McCtx<'_>) -> Result<(), AnalysisError> + Sync,
{
    assert!(samples > 0, "estimate: need at least one sample");
    if threads == 1 {
        return estimate(samples, seed, f);
    }
    let sample_seeds = draw_sample_seeds(samples, seed);
    let executor = scorpio_runtime::Executor::new(threads);

    // Serial probe: record sample 0, compile, verify against sample 1.
    // The replay decision is made from exactly the same data as in the
    // serial estimator, so both take the same path and stay
    // bit-identical.
    if samples > 1 {
        let tape = Tape::<f64>::new();
        let mut scratch = Vec::new();
        let (first, trace) = record_sample(&tape, &mut scratch, sample_seeds[0], &f)?;
        if let Some(compiled) = verified_compile(&tape, &trace, &mut scratch, sample_seeds[1], &f)?
        {
            let mut per_sample = Vec::with_capacity(samples);
            per_sample.push(first);
            per_sample.push(compiled.verify_entries);
            // Replay is infallible and identical wherever it runs: fan
            // the remaining samples over the workers in lane blocks —
            // each full block is one walk of the op stream, the
            // trailing partial block replays per sample.
            let blocks: Vec<&[u64]> = sample_seeds[2..].chunks(MC_LANES).collect();
            let replayed = executor.map_with_state(
                &blocks,
                || {
                    (
                        LaneReplayBuffers::<f64, MC_LANES>::new(),
                        Vec::new(),
                        ReplayBuffers::new(),
                        Vec::new(),
                    )
                },
                |(lane_buf, staging, buf, values), _, &block| {
                    if block.len() == MC_LANES {
                        replay_sample_block(&compiled.tape, &trace, lane_buf, staging, block)
                    } else {
                        block
                            .iter()
                            .map(|&s| replay_sample(&compiled.tape, &trace, buf, values, s))
                            .collect()
                    }
                },
            );
            let replayed: Vec<Vec<SampleEntry>> =
                replayed.into_iter().flatten().collect();
            let replayed_count = replayed.len();
            per_sample.extend(replayed);
            let mut report = merge_samples(per_sample)?;
            report.replayed_samples = replayed_count;
            return Ok(report);
        }
    }

    // Branchy or shape-divergent model: record every sample in the pool
    // (samples 0/1 re-record identically to the probe above).
    let per_sample = executor.map_with_state(
        &sample_seeds,
        || (Tape::<f64>::new(), Vec::new()),
        |(tape, scratch), _, &s| run_sample(tape, scratch, s, &f),
    );
    let per_sample: Vec<Vec<SampleEntry>> =
        per_sample.into_iter().collect::<Result<_, _>>()?;
    merge_samples(per_sample)
}

/// Pre-draws one RNG seed per sample from the master generator —
/// exactly the sequence the serial loop consumes, so serial and
/// threaded runs sample identical input points.
fn draw_sample_seeds(samples: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..samples).map(|_| rng.gen()).collect()
}

/// One registered variable's contribution from one sample.
struct SampleEntry {
    name: String,
    kind: VarKind,
    /// The sampled product `u · ∇_u y` (Eq. 11's argument, pointwise).
    product: f64,
    /// The sampled value `u` (used for output-width normalization).
    value: f64,
}

/// Shape metadata captured while recording one sample: everything the
/// replay path needs to run later samples without the closure.
struct RecordedTrace {
    /// Registrations in order: name, trace node, role.
    entries: Vec<(String, NodeId, VarKind)>,
    /// Declared input ranges in input-call order (the RNG replay recipe).
    ranges: Vec<(f64, f64)>,
    /// The closure resolved a branch — the trace is value-dependent.
    branched: bool,
}

/// Runs one sample on a (cleared) arena tape and extracts per-variable
/// products in registration order.
fn run_sample<F>(
    tape: &Tape<f64>,
    scratch: &mut Vec<f64>,
    sample_seed: u64,
    f: &F,
) -> Result<Vec<SampleEntry>, AnalysisError>
where
    F: Fn(&McCtx<'_>) -> Result<(), AnalysisError>,
{
    record_sample(tape, scratch, sample_seed, f).map(|(entries, _)| entries)
}

/// [`run_sample`] that also returns the recorded trace shape.
fn record_sample<F>(
    tape: &Tape<f64>,
    scratch: &mut Vec<f64>,
    sample_seed: u64,
    f: &F,
) -> Result<(Vec<SampleEntry>, RecordedTrace), AnalysisError>
where
    F: Fn(&McCtx<'_>) -> Result<(), AnalysisError>,
{
    tape.clear();
    let ctx = McCtx::new(tape, StdRng::seed_from_u64(sample_seed));
    f(&ctx)?;
    let trace = RecordedTrace {
        entries: ctx.entries.into_inner(),
        ranges: ctx.ranges.into_inner(),
        branched: ctx.branched.get(),
    };
    let outputs: Vec<NodeId> = trace
        .entries
        .iter()
        .filter(|(_, _, k)| *k == VarKind::Output)
        .map(|(_, id, _)| *id)
        .collect();
    if outputs.is_empty() {
        return Err(AnalysisError::NoOutputs);
    }
    let seeds: Vec<(NodeId, f64)> = outputs.iter().map(|&o| (o, 1.0)).collect();
    let adj = tape.adjoints_in(&seeds, std::mem::take(scratch));
    let result = trace
        .entries
        .iter()
        .map(|(name, id, kind)| SampleEntry {
            name: name.clone(),
            kind: *kind,
            product: tape.value(*id) * adj.get(*id),
            value: tape.value(*id),
        })
        .collect();
    *scratch = adj.into_inner();
    Ok((result, trace))
}

/// A compiled trace that survived the verification sample, plus that
/// sample's (recorded) entries for reuse.
struct VerifiedCompile {
    tape: CompiledTape<f64>,
    verify_entries: Vec<SampleEntry>,
}

/// Compiles the just-recorded trace on `tape` and verifies it on the
/// next sample: the sample is recorded from scratch *and* replayed, and
/// the compile is kept only if both agree bit-for-bit. Returns `None`
/// (without recording anything) for branchy traces, or on divergence —
/// the caller then re-records every remaining sample.
fn verified_compile<F>(
    tape: &Tape<f64>,
    trace: &RecordedTrace,
    scratch: &mut Vec<f64>,
    verify_seed: u64,
    f: &F,
) -> Result<Option<VerifiedCompile>, AnalysisError>
where
    F: Fn(&McCtx<'_>) -> Result<(), AnalysisError>,
{
    if trace.branched {
        return Ok(None);
    }
    let compiled = CompiledTape::compile(tape);
    // Recording clears the tape, but `compiled` is an owned snapshot.
    let (recorded, _) = record_sample(tape, scratch, verify_seed, f)?;
    let mut buf = ReplayBuffers::new();
    let mut values = Vec::new();
    let replayed = replay_sample(&compiled, trace, &mut buf, &mut values, verify_seed);
    if entries_bit_equal(&recorded, &replayed) {
        Ok(Some(VerifiedCompile {
            tape: compiled,
            verify_entries: recorded,
        }))
    } else {
        Ok(None)
    }
}

/// Replays one sample through the compiled trace: re-draws the input
/// values from the recorded ranges with the sample's own RNG (exactly
/// the sequence [`McCtx::input`] would consume), then runs the compiled
/// forward and reverse sweeps.
fn replay_sample(
    compiled: &CompiledTape<f64>,
    trace: &RecordedTrace,
    buf: &mut ReplayBuffers<f64>,
    values: &mut Vec<f64>,
    sample_seed: u64,
) -> Vec<SampleEntry> {
    let mut rng = StdRng::seed_from_u64(sample_seed);
    values.clear();
    for &(lo, hi) in &trace.ranges {
        values.push(if lo == hi {
            lo
        } else {
            rng.gen_range(lo..=hi)
        });
    }
    compiled
        .replay(values, buf)
        .expect("input arity is fixed by the recorded ranges");
    let seeds: Vec<(NodeId, f64)> = trace
        .entries
        .iter()
        .filter(|(_, _, k)| *k == VarKind::Output)
        .map(|(_, id, _)| (*id, 1.0))
        .collect();
    compiled.adjoints_into(&seeds, buf);
    trace
        .entries
        .iter()
        .map(|(name, id, kind)| SampleEntry {
            name: name.clone(),
            kind: *kind,
            product: buf.value(*id) * buf.adjoint(*id),
            value: buf.value(*id),
        })
        .collect()
}

/// Replays one full block of [`MC_LANES`] samples with a **single**
/// walk of the compiled op stream: each sample's inputs are re-drawn
/// with its own RNG into the slot-major `staging` area, then the lane
/// forward/reverse sweeps run all lanes at once. Per sample, the
/// extracted entries are bit-identical to [`replay_sample`]'s (each
/// lane performs the same scalar operations in the same order).
fn replay_sample_block(
    compiled: &CompiledTape<f64>,
    trace: &RecordedTrace,
    buf: &mut LaneReplayBuffers<f64, MC_LANES>,
    staging: &mut Vec<[f64; MC_LANES]>,
    sample_seeds: &[u64],
) -> Vec<Vec<SampleEntry>> {
    debug_assert_eq!(sample_seeds.len(), MC_LANES);
    staging.clear();
    staging.resize(trace.ranges.len(), [0.0; MC_LANES]);
    for (l, &s) in sample_seeds.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(s);
        for (slot, &(lo, hi)) in trace.ranges.iter().enumerate() {
            staging[slot][l] = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        }
    }
    compiled
        .replay_lanes(staging, buf)
        .expect("input arity is fixed by the recorded ranges");
    let seeds: Vec<(NodeId, f64)> = trace
        .entries
        .iter()
        .filter(|(_, _, k)| *k == VarKind::Output)
        .map(|(_, id, _)| (*id, 1.0))
        .collect();
    compiled.adjoints_into_lanes(&seeds, buf);
    (0..MC_LANES)
        .map(|l| {
            trace
                .entries
                .iter()
                .map(|(name, id, kind)| SampleEntry {
                    name: name.clone(),
                    kind: *kind,
                    product: buf.value(*id, l) * buf.adjoint(*id, l),
                    value: buf.value(*id, l),
                })
                .collect()
        })
        .collect()
}

/// Bitwise comparison of two samples' entry lists.
fn entries_bit_equal(a: &[SampleEntry], b: &[SampleEntry]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.name == y.name
                && x.kind == y.kind
                && x.product.to_bits() == y.product.to_bits()
                && x.value.to_bits() == y.value.to_bits()
        })
}

/// Folds per-sample entry lists, in sample order, into the report —
/// the same accumulation the serial loop performs inline.
fn merge_samples(per_sample: Vec<Vec<SampleEntry>>) -> Result<McReport, AnalysisError> {
    struct Acc {
        kind: VarKind,
        min: f64,
        max: f64,
        order: usize,
    }
    let samples = per_sample.len();
    let mut acc: HashMap<String, Acc> = HashMap::new();
    let mut order = 0usize;
    let mut output_min_max: HashMap<String, (f64, f64)> = HashMap::new();

    for entries in per_sample {
        for entry in entries {
            let slot = acc.entry(entry.name.clone()).or_insert_with(|| {
                let a = Acc {
                    kind: entry.kind,
                    min: f64::INFINITY,
                    max: f64::NEG_INFINITY,
                    order,
                };
                order += 1;
                a
            });
            slot.min = slot.min.min(entry.product);
            slot.max = slot.max.max(entry.product);
            if entry.kind == VarKind::Output {
                let e = output_min_max
                    .entry(entry.name)
                    .or_insert((f64::INFINITY, f64::NEG_INFINITY));
                e.0 = e.0.min(entry.value);
                e.1 = e.1.max(entry.value);
            }
        }
    }

    let total: f64 = output_min_max.values().map(|(lo, hi)| hi - lo).sum();
    let normalize = |raw: f64| if total > 0.0 { raw / total } else { raw };

    let mut vars: Vec<(usize, McVar)> = acc
        .into_iter()
        .map(|(name, a)| {
            let raw = a.max - a.min;
            (
                a.order,
                McVar {
                    name,
                    kind: a.kind,
                    product_min: a.min,
                    product_max: a.max,
                    significance_raw: raw,
                    significance: normalize(raw),
                },
            )
        })
        .collect();
    vars.sort_by_key(|(o, _)| *o);
    Ok(McReport {
        vars: vars.into_iter().map(|(_, v)| v).collect(),
        samples,
        replayed_samples: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mc_significance_is_below_interval_significance() {
        // Interval analysis of y = x² over [0, 1]: S(x) = w([0,1]·[0,2]) = 2.
        // MC: products x·2x = 2x² ∈ [0, 2] empirically — always ≤ interval.
        let mc = estimate(512, 7, |ctx| {
            let x = ctx.input("x", 0.0, 1.0);
            let y = x.sqr();
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();

        let ia = crate::Analysis::new()
            .run(|ctx| {
                let x = ctx.input("x", 0.0, 1.0);
                let y = x.sqr();
                ctx.output(&y, "y");
                Ok(())
            })
            .unwrap();

        let mc_x = mc.vars.iter().find(|v| v.name == "x").unwrap();
        let ia_x = ia.var("x").unwrap();
        assert!(mc_x.significance_raw <= ia_x.significance_raw + 1e-12);
        assert!(mc_x.significance_raw > 0.5 * ia_x.significance_raw);
    }

    #[test]
    fn mc_handles_control_flow_without_splitting() {
        let mc = estimate(256, 3, |ctx| {
            let x = ctx.input("x", -1.0, 1.0);
            let neg = ctx.branch(x.value() < 0.0, "x < 0")?;
            let y = if neg { -x } else { x };
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();
        let y = mc.vars.iter().find(|v| v.name == "y").unwrap();
        assert!(y.product_min >= 0.0);
        assert!(y.product_max <= 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            estimate(64, 99, |ctx| {
                let x = ctx.input("x", 0.0, 2.0);
                let y = x.exp();
                ctx.output(&y, "y");
                Ok(())
            })
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.vars[0].product_min, b.vars[0].product_min);
        assert_eq!(a.vars[0].product_max, b.vars[0].product_max);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let _ = estimate(0, 0, |_| Ok(()));
    }

    #[test]
    fn replayed_estimate_matches_pure_recording_bitwise() {
        let model = |ctx: &McCtx<'_>| {
            let x = ctx.input("x", -1.0, 2.0);
            let z = ctx.input("z", 0.5, 1.5);
            let t = (x * z).sin();
            ctx.intermediate(&t, "t");
            let y = t.exp() + x.sqr();
            ctx.output(&y, "y");
            Ok(())
        };
        // Reference: the pre-replay behaviour — record every sample.
        let seeds = draw_sample_seeds(64, 5);
        let tape = Tape::<f64>::new();
        let mut scratch = Vec::new();
        let per_sample: Vec<Vec<SampleEntry>> = seeds
            .iter()
            .map(|&s| run_sample(&tape, &mut scratch, s, &model).unwrap())
            .collect();
        let reference = merge_samples(per_sample).unwrap();

        let replayed = estimate(64, 5, model).unwrap();
        assert_eq!(replayed.replayed_samples, 62, "samples 2.. must replay");
        assert_eq!(replayed.vars.len(), reference.vars.len());
        for (a, b) in replayed.vars.iter().zip(&reference.vars) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.product_min.to_bits(), b.product_min.to_bits());
            assert_eq!(a.product_max.to_bits(), b.product_max.to_bits());
            assert_eq!(a.significance.to_bits(), b.significance.to_bits());
        }
    }

    #[test]
    fn branchy_model_never_replays() {
        let mc = estimate(32, 11, |ctx| {
            let x = ctx.input("x", -1.0, 1.0);
            let neg = ctx.branch(x.value() < 0.0, "x < 0")?;
            let y = if neg { -x } else { x };
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();
        assert_eq!(mc.replayed_samples, 0);
        let threaded = estimate_threaded(32, 11, 2, |ctx| {
            let x = ctx.input("x", -1.0, 1.0);
            let neg = ctx.branch(x.value() < 0.0, "x < 0")?;
            let y = if neg { -x } else { x };
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();
        assert_eq!(threaded.replayed_samples, 0);
        for (a, b) in mc.vars.iter().zip(&threaded.vars) {
            assert_eq!(a.significance.to_bits(), b.significance.to_bits());
        }
    }

    #[test]
    fn threaded_estimate_is_bit_identical_to_serial() {
        let model = |ctx: &McCtx<'_>| {
            let x = ctx.input("x", -1.0, 2.0);
            let z = ctx.input("z", 0.5, 1.5);
            let t = (x * z).sin();
            ctx.intermediate(&t, "t");
            let y = t.exp() + x;
            ctx.output(&y, "y");
            Ok(())
        };
        let serial = estimate(128, 2024, model).unwrap();
        for threads in [2, 4, 8] {
            let par = estimate_threaded(128, 2024, threads, model).unwrap();
            assert_eq!(par.samples, serial.samples);
            assert_eq!(par.vars.len(), serial.vars.len());
            for (a, b) in serial.vars.iter().zip(&par.vars) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.product_min.to_bits(), b.product_min.to_bits());
                assert_eq!(a.product_max.to_bits(), b.product_max.to_bits());
                assert_eq!(a.significance.to_bits(), b.significance.to_bits());
            }
        }
    }
}
