//! Input-range sweeps (§6 future work: "extending significance analysis
//! to a wider range of input intervals to accommodate the fact that code
//! significance is input-dependent for some benchmarks").
//!
//! [`sweep_input_scale`] re-runs one analysis with the declared input
//! ranges shrunk/expanded around their midpoints by a series of scale
//! factors, and [`RangeSweep::ranking_stability`] quantifies how stable
//! the resulting significance ranking is — the paper's "code
//! significance is input-dependent for some benchmarks" made measurable.

use scorpio_interval::Interval;

use crate::error::AnalysisError;
use crate::report::{Report, VarKind};
use crate::session::Analysis;

/// One sweep point: the scale factor applied to every input width and
/// the resulting report.
#[derive(Debug)]
pub struct SweepPoint {
    /// Input-width scale relative to the declared ranges (1.0 = as
    /// declared).
    pub scale: f64,
    /// The analysis report at this scale.
    pub report: Report,
}

/// The results of an input-range sweep.
#[derive(Debug)]
pub struct RangeSweep {
    /// One point per requested scale, in the given order.
    pub points: Vec<SweepPoint>,
}

impl RangeSweep {
    /// Normalized significance trajectory of one registered variable
    /// across the sweep (`None` if the variable is missing anywhere).
    pub fn trajectory(&self, name: &str) -> Option<Vec<f64>> {
        self.points
            .iter()
            .map(|p| p.report.significance_of(name))
            .collect()
    }

    /// Fraction of variable pairs whose significance order is identical
    /// at every sweep point (1.0 = the ranking never changes with input
    /// width). Only named intermediates take part; near-ties (within a
    /// 1e-9 relative tolerance — ULP noise from outward rounding) are
    /// compatible with either order.
    pub fn ranking_stability(&self) -> f64 {
        let names: Vec<&str> = match self.points.first() {
            Some(p) => p
                .report
                .registered_of(VarKind::Intermediate)
                .map(|v| v.name.as_str())
                .collect(),
            None => return 1.0,
        };
        // Three-valued pairwise order: Some(a > b), or None for a tie.
        let order = |p: &SweepPoint, i: usize, j: usize| -> Option<bool> {
            let a = p.report.significance_of(names[i]).unwrap_or(0.0);
            let b = p.report.significance_of(names[j]).unwrap_or(0.0);
            if (a - b).abs() <= 1e-9 * a.abs().max(b.abs()) {
                None
            } else {
                Some(a > b)
            }
        };
        let mut stable = 0usize;
        let mut total = 0usize;
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                total += 1;
                let orders: Vec<bool> = self
                    .points
                    .iter()
                    .filter_map(|p| order(p, i, j))
                    .collect();
                if orders.windows(2).all(|w| w[0] == w[1]) {
                    stable += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            stable as f64 / total as f64
        }
    }
}

/// Re-runs `f` once per `scale`, multiplying every declared input width
/// by the scale (around the declared midpoint).
///
/// # Errors
///
/// Propagates the first [`AnalysisError`] from any run.
///
/// # Panics
///
/// Panics if any scale is negative.
///
/// # Examples
///
/// ```
/// use scorpio_core::sweep::sweep_input_scale;
/// use scorpio_core::Analysis;
///
/// let sweep = sweep_input_scale(&Analysis::new(), &[0.25, 0.5, 1.0], |ctx| {
///     let x = ctx.input("x", 0.0, 1.0);
///     let a = x.sqr();
///     ctx.intermediate(&a, "a");
///     let b = x.powi(4);
///     ctx.intermediate(&b, "b");
///     let y = a + b;
///     ctx.output(&y, "y");
///     Ok(())
/// }).unwrap();
///
/// // a = x² dominates b = x⁴ on every sub-unit box: fully stable.
/// // (Scales > 1 would widen past [0, 1] and eventually flip it.)
/// assert_eq!(sweep.ranking_stability(), 1.0);
/// assert_eq!(sweep.trajectory("a").unwrap().len(), 3);
/// ```
pub fn sweep_input_scale<F>(
    analysis: &Analysis,
    scales: &[f64],
    f: F,
) -> Result<RangeSweep, AnalysisError>
where
    F: Fn(&crate::Ctx<'_>) -> Result<(), AnalysisError>,
{
    // Learn the declared ranges from a probe run.
    let declared = analysis.probe_inputs(&f)?;
    let mut arena = crate::AnalysisArena::new();
    // Sweep points share one trace shape (only the input boxes differ),
    // so the first point records + compiles and the rest replay; the
    // driver falls back to re-recording per point for branchy closures.
    let mut driver = crate::ReplayOrRecord::new(analysis.clone());
    let mut points = Vec::with_capacity(scales.len());
    for &scale in scales {
        assert!(scale >= 0.0, "sweep_input_scale: negative scale {scale}");
        let overrides = scaled_overrides(&declared, scale);
        let report = driver.run_in(&mut arena, &overrides, &f)?;
        points.push(SweepPoint { scale, report });
    }
    Ok(RangeSweep { points })
}

/// [`sweep_input_scale`] with the sweep points fanned over `threads`
/// workers, one reusable tape arena per worker. Reports are identical
/// to the serial sweep's (each point records and differentiates the
/// same trace wherever it runs) and come back in scale order.
///
/// # Errors
///
/// Propagates the error of the lowest-indexed failing scale.
///
/// # Panics
///
/// Panics if any scale is negative or `threads == 0`.
pub fn sweep_input_scale_threaded<F>(
    analysis: &Analysis,
    scales: &[f64],
    threads: usize,
    f: F,
) -> Result<RangeSweep, AnalysisError>
where
    F: Fn(&crate::Ctx<'_>) -> Result<(), AnalysisError> + Sync,
{
    if threads == 1 {
        return sweep_input_scale(analysis, scales, f);
    }
    let declared = analysis.probe_inputs(&f)?;
    for &scale in scales {
        assert!(scale >= 0.0, "sweep_input_scale: negative scale {scale}");
    }
    let executor = scorpio_runtime::Executor::new(threads);
    let points = executor.map_with_state(
        scales,
        || {
            (
                crate::AnalysisArena::new(),
                crate::ReplayOrRecord::new(analysis.clone()),
            )
        },
        |(arena, driver), _, &scale| {
            let overrides = scaled_overrides(&declared, scale);
            driver
                .run_in(arena, &overrides, &f)
                .map(|report| SweepPoint { scale, report })
        },
    );
    let points = points.into_iter().collect::<Result<_, _>>()?;
    Ok(RangeSweep { points })
}

/// Override ranges for one sweep point: every declared input width
/// multiplied by `scale` around its midpoint.
fn scaled_overrides(declared: &[Interval], scale: f64) -> Vec<Interval> {
    declared
        .iter()
        .map(|iv| Interval::centered(iv.mid(), iv.rad() * scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_inputs_raise_raw_significance() {
        let sweep = sweep_input_scale(&Analysis::new(), &[0.25, 0.5, 1.0], |ctx| {
            let x = ctx.input("x", 1.0, 2.0);
            let t = x.exp();
            ctx.intermediate(&t, "t");
            let y = t + x;
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();
        let raws: Vec<f64> = sweep
            .points
            .iter()
            .map(|p| p.report.var("t").unwrap().significance_raw)
            .collect();
        assert!(raws[0] < raws[1] && raws[1] < raws[2], "{raws:?}");
    }

    #[test]
    fn input_dependent_ranking_detected() {
        // a = 10x vs b = x² on x ∈ [−30, 30]: the linear term's
        // significance grows like the box radius r (S = 20r), the
        // square's like r² (S = r²), so the ranking flips at r = 20 —
        // exactly the input dependence the paper warns about.
        let sweep = sweep_input_scale(&Analysis::new(), &[0.2, 1.0], |ctx| {
            let x = ctx.input("x", -30.0, 30.0);
            let a = x * 10.0;
            ctx.intermediate(&a, "a");
            let b = x.sqr();
            ctx.intermediate(&b, "b");
            let y = a + b;
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();
        assert!(sweep.ranking_stability() < 1.0);
        let a = sweep.trajectory("a").unwrap();
        let b = sweep.trajectory("b").unwrap();
        assert!(a[0] > b[0], "linear dominates on the narrow box: {a:?} {b:?}");
        assert!(b[1] > a[1], "square dominates on the wide box: {a:?} {b:?}");
    }

    #[test]
    fn zero_scale_gives_point_inputs() {
        let sweep = sweep_input_scale(&Analysis::new(), &[0.0], |ctx| {
            let x = ctx.input("x", 0.0, 2.0);
            let y = x.sqr();
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();
        let x = sweep.points[0].report.var("x").unwrap();
        assert!(x.enclosure.is_point());
        assert!(x.significance_raw < 1e-12);
    }

    #[test]
    fn threaded_sweep_matches_serial() {
        let model = |ctx: &crate::Ctx<'_>| {
            let x = ctx.input("x", 0.0, 1.0);
            let a = x.sqr();
            ctx.intermediate(&a, "a");
            let b = x.powi(4);
            ctx.intermediate(&b, "b");
            let y = a + b;
            ctx.output(&y, "y");
            Ok(())
        };
        let scales: Vec<f64> = (1..=12).map(|i| i as f64 / 12.0).collect();
        let serial = sweep_input_scale(&Analysis::new(), &scales, model).unwrap();
        for threads in [2, 8] {
            let par =
                sweep_input_scale_threaded(&Analysis::new(), &scales, threads, model).unwrap();
            for (ps, pp) in serial.points.iter().zip(&par.points) {
                assert_eq!(ps.scale, pp.scale);
                for name in ["x", "a", "b", "y"] {
                    let a = ps.report.significance_of(name).unwrap();
                    let b = pp.report.significance_of(name).unwrap();
                    assert_eq!(a.to_bits(), b.to_bits(), "{name} diverged");
                }
            }
        }
    }

    #[test]
    fn replayed_sweep_matches_rerecorded_sweep_bitwise() {
        let model = |ctx: &crate::Ctx<'_>| {
            let x = ctx.input("x", 1.0, 2.0);
            let z = ctx.input("z", -1.0, 1.0);
            let t = x.exp() * z.sin();
            ctx.intermediate(&t, "t");
            let y = t + x;
            ctx.output(&y, "y");
            Ok(())
        };
        let analysis = Analysis::new();
        let scales: Vec<f64> = (0..10).map(|i| 0.1 + 0.1 * i as f64).collect();
        let sweep = sweep_input_scale(&analysis, &scales, model).unwrap();
        // Reference: re-record every point through the pre-replay API.
        let declared = analysis.probe_inputs(&model).unwrap();
        let mut arena = crate::AnalysisArena::new();
        for point in &sweep.points {
            let overrides = scaled_overrides(&declared, point.scale);
            let (reference, _) = analysis
                .run_with_overrides_in(&mut arena, model, overrides)
                .unwrap();
            assert_eq!(point.report.tape_len(), reference.tape_len());
            for name in ["x", "z", "t", "y"] {
                assert_eq!(
                    point.report.significance_of(name).unwrap().to_bits(),
                    reference.significance_of(name).unwrap().to_bits(),
                    "{name} diverged at scale {}",
                    point.scale
                );
            }
        }
    }

    #[test]
    fn empty_names_are_stable() {
        let sweep = sweep_input_scale(&Analysis::new(), &[0.5, 1.0], |ctx| {
            let x = ctx.input("x", 0.0, 1.0);
            let y = x.exp();
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();
        assert_eq!(sweep.ranking_stability(), 1.0);
    }
}
