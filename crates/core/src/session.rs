//! The analysis session: registration context and driver.

use std::cell::{Cell, RefCell};

use scorpio_adjoint::{NodeId, ReplayBuffers, Tape, Var};
use scorpio_interval::{Interval, Trichotomy};

use crate::error::AnalysisError;
use crate::report::{build_report_with, Report, VarKind};

/// The active interval type of the analysis — the Rust spelling of the
/// paper's `dco::ia1s::type` (interval arithmetic, first-order adjoint,
/// scalar).
pub type Ia1s<'t> = Var<'t, Interval>;

/// One registered variable (before the adjoint sweep assigns it a
/// significance).
#[derive(Debug, Clone)]
pub(crate) struct Registration {
    pub name: String,
    pub node: NodeId,
    pub kind: VarKind,
    /// Declared range (inputs only; outputs/intermediates record their
    /// computed enclosure at report time).
    pub declared: Interval,
}

#[derive(Debug, Default)]
pub(crate) struct Registrations {
    pub entries: Vec<Registration>,
}

impl Registrations {
    fn check_unique(&self, name: &str) -> Result<(), AnalysisError> {
        if self.entries.iter().any(|e| e.name == name) {
            Err(AnalysisError::DuplicateName(name.to_owned()))
        } else {
            Ok(())
        }
    }
}

/// Registration context handed to the analysed closure.
///
/// Provides the paper's Table-1 macro functionality as methods:
/// `INPUT` → [`Ctx::input`], `INTERMEDIATE` → [`Ctx::intermediate`],
/// `OUTPUT` → [`Ctx::output`]; `ANALYSE()` is implicit when the closure
/// returns (the driver then performs the reverse sweep and builds the
/// [`Report`]).
#[derive(Debug)]
pub struct Ctx<'t> {
    tape: &'t Tape<Interval>,
    regs: RefCell<Registrations>,
    /// Per-input range overrides used by the splitting extension; indexed
    /// by input registration order.
    overrides: Vec<Interval>,
    /// Result slot for registration errors raised inside the closure via
    /// methods that cannot return `Result` (none currently; kept for the
    /// macros which `?` on the methods' results).
    errors: RefCell<Option<AnalysisError>>,
    /// Set when the closure resolves any branch: the trace shape is then
    /// value-dependent, so the replay engine must not reuse it for other
    /// inputs (see [`crate::ReplayOrRecord`]).
    branched: Cell<bool>,
}

impl<'t> Ctx<'t> {
    pub(crate) fn new(tape: &'t Tape<Interval>, overrides: Vec<Interval>) -> Ctx<'t> {
        Ctx {
            tape,
            regs: RefCell::new(Registrations::default()),
            overrides,
            errors: RefCell::new(None),
            branched: Cell::new(false),
        }
    }

    /// Registers input variable `name` with range `[lo, hi]` and returns
    /// the active value (`INPUT(x, xl, xu)` of Table 1).
    ///
    /// If the splitting extension supplied an override for this input
    /// position, the override range is used instead; the declared range is
    /// still recorded so the splitter knows the original domain.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or a bound is NaN.
    pub fn input(&self, name: impl Into<String>, lo: f64, hi: f64) -> Ia1s<'t> {
        let name = name.into();
        let declared = Interval::new(lo, hi);
        let index = {
            let regs = self.regs.borrow();
            regs.entries
                .iter()
                .filter(|e| e.kind == VarKind::Input)
                .count()
        };
        let range = self.overrides.get(index).copied().unwrap_or(declared);
        let var = self.tape.var(range);
        let mut regs = self.regs.borrow_mut();
        if let Err(e) = regs.check_unique(&name) {
            self.errors.borrow_mut().get_or_insert(e);
        }
        regs.entries.push(Registration {
            name,
            node: var.id(),
            kind: VarKind::Input,
            declared,
        });
        var
    }

    /// Registers input `name` as `mid ± radius` — the paper's
    /// `INPUT(x, x-0.5, x+0.5)` idiom from Listing 6.
    pub fn input_centered(&self, name: impl Into<String>, mid: f64, radius: f64) -> Ia1s<'t> {
        let iv = Interval::centered(mid, radius);
        self.input(name, iv.inf(), iv.sup())
    }

    /// Records a constant on the tape.
    pub fn constant(&self, value: f64) -> Ia1s<'t> {
        self.tape.constant(Interval::point(value))
    }

    /// Records an interval-valued constant on the tape.
    pub fn constant_interval(&self, value: Interval) -> Ia1s<'t> {
        self.tape.constant(value)
    }

    /// Registers `var` as a named intermediate (`INTERMEDIATE(z)` of
    /// Table 1). Registration must happen straight after the variable is
    /// computed, which the borrow of `var` enforces naturally.
    pub fn intermediate(&self, var: &Ia1s<'t>, name: impl Into<String>) {
        let name = name.into();
        let mut regs = self.regs.borrow_mut();
        if let Err(e) = regs.check_unique(&name) {
            self.errors.borrow_mut().get_or_insert(e);
        }
        regs.entries.push(Registration {
            name,
            node: var.id(),
            kind: VarKind::Intermediate,
            declared: var.value(),
        });
    }

    /// Registers `var` as an output (`OUTPUT(y)` of Table 1). Every
    /// registered output is seeded with adjoint 1, so for vector
    /// functions the reported significances are the sums
    /// `S_y(u) = Σ_i S_{y_i}(u)` of §2.3.
    pub fn output(&self, var: &Ia1s<'t>, name: impl Into<String>) {
        let name = name.into();
        let mut regs = self.regs.borrow_mut();
        if let Err(e) = regs.check_unique(&name) {
            self.errors.borrow_mut().get_or_insert(e);
        }
        regs.entries.push(Registration {
            name,
            node: var.id(),
            kind: VarKind::Output,
            declared: var.value(),
        });
    }

    /// Resolves a three-valued comparison into a control-flow decision.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::AmbiguousBranch`] carrying `condition`
    /// when the comparison is [`Trichotomy::Ambiguous`] — the §2.2
    /// behaviour of terminating the analysis and reporting the relevant
    /// condition statement to the user.
    ///
    /// ```
    /// use scorpio_core::Analysis;
    ///
    /// let result = Analysis::new().run(|ctx| {
    ///     let x = ctx.input("x", -1.0, 1.0);
    ///     // x < 0 is ambiguous over [-1, 1]:
    ///     let negative = ctx.branch(x.value().certainly_lt(0.0.into()), "x < 0")?;
    ///     let y = if negative { -x } else { x };
    ///     ctx.output(&y, "y");
    ///     Ok(())
    /// });
    /// assert!(result.is_err());
    /// ```
    pub fn branch(&self, tri: Trichotomy, condition: &str) -> Result<bool, AnalysisError> {
        self.branched.set(true);
        tri.to_bool().ok_or_else(|| AnalysisError::AmbiguousBranch {
            condition: condition.to_owned(),
        })
    }

    /// `true` once the closure has resolved any branch — such a trace is
    /// value-dependent and must not be replayed for other inputs.
    pub(crate) fn branched(&self) -> bool {
        self.branched.get()
    }

    pub(crate) fn into_registrations(self) -> Result<Registrations, AnalysisError> {
        if let Some(e) = self.errors.borrow_mut().take() {
            return Err(e);
        }
        Ok(self.regs.into_inner())
    }

    /// Declared input ranges in registration order (used by the splitter).
    pub(crate) fn declared_inputs(&self) -> Vec<Interval> {
        self.regs
            .borrow()
            .entries
            .iter()
            .filter(|e| e.kind == VarKind::Input)
            .map(|e| e.declared)
            .collect()
    }
}

/// Reusable analysis state: a warm [`Tape`] arena plus the adjoint
/// scratch buffer of the reverse sweep.
///
/// Running an analysis allocates a tape for the trace and a vector for
/// the adjoints; in batch settings (per-pixel kernels, Monte-Carlo
/// sampling, sweeps) those allocations dominate once the trace is warm.
/// An arena keeps both between runs — [`Analysis::run_in`] clears the
/// tape (keeping its allocation) and recycles the scratch buffer, so a
/// long batch settles into zero steady-state allocation. Each worker of
/// the parallel engine owns one arena.
#[derive(Debug, Default)]
pub struct AnalysisArena {
    pub(crate) tape: Tape<Interval>,
    pub(crate) scratch: Vec<Interval>,
    /// Compiled-replay buffers (values, local partials, adjoints) for
    /// the arena's [`crate::ReplayOrRecord`] mode; empty until the
    /// first replay, reused afterwards.
    pub(crate) replay: ReplayBuffers<Interval>,
}

impl AnalysisArena {
    /// An empty arena; the first run sizes it.
    pub fn new() -> AnalysisArena {
        AnalysisArena::default()
    }

    /// An arena pre-sized for traces of about `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> AnalysisArena {
        AnalysisArena {
            tape: Tape::with_capacity(capacity),
            scratch: Vec::with_capacity(capacity),
            replay: ReplayBuffers::new(),
        }
    }

    /// Current node capacity of the warm tape.
    pub fn tape_capacity(&self) -> usize {
        self.tape.capacity()
    }
}

/// Configuration and driver for one significance analysis
/// (steps S1–S3 of Algorithm 1; the graph post-processing S4–S5 lives on
/// the produced [`Report`]'s [`crate::SigGraph`]).
#[derive(Debug, Clone)]
pub struct Analysis {
    delta: f64,
}

impl Default for Analysis {
    fn default() -> Self {
        Analysis::new()
    }
}

impl Analysis {
    /// Creates an analysis with the default significance-variance
    /// threshold `δ = 1e-3` (applied to normalized significances).
    pub fn new() -> Analysis {
        Analysis { delta: 1e-3 }
    }

    /// Sets the δ threshold used by the level-variance partitioning
    /// (step S5). Higher δ requires starker significance differences
    /// before a level is chosen as the task boundary.
    pub fn with_delta(mut self, delta: f64) -> Analysis {
        assert!(delta >= 0.0, "delta must be non-negative");
        self.delta = delta;
        self
    }

    /// The configured δ threshold.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Runs the closure with a fresh tape, performs the reverse sweep and
    /// assembles the [`Report`] (steps S1–S3 plus `ANALYSE()`).
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError`]s raised by the closure (ambiguous
    /// branches) and fails with [`AnalysisError::NoOutputs`] if no output
    /// was registered.
    pub fn run<F>(&self, f: F) -> Result<Report, AnalysisError>
    where
        F: FnOnce(&Ctx<'_>) -> Result<(), AnalysisError>,
    {
        self.run_with_overrides(f, Vec::new()).map(|(r, _)| r)
    }

    /// Like [`Analysis::run`] but recording into (and recycling the
    /// allocations of) a caller-owned [`AnalysisArena`]. The produced
    /// [`Report`] is identical to [`Analysis::run`]'s — the arena only
    /// changes where the trace and the adjoint scratch live.
    pub fn run_in<F>(&self, arena: &mut AnalysisArena, f: F) -> Result<Report, AnalysisError>
    where
        F: FnOnce(&Ctx<'_>) -> Result<(), AnalysisError>,
    {
        self.run_with_overrides_in(arena, f, Vec::new()).map(|(r, _)| r)
    }

    /// Like [`Analysis::run`] but overriding input ranges positionally —
    /// the hook the splitting extension uses. Also returns the declared
    /// (non-overridden) input ranges.
    pub(crate) fn run_with_overrides<F>(
        &self,
        f: F,
        overrides: Vec<Interval>,
    ) -> Result<(Report, Vec<Interval>), AnalysisError>
    where
        F: FnOnce(&Ctx<'_>) -> Result<(), AnalysisError>,
    {
        let mut arena = AnalysisArena::with_capacity(1024);
        self.run_with_overrides_in(&mut arena, f, overrides)
    }

    /// [`Analysis::run_with_overrides`] against a reusable arena.
    pub(crate) fn run_with_overrides_in<F>(
        &self,
        arena: &mut AnalysisArena,
        f: F,
        overrides: Vec<Interval>,
    ) -> Result<(Report, Vec<Interval>), AnalysisError>
    where
        F: FnOnce(&Ctx<'_>) -> Result<(), AnalysisError>,
    {
        arena.tape.clear();
        let ctx = Ctx::new(&arena.tape, overrides);
        let closure_result = {
            let _span = scorpio_obs::span("record");
            f(&ctx)
        };
        let declared = ctx.declared_inputs();
        closure_result?;
        let regs = ctx.into_registrations()?;
        scorpio_obs::count("analysis.nodes_recorded", arena.tape.len() as u64);
        let report = build_report_with(&arena.tape, regs, self.delta, &mut arena.scratch)?;
        Ok((report, declared))
    }
}
