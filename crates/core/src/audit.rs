//! Differential soundness audit of the analysis engine.
//!
//! The significance numbers the framework reports (Eq. 11) are only as
//! trustworthy as two inclusion properties of the underlying machinery:
//!
//! 1. **Value containment** — for every concrete input point inside the
//!    declared box, the concrete `f64` forward value of every DynDFG
//!    node lies inside the node's interval enclosure `[u_j]`.
//! 2. **Derivative containment** — the concrete derivative of the
//!    output(s) with respect to every node lies inside the node's
//!    adjoint interval `∇_{[u]}[y]` (Eq. 10).
//!
//! This module checks both *differentially*: it re-evaluates the
//! recorded computation with independent arithmetic (plain `f64` for
//! the forward sweep, an `f64` reverse sweep mirroring the recording
//! formulas, and forward-mode [`Dual`] numbers as a second derivative
//! oracle with its own formulas) at randomly sampled concrete points,
//! and compares against the enclosures the analysis produced. Any
//! point that escapes its enclosure is a soundness violation — a bug
//! in the interval kernels, the recorded partials, or the sweep.
//!
//! A third oracle family, [`audit_cross_mode`], checks that the three
//! execution modes of the engine (fresh recording, warm-arena
//! re-recording, compiled-tape replay) agree **bitwise** on every
//! node's value, adjoint, and significance — the bit-identity contract
//! of [`crate::ReplayOrRecord`].
//!
//! Finally, [`DagSpec`] is a deterministic random-expression-DAG
//! generator over all supported [`Op`]s (including the division and
//! power edge cases that produce empty or half-line enclosures) with a
//! [`minimal_repro`] shrinker, so a fuzzing run that finds a violation
//! hands back a small reproducible trace instead of a 50-node haystack.
//!
//! The `scorpio_audit` binary in `crates/bench` drives this module
//! over the five paper kernels and emits a JSON report.

use std::fmt;

use scorpio_adjoint::{Dual, Op, Scalar};
use scorpio_interval::Interval;

use crate::error::AnalysisError;
use crate::report::{Report, VarKind};
use crate::replay::ReplayOrRecord;
use crate::session::{Analysis, AnalysisArena, Ctx, Ia1s};

/// Deterministic 64-bit SplitMix generator — the audit's only source of
/// randomness, so every run (and every shrunk repro) is replayable from
/// its seed.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`. `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Configuration of one containment-audit run.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Concrete points sampled from the input box.
    pub points: usize,
    /// RNG seed (every run with the same seed checks the same points).
    pub seed: u64,
    /// Maximum number of [`Violation`]s *stored* on the outcome (all
    /// violations are always counted).
    pub max_violations: usize,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            points: 1000,
            seed: 0x5EED_CAFE,
            max_violations: 32,
        }
    }
}

impl AuditConfig {
    /// A config sampling `points` concrete points.
    pub fn with_points(points: usize) -> AuditConfig {
        AuditConfig {
            points,
            ..AuditConfig::default()
        }
    }
}

/// Which oracle a violation escaped from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Concrete forward value escaped the node's interval enclosure.
    Value,
    /// Concrete reverse-sweep derivative escaped the adjoint interval.
    Adjoint,
    /// Dual-number forward tangent escaped the input's adjoint interval.
    Tangent,
    /// The enclosure is EMPTY yet a concrete (non-NaN) result exists —
    /// interval arithmetic "proved" no result exists where one does.
    EmptyEnclosure,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::Value => "value",
            ViolationKind::Adjoint => "adjoint",
            ViolationKind::Tangent => "tangent",
            ViolationKind::EmptyEnclosure => "empty-enclosure",
        };
        f.write_str(s)
    }
}

/// One soundness violation: a concrete quantity that escaped its
/// enclosure, with the sampled input point for reproduction.
#[derive(Debug, Clone)]
pub struct Violation {
    /// DynDFG node id at which the escape was observed.
    pub node: usize,
    /// Operator mnemonic of that node.
    pub op: String,
    /// Which oracle caught it.
    pub kind: ViolationKind,
    /// The concrete value that escaped.
    pub concrete: f64,
    /// The enclosure it escaped from.
    pub enclosure: Interval,
    /// Sampled concrete input values (leaf order) reproducing the point.
    pub inputs: Vec<f64>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violation at node {} ({}): {} ∉ {} (inputs {:?})",
            self.kind, self.node, self.op, self.concrete, self.enclosure, self.inputs
        )
    }
}

/// Aggregated result of a containment audit.
#[derive(Debug, Clone)]
pub struct AuditOutcome {
    /// Concrete points sampled.
    pub points: usize,
    /// Individual containment checks performed.
    pub checks: u64,
    /// Total violations observed (≥ `violations.len()`).
    pub violation_count: u64,
    /// Stored violations, capped at [`AuditConfig::max_violations`].
    pub violations: Vec<Violation>,
    /// Checks skipped because the concrete evaluation left the real
    /// domain (NaN from `√negative`, `ln` of a non-positive number, an
    /// empty enclosure with no concrete result, …). Domain misses are
    /// expected — they are what EMPTY enclosures predict — and are
    /// reported for transparency, not as failures.
    pub domain_misses: u64,
    /// Per-operator-class count of forward value checks, indexed by
    /// [`Op::class_index`].
    pub op_coverage: [u64; Op::CLASS_COUNT],
}

impl AuditOutcome {
    /// An all-zero outcome — the identity of [`AuditOutcome::merge`],
    /// for folding per-report outcomes into a battery total.
    pub fn empty() -> AuditOutcome {
        AuditOutcome::new(0)
    }

    fn new(points: usize) -> AuditOutcome {
        AuditOutcome {
            points,
            checks: 0,
            violation_count: 0,
            violations: Vec::new(),
            domain_misses: 0,
            op_coverage: [0; Op::CLASS_COUNT],
        }
    }

    /// `true` when no oracle observed a violation.
    pub fn is_sound(&self) -> bool {
        self.violation_count == 0
    }

    /// Operator-class coverage as `(mnemonic, checks)` pairs, exercised
    /// classes only.
    pub fn coverage(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.op_coverage
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Op::class_mnemonic(i), c))
    }

    /// Folds another outcome into this one (counters add, stored
    /// violations append up to `max_violations`).
    pub fn merge(&mut self, other: &AuditOutcome, max_violations: usize) {
        self.points += other.points;
        self.checks += other.checks;
        self.violation_count += other.violation_count;
        self.domain_misses += other.domain_misses;
        for (acc, &c) in self.op_coverage.iter_mut().zip(other.op_coverage.iter()) {
            *acc += c;
        }
        for v in &other.violations {
            if self.violations.len() >= max_violations {
                break;
            }
            self.violations.push(v.clone());
        }
    }

    fn record(&mut self, v: Violation, cap: usize) {
        self.violation_count += 1;
        if self.violations.len() < cap {
            self.violations.push(v);
        }
    }
}

/// Re-evaluates `op` on concrete operands with the *same* formulas the
/// recording [`scorpio_adjoint::Var`] methods use (e.g. `a / b` is
/// `a · recip(b)`), so a containment failure implicates the interval
/// kernels rather than an evaluation-order discrepancy.
fn eval_node<V: Scalar>(op: Op, a: V, b: V) -> V {
    match op {
        Op::Input | Op::Const => unreachable!("leaves are sampled, not evaluated"),
        Op::Add => a + b,
        Op::Sub => a - b,
        Op::Mul => a * b,
        Op::Div => a * b.recip(),
        Op::Neg => -a,
        Op::Sin => a.sin(),
        Op::Cos => a.cos(),
        Op::Tan => a.tan(),
        Op::Exp => a.exp(),
        Op::Ln => a.ln(),
        Op::Sqrt => a.sqrt(),
        Op::Sqr => a.sqr(),
        Op::Recip => a.recip(),
        Op::Powi(n) => a.powi(n),
        Op::Powf(p) => a.powf(p),
        Op::Abs => a.abs(),
        Op::Atan => a.atan(),
        Op::Tanh => a.tanh(),
        Op::Sinh => a.sinh(),
        Op::Cosh => a.cosh(),
        Op::Erf => a.erf(),
        Op::Cndf => a.cndf(),
        Op::Hypot => a.hypot(b),
        Op::Min => a.min_val(b),
        Op::Max => a.max_val(b),
    }
}

/// Local partials `(∂φ/∂a, ∂φ/∂b)` of `op` at concrete operands,
/// mirroring the recording formulas of `scorpio_adjoint::var` exactly
/// (same subgradient conventions for `abs`/`min`/`max`/`hypot`).
fn node_partials<V: Scalar>(op: Op, a: V, b: V) -> (V, V) {
    let z = V::zero();
    match op {
        Op::Input | Op::Const => (z, z),
        Op::Add => (V::one(), V::one()),
        Op::Sub => (V::one(), -V::one()),
        Op::Mul => (b, a),
        Op::Div => {
            let inv = b.recip();
            (inv, -a * inv.sqr())
        }
        Op::Neg => (-V::one(), z),
        Op::Sin => (a.cos(), z),
        Op::Cos => (-a.sin(), z),
        Op::Tan => {
            let t = a.tan();
            (V::one() + t.sqr(), z)
        }
        Op::Exp => (a.exp(), z),
        Op::Ln => (a.recip(), z),
        Op::Sqrt => ((V::from_f64(2.0) * a.sqrt()).recip(), z),
        Op::Sqr => (V::from_f64(2.0) * a, z),
        Op::Recip => (-a.sqr().recip(), z),
        Op::Powi(n) => {
            let p = if n == 0 {
                z
            } else {
                V::from_f64(f64::from(n)) * a.powi(n - 1)
            };
            (p, z)
        }
        Op::Powf(p) => {
            let d = if p == 0.0 {
                z
            } else {
                V::from_f64(p) * a.powf(p - 1.0)
            };
            (d, z)
        }
        Op::Abs => (a.abs_deriv(), z),
        Op::Atan => ((V::one() + a.sqr()).recip(), z),
        Op::Tanh => {
            let t = a.tanh();
            (V::one() - t.sqr(), z)
        }
        Op::Sinh => (a.cosh(), z),
        Op::Cosh => (a.sinh(), z),
        Op::Erf => {
            let c = V::from_f64(2.0 / std::f64::consts::PI.sqrt());
            (c * (-a.sqr()).exp(), z)
        }
        Op::Cndf => {
            let c = V::from_f64(1.0 / (2.0 * std::f64::consts::PI).sqrt());
            (c * (-a.sqr() / V::from_f64(2.0)).exp(), z)
        }
        Op::Hypot => a.hypot_partials(b, a.hypot(b)),
        Op::Min => a.min_partials(b),
        Op::Max => a.max_partials(b),
    }
}

/// Uniform concrete sample from a leaf enclosure: uniform in `[lo, hi]`
/// for bounded leaves, the midpoint for unbounded ones, NaN for EMPTY
/// (propagating the "no value exists" verdict into the concrete sweep).
fn sample_leaf(rng: &mut SplitMix64, iv: Interval) -> f64 {
    if iv.is_empty() {
        return f64::NAN;
    }
    let (lo, hi) = (iv.inf(), iv.sup());
    if !(lo.is_finite() && hi.is_finite()) {
        let m = iv.mid();
        return if m.is_finite() { m } else { 0.0 };
    }
    if lo == hi {
        return lo;
    }
    lo + rng.next_f64() * (hi - lo)
}

/// Runs the containment oracles over a finished [`Report`].
///
/// For each of `cfg.points` concrete points sampled uniformly from the
/// recorded input enclosures, the audit:
///
/// * forward-evaluates every node in `f64` and checks the result lies
///   in the node's interval enclosure (`Value` / `EmptyEnclosure`);
/// * reverse-sweeps concrete adjoints (every registered output seeded
///   with 1, exactly like the analysis) and checks each node's
///   concrete derivative lies in its adjoint interval (`Adjoint`);
/// * forward-evaluates with [`Dual`] numbers — an independent
///   derivative implementation — seeding one input's tangent per point
///   (round-robin) and checks the summed output tangent lies in that
///   input's adjoint interval (`Tangent`).
///
/// Checks whose concrete quantity is NaN count as domain misses, not
/// violations: a NaN marks a point where the concrete evaluation left
/// the real domain, which is precisely what EMPTY or partial
/// enclosures predict. `±∞` concrete values *are* checked — an
/// overflow in the concrete sweep must be matched by an unbounded
/// enclosure.
pub fn audit_containment(report: &Report, cfg: &AuditConfig) -> AuditOutcome {
    let graph = report.graph();
    let nodes = graph.nodes();
    let outputs = graph.outputs();
    let n = nodes.len();
    let input_ids: Vec<usize> = nodes
        .iter()
        .filter(|nd| nd.op == Op::Input)
        .map(|nd| nd.id)
        .collect();

    let mut rng = SplitMix64::new(cfg.seed);
    let mut out = AuditOutcome::new(cfg.points);
    let mut vals = vec![0.0f64; n];
    let mut duals = vec![Dual::ZERO; n];
    let mut adj = vec![0.0f64; n];
    // Whether a node's concrete value witnesses a *real* result: IEEE
    // arithmetic continues past poles (1/0 → ∞, then e.g. 1/∞ → 0), so
    // a finite concrete value whose operand chain passed through a
    // non-finite or EMPTY-enclosed node is an artifact, not evidence
    // that a real result exists.
    let mut valid = vec![false; n];

    for pt in 0..cfg.points {
        let tangent_on = if input_ids.is_empty() {
            usize::MAX
        } else {
            input_ids[pt % input_ids.len()]
        };

        // Forward sweeps: f64 and dual share the sampled leaf values.
        let mut point_clean = true;
        for nd in nodes {
            let (v, d, operands_valid) = match nd.op {
                Op::Input | Op::Const => {
                    let v = sample_leaf(&mut rng, nd.value);
                    let eps = if nd.id == tangent_on { 1.0 } else { 0.0 };
                    (v, Dual::with_tangent(v, eps), true)
                }
                op => {
                    let a = nd.preds[0];
                    let b = *nd.preds.get(1).unwrap_or(&nd.preds[0]);
                    (
                        eval_node(op, vals[a], vals[b]),
                        eval_node(op, duals[a], duals[b]),
                        valid[a] && valid[b],
                    )
                }
            };
            vals[nd.id] = v;
            duals[nd.id] = d;
            valid[nd.id] = operands_valid && v.is_finite() && !nd.value.is_empty();
            point_clean &= valid[nd.id];
            out.op_coverage[nd.op.class_index()] += 1;
            out.checks += 1;
            // A check is meaningful only when the operand chain stayed
            // real-valid. An EMPTY enclosure predicts "no real
            // result"; concrete IEEE evaluation signals the same with
            // NaN or ±∞ (x/0 → ∞ where the real quotient does not
            // exist). Those agree — domain miss. Only a concrete value
            // computed from real-valid operands can contradict the
            // enclosure; ±∞ from valid operands is overflow of a real
            // result and must be matched by an unbounded enclosure.
            if !operands_valid || v.is_nan() || (nd.value.is_empty() && !v.is_finite()) {
                out.domain_misses += 1;
            } else if nd.value.is_empty() || !nd.value.contains(v) {
                let kind = if nd.value.is_empty() {
                    ViolationKind::EmptyEnclosure
                } else {
                    ViolationKind::Value
                };
                let inputs = input_ids.iter().map(|&i| vals[i]).collect();
                out.record(
                    Violation {
                        node: nd.id,
                        op: nd.op.to_string(),
                        kind,
                        concrete: v,
                        enclosure: nd.value,
                        inputs,
                    },
                    cfg.max_violations,
                );
            }
        }

        // Derivative oracles need the whole trace real-valid: concrete
        // partials at a pole or past an EMPTY node are artifacts that
        // would produce false alarms (or silently wrong finite adjoints).
        if !point_clean {
            continue;
        }

        // Concrete reverse sweep: adj[id] is final once all (higher-id)
        // consumers have propagated, so check and propagate in one
        // descending pass.
        adj.iter_mut().for_each(|a| *a = 0.0);
        for &o in outputs {
            adj[o] += 1.0;
        }
        for id in (0..n).rev() {
            let nd = &nodes[id];
            let abar = adj[id];
            out.checks += 1;
            if abar.is_nan() {
                out.domain_misses += 1;
            } else if !nd.derivative.is_empty() && !nd.derivative.contains(abar) {
                let inputs = input_ids.iter().map(|&i| vals[i]).collect();
                out.record(
                    Violation {
                        node: id,
                        op: nd.op.to_string(),
                        kind: ViolationKind::Adjoint,
                        concrete: abar,
                        enclosure: nd.derivative,
                        inputs,
                    },
                    cfg.max_violations,
                );
            }
            if abar != 0.0 && nd.op.arity() > 0 {
                let a = nd.preds[0];
                let b = *nd.preds.get(1).unwrap_or(&nd.preds[0]);
                let (pa, pb) = node_partials(nd.op, vals[a], vals[b]);
                adj[a] += abar * pa;
                if nd.op.arity() == 2 {
                    adj[b] += abar * pb;
                }
            }
        }

        // Dual tangent of the seeded input: d(Σ outputs)/d(input) must
        // lie in the input's adjoint interval.
        if tangent_on != usize::MAX {
            let eps: f64 = outputs.iter().map(|&o| duals[o].eps).sum();
            let enclosure = nodes[tangent_on].derivative;
            out.checks += 1;
            if eps.is_nan() {
                out.domain_misses += 1;
            } else if !enclosure.is_empty() && !enclosure.contains(eps) {
                let inputs = input_ids.iter().map(|&i| vals[i]).collect();
                out.record(
                    Violation {
                        node: tangent_on,
                        op: Op::Input.to_string(),
                        kind: ViolationKind::Tangent,
                        concrete: eps,
                        enclosure,
                        inputs,
                    },
                    cfg.max_violations,
                );
            }
        }
    }
    out
}

/// One field on which two execution modes disagreed bitwise.
#[derive(Debug, Clone)]
pub struct CrossMismatch {
    /// Mode pair, e.g. `"fresh vs replay"`.
    pub modes: &'static str,
    /// DynDFG node id (or `usize::MAX` for whole-report fields).
    pub node: usize,
    /// Field name (`value`, `derivative`, `significance`, …).
    pub field: &'static str,
}

/// Result of [`audit_cross_mode`]: bitwise agreement of the three
/// execution modes.
#[derive(Debug, Clone)]
pub struct CrossModeOutcome {
    /// Nodes compared per mode pair.
    pub nodes: usize,
    /// `true` when the second compiled-trace run actually replayed
    /// (a branched trace legitimately falls back to re-recording).
    pub replayed: bool,
    /// All bitwise disagreements found.
    pub mismatches: Vec<CrossMismatch>,
}

impl CrossModeOutcome {
    /// `true` when every mode pair agreed bitwise on every field.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn iv_bits_eq(a: Interval, b: Interval) -> bool {
    bits_eq(a.inf(), b.inf()) && bits_eq(a.sup(), b.sup())
}

fn compare_reports(
    modes: &'static str,
    a: &Report,
    b: &Report,
    out: &mut Vec<CrossMismatch>,
) {
    let (na, nb) = (a.graph().nodes(), b.graph().nodes());
    if na.len() != nb.len() {
        out.push(CrossMismatch {
            modes,
            node: usize::MAX,
            field: "tape_len",
        });
        return;
    }
    for (x, y) in na.iter().zip(nb.iter()) {
        if !iv_bits_eq(x.value, y.value) {
            out.push(CrossMismatch {
                modes,
                node: x.id,
                field: "value",
            });
        }
        if !iv_bits_eq(x.derivative, y.derivative) {
            out.push(CrossMismatch {
                modes,
                node: x.id,
                field: "derivative",
            });
        }
        if !bits_eq(x.significance, y.significance) {
            out.push(CrossMismatch {
                modes,
                node: x.id,
                field: "significance",
            });
        }
    }
    if !bits_eq(a.output_significance_raw(), b.output_significance_raw()) {
        out.push(CrossMismatch {
            modes,
            node: usize::MAX,
            field: "output_significance_raw",
        });
    }
}

/// Cross-mode oracle: runs `f` through all three execution modes —
/// fresh recording, warm-arena re-recording, and compiled-tape replay —
/// and verifies the produced reports agree **bitwise** on every node's
/// value, adjoint, and significance.
///
/// # Errors
///
/// Propagates closure/report errors from any of the runs.
pub fn audit_cross_mode<F>(f: F) -> Result<CrossModeOutcome, AnalysisError>
where
    F: Fn(&Ctx<'_>) -> Result<(), AnalysisError>,
{
    let analysis = Analysis::new();
    let fresh = analysis.run(|ctx| f(ctx))?;
    let declared: Vec<Interval> = fresh
        .registered_of(VarKind::Input)
        .map(|v| v.enclosure)
        .collect();

    let mut arena = AnalysisArena::new();
    let warm = analysis.run_in(&mut arena, |ctx| f(ctx))?;

    let mut driver = ReplayOrRecord::new(analysis);
    let mut replay_arena = AnalysisArena::new();
    let recorded = driver.run_in(&mut replay_arena, &declared, |ctx| f(ctx))?;
    let replayed = driver.run_in(&mut replay_arena, &declared, |ctx| f(ctx))?;
    let did_replay = driver.stats().replays > 0;

    let mut mismatches = Vec::new();
    compare_reports("fresh vs warm-arena", &fresh, &warm, &mut mismatches);
    compare_reports("fresh vs record", &fresh, &recorded, &mut mismatches);
    compare_reports("fresh vs replay", &fresh, &replayed, &mut mismatches);
    Ok(CrossModeOutcome {
        nodes: fresh.graph().nodes().len(),
        replayed: did_replay,
        mismatches,
    })
}

/// Operator families the DAG fuzzer draws from. Each family biases both
/// the operator mix and the input ranges toward that family's edge
/// cases (zero-straddling divisors, negative power bases, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpFamily {
    /// `+ − × neg sqr` over generic ranges.
    Arithmetic,
    /// `÷ recip` with divisors that straddle, touch, or equal zero —
    /// the EMPTY / half-line / whole-line producing cases.
    DivEdge,
    /// `powi powf sqrt` with bases spanning negative values.
    Pow,
    /// `sin cos tan exp ln atan tanh sinh cosh erf cndf`.
    Transcendental,
    /// `abs min max hypot` (subgradient partials).
    NonSmooth,
}

impl OpFamily {
    /// All families, in battery order.
    pub const ALL: [OpFamily; 5] = [
        OpFamily::Arithmetic,
        OpFamily::DivEdge,
        OpFamily::Pow,
        OpFamily::Transcendental,
        OpFamily::NonSmooth,
    ];

    /// Family name for reports.
    pub fn name(self) -> &'static str {
        match self {
            OpFamily::Arithmetic => "arithmetic",
            OpFamily::DivEdge => "div-edge",
            OpFamily::Pow => "pow",
            OpFamily::Transcendental => "transcendental",
            OpFamily::NonSmooth => "non-smooth",
        }
    }

    fn sample_op(self, rng: &mut SplitMix64) -> Op {
        match self {
            OpFamily::Arithmetic => {
                const OPS: [Op; 5] = [Op::Add, Op::Sub, Op::Mul, Op::Neg, Op::Sqr];
                OPS[rng.below(OPS.len())]
            }
            OpFamily::DivEdge => {
                const OPS: [Op; 5] = [Op::Div, Op::Recip, Op::Div, Op::Add, Op::Mul];
                OPS[rng.below(OPS.len())]
            }
            OpFamily::Pow => match rng.below(5) {
                0 => Op::Powi(rng.below(8) as i32 - 3),
                1 => {
                    const P: [f64; 6] = [-1.5, -0.5, 0.0, 0.5, 1.5, 2.5];
                    Op::Powf(P[rng.below(P.len())])
                }
                2 => Op::Sqrt,
                3 => Op::Sqr,
                _ => Op::Mul,
            },
            OpFamily::Transcendental => {
                const OPS: [Op; 13] = [
                    Op::Sin,
                    Op::Cos,
                    Op::Tan,
                    Op::Exp,
                    Op::Ln,
                    Op::Atan,
                    Op::Tanh,
                    Op::Sinh,
                    Op::Cosh,
                    Op::Erf,
                    Op::Cndf,
                    Op::Add,
                    Op::Mul,
                ];
                OPS[rng.below(OPS.len())]
            }
            OpFamily::NonSmooth => {
                const OPS: [Op; 6] = [Op::Abs, Op::Min, Op::Max, Op::Hypot, Op::Add, Op::Sub];
                OPS[rng.below(OPS.len())]
            }
        }
    }

    fn input_range(self, rng: &mut SplitMix64) -> Interval {
        match self {
            // Divisor edge cases: exact zero, straddling, touching from
            // either side, and an ordinary offset range.
            OpFamily::DivEdge => match rng.below(5) {
                0 => Interval::ZERO,
                1 => Interval::centered(0.0, 0.5 + rng.next_f64()),
                2 => Interval::new(0.0, 1.0 + rng.next_f64()),
                3 => Interval::new(-1.0 - rng.next_f64(), 0.0),
                _ => Interval::centered(2.0 * rng.next_f64() - 1.0, rng.next_f64()),
            },
            // Power bases spanning negatives (powf of a negative base
            // has an empty real image; powi parity matters).
            OpFamily::Pow => match rng.below(3) {
                0 => Interval::new(-2.0, -0.5 + rng.next_f64()),
                1 => Interval::centered(0.0, 1.0 + rng.next_f64()),
                _ => Interval::new(0.1, 1.0 + 2.0 * rng.next_f64()),
            },
            _ => Interval::centered(4.0 * rng.next_f64() - 2.0, 1.5 * rng.next_f64()),
        }
    }
}

/// One operation of a [`DagSpec`]: `op` applied to node indices `a`
/// (and `b` for binary operators) in the spec's node list (inputs
/// first, then prior operations in order).
#[derive(Debug, Clone)]
pub struct DagOp {
    /// The operator.
    pub op: Op,
    /// First operand's node index.
    pub a: usize,
    /// Second operand's node index (ignored for unary operators).
    pub b: usize,
}

/// A random expression DAG over the supported operators — the fuzzing
/// substrate of the audit. The last operation is the registered output.
#[derive(Debug, Clone)]
pub struct DagSpec {
    /// Input leaf ranges.
    pub inputs: Vec<Interval>,
    /// Operations, each referring to earlier nodes only.
    pub ops: Vec<DagOp>,
}

impl fmt::Display for DagSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, iv) in self.inputs.iter().enumerate() {
            writeln!(f, "n{i} = input {iv}")?;
        }
        for (k, op) in self.ops.iter().enumerate() {
            let id = self.inputs.len() + k;
            if op.op.arity() == 2 {
                writeln!(f, "n{id} = {} n{} n{}", op.op, op.a, op.b)?;
            } else {
                writeln!(f, "n{id} = {} n{}", op.op, op.a)?;
            }
        }
        Ok(())
    }
}

impl DagSpec {
    /// Draws a random DAG of the given family: 1–3 inputs, 1–12 ops,
    /// operands picked uniformly among earlier nodes.
    pub fn random(family: OpFamily, rng: &mut SplitMix64) -> DagSpec {
        let n_inputs = 1 + rng.below(3);
        let n_ops = 1 + rng.below(12);
        let inputs = (0..n_inputs).map(|_| family.input_range(rng)).collect();
        let mut ops = Vec::with_capacity(n_ops);
        for k in 0..n_ops {
            let avail = n_inputs + k;
            ops.push(DagOp {
                op: family.sample_op(rng),
                a: rng.below(avail),
                b: rng.below(avail),
            });
        }
        DagSpec { inputs, ops }
    }

    /// Records the DAG on a session context (inputs named `x0, x1, …`,
    /// the last operation registered as output `y`) — the closure body
    /// of [`DagSpec::analyse`], exposed so the cross-mode oracle can
    /// replay the same spec.
    ///
    /// # Errors
    ///
    /// Infallible in practice (branch-free); typed for `Ctx` closures.
    pub fn register(&self, ctx: &Ctx<'_>) -> Result<(), AnalysisError> {
        let mut vars: Vec<Ia1s<'_>> = self
            .inputs
            .iter()
            .enumerate()
            .map(|(i, iv)| ctx.input(format!("x{i}"), iv.inf(), iv.sup()))
            .collect();
        for dop in &self.ops {
            let a = vars[dop.a];
            let b = vars[dop.b];
            vars.push(apply_op(dop.op, a, b));
        }
        let y = *vars.last().expect("spec has at least one input");
        ctx.output(&y, "y");
        Ok(())
    }

    /// Records and analyses the DAG.
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError`]s from the analysis driver.
    pub fn analyse(&self) -> Result<Report, AnalysisError> {
        Analysis::new().run(|ctx| self.register(ctx))
    }

    /// Analyses the DAG and runs the containment oracles over it.
    ///
    /// # Errors
    ///
    /// As [`DagSpec::analyse`].
    pub fn audit(&self, cfg: &AuditConfig) -> Result<AuditOutcome, AnalysisError> {
        self.analyse().map(|r| audit_containment(&r, cfg))
    }

    /// The spec truncated to its first `len` operations (the new last
    /// operation becomes the output).
    pub fn prefix(&self, len: usize) -> DagSpec {
        DagSpec {
            inputs: self.inputs.clone(),
            ops: self.ops[..len].to_vec(),
        }
    }

    /// The spec with every node unreachable from the output removed and
    /// the remaining operand indices re-densified.
    pub fn pruned(&self) -> DagSpec {
        if self.ops.is_empty() {
            return self.clone();
        }
        let n_in = self.inputs.len();
        let total = n_in + self.ops.len();
        let mut keep = vec![false; total];
        let mut stack = vec![total - 1];
        while let Some(id) = stack.pop() {
            if keep[id] {
                continue;
            }
            keep[id] = true;
            if id >= n_in {
                let dop = &self.ops[id - n_in];
                stack.push(dop.a);
                if dop.op.arity() == 2 {
                    stack.push(dop.b);
                }
            }
        }
        let mut remap = vec![usize::MAX; total];
        let mut inputs = Vec::new();
        let mut next = 0;
        for id in 0..n_in {
            if keep[id] {
                remap[id] = next;
                next += 1;
                inputs.push(self.inputs[id]);
            }
        }
        let mut ops = Vec::new();
        for (k, dop) in self.ops.iter().enumerate() {
            let id = n_in + k;
            if keep[id] {
                remap[id] = next;
                next += 1;
                ops.push(DagOp {
                    op: dop.op,
                    a: remap[dop.a],
                    b: if dop.op.arity() == 2 {
                        remap[dop.b]
                    } else {
                        remap[dop.a]
                    },
                });
            }
        }
        DagSpec { inputs, ops }
    }
}

/// Applies one recorded operator to active values — the fuzzer's bridge
/// from [`Op`] back to the overloaded [`scorpio_adjoint::Var`] API.
fn apply_op<'t>(op: Op, a: Ia1s<'t>, b: Ia1s<'t>) -> Ia1s<'t> {
    match op {
        Op::Input | Op::Const => unreachable!("leaves are not applied"),
        Op::Add => a + b,
        Op::Sub => a - b,
        Op::Mul => a * b,
        Op::Div => a / b,
        Op::Neg => -a,
        Op::Sin => a.sin(),
        Op::Cos => a.cos(),
        Op::Tan => a.tan(),
        Op::Exp => a.exp(),
        Op::Ln => a.ln(),
        Op::Sqrt => a.sqrt(),
        Op::Sqr => a.sqr(),
        Op::Recip => a.recip(),
        Op::Powi(n) => a.powi(n),
        Op::Powf(p) => a.powf(p),
        Op::Abs => a.abs(),
        Op::Atan => a.atan(),
        Op::Tanh => a.tanh(),
        Op::Sinh => a.sinh(),
        Op::Cosh => a.cosh(),
        Op::Erf => a.erf(),
        Op::Cndf => a.cndf(),
        Op::Hypot => a.hypot(b),
        Op::Min => a.min(b),
        Op::Max => a.max(b),
    }
}

/// Shrinks a failing [`DagSpec`] to a minimal reproduction: finds the
/// shortest failing operation prefix, then prunes nodes unreachable
/// from the output. `fails` must return `true` for the original spec.
pub fn minimal_repro(spec: &DagSpec, fails: &dyn Fn(&DagSpec) -> bool) -> DagSpec {
    for len in 1..spec.ops.len() {
        let cand = spec.prefix(len);
        if fails(&cand) {
            let pruned = cand.pruned();
            return if fails(&pruned) { pruned } else { cand };
        }
    }
    let pruned = spec.pruned();
    if fails(&pruned) {
        pruned
    } else {
        spec.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(points: usize) -> AuditConfig {
        AuditConfig {
            points,
            seed: 7,
            max_violations: 8,
        }
    }

    #[test]
    fn maclaurin_is_sound() {
        let report = Analysis::new()
            .run(|ctx| {
                let x = ctx.input_centered("x", 0.49, 0.5);
                let mut acc = ctx.constant(0.0);
                for i in 0..5 {
                    acc = acc + x.powi(i);
                }
                ctx.output(&acc, "y");
                Ok(())
            })
            .unwrap();
        let out = audit_containment(&report, &quick_cfg(500));
        assert!(out.is_sound(), "violations: {:?}", out.violations);
        assert!(out.checks > 0);
        assert!(out.op_coverage[Op::Powi(0).class_index()] > 0);
    }

    #[test]
    fn empty_enclosures_produce_domain_misses_not_violations() {
        // x / [0,0]: EMPTY enclosure, concrete ±∞ or NaN — the audit
        // must classify the unreachable checks as domain misses.
        let report = Analysis::new()
            .run(|ctx| {
                let x = ctx.input("x", 1.0, 2.0);
                let zero = ctx.constant(0.0);
                let d = x / zero;
                ctx.output(&d, "y");
                Ok(())
            })
            .unwrap();
        let out = audit_containment(&report, &quick_cfg(100));
        assert!(out.is_sound(), "violations: {:?}", out.violations);
        assert!(out.domain_misses > 0);
    }

    #[test]
    fn audit_catches_a_seeded_enclosure_bug() {
        // Shrink an enclosure behind the analysis' back: rebuild the
        // graph is not accessible, so instead check the oracle's core
        // predicate directly — a concrete value outside a deliberately
        // wrong enclosure must be flagged.
        let report = Analysis::new()
            .run(|ctx| {
                let x = ctx.input("x", 0.0, 1.0);
                let y = x.sqr();
                ctx.output(&y, "y");
                Ok(())
            })
            .unwrap();
        // Sanity: the honest report is sound...
        assert!(audit_containment(&report, &quick_cfg(200)).is_sound());
        // ...and the containment predicate itself rejects escapees.
        let narrow = Interval::new(0.0, 0.25);
        assert!(!narrow.contains(0.9));
    }

    #[test]
    fn cross_mode_bit_identity_holds() {
        let out = audit_cross_mode(|ctx| {
            let x = ctx.input("x", 0.5, 1.5);
            let y = (x.sin() + x.sqr()).exp();
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();
        assert!(out.replayed, "second compiled run must replay");
        assert!(out.is_clean(), "mismatches: {:?}", out.mismatches);
    }

    #[test]
    fn dag_fuzzer_specs_are_sound_across_families() {
        let cfg = quick_cfg(40);
        for family in OpFamily::ALL {
            let mut rng = SplitMix64::new(0xF00D + family as u64);
            for _ in 0..25 {
                let spec = DagSpec::random(family, &mut rng);
                let out = spec.audit(&cfg).expect("analysis runs");
                assert!(
                    out.is_sound(),
                    "{} violations in\n{spec}\n{:?}",
                    family.name(),
                    out.violations
                );
            }
        }
    }

    #[test]
    fn minimal_repro_shrinks_to_shortest_failing_prefix() {
        // Predicate: "the spec contains a Div op" — monotone over
        // prefixes once the first Div appears.
        let mut rng = SplitMix64::new(99);
        let mut spec = DagSpec::random(OpFamily::Arithmetic, &mut rng);
        spec.ops.push(DagOp {
            op: Op::Div,
            a: 0,
            b: 0,
        });
        spec.ops.push(DagOp {
            op: Op::Sqr,
            a: spec.inputs.len() + spec.ops.len() - 1,
            b: 0,
        });
        let has_div =
            |s: &DagSpec| s.ops.iter().any(|o| matches!(o.op, Op::Div));
        let small = minimal_repro(&spec, &has_div);
        assert!(has_div(&small));
        assert_eq!(
            small.ops.iter().filter(|o| matches!(o.op, Op::Div)).count(),
            1
        );
        assert!(small.ops.len() <= spec.ops.len());
        // Pruning kept it self-consistent: every operand index valid.
        for (k, op) in small.ops.iter().enumerate() {
            assert!(op.a < small.inputs.len() + k);
            assert!(op.b < small.inputs.len() + k);
        }
    }

    #[test]
    fn pruned_drops_unreachable_nodes() {
        let spec = DagSpec {
            inputs: vec![Interval::new(0.0, 1.0), Interval::new(2.0, 3.0)],
            ops: vec![
                // n2 = x0 + x0 (dead: output only uses n3)
                DagOp {
                    op: Op::Add,
                    a: 0,
                    b: 0,
                },
                // n3 = sin x1  (output)
                DagOp {
                    op: Op::Sin,
                    a: 1,
                    b: 1,
                },
            ],
        };
        let p = spec.pruned();
        assert_eq!(p.inputs.len(), 1);
        assert_eq!(p.ops.len(), 1);
        assert!(matches!(p.ops[0].op, Op::Sin));
        assert_eq!(p.ops[0].a, 0);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let u = a.next_f64();
        assert!((0.0..1.0).contains(&u));
    }
}
