//! Algorithm 1, steps S4 and S5: graph simplification and
//! significance-variance partitioning.

use crate::graph::SigGraph;

/// Per-level significance statistics produced during partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStats {
    /// BFS level (0 = outputs).
    pub level: usize,
    /// Number of live nodes at the level.
    pub count: usize,
    /// Number of live nodes whose significance is non-finite (NaN or
    /// infinite — e.g. nodes with an EMPTY enclosure, whose Eq.-11
    /// width is NaN). These are excluded from `mean`/`variance`.
    pub non_finite: usize,
    /// Mean normalized significance over the finite entries; NaN when
    /// the level is [degenerate](LevelStats::is_degenerate).
    pub mean: f64,
    /// Population variance of the finite normalized significances; NaN
    /// when the level is [degenerate](LevelStats::is_degenerate).
    pub variance: f64,
}

impl LevelStats {
    /// `true` when every live node at this level has a non-finite
    /// significance, so the level's statistics carry no information.
    /// Such a level reports NaN mean/variance — a hard diagnostic —
    /// rather than `(0, 0)`, which would read as "perfectly uniform"
    /// and silently suppress the δ cut.
    pub fn is_degenerate(&self) -> bool {
        self.count > 0 && self.non_finite == self.count
    }
}

/// The result of the `findSgnfVariance` walk (Algorithm 1, step S5).
#[derive(Debug, Clone)]
pub struct Partition {
    /// The level whose significance variance first exceeded δ, if any.
    /// This is the level whose nodes become the *outputs of tasks*; the
    /// programmer restructures code so each node at this level is
    /// produced by one task (§3.2).
    pub cut_level: Option<usize>,
    /// The graph truncated to levels `≤ cut_level + 1` (or the full graph
    /// if no cut was found, meaning all levels are near-uniformly
    /// significant).
    pub graph: SigGraph,
    /// Statistics for every level that was examined.
    pub level_stats: Vec<LevelStats>,
}

impl Partition {
    /// Levels whose statistics are degenerate (every live node
    /// non-finite; see [`LevelStats::is_degenerate`]). A non-empty
    /// result means the δ cut skipped those levels for lack of any
    /// finite significance — inspect the analysis report's flagged
    /// empty enclosures before trusting the partition.
    pub fn degenerate_levels(&self) -> Vec<usize> {
        self.level_stats
            .iter()
            .filter(|s| s.is_degenerate())
            .map(|s| s.level)
            .collect()
    }
}

impl SigGraph {
    /// Algorithm 1, step S4 (`simplify`): collapses **anti-dependence
    /// chains** — accumulation patterns like `res = res + term[i]` whose
    /// interior partial-sum nodes "aggregate results and are not really
    /// part of the computation".
    ///
    /// A node is chain-interior when it is an additive op (`+`/`-`) whose
    /// single consumer is also additive. Interior nodes are removed and
    /// their non-chain operands re-attached to the chain's final node, so
    /// the Maclaurin DynDFG of Fig. 3a becomes exactly Fig. 3b: every
    /// `term_i` feeding the final `result` directly.
    pub fn simplified(&self) -> SigGraph {
        let _span = scorpio_obs::span("simplify");
        let mut g = self.clone();
        let succ = g.successors();

        // Chain-interior: additive, exactly one live consumer, consumer
        // additive, and not a registered output (outputs must survive).
        let interior: Vec<bool> = g
            .nodes
            .iter()
            .map(|n| {
                !n.removed
                    && n.op.is_additive()
                    && !n.is_output
                    && succ[n.id].len() == 1
                    && g.nodes[succ[n.id][0]].op.is_additive()
            })
            .collect();

        // Rewire: every kept node expands interior predecessors into
        // their own predecessors, transitively. The walk is guarded: a
        // well-formed DynDFG is a DAG, so one expansion can neither
        // revisit an interior node nor reach the expanding node itself.
        // A malformed (cyclic) graph trips one of the two asserts and
        // fails loudly instead of silently wiring a node to itself.
        let mut visited = vec![false; g.nodes.len()];
        for id in 0..g.nodes.len() {
            if g.nodes[id].removed || interior[id] {
                continue;
            }
            let mut new_preds = Vec::new();
            let mut touched: Vec<usize> = Vec::new();
            let mut stack: Vec<usize> = g.nodes[id].preds.clone();
            while let Some(p) = stack.pop() {
                assert!(
                    p != id,
                    "SigGraph::simplified: cycle detected — node {id} is its own \
                     transitive predecessor"
                );
                if interior[p] {
                    assert!(
                        !visited[p],
                        "SigGraph::simplified: cycle detected through node {p} \
                         while rewiring node {id}"
                    );
                    visited[p] = true;
                    touched.push(p);
                    stack.extend(g.nodes[p].preds.iter().copied());
                } else {
                    new_preds.push(p);
                }
            }
            for t in touched {
                visited[t] = false;
            }
            new_preds.sort_unstable();
            new_preds.dedup();
            g.nodes[id].preds = new_preds;
        }
        for (id, &is_interior) in interior.iter().enumerate() {
            if is_interior {
                g.nodes[id].removed = true;
                g.nodes[id].preds.clear();
            }
        }
        g.recompute_levels();
        g
    }

    /// Algorithm 1, step S5 (`findSgnfVariance`): walks levels breadth
    /// first from the outputs (L = 1, 2, …) and cuts at the first level
    /// whose normalized significance variance exceeds `delta`. Nodes
    /// above level `cut + 1` are truncated from the returned graph.
    ///
    /// Call on the [`SigGraph::simplified`] graph for faithful Algorithm-1
    /// behaviour; calling it on the raw graph is permitted (the ablation
    /// benches do) but aggregation nodes may then mask the variance.
    pub fn partition(&self, delta: f64) -> Partition {
        assert!(delta >= 0.0, "partition: delta must be non-negative");
        let _span = scorpio_obs::span("partition");
        let mut level_stats = Vec::new();
        let mut cut_level = None;
        let height = self.height();
        for level in 1..height {
            let nodes = self.level_nodes(level);
            let count = nodes.len();
            let sig: Vec<f64> = nodes
                .iter()
                .map(|n| n.significance)
                .filter(|s| s.is_finite())
                .collect();
            let non_finite = count - sig.len();
            // An all-non-finite live level carries no usable statistics:
            // report NaN (a hard diagnostic, surfaced via
            // `LevelStats::is_degenerate`) instead of the pre-fix (0, 0),
            // which masqueraded as a perfectly uniform level.
            let (mean, variance) = if count > 0 && non_finite == count {
                (f64::NAN, f64::NAN)
            } else {
                mean_variance(&sig)
            };
            scorpio_obs::observe("partition.level_variance", variance);
            if count > 0 && non_finite == count {
                scorpio_obs::count("partition.degenerate_levels", 1);
            }
            level_stats.push(LevelStats {
                level,
                count,
                non_finite,
                mean,
                variance,
            });
            if variance > delta {
                cut_level = Some(level);
                break;
            }
        }

        let mut graph = self.clone();
        if let Some(cut) = cut_level {
            for node in &mut graph.nodes {
                if node.level.is_none_or(|l| l > cut + 1) && !node.removed {
                    node.removed = true;
                }
            }
            // Drop dangling predecessor references of the survivors.
            let removed: Vec<bool> = graph.nodes.iter().map(|n| n.removed).collect();
            for node in &mut graph.nodes {
                node.preds.retain(|&p| !removed[p]);
            }
            graph.recompute_levels();
        }
        Partition {
            cut_level,
            graph,
            level_stats,
        }
    }
}

/// Population mean and variance; `(0, 0)` for empty input.
fn mean_variance(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let variance = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, variance)
}

#[cfg(test)]
mod tests {
    use scorpio_adjoint::Op;
    use scorpio_interval::Interval;

    use super::*;
    use crate::graph::SigNode;

    fn mk(id: usize, op: Op, preds: Vec<usize>, sig: f64) -> SigNode {
        SigNode {
            id,
            op,
            preds,
            value: Interval::ZERO,
            derivative: Interval::ZERO,
            significance: sig,
            level: None,
            name: None,
            is_output: false,
            removed: false,
        }
    }

    /// Builds the Maclaurin-like accumulation:
    /// c, t0..t3 inputs; a1 = c + t0; a2 = a1 + t1; a3 = a2 + t2;
    /// a4 = a3 + t3 (output).
    fn accumulation_graph() -> SigGraph {
        let mut nodes = vec![
            mk(0, Op::Const, vec![], 0.0),
            mk(1, Op::Powi(0), vec![], 0.0),
            mk(2, Op::Powi(1), vec![], 0.26),
            mk(3, Op::Powi(2), vec![], 0.25),
            mk(4, Op::Powi(3), vec![], 0.24),
            mk(5, Op::Add, vec![0, 1], 0.0),
            mk(6, Op::Add, vec![5, 2], 0.26),
            mk(7, Op::Add, vec![6, 3], 0.51),
            mk(8, Op::Add, vec![7, 4], 1.0),
        ];
        nodes[8].is_output = true;
        SigGraph::new(nodes, vec![8])
    }

    #[test]
    fn simplify_collapses_accumulation_chain() {
        let g = accumulation_graph();
        // Raw graph: terms at staggered levels because of the chain.
        assert!(g.height() > 3);
        let s = g.simplified();
        // Interior adds removed...
        assert!(s.nodes()[5].removed);
        assert!(s.nodes()[6].removed);
        assert!(s.nodes()[7].removed);
        // ...final add survives with all terms as direct preds (Fig. 3b).
        let final_preds = &s.nodes()[8].preds;
        assert_eq!(final_preds.as_slice(), &[0, 1, 2, 3, 4]);
        // All terms now sit at level 1.
        assert_eq!(s.height(), 2);
        assert_eq!(s.level_nodes(1).len(), 5);
    }

    #[test]
    fn simplify_keeps_non_additive_structure() {
        // mul chains must not collapse.
        let mut nodes = vec![
            mk(0, Op::Input, vec![], 0.1),
            mk(1, Op::Mul, vec![0, 0], 0.2),
            mk(2, Op::Mul, vec![1, 0], 0.3),
        ];
        nodes[2].is_output = true;
        let g = SigGraph::new(nodes, vec![2]);
        let s = g.simplified();
        assert!(!s.nodes()[1].removed);
        assert_eq!(s.nodes()[2].preds, vec![0, 1]);
    }

    #[test]
    fn simplify_respects_fan_out() {
        // An additive node consumed twice is not chain-interior.
        let mut nodes = vec![
            mk(0, Op::Input, vec![], 0.1),
            mk(1, Op::Input, vec![], 0.1),
            mk(2, Op::Add, vec![0, 1], 0.2),
            mk(3, Op::Add, vec![2, 0], 0.3),
            mk(4, Op::Mul, vec![2, 3], 0.4),
        ];
        nodes[4].is_output = true;
        let g = SigGraph::new(nodes, vec![4]);
        let s = g.simplified();
        // Node 2 feeds both 3 and 4 → kept.
        assert!(!s.nodes()[2].removed);
        // Node 3 feeds only the mul (not additive) → kept too.
        assert!(!s.nodes()[3].removed);
    }

    #[test]
    fn partition_cuts_at_high_variance_level() {
        let g = accumulation_graph().simplified();
        let p = g.partition(1e-3);
        // Level 1 has significances {0, 0, 0.26, 0.25, 0.24}: variance
        // well above 1e-3 → cut at L = 1.
        assert_eq!(p.cut_level, Some(1));
        assert_eq!(p.level_stats.len(), 1);
        assert!(p.level_stats[0].variance > 1e-3);
        // Graph truncated to levels ≤ 2 (here: everything, height 2).
        assert!(p.graph.height() <= 2);
    }

    #[test]
    fn partition_without_variance_returns_whole_graph() {
        let g = accumulation_graph().simplified();
        // δ larger than any variance → no cut.
        let p = g.partition(10.0);
        assert_eq!(p.cut_level, None);
        assert_eq!(p.graph.height(), g.height());
    }

    #[test]
    fn partition_truncates_above_cut() {
        // Two levels of structure: output <- mul <- {a, b}; a <- sin(in).
        let mut nodes = vec![
            mk(0, Op::Input, vec![], 0.5),
            mk(1, Op::Sin, vec![0], 0.9),
            mk(2, Op::Const, vec![], 0.0),
            mk(3, Op::Mul, vec![1, 2], 0.9),
            mk(4, Op::Neg, vec![3], 1.0),
        ];
        nodes[4].is_output = true;
        let g = SigGraph::new(nodes, vec![4]);
        // level1 = {3}: variance 0. level2 = {1, 2}: sig {0.9, 0} → var.
        let p = g.partition(1e-3);
        assert_eq!(p.cut_level, Some(2));
        // Input at level 3 survives (cut + 1); nothing above it exists.
        assert!(p.graph.live_nodes().any(|n| n.id == 0));
    }

    /// Regression: a cyclic (malformed) graph must fail loudly in the
    /// rewire walk. Pre-fix, this graph silently rewired the output to
    /// be its own predecessor.
    #[test]
    #[should_panic(expected = "cycle detected")]
    fn simplify_panics_on_cyclic_graph() {
        // Output Add node 1 consumes node 0; node 0 (additive, single
        // consumer) consumes node 1 back — a two-node cycle.
        let mut nodes = vec![
            mk(0, Op::Add, vec![1], 0.5),
            mk(1, Op::Add, vec![0], 1.0),
        ];
        nodes[1].is_output = true;
        let g = SigGraph::new(nodes, vec![1]);
        let _ = g.simplified();
    }

    /// Regression: a level whose significances are all non-finite used
    /// to report `(mean, variance) = (0, 0)` — "perfectly uniform" —
    /// because the finite filter emptied the slice. It must now be a
    /// hard diagnostic: NaN statistics, full live count, and the level
    /// listed as degenerate.
    #[test]
    fn partition_flags_all_non_finite_level_as_degenerate() {
        let mut nodes = vec![
            mk(0, Op::Input, vec![], f64::NAN),
            mk(1, Op::Input, vec![], f64::NAN),
            mk(2, Op::Add, vec![0, 1], 1.0),
        ];
        nodes[2].is_output = true;
        let g = SigGraph::new(nodes, vec![2]);
        let p = g.partition(1e-3);
        assert_eq!(p.cut_level, None, "NaN variance must never fire the cut");
        let stats = &p.level_stats[0];
        assert_eq!(stats.level, 1);
        assert_eq!(stats.count, 2, "count reports live nodes, not finite ones");
        assert_eq!(stats.non_finite, 2);
        assert!(stats.mean.is_nan() && stats.variance.is_nan());
        assert!(stats.is_degenerate());
        assert_eq!(p.degenerate_levels(), vec![1]);
    }

    /// A partially non-finite level keeps finite statistics but counts
    /// the non-finite members.
    #[test]
    fn partition_counts_non_finite_members() {
        let mut nodes = vec![
            mk(0, Op::Input, vec![], 0.2),
            mk(1, Op::Input, vec![], f64::NAN),
            mk(2, Op::Input, vec![], 0.4),
            mk(3, Op::Add, vec![0, 1, 2], 1.0),
        ];
        nodes[3].is_output = true;
        let g = SigGraph::new(nodes, vec![3]);
        let p = g.partition(10.0);
        let stats = &p.level_stats[0];
        assert_eq!((stats.count, stats.non_finite), (3, 1));
        assert!((stats.mean - 0.3).abs() < 1e-12);
        assert!(!stats.is_degenerate());
        assert!(p.degenerate_levels().is_empty());
    }

    #[test]
    fn mean_variance_basics() {
        let (m, v) = mean_variance(&[]);
        assert_eq!((m, v), (0.0, 0.0));
        let (m, v) = mean_variance(&[2.0, 2.0]);
        assert_eq!((m, v), (2.0, 0.0));
        let (m, v) = mean_variance(&[1.0, 3.0]);
        assert_eq!((m, v), (2.0, 1.0));
    }
}
