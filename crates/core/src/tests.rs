//! End-to-end tests of the analysis pipeline, anchored to the paper's
//! worked examples.

use proptest::prelude::*;
use scorpio_interval::Interval;

use crate::{Analysis, AnalysisError, VarKind};

/// Runs the paper's Maclaurin example (Listings 5–6) for `n` terms with
/// the input box `x0 ± 0.5`.
fn maclaurin_report(x0: f64, n: i32) -> crate::Report {
    Analysis::new()
        .run(|ctx| {
            let x = ctx.input_centered("x", x0, 0.5);
            let mut result = ctx.constant(0.0);
            for i in 0..n {
                let term = x.powi(i);
                ctx.intermediate(&term, format!("term{i}"));
                result = result + term;
            }
            ctx.output(&result, "result");
            Ok(())
        })
        .unwrap()
}

#[test]
fn maclaurin_fig3_shape() {
    // Fig. 3 of the paper: term0 has significance exactly 0 (pow(x,0)=1
    // is constant); term1 is the most significant; each later term is
    // less significant than the one before; the output normalizes to 1.
    let report = maclaurin_report(0.49, 5);

    // "Exactly zero" up to the ULP-level noise of the outward-rounded
    // adjoint sweep (the true derivative is exactly 1, its enclosure is
    // [1 ∓ ulp]).
    assert!(report.significance_of("term0").unwrap() < 1e-12);
    let s: Vec<f64> = (1..5)
        .map(|i| report.significance_of(&format!("term{i}")).unwrap())
        .collect();
    for w in s.windows(2) {
        assert!(w[0] > w[1], "terms must decrease: {s:?}");
    }
    assert!((report.significance_of("result").unwrap() - 1.0).abs() < 1e-12);

    // Terms' significances sum to (nearly) the whole output significance,
    // as in Fig. 3a where the final result is the terms' accumulation.
    let sum: f64 = s.iter().sum();
    assert!((sum - 1.0).abs() < 0.01, "terms sum to {sum}");
}

#[test]
fn maclaurin_fig3_values_close_to_paper() {
    // Paper reports ≈ (0.259, 0.254, 0.245, 0.241) for terms 1–4. The
    // exact evaluation point is not given; x0 = 0.49 reproduces the
    // pattern to within ~2 % absolute.
    let report = maclaurin_report(0.49, 5);
    let paper = [0.259, 0.254, 0.245, 0.241];
    for (i, want) in paper.iter().enumerate() {
        let got = report
            .significance_of(&format!("term{}", i + 1))
            .unwrap();
        assert!(
            (got - want).abs() < 0.02,
            "term{}: got {got:.3}, paper {want}",
            i + 1
        );
    }
}

#[test]
fn maclaurin_algorithm1_partition() {
    // Steps S4+S5: after simplification the terms all sit at level 1 and
    // their significance variance (0 vs ~0.25 each) exceeds δ → the cut
    // lands at L = 1, i.e. tasks should each compute one term (§3.2).
    let report = maclaurin_report(0.49, 5);
    let partition = report.partition();
    assert_eq!(partition.cut_level, Some(1));

    let level1 = partition.graph.level_nodes(1);
    // 5 term nodes + the constant seed of the accumulation.
    assert!(level1.len() >= 5, "level 1 has {}", level1.len());
}

#[test]
fn simplify_produces_fig3b() {
    let report = maclaurin_report(0.49, 5);
    let simplified = report.graph().simplified();
    // The surviving output node gains all 5 terms as direct preds.
    let out = simplified.outputs()[0];
    let out_node = &simplified.nodes()[out];
    let term_preds = out_node
        .preds
        .iter()
        .filter(|&&p| {
            matches!(
                simplified.nodes()[p].op,
                scorpio_adjoint::Op::Powi(_)
            )
        })
        .count();
    assert_eq!(term_preds, 5);
}

#[test]
fn listing1_example_full_pipeline() {
    // f(x) = cos(exp(sin(x) + x) − x) over [0.2, 0.8].
    let report = Analysis::new()
        .run(|ctx| {
            let x = ctx.input("x", 0.2, 0.8);
            let y = ((x.sin() + x).exp() - x).cos();
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();

    // Tape has the 6 nodes of Listing 2.
    assert_eq!(report.tape_len(), 6);

    let x = report.var("x").unwrap();
    assert_eq!(x.kind, VarKind::Input);
    assert_eq!(x.enclosure, Interval::new(0.2, 0.8));
    // The interval derivative must enclose the pointwise gradient at the
    // midpoint.
    let p = 0.5f64;
    let u3 = (p.sin() + p).exp();
    let grad = -(u3 - p).sin() * (u3 * (p.cos() + 1.0) - 1.0);
    assert!(x.derivative.contains(grad));
    assert!(x.significance > 0.0);
}

#[test]
fn insignificant_variable_scores_zero() {
    // z is computed but never used for the output.
    let report = Analysis::new()
        .run(|ctx| {
            let x = ctx.input("x", 0.0, 1.0);
            let z = x.exp();
            ctx.intermediate(&z, "z");
            let y = x * 2.0;
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();
    assert_eq!(report.significance_of("z"), Some(0.0));
    assert!(report.significance_of("x").unwrap() > 0.0);
}

#[test]
fn empty_enclosure_nodes_are_flagged_with_nan_significance() {
    // x / [0,0] has no real result for any point of the box, so its
    // enclosure is EMPTY and Eq. 11 is undefined there. Regression:
    // empty-valued nodes used to flow through ranking as ordinary rows
    // with nothing calling them out; they must carry an explicit NaN
    // significance and be listed by `empty_enclosures()`.
    let report = Analysis::new()
        .run(|ctx| {
            let x = ctx.input("x", 1.0, 2.0);
            let zero = ctx.constant(0.0);
            let dead = x / zero;
            ctx.intermediate(&dead, "dead");
            let y = x.sqr();
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();
    let dead = report.var("dead").unwrap();
    assert!(dead.enclosure.is_empty());
    assert!(
        dead.significance_raw.is_nan() && dead.significance.is_nan(),
        "empty node must report NaN significance, got {}",
        dead.significance
    );
    assert!(report.empty_enclosures().contains(&dead.node.index()));
    // The healthy output is unaffected by the dead empty node.
    assert_eq!(report.significance_of("y"), Some(1.0));
    assert!(report.to_string().contains("EMPTY enclosure"));
}

#[test]
fn constant_output_has_zero_total_significance() {
    let report = Analysis::new()
        .run(|ctx| {
            let x = ctx.input("x", 0.0, 1.0);
            let y = x.powi(0); // ≡ 1
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();
    assert!(report.output_significance_raw() < 1e-12);
    // The raw Eq. 11 value is the meaningful one here; the normalized
    // value divides two ULP-noise quantities.
    assert!(report.var("y").unwrap().significance_raw < 1e-12);
}

#[test]
fn vector_outputs_sum_significances() {
    // §2.3: registering all outputs of F: ℝ → ℝ² sums per-output
    // significances in a single run.
    let both = Analysis::new()
        .run(|ctx| {
            let x = ctx.input("x", 1.0, 2.0);
            let y0 = x.sqr();
            let y1 = x * 3.0;
            ctx.output(&y0, "y0");
            ctx.output(&y1, "y1");
            Ok(())
        })
        .unwrap();
    let x_raw_both = both.var("x").unwrap().significance_raw;

    let single = |which: usize| {
        Analysis::new()
            .run(move |ctx| {
                let x = ctx.input("x", 1.0, 2.0);
                let y0 = x.sqr();
                let y1 = x * 3.0;
                if which == 0 {
                    ctx.output(&y0, "y");
                } else {
                    ctx.output(&y1, "y");
                }
                Ok(())
            })
            .unwrap()
            .var("x")
            .unwrap()
            .significance_raw
    };
    let (s0, s1) = (single(0), single(1));
    // Summed adjoint seeds give S within the interval-arithmetic sum of
    // the individual analyses (sub-distributivity can make it smaller).
    assert!(x_raw_both <= s0 + s1 + 1e-9);
    assert!(x_raw_both >= s0.max(s1) - 1e-9);
}

#[test]
fn no_outputs_is_an_error() {
    let err = Analysis::new()
        .run(|ctx| {
            let _x = ctx.input("x", 0.0, 1.0);
            Ok(())
        })
        .unwrap_err();
    assert_eq!(err, AnalysisError::NoOutputs);
}

#[test]
fn duplicate_names_are_an_error() {
    let err = Analysis::new()
        .run(|ctx| {
            let x = ctx.input("x", 0.0, 1.0);
            let y = x.sqr();
            ctx.output(&y, "x");
            Ok(())
        })
        .unwrap_err();
    assert_eq!(err, AnalysisError::DuplicateName("x".into()));
}

#[test]
fn ambiguous_branch_reports_condition() {
    let err = Analysis::new()
        .run(|ctx| {
            let x = ctx.input("x", -1.0, 1.0);
            let t = ctx.branch(x.value().certainly_lt(Interval::ZERO), "x < 0")?;
            let y = if t { -x } else { x };
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap_err();
    assert_eq!(
        err,
        AnalysisError::AmbiguousBranch {
            condition: "x < 0".into()
        }
    );
}

#[test]
fn certain_branch_is_transparent() {
    let report = Analysis::new()
        .run(|ctx| {
            let x = ctx.input("x", 1.0, 2.0);
            // 1 ≤ x, so x > 0 certainly.
            let pos = ctx.branch(x.value().certainly_gt(Interval::ZERO), "x > 0")?;
            assert!(pos);
            let y = if pos { x.ln() } else { x };
            ctx.output(&y, "y");
            Ok(())
        })
        .unwrap();
    assert!(report.significance_of("y").is_some());
}

#[test]
fn report_display_lists_vars() {
    let report = maclaurin_report(0.49, 3);
    let text = report.to_string();
    assert!(text.contains("term1"));
    assert!(text.contains("result"));
    assert!(text.contains("input"));
}

#[test]
fn graph_dot_includes_names() {
    let report = maclaurin_report(0.49, 3);
    let dot = report.graph().to_dot("maclaurin");
    assert!(dot.contains("term1"));
    assert!(dot.contains("digraph maclaurin"));
}

#[test]
fn delta_controls_partition_sensitivity() {
    let report = maclaurin_report(0.49, 5);
    // With a huge δ nothing varies "enough": no cut.
    let p = report.graph().simplified().partition(100.0);
    assert_eq!(p.cut_level, None);
    // With δ = 0 any nonzero variance cuts at the first level that has one.
    let p = report.graph().simplified().partition(0.0);
    assert_eq!(p.cut_level, Some(1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Significance is monotone under derivative damping: scaling the
    /// output by a constant c scales raw significances of inputs by |c|.
    #[test]
    fn significance_scales_linearly(c in 0.1f64..10.0) {
        let base = Analysis::new().run(|ctx| {
            let x = ctx.input("x", 0.5, 1.5);
            let y = x.exp();
            ctx.output(&y, "y");
            Ok(())
        }).unwrap();
        let scaled = Analysis::new().run(move |ctx| {
            let x = ctx.input("x", 0.5, 1.5);
            let y = x.exp() * c;
            ctx.output(&y, "y");
            Ok(())
        }).unwrap();
        let b = base.var("x").unwrap().significance_raw;
        let s = scaled.var("x").unwrap().significance_raw;
        prop_assert!((s - c * b).abs() < 1e-9 * (1.0 + s), "b={b} s={s} c={c}");
    }

    /// Wider input ranges never decrease input significance.
    #[test]
    fn wider_inputs_are_at_least_as_significant(w1 in 0.1f64..1.0, extra in 0.0f64..1.0) {
        let run = |w: f64| {
            Analysis::new().run(move |ctx| {
                let x = ctx.input("x", 1.0, 1.0 + w);
                let y = x.sqr() + x.sin();
                ctx.output(&y, "y");
                Ok(())
            }).unwrap().var("x").unwrap().significance_raw
        };
        let narrow = run(w1);
        let wide = run(w1 + extra);
        prop_assert!(wide + 1e-12 >= narrow, "narrow {narrow} wide {wide}");
    }

    /// The registered enclosure always contains the pointwise value at
    /// any sample of the input box, and the significance is finite and
    /// non-negative for these well-behaved functions.
    #[test]
    fn enclosure_and_significance_sanity(lo in -1.0f64..0.0, w in 0.01f64..1.0, t in 0.0f64..=1.0) {
        let report = Analysis::new().run(move |ctx| {
            let x = ctx.input("x", lo, lo + w);
            let z = (x.sqr() + 1.0).sqrt();
            ctx.intermediate(&z, "z");
            let y = z.tanh();
            ctx.output(&y, "y");
            Ok(())
        }).unwrap();
        let sample = lo + t * w;
        let z_true = (sample * sample + 1.0).sqrt();
        let z = report.var("z").unwrap();
        prop_assert!(z.enclosure.contains(z_true));
        prop_assert!(z.significance >= 0.0);
        prop_assert!(z.significance.is_finite());
    }
}
