//! Record-once / replay-many driving of batch analyses.
//!
//! The paper's workflow re-records the DynDFG from scratch for every
//! analysed item, yet for data-parallel batches (per-pixel kernels,
//! per-option pricing, per-block DCT, sweep points) the trace structure
//! is identical across items — only input values differ. The
//! [`ReplayOrRecord`] driver exploits that: the first item records and
//! [compiles](CompiledTape::compile) its trace; every following item
//! *replays* the compiled trace with fresh input intervals — a tight
//! forward loop plus the reverse sweep, with no `RefCell` traffic, no
//! node pushes and no allocation — and still produces bit-identical
//! reports (the replay interpreter recomputes values and partials with
//! exactly the recording formulas).
//!
//! Recording is value-dependent: a closure that resolves a branch can
//! trace differently for different inputs, which a replayer cannot
//! detect because it never runs the closure again. The driver is
//! therefore guarded:
//!
//! * a trace that executed any [`Ctx::branch`] is never replayed — every
//!   subsequent item re-records (and counts as a fallback);
//! * a replay must bind exactly the compiled input arity; a different
//!   input count forces re-recording;
//! * callers whose trace shape depends on non-input data (e.g. a series
//!   length) signal it via [`ReplayOrRecord::run_keyed_in`] — a changed
//!   key invalidates the compiled trace.
//!
//! [`ReplayOrRecord::stats`] exposes how often each path ran, so a
//! workload whose shape churns (high fallback rate) is visible instead
//! of silently slow.

use std::sync::Arc;

use scorpio_adjoint::{CompiledTape, LaneReplayBuffers};
use scorpio_interval::Interval;

use crate::error::AnalysisError;
use crate::report::{
    build_report_replayed, build_report_replayed_lanes, build_report_with, build_vars_replayed,
    build_vars_replayed_lanes, build_vars_with, Report, VarSignificances,
};
use crate::session::{Analysis, AnalysisArena, Ctx, Registrations};

/// Counters for the replay/record decision of a [`ReplayOrRecord`]
/// driver: how many runs replayed the compiled trace, how many recorded
/// from scratch, and how many of those recordings were *fallbacks*
/// (a compiled trace existed but could not be trusted — branchy trace,
/// changed shape key, or changed input arity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Runs served by replaying the compiled trace (items served by a
    /// lane block count individually here too).
    pub replays: u64,
    /// Runs that recorded the closure from scratch (includes the first).
    pub records: u64,
    /// Recordings forced while a compiled trace existed — the
    /// shape-churn signal.
    pub fallbacks: u64,
    /// Full lane blocks replayed with one walk of the op stream (the
    /// multi-lane drivers; each block serves `LANES` items).
    pub lane_blocks: u64,
    /// Items a lane driver served via the *scalar* path instead of a
    /// lane block: partial trailing blocks, blocks with divergent
    /// per-item input arity, and warm-up blocks replayed before a
    /// trustworthy compiled trace existed.
    pub lane_remainder: u64,
}

impl ReplayStats {
    /// Fraction of runs that fell back to re-recording despite a
    /// compiled trace being available (0.0 when nothing has run).
    pub fn fallback_rate(&self) -> f64 {
        let total = self.replays + self.records;
        if total == 0 {
            0.0
        } else {
            self.fallbacks as f64 / total as f64
        }
    }

    /// Folds `other`'s counters into `self` field by field — the
    /// aggregation used when per-worker driver stats are rolled up into
    /// engine- or server-wide totals (see [`crate::ParallelAnalysis`]
    /// and the serve layer).
    pub fn merge(&mut self, other: ReplayStats) {
        self.replays += other.replays;
        self.records += other.records;
        self.fallbacks += other.fallbacks;
        self.lane_blocks += other.lane_blocks;
        self.lane_remainder += other.lane_remainder;
    }

    /// The per-field difference `self − before` — the counter delta
    /// accumulated since the `before` snapshot was taken.
    pub fn since(&self, before: ReplayStats) -> ReplayStats {
        ReplayStats {
            replays: self.replays - before.replays,
            records: self.records - before.records,
            fallbacks: self.fallbacks - before.fallbacks,
            lane_blocks: self.lane_blocks - before.lane_blocks,
            lane_remainder: self.lane_remainder - before.lane_remainder,
        }
    }
}

/// A compiled trace plus the registration snapshot it was recorded with.
struct CompiledAnalysis {
    tape: CompiledTape<Interval>,
    regs: Registrations,
    /// The recording resolved a branch: the trace is value-dependent
    /// and must never be replayed.
    branched: bool,
    /// The caller-supplied shape key the trace was recorded under (see
    /// [`ReplayOrRecord::run_keyed_in`]); a run with a different key
    /// must re-record.
    key: Option<u64>,
}

/// A compiled analysis trace extracted from (or injectable into) a
/// [`ReplayOrRecord`] driver: the SoA replay bytecode plus the
/// registration snapshot it was recorded with, behind an [`Arc`] so
/// drivers on different workers — or a cross-request
/// [`TapeCache`](crate::TapeCache) — can share one recording.
///
/// Cloning is an `Arc` bump; the trace itself is immutable. Only
/// replay-safe traces are extractable ([`ReplayOrRecord::share`]
/// returns `None` for branchy recordings), so every `CompiledTrace` in
/// circulation can be trusted by [`ReplayOrRecord::install`].
#[derive(Clone)]
pub struct CompiledTrace {
    inner: Arc<CompiledAnalysis>,
}

impl CompiledTrace {
    /// Number of input bindings a replay of this trace requires.
    pub fn input_count(&self) -> usize {
        self.inner.tape.input_count()
    }

    /// Number of compiled DynDFG nodes.
    pub fn node_count(&self) -> usize {
        self.inner.tape.len()
    }

    /// The shape key the trace was recorded under (`None` for un-keyed
    /// recordings).
    pub fn shape_key(&self) -> Option<u64> {
        self.inner.key
    }

    /// `true` when `other` shares this trace's allocation.
    pub fn ptr_eq(&self, other: &CompiledTrace) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl std::fmt::Debug for CompiledTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledTrace")
            .field("nodes", &self.inner.tape.len())
            .field("inputs", &self.inner.tape.input_count())
            .field("key", &self.inner.key)
            .finish()
    }
}

/// Record-once / replay-many driver for one analysis closure family
/// (the module docs above describe the replay guards in detail).
///
/// Per-item input intervals are passed positionally and override the
/// closure's declared ranges on the recording run too, so record and
/// replay see exactly the same input values.
///
/// ```
/// use scorpio_core::{Analysis, AnalysisArena, ReplayOrRecord};
/// use scorpio_interval::Interval;
///
/// let mut driver = ReplayOrRecord::new(Analysis::new());
/// let mut arena = AnalysisArena::new();
/// for radius in [0.1, 0.2, 0.3] {
///     let inputs = [Interval::centered(1.0, radius)];
///     let report = driver
///         .run_in(&mut arena, &inputs, |ctx| {
///             let x = ctx.input("x", 0.9, 1.1); // overridden per item
///             let y = x.sqr() + x;
///             ctx.output(&y, "y");
///             Ok(())
///         })
///         .unwrap();
///     assert_eq!(report.significance_of("y"), Some(1.0));
/// }
/// // First item recorded, the other two replayed the compiled trace.
/// assert_eq!(driver.stats().records, 1);
/// assert_eq!(driver.stats().replays, 2);
/// ```
pub struct ReplayOrRecord {
    analysis: Analysis,
    compiled: Option<Arc<CompiledAnalysis>>,
    stats: ReplayStats,
}

impl std::fmt::Debug for ReplayOrRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayOrRecord")
            .field("compiled", &self.compiled.is_some())
            .field("stats", &self.stats)
            .finish()
    }
}

impl ReplayOrRecord {
    /// A driver running `analysis`-configured runs with no compiled
    /// trace yet (the first run records).
    pub fn new(analysis: Analysis) -> ReplayOrRecord {
        ReplayOrRecord {
            analysis,
            compiled: None,
            stats: ReplayStats::default(),
        }
    }

    /// The underlying analysis configuration.
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Replay/record/fallback counters so far.
    pub fn stats(&self) -> ReplayStats {
        self.stats
    }

    /// `true` if a replayable compiled trace is currently held.
    pub fn has_compiled(&self) -> bool {
        self.compiled.as_ref().is_some_and(|c| !c.branched)
    }

    /// Extracts the currently held compiled trace as a shareable
    /// [`CompiledTrace`] (an `Arc` bump — the driver keeps replaying
    /// its copy). Returns `None` when no trace is held or the held
    /// recording resolved a branch and must never be replayed; every
    /// extracted trace is therefore safe to [`install`] elsewhere.
    ///
    /// [`install`]: ReplayOrRecord::install
    pub fn share(&self) -> Option<CompiledTrace> {
        match &self.compiled {
            Some(c) if !c.branched => Some(CompiledTrace { inner: Arc::clone(c) }),
            _ => None,
        }
    }

    /// Injects a trace previously extracted with
    /// [`share`](ReplayOrRecord::share) — typically from another
    /// worker's driver via a [`TapeCache`](crate::TapeCache) — so this
    /// driver replays it without ever recording. The trace carries its
    /// own shape key: subsequent runs replay only when their key and
    /// input arity match it (the usual guards), so installing a trace
    /// for the wrong shape degrades to a re-record, never to a wrong
    /// result. Installing the trace the driver already holds is a
    /// no-op.
    pub fn install(&mut self, trace: &CompiledTrace) {
        if self
            .compiled
            .as_ref()
            .is_some_and(|c| Arc::ptr_eq(c, &trace.inner))
        {
            return;
        }
        self.compiled = Some(Arc::clone(&trace.inner));
    }

    /// Drops the held compiled trace (if any): the next run records
    /// from scratch. Used by serving layers whose cache is the source
    /// of truth — a cache miss must cost a recording, not silently
    /// reuse a stale per-driver trace.
    pub fn clear_compiled(&mut self) {
        self.compiled = None;
    }

    /// Runs one item: replays the compiled trace when its shape is
    /// trustworthy for `inputs`, records (and re-compiles) otherwise.
    /// `inputs` positionally override the closure's declared input
    /// ranges — on the recording run as well, so both paths analyse
    /// identical input boxes and the produced [`Report`] is
    /// bit-identical either way.
    ///
    /// # Errors
    ///
    /// Propagates closure and report-building errors on the record
    /// path; replay itself cannot fail once a trace is compiled.
    pub fn run_in<F>(
        &mut self,
        arena: &mut AnalysisArena,
        inputs: &[Interval],
        f: F,
    ) -> Result<Report, AnalysisError>
    where
        F: FnOnce(&Ctx<'_>) -> Result<(), AnalysisError>,
    {
        self.run_report(None, arena, inputs, f)
    }

    /// [`ReplayOrRecord::run_in`] with a caller-supplied **shape key**:
    /// pass anything that determines the trace structure beyond the
    /// inputs (a loop trip count, a model variant, …). A key different
    /// from the compiled trace's invalidates it and re-records.
    ///
    /// # Errors
    ///
    /// As [`ReplayOrRecord::run_in`].
    pub fn run_keyed_in<F>(
        &mut self,
        key: u64,
        arena: &mut AnalysisArena,
        inputs: &[Interval],
        f: F,
    ) -> Result<Report, AnalysisError>
    where
        F: FnOnce(&Ctx<'_>) -> Result<(), AnalysisError>,
    {
        self.run_report(Some(key), arena, inputs, f)
    }

    /// Like [`ReplayOrRecord::run_in`] but returning only the
    /// registered-variable rows ([`VarSignificances`]) — the hot path
    /// for batch kernels that never touch the node graph. Rows are
    /// bit-identical to the corresponding full-report rows.
    ///
    /// # Errors
    ///
    /// As [`ReplayOrRecord::run_in`].
    pub fn run_vars_in<F>(
        &mut self,
        arena: &mut AnalysisArena,
        inputs: &[Interval],
        f: F,
    ) -> Result<VarSignificances, AnalysisError>
    where
        F: FnOnce(&Ctx<'_>) -> Result<(), AnalysisError>,
    {
        self.run_vars(None, arena, inputs, f)
    }

    /// [`ReplayOrRecord::run_vars_in`] with a shape key (see
    /// [`ReplayOrRecord::run_keyed_in`]).
    ///
    /// # Errors
    ///
    /// As [`ReplayOrRecord::run_in`].
    pub fn run_keyed_vars_in<F>(
        &mut self,
        key: u64,
        arena: &mut AnalysisArena,
        inputs: &[Interval],
        f: F,
    ) -> Result<VarSignificances, AnalysisError>
    where
        F: FnOnce(&Ctx<'_>) -> Result<(), AnalysisError>,
    {
        self.run_vars(Some(key), arena, inputs, f)
    }

    /// Runs one **lane block** of up to `LANES` items, appending one
    /// [`Report`] per item to `out` in item order.
    ///
    /// When the block is full, the compiled trace is trustworthy and
    /// every item binds the compiled input arity, the whole block is
    /// served by **one** walk of the op stream
    /// ([`CompiledTape::replay_lanes`]) — counted in
    /// [`ReplayStats::lane_blocks`]. Otherwise every item takes the
    /// scalar [`ReplayOrRecord::run_in`] path (recording when needed) —
    /// counted in [`ReplayStats::lane_remainder`]. Either way each
    /// item's report is bit-identical to a scalar run of that item.
    ///
    /// # Errors
    ///
    /// As [`ReplayOrRecord::run_in`]; a failing item stops the block at
    /// the lowest failing index (earlier items' results stay in `out`).
    pub fn run_lanes_in<const LANES: usize, T, I, F>(
        &mut self,
        arena: &mut AnalysisArena,
        lanes: &mut LaneScratch<LANES>,
        block: &[T],
        inputs_of: &I,
        f: &F,
        out: &mut Vec<Report>,
    ) -> Result<(), AnalysisError>
    where
        I: Fn(&T) -> Vec<Interval>,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError>,
    {
        self.run_lanes(None, arena, lanes, block, inputs_of, f, out)
    }

    /// [`ReplayOrRecord::run_lanes_in`] with a shape key (see
    /// [`ReplayOrRecord::run_keyed_in`]).
    ///
    /// # Errors
    ///
    /// As [`ReplayOrRecord::run_lanes_in`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_keyed_lanes_in<const LANES: usize, T, I, F>(
        &mut self,
        key: u64,
        arena: &mut AnalysisArena,
        lanes: &mut LaneScratch<LANES>,
        block: &[T],
        inputs_of: &I,
        f: &F,
        out: &mut Vec<Report>,
    ) -> Result<(), AnalysisError>
    where
        I: Fn(&T) -> Vec<Interval>,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError>,
    {
        self.run_lanes(Some(key), arena, lanes, block, inputs_of, f, out)
    }

    /// Variable-rows-only twin of [`ReplayOrRecord::run_lanes_in`]
    /// (see [`ReplayOrRecord::run_vars_in`] for what the rows skip).
    ///
    /// # Errors
    ///
    /// As [`ReplayOrRecord::run_lanes_in`].
    pub fn run_vars_lanes_in<const LANES: usize, T, I, F>(
        &mut self,
        arena: &mut AnalysisArena,
        lanes: &mut LaneScratch<LANES>,
        block: &[T],
        inputs_of: &I,
        f: &F,
        out: &mut Vec<VarSignificances>,
    ) -> Result<(), AnalysisError>
    where
        I: Fn(&T) -> Vec<Interval>,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError>,
    {
        self.run_vars_lanes(None, arena, lanes, block, inputs_of, f, out)
    }

    /// [`ReplayOrRecord::run_vars_lanes_in`] with a shape key (see
    /// [`ReplayOrRecord::run_keyed_in`]).
    ///
    /// # Errors
    ///
    /// As [`ReplayOrRecord::run_lanes_in`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_keyed_vars_lanes_in<const LANES: usize, T, I, F>(
        &mut self,
        key: u64,
        arena: &mut AnalysisArena,
        lanes: &mut LaneScratch<LANES>,
        block: &[T],
        inputs_of: &I,
        f: &F,
        out: &mut Vec<VarSignificances>,
    ) -> Result<(), AnalysisError>
    where
        I: Fn(&T) -> Vec<Interval>,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError>,
    {
        self.run_vars_lanes(Some(key), arena, lanes, block, inputs_of, f, out)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_lanes<const LANES: usize, T, I, F>(
        &mut self,
        key: Option<u64>,
        arena: &mut AnalysisArena,
        lanes: &mut LaneScratch<LANES>,
        block: &[T],
        inputs_of: &I,
        f: &F,
        out: &mut Vec<Report>,
    ) -> Result<(), AnalysisError>
    where
        I: Fn(&T) -> Vec<Interval>,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError>,
    {
        if self.stage_lane_block(key, lanes, block, inputs_of) {
            let _span = scorpio_obs::span_detail("replay_lanes");
            let c = self.compiled.as_ref().expect("staged block checked");
            c.tape
                .replay_lanes(&lanes.staging, &mut lanes.buf)
                .expect("staging validated input arity");
            let delta = self.analysis.delta();
            return build_report_replayed_lanes(&c.tape, &c.regs, delta, &mut lanes.buf, out);
        }
        for item in block {
            let inputs = inputs_of(item);
            out.push(self.run_report(key, arena, &inputs, |ctx| f(ctx, item))?);
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn run_vars_lanes<const LANES: usize, T, I, F>(
        &mut self,
        key: Option<u64>,
        arena: &mut AnalysisArena,
        lanes: &mut LaneScratch<LANES>,
        block: &[T],
        inputs_of: &I,
        f: &F,
        out: &mut Vec<VarSignificances>,
    ) -> Result<(), AnalysisError>
    where
        I: Fn(&T) -> Vec<Interval>,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError>,
    {
        if self.stage_lane_block(key, lanes, block, inputs_of) {
            let _span = scorpio_obs::span_detail("replay_lanes");
            let c = self.compiled.as_ref().expect("staged block checked");
            c.tape
                .replay_lanes(&lanes.staging, &mut lanes.buf)
                .expect("staging validated input arity");
            return build_vars_replayed_lanes(&c.tape, &c.regs, &mut lanes.buf, out);
        }
        for item in block {
            let inputs = inputs_of(item);
            out.push(self.run_vars(key, arena, &inputs, |ctx| f(ctx, item))?);
        }
        Ok(())
    }

    /// Decides whether `block` can be served by one lane replay and, if
    /// so, fills `lanes.staging` with the slot-major transposed inputs
    /// (`staging[s][l]` = input slot `s` of item `l`) and bumps the
    /// lane counters. On `false` the caller must take the scalar path —
    /// the items are accounted to [`ReplayStats::lane_remainder`] here.
    fn stage_lane_block<const LANES: usize, T, I>(
        &mut self,
        key: Option<u64>,
        lanes: &mut LaneScratch<LANES>,
        block: &[T],
        inputs_of: &I,
    ) -> bool
    where
        I: Fn(&T) -> Vec<Interval>,
    {
        let scalar_fallback = |stats: &mut ReplayStats| {
            stats.lane_remainder += block.len() as u64;
            scorpio_obs::count("replay.lane_remainder", block.len() as u64);
            false
        };
        // LANES == 1 degenerates to scalar replay: route it there so a
        // width-1 lane ablation measures the true scalar baseline.
        if LANES <= 1 || block.len() != LANES {
            return scalar_fallback(&mut self.stats);
        }
        let arity = match &self.compiled {
            Some(c) if !c.branched && c.key == key => c.tape.input_count(),
            _ => return scalar_fallback(&mut self.stats),
        };
        lanes.staging.clear();
        lanes.staging.resize(arity, [Interval::ONE; LANES]);
        for (l, item) in block.iter().enumerate() {
            let inputs = inputs_of(item);
            if inputs.len() != arity {
                // Divergent input arity *inside* the block: the block
                // cannot share one trace, so every item falls back to
                // the scalar driver (which records as needed).
                scorpio_obs::count("replay.fallback.lane_divergent", 1);
                return scalar_fallback(&mut self.stats);
            }
            for (s, &v) in inputs.iter().enumerate() {
                lanes.staging[s][l] = v;
            }
        }
        self.stats.lane_blocks += 1;
        self.stats.replays += LANES as u64;
        scorpio_obs::count("replay.lane_blocks", 1);
        scorpio_obs::count("replay.replays", LANES as u64);
        true
    }

    /// `true` when the held compiled trace may be replayed for this
    /// `(key, inputs)` combination.
    fn replay_ready(&self, key: Option<u64>, inputs: &[Interval]) -> bool {
        match &self.compiled {
            Some(c) => !c.branched && c.key == key && c.tape.input_count() == inputs.len(),
            None => false,
        }
    }

    /// Observability counter name for *why* a held compiled trace could
    /// not serve this `(key, inputs)` combination; `None` when no trace
    /// was held (a first recording is not a fallback).
    fn fallback_counter(&self, key: Option<u64>, inputs: &[Interval]) -> Option<&'static str> {
        let c = self.compiled.as_ref()?;
        Some(if c.branched {
            "replay.fallback.branched"
        } else if c.key != key {
            "replay.fallback.shape_key"
        } else {
            debug_assert_ne!(c.tape.input_count(), inputs.len());
            "replay.fallback.input_arity"
        })
    }

    fn run_report<F>(
        &mut self,
        key: Option<u64>,
        arena: &mut AnalysisArena,
        inputs: &[Interval],
        f: F,
    ) -> Result<Report, AnalysisError>
    where
        F: FnOnce(&Ctx<'_>) -> Result<(), AnalysisError>,
    {
        if self.replay_ready(key, inputs) {
            let _span = scorpio_obs::span_detail("replay");
            scorpio_obs::count("replay.replays", 1);
            let c = self.compiled.as_ref().expect("replay_ready checked");
            c.tape
                .replay(inputs, &mut arena.replay)
                .expect("replay_ready validated input arity");
            self.stats.replays += 1;
            return build_report_replayed(&c.tape, &c.regs, self.analysis.delta(), &mut arena.replay);
        }
        let regs = self.record(key, arena, inputs, f)?;
        build_report_with(&arena.tape, regs, self.analysis.delta(), &mut arena.scratch)
    }

    fn run_vars<F>(
        &mut self,
        key: Option<u64>,
        arena: &mut AnalysisArena,
        inputs: &[Interval],
        f: F,
    ) -> Result<VarSignificances, AnalysisError>
    where
        F: FnOnce(&Ctx<'_>) -> Result<(), AnalysisError>,
    {
        if self.replay_ready(key, inputs) {
            let _span = scorpio_obs::span_detail("replay");
            scorpio_obs::count("replay.replays", 1);
            let c = self.compiled.as_ref().expect("replay_ready checked");
            c.tape
                .replay(inputs, &mut arena.replay)
                .expect("replay_ready validated input arity");
            self.stats.replays += 1;
            return build_vars_replayed(&c.tape, &c.regs, &mut arena.replay);
        }
        let regs = self.record(key, arena, inputs, f)?;
        build_vars_with(&arena.tape, &regs, &mut arena.scratch)
    }

    /// Records `f` into the arena tape (inputs overriding declared
    /// ranges), compiles and stores the trace for future replays, and
    /// returns the registrations for report assembly.
    fn record<F>(
        &mut self,
        key: Option<u64>,
        arena: &mut AnalysisArena,
        inputs: &[Interval],
        f: F,
    ) -> Result<Registrations, AnalysisError>
    where
        F: FnOnce(&Ctx<'_>) -> Result<(), AnalysisError>,
    {
        let _span = scorpio_obs::span("record");
        scorpio_obs::count("replay.records", 1);
        if let Some(reason) = self.fallback_counter(key, inputs) {
            scorpio_obs::count(reason, 1);
        }
        if self.compiled.is_some() {
            self.stats.fallbacks += 1;
        }
        self.compiled = None;

        arena.tape.clear();
        let ctx = Ctx::new(&arena.tape, inputs.to_vec());
        let closure_result = f(&ctx);
        let branched = ctx.branched();
        closure_result?;
        let regs = ctx.into_registrations()?;
        self.stats.records += 1;
        scorpio_obs::count("analysis.nodes_recorded", arena.tape.len() as u64);

        // Only a trace whose inputs are fully bound by the positional
        // overrides can be replayed: an uncovered input would keep its
        // *declared* range on replayed items, silently diverging from a
        // re-recording. Such traces simply re-record every item.
        if regs
            .entries
            .iter()
            .filter(|e| e.kind == crate::report::VarKind::Input)
            .count()
            == inputs.len()
        {
            self.compiled = Some(Arc::new(CompiledAnalysis {
                tape: CompiledTape::compile(&arena.tape),
                regs: Registrations {
                    entries: regs.entries.clone(),
                },
                branched,
                key,
            }));
        } else {
            scorpio_obs::count("replay.uncompilable", 1);
        }
        Ok(regs)
    }
}

/// Caller-owned scratch for the lane-batched driver methods: the
/// lane-blocked replay buffers plus the slot-major staging area the
/// per-item inputs are transposed into. One per worker, like
/// [`AnalysisArena`] — it cannot live inside the arena because the lane
/// width is a const generic chosen per call site.
#[derive(Debug)]
pub struct LaneScratch<const LANES: usize> {
    buf: LaneReplayBuffers<Interval, LANES>,
    /// `staging[s][l]` = input slot `s` of block item `l`.
    staging: Vec<[Interval; LANES]>,
}

impl<const LANES: usize> LaneScratch<LANES> {
    /// Empty scratch; the first lane block sizes it.
    pub fn new() -> LaneScratch<LANES> {
        LaneScratch {
            buf: LaneReplayBuffers::new(),
            staging: Vec::new(),
        }
    }
}

impl<const LANES: usize> Default for LaneScratch<LANES> {
    fn default() -> Self {
        LaneScratch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(ctx: &Ctx<'_>) -> Result<(), AnalysisError> {
        let x = ctx.input("x", -1.0, 1.0);
        let t = x.sqr();
        ctx.intermediate(&t, "t");
        let y = t + x.sin();
        ctx.output(&y, "y");
        Ok(())
    }

    #[test]
    fn replay_matches_rerecording_bitwise() {
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        for i in 0..8 {
            let r = 0.05 + 0.1 * i as f64;
            let inputs = [Interval::centered(0.3, r)];
            let replayed = driver.run_in(&mut arena, &inputs, poly).unwrap();
            let (recorded, _) = Analysis::new()
                .run_with_overrides(poly, inputs.to_vec())
                .unwrap();
            assert_eq!(replayed.tape_len(), recorded.tape_len());
            for (a, b) in replayed.registered().iter().zip(recorded.registered()) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.significance.to_bits(), b.significance.to_bits());
                assert_eq!(a.significance_raw.to_bits(), b.significance_raw.to_bits());
                assert_eq!(a.enclosure.inf().to_bits(), b.enclosure.inf().to_bits());
                assert_eq!(a.derivative.sup().to_bits(), b.derivative.sup().to_bits());
            }
        }
        assert_eq!(driver.stats().records, 1);
        assert_eq!(driver.stats().replays, 7);
        assert_eq!(driver.stats().fallbacks, 0);
    }

    #[test]
    fn vars_rows_match_full_report_rows() {
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        for r in [0.1, 0.4] {
            let inputs = [Interval::centered(0.3, r)];
            let vars = driver.run_vars_in(&mut arena, &inputs, poly).unwrap();
            let (full, _) = Analysis::new()
                .run_with_overrides(poly, inputs.to_vec())
                .unwrap();
            assert_eq!(vars.registered().len(), full.registered().len());
            assert_eq!(
                vars.output_significance_raw().to_bits(),
                full.output_significance_raw().to_bits()
            );
            for (a, b) in vars.registered().iter().zip(full.registered()) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.significance.to_bits(), b.significance.to_bits());
            }
        }
    }

    #[test]
    fn branchy_trace_is_never_replayed() {
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        let branchy = |ctx: &Ctx<'_>| {
            let x = ctx.input("x", 2.0, 3.0);
            // Decidable over every box we pass, but still a branch:
            // replaying it for other inputs could be wrong.
            let pos = ctx.branch(x.value().certainly_gt(0.0.into()), "x > 0")?;
            let y = if pos { x.sqr() } else { -x };
            ctx.output(&y, "y");
            Ok(())
        };
        for _ in 0..3 {
            let inputs = [Interval::new(2.0, 3.0)];
            driver.run_in(&mut arena, &inputs, branchy).unwrap();
        }
        assert_eq!(driver.stats().replays, 0);
        assert_eq!(driver.stats().records, 3);
        // The first run compiles (then distrusts) a trace; later runs
        // see it and count as fallbacks.
        assert_eq!(driver.stats().fallbacks, 2);
        assert!(driver.stats().fallback_rate() > 0.6);
        assert!(!driver.has_compiled());
    }

    #[test]
    fn changed_shape_key_forces_rerecord() {
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        let run = |driver: &mut ReplayOrRecord, arena: &mut AnalysisArena, n: usize| {
            driver
                .run_keyed_in(n as u64, arena, &[Interval::new(0.2, 0.4)], |ctx| {
                    let x = ctx.input("x", 0.0, 1.0);
                    let mut acc = ctx.constant(0.0);
                    for i in 0..n {
                        acc = acc + x.powi(i as i32);
                    }
                    ctx.output(&acc, "y");
                    Ok(())
                })
                .unwrap()
        };
        let a = run(&mut driver, &mut arena, 3);
        let b = run(&mut driver, &mut arena, 3); // same shape: replay
        assert_eq!(a.tape_len(), b.tape_len());
        let c = run(&mut driver, &mut arena, 5); // new shape: re-record
        assert!(c.tape_len() > b.tape_len(), "trace must have grown");
        assert_eq!(driver.stats().replays, 1);
        assert_eq!(driver.stats().records, 2);
        assert_eq!(driver.stats().fallbacks, 1);
    }

    #[test]
    fn input_arity_change_falls_back() {
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        let one = [Interval::new(0.0, 1.0)];
        let two = [Interval::new(0.0, 1.0), Interval::new(1.0, 2.0)];
        driver
            .run_in(&mut arena, &one, |ctx| {
                let x = ctx.input("x", 0.0, 1.0);
                ctx.output(&x, "y");
                Ok(())
            })
            .unwrap();
        // Different arity: must re-record, not replay a wrong trace.
        let report = driver
            .run_in(&mut arena, &two, |ctx| {
                let x = ctx.input("x", 0.0, 1.0);
                let z = ctx.input("z", 1.0, 2.0);
                let y = x + z;
                ctx.output(&y, "y");
                Ok(())
            })
            .unwrap();
        assert_eq!(report.registered().len(), 3);
        assert_eq!(driver.stats().fallbacks, 1);
    }

    #[test]
    fn stats_merge_and_since_are_fieldwise() {
        let a = ReplayStats {
            replays: 10,
            records: 2,
            fallbacks: 1,
            lane_blocks: 4,
            lane_remainder: 3,
        };
        let b = ReplayStats {
            replays: 5,
            records: 1,
            fallbacks: 0,
            lane_blocks: 2,
            lane_remainder: 1,
        };
        let mut total = a;
        total.merge(b);
        assert_eq!(total.replays, 15);
        assert_eq!(total.records, 3);
        assert_eq!(total.fallbacks, 1);
        assert_eq!(total.lane_blocks, 6);
        assert_eq!(total.lane_remainder, 4);
        // since() inverts merge(): (a ∪ b) − a == b.
        let delta = total.since(a);
        assert_eq!(delta.replays, b.replays);
        assert_eq!(delta.records, b.records);
        assert_eq!(delta.fallbacks, b.fallbacks);
        assert_eq!(delta.lane_blocks, b.lane_blocks);
        assert_eq!(delta.lane_remainder, b.lane_remainder);
    }

    #[test]
    fn shared_trace_replays_in_fresh_driver_without_recording() {
        let inputs = [Interval::centered(0.3, 0.2)];
        let mut warm = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        let expected = warm.run_keyed_in(7, &mut arena, &inputs, poly).unwrap();
        let trace = warm.share().expect("straight-line trace must be shareable");
        assert_eq!(trace.shape_key(), Some(7));
        assert!(trace.input_count() == 1 && trace.node_count() > 0);

        let mut cold = ReplayOrRecord::new(Analysis::new());
        cold.install(&trace);
        assert!(cold.has_compiled());
        let replayed = cold.run_keyed_in(7, &mut arena, &inputs, poly).unwrap();
        assert_eq!(cold.stats().records, 0, "install must skip recording");
        assert_eq!(cold.stats().replays, 1);
        for (a, b) in replayed.registered().iter().zip(expected.registered()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.significance.to_bits(), b.significance.to_bits());
        }
        // The second driver shares, not copies, the compiled trace.
        assert!(cold.share().unwrap().ptr_eq(&trace));
    }

    #[test]
    fn installed_trace_with_wrong_key_degrades_to_rerecord() {
        let inputs = [Interval::centered(0.3, 0.2)];
        let mut warm = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        warm.run_keyed_in(1, &mut arena, &inputs, poly).unwrap();
        let trace = warm.share().unwrap();

        let mut other = ReplayOrRecord::new(Analysis::new());
        other.install(&trace);
        // Requesting a different shape key must not replay the foreign
        // trace — the keyed guard records afresh instead.
        other.run_keyed_in(2, &mut arena, &inputs, poly).unwrap();
        assert_eq!(other.stats().records, 1);
        assert_eq!(other.stats().replays, 0);
        assert_eq!(other.stats().fallbacks, 1);
    }

    #[test]
    fn branched_trace_is_not_shareable() {
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        driver
            .run_in(&mut arena, &[Interval::new(2.0, 3.0)], |ctx| {
                let x = ctx.input("x", 2.0, 3.0);
                let pos = ctx.branch(x.value().certainly_gt(0.0.into()), "x > 0")?;
                let y = if pos { x.sqr() } else { -x };
                ctx.output(&y, "y");
                Ok(())
            })
            .unwrap();
        assert!(driver.share().is_none());
    }

    #[test]
    fn clear_compiled_forces_rerecord() {
        let inputs = [Interval::centered(0.3, 0.2)];
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        driver.run_in(&mut arena, &inputs, poly).unwrap();
        driver.run_in(&mut arena, &inputs, poly).unwrap();
        assert_eq!(driver.stats().replays, 1);
        driver.clear_compiled();
        assert!(!driver.has_compiled());
        driver.run_in(&mut arena, &inputs, poly).unwrap();
        assert_eq!(driver.stats().records, 2, "cleared driver must re-record");
        // A dropped trace counts as a record, not a fallback.
        assert_eq!(driver.stats().fallbacks, 0);
    }
}
