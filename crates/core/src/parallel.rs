//! The parallel significance-analysis engine.
//!
//! Significance analysis is embarrassingly parallel across *analyses*:
//! a per-pixel kernel analysis (Fig. 5 of the paper), a Monte-Carlo
//! sample, or one point of a range sweep each records its own DynDFG
//! and runs its own reverse sweep, sharing nothing with its siblings.
//! [`ParallelAnalysis`] exploits that by fanning independent analysis
//! closures over the [`scorpio_runtime::Executor`] worker pool, with
//! one reusable [`AnalysisArena`] per worker: each worker keeps a warm
//! tape and adjoint scratch buffer across all the items it claims, so
//! the steady state allocates nothing per analysis.
//!
//! Results are returned in item order regardless of scheduling, and
//! every analysis computes exactly the same floating-point operations
//! it would serially — parallel output is bit-identical to the
//! `threads == 1` baseline (which runs inline, bypassing the pool).
//!
//! ```
//! use scorpio_core::parallel::ParallelAnalysis;
//!
//! let engine = ParallelAnalysis::new(2);
//! let radii = [0.1, 0.2, 0.3, 0.4];
//! let reports = engine
//!     .run_batch(&radii, |ctx, &r| {
//!         let x = ctx.input_centered("x", 0.5, r);
//!         let y = x.sqr();
//!         ctx.output(&y, "y");
//!         Ok(())
//!     })
//!     .unwrap();
//! assert_eq!(reports.len(), 4);
//! assert_eq!(reports[0].significance_of("y"), Some(1.0));
//! ```

use scorpio_runtime::Executor;

use crate::error::AnalysisError;
use crate::report::Report;
use crate::session::{Analysis, AnalysisArena, Ctx};

/// Default node capacity each worker's arena is warmed to.
const DEFAULT_ARENA_CAPACITY: usize = 1024;

/// Driver fanning independent significance analyses over a worker pool,
/// one reusable tape arena per worker (see the [module docs](self)).
#[derive(Debug)]
pub struct ParallelAnalysis {
    analysis: Analysis,
    executor: Executor,
    arena_capacity: usize,
}

impl ParallelAnalysis {
    /// An engine with `threads` workers and a default-configured
    /// [`Analysis`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> ParallelAnalysis {
        ParallelAnalysis::with_analysis(Analysis::new(), threads)
    }

    /// An engine running `analysis` (carrying its δ threshold) on
    /// `threads` workers.
    pub fn with_analysis(analysis: Analysis, threads: usize) -> ParallelAnalysis {
        ParallelAnalysis {
            analysis,
            executor: Executor::new(threads),
            arena_capacity: DEFAULT_ARENA_CAPACITY,
        }
    }

    /// An engine sized to the machine.
    pub fn with_available_parallelism() -> ParallelAnalysis {
        ParallelAnalysis {
            analysis: Analysis::new(),
            executor: Executor::with_available_parallelism(),
            arena_capacity: DEFAULT_ARENA_CAPACITY,
        }
    }

    /// Sets the node capacity worker arenas are pre-sized to (useful
    /// when the per-item trace size is known, e.g. from a pilot run).
    pub fn with_arena_capacity(mut self, capacity: usize) -> ParallelAnalysis {
        self.arena_capacity = capacity;
        self
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// The underlying analysis configuration.
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Runs one registration closure per item, in parallel, returning
    /// the reports in item order.
    ///
    /// # Errors
    ///
    /// If any item's analysis fails (ambiguous branch, no outputs, …),
    /// the error of the **lowest-indexed** failing item is returned —
    /// the same error the serial loop would have hit first — so error
    /// behaviour is independent of scheduling.
    pub fn run_batch<T, F>(&self, items: &[T], f: F) -> Result<Vec<Report>, AnalysisError>
    where
        T: Sync,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError> + Sync,
    {
        self.run_batch_map(items, |arena, analysis, _, item| {
            analysis.run_in(arena, |ctx| f(ctx, item))
        })
    }

    /// General form of [`ParallelAnalysis::run_batch`]: `f` receives the
    /// worker's arena, the engine's [`Analysis`], the item index and the
    /// item, and may run any number of analyses in the arena, returning
    /// an arbitrary per-item result (e.g. a single extracted
    /// significance instead of a whole [`Report`]).
    pub fn run_batch_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, AnalysisError>
    where
        T: Sync,
        R: Send,
        F: Fn(&mut AnalysisArena, &Analysis, usize, &T) -> Result<R, AnalysisError> + Sync,
    {
        let results = self.executor.map_with_state(
            items,
            || AnalysisArena::with_capacity(self.arena_capacity),
            |arena, i, item| f(arena, &self.analysis, i, item),
        );
        // Item order is preserved by map_with_state, so collect() stops
        // at the first failing index — matching the serial loop.
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn maclaurin(ctx: &Ctx<'_>, &(x0, n): &(f64, usize)) -> Result<(), AnalysisError> {
        let x = ctx.input("x", x0 - 0.5, x0 + 0.5);
        let mut result = ctx.constant(0.0);
        for i in 0..n {
            let term = x.powi(i as i32);
            ctx.intermediate(&term, format!("term{i}"));
            result = result + term;
        }
        ctx.output(&result, "result");
        Ok(())
    }

    #[test]
    fn batch_matches_serial_reports() {
        let items: Vec<(f64, usize)> = (0..24).map(|i| (0.2 + 0.01 * i as f64, 5)).collect();
        let serial = ParallelAnalysis::new(1);
        let parallel = ParallelAnalysis::new(4);
        let a = serial.run_batch(&items, maclaurin).unwrap();
        let b = parallel.run_batch(&items, maclaurin).unwrap();
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.tape_len(), rb.tape_len());
            for (va, vb) in ra.registered().iter().zip(rb.registered()) {
                assert_eq!(va.name, vb.name);
                // Bit-identical, not approximately equal.
                assert_eq!(va.significance.to_bits(), vb.significance.to_bits());
                assert_eq!(va.significance_raw.to_bits(), vb.significance_raw.to_bits());
            }
        }
    }

    #[test]
    fn first_item_error_wins() {
        let items: Vec<i32> = (0..16).collect();
        let engine = ParallelAnalysis::new(4);
        let result = engine.run_batch(&items, |ctx, &i| {
            let x = ctx.input("x", -1.0, 1.0);
            if i >= 3 {
                // Ambiguous comparison: terminates this item's analysis.
                ctx.branch(x.value().certainly_lt(0.0.into()), &format!("x < 0 (item {i})"))?;
            }
            ctx.output(&x, "y");
            Ok(())
        });
        match result {
            Err(AnalysisError::AmbiguousBranch { condition }) => {
                assert_eq!(condition, "x < 0 (item 3)");
            }
            other => panic!("expected ambiguous branch, got {other:?}"),
        }
    }

    #[test]
    fn batch_map_extracts_scalars() {
        let items: Vec<f64> = (1..=8).map(|i| i as f64 * 0.1).collect();
        let engine = ParallelAnalysis::new(2).with_arena_capacity(64);
        let sigs = engine
            .run_batch_map(&items, |arena, analysis, _, &r| {
                let report = analysis.run_in(arena, |ctx| {
                    let x = ctx.input_centered("x", 1.0, r);
                    let y = x.sqr() + x;
                    ctx.output(&y, "y");
                    Ok(())
                })?;
                Ok(report.var("x").map(|v| v.significance_raw).unwrap_or(0.0))
            })
            .unwrap();
        assert_eq!(sigs.len(), 8);
        // Wider input intervals can only grow the raw significance.
        for w in sigs.windows(2) {
            assert!(w[1] >= w[0], "significance must grow with radius: {sigs:?}");
        }
    }

    #[test]
    fn arena_reuse_is_invisible_in_results() {
        // One worker, many differently-shaped traces through one arena:
        // results must match fresh-tape runs exactly.
        let engine = ParallelAnalysis::new(1).with_arena_capacity(8);
        let items: Vec<(f64, usize)> = (1..12).map(|i| (0.3, i)).collect();
        let pooled = engine.run_batch(&items, maclaurin).unwrap();
        for (report, item) in pooled.iter().zip(&items) {
            let fresh = Analysis::new().run(|ctx| maclaurin(ctx, item)).unwrap();
            assert_eq!(report.tape_len(), fresh.tape_len());
            for (a, b) in report.registered().iter().zip(fresh.registered()) {
                assert_eq!(a.significance.to_bits(), b.significance.to_bits());
            }
        }
    }
}
