//! The parallel significance-analysis engine.
//!
//! Significance analysis is embarrassingly parallel across *analyses*:
//! a per-pixel kernel analysis (Fig. 5 of the paper), a Monte-Carlo
//! sample, or one point of a range sweep each records its own DynDFG
//! and runs its own reverse sweep, sharing nothing with its siblings.
//! [`ParallelAnalysis`] exploits that by fanning independent analysis
//! closures over the [`scorpio_runtime::Executor`] worker pool, with
//! one reusable [`AnalysisArena`] per worker: each worker keeps a warm
//! tape and adjoint scratch buffer across all the items it claims, so
//! the steady state allocates nothing per analysis.
//!
//! Results are returned in item order regardless of scheduling, and
//! every analysis computes exactly the same floating-point operations
//! it would serially — parallel output is bit-identical to the
//! `threads == 1` baseline (which runs inline, bypassing the pool).
//!
//! ```
//! use scorpio_core::parallel::ParallelAnalysis;
//!
//! let engine = ParallelAnalysis::new(2);
//! let radii = [0.1, 0.2, 0.3, 0.4];
//! let reports = engine
//!     .run_batch(&radii, |ctx, &r| {
//!         let x = ctx.input_centered("x", 0.5, r);
//!         let y = x.sqr();
//!         ctx.output(&y, "y");
//!         Ok(())
//!     })
//!     .unwrap();
//! assert_eq!(reports.len(), 4);
//! assert_eq!(reports[0].significance_of("y"), Some(1.0));
//! ```

use scorpio_interval::Interval;
use scorpio_runtime::Executor;

use crate::error::AnalysisError;
use crate::replay::{ReplayOrRecord, ReplayStats};
use crate::report::{Report, VarSignificances};
use crate::session::{Analysis, AnalysisArena, Ctx};

/// Default node capacity each worker's arena is warmed to.
const DEFAULT_ARENA_CAPACITY: usize = 1024;

/// Driver fanning independent significance analyses over a worker pool,
/// one reusable tape arena per worker (see the [module docs](self)).
#[derive(Debug)]
pub struct ParallelAnalysis {
    analysis: Analysis,
    executor: Executor,
    arena_capacity: usize,
}

impl ParallelAnalysis {
    /// An engine with `threads` workers and a default-configured
    /// [`Analysis`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> ParallelAnalysis {
        ParallelAnalysis::with_analysis(Analysis::new(), threads)
    }

    /// An engine running `analysis` (carrying its δ threshold) on
    /// `threads` workers.
    pub fn with_analysis(analysis: Analysis, threads: usize) -> ParallelAnalysis {
        ParallelAnalysis {
            analysis,
            executor: Executor::new(threads),
            arena_capacity: DEFAULT_ARENA_CAPACITY,
        }
    }

    /// An engine sized to the machine.
    pub fn with_available_parallelism() -> ParallelAnalysis {
        ParallelAnalysis {
            analysis: Analysis::new(),
            executor: Executor::with_available_parallelism(),
            arena_capacity: DEFAULT_ARENA_CAPACITY,
        }
    }

    /// Sets the node capacity worker arenas are pre-sized to (useful
    /// when the per-item trace size is known, e.g. from a pilot run).
    pub fn with_arena_capacity(mut self, capacity: usize) -> ParallelAnalysis {
        self.arena_capacity = capacity;
        self
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// The underlying analysis configuration.
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Runs one registration closure per item, in parallel, returning
    /// the reports in item order.
    ///
    /// # Errors
    ///
    /// If any item's analysis fails (ambiguous branch, no outputs, …),
    /// the error of the **lowest-indexed** failing item is returned —
    /// the same error the serial loop would have hit first — so error
    /// behaviour is independent of scheduling.
    pub fn run_batch<T, F>(&self, items: &[T], f: F) -> Result<Vec<Report>, AnalysisError>
    where
        T: Sync,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError> + Sync,
    {
        self.run_batch_map(items, |arena, analysis, _, item| {
            analysis.run_in(arena, |ctx| f(ctx, item))
        })
    }

    /// General form of [`ParallelAnalysis::run_batch`]: `f` receives the
    /// worker's arena, the engine's [`Analysis`], the item index and the
    /// item, and may run any number of analyses in the arena, returning
    /// an arbitrary per-item result (e.g. a single extracted
    /// significance instead of a whole [`Report`]).
    pub fn run_batch_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, AnalysisError>
    where
        T: Sync,
        R: Send,
        F: Fn(&mut AnalysisArena, &Analysis, usize, &T) -> Result<R, AnalysisError> + Sync,
    {
        let _span = scorpio_obs::span("parallel_batch");
        scorpio_obs::count("parallel.items", items.len() as u64);
        let results = self.executor.map_with_state(
            items,
            || {
                scorpio_obs::count("parallel.arena_init", 1);
                AnalysisArena::with_capacity(self.arena_capacity)
            },
            |arena, i, item| f(arena, &self.analysis, i, item),
        );
        // Item order is preserved by map_with_state, so collect() stops
        // at the first failing index — matching the serial loop.
        results.into_iter().collect()
    }

    /// [`ParallelAnalysis::run_batch`] in record-once / replay-many mode:
    /// each worker records and [compiles](scorpio_adjoint::CompiledTape)
    /// its first item's trace, then *replays* it for every further item
    /// with that item's input intervals — no re-recording, no `RefCell`
    /// traffic, no allocation — yielding bit-identical reports (see
    /// [`ReplayOrRecord`]).
    ///
    /// `inputs_of` must return the per-item input boxes **in
    /// registration order**, and the closure's trace shape must not
    /// otherwise depend on the item (a [`Ctx::branch`] in `f`
    /// automatically disables replay for safety). The returned
    /// [`ReplayStats`] aggregate all workers; a high
    /// [`fallback_rate`](ReplayStats::fallback_rate) means the batch is
    /// not actually shape-uniform and plain [`ParallelAnalysis::run_batch`]
    /// would be just as fast.
    ///
    /// # Errors
    ///
    /// As [`ParallelAnalysis::run_batch`].
    pub fn run_batch_replay<T, I, F>(
        &self,
        items: &[T],
        inputs_of: I,
        f: F,
    ) -> Result<(Vec<Report>, ReplayStats), AnalysisError>
    where
        T: Sync,
        I: Fn(&T) -> Vec<Interval> + Sync,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError> + Sync,
    {
        self.run_batch_replay_map(items, |arena, driver, _, item| {
            driver.run_in(arena, &inputs_of(item), |ctx| f(ctx, item))
        })
    }

    /// Variable-rows-only variant of [`ParallelAnalysis::run_batch_replay`]:
    /// returns one [`VarSignificances`] per item instead of a full
    /// [`Report`], skipping significance-graph construction entirely —
    /// the fast path for kernels that only read registered rows.
    ///
    /// # Errors
    ///
    /// As [`ParallelAnalysis::run_batch`].
    pub fn run_batch_replay_vars<T, I, F>(
        &self,
        items: &[T],
        inputs_of: I,
        f: F,
    ) -> Result<(Vec<VarSignificances>, ReplayStats), AnalysisError>
    where
        T: Sync,
        I: Fn(&T) -> Vec<Interval> + Sync,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError> + Sync,
    {
        self.run_batch_replay_map(items, |arena, driver, _, item| {
            driver.run_vars_in(arena, &inputs_of(item), |ctx| f(ctx, item))
        })
    }

    /// General form of the replay modes: `f` receives the worker's arena,
    /// the worker's [`ReplayOrRecord`] driver, the item index and the
    /// item, and drives the replay itself (e.g. via
    /// [`ReplayOrRecord::run_keyed_in`] when the trace shape depends on
    /// non-input data). Returns per-item results in item order plus the
    /// replay/record/fallback counters aggregated over all workers.
    ///
    /// # Errors
    ///
    /// As [`ParallelAnalysis::run_batch`].
    pub fn run_batch_replay_map<T, R, F>(
        &self,
        items: &[T],
        f: F,
    ) -> Result<(Vec<R>, ReplayStats), AnalysisError>
    where
        T: Sync,
        R: Send,
        F: Fn(&mut AnalysisArena, &mut ReplayOrRecord, usize, &T) -> Result<R, AnalysisError>
            + Sync,
    {
        let _span = scorpio_obs::span("parallel_batch");
        scorpio_obs::count("parallel.items", items.len() as u64);
        let results = self.executor.map_with_state(
            items,
            || {
                scorpio_obs::count("parallel.arena_init", 1);
                (
                    AnalysisArena::with_capacity(self.arena_capacity),
                    ReplayOrRecord::new(self.analysis.clone()),
                )
            },
            |(arena, driver), i, item| {
                // Snapshot the worker's counters around the item so the
                // per-item delta can ride back with the result (worker
                // state itself is dropped inside the pool).
                let before = driver.stats();
                let result = f(arena, driver, i, item);
                let after = driver.stats();
                result.map(|r| {
                    (
                        r,
                        ReplayStats {
                            replays: after.replays - before.replays,
                            records: after.records - before.records,
                            fallbacks: after.fallbacks - before.fallbacks,
                        },
                    )
                })
            },
        );
        let mut stats = ReplayStats::default();
        let mut out = Vec::with_capacity(items.len());
        for result in results {
            let (r, delta) = result?;
            stats.replays += delta.replays;
            stats.records += delta.records;
            stats.fallbacks += delta.fallbacks;
            out.push(r);
        }
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn maclaurin(ctx: &Ctx<'_>, &(x0, n): &(f64, usize)) -> Result<(), AnalysisError> {
        let x = ctx.input("x", x0 - 0.5, x0 + 0.5);
        let mut result = ctx.constant(0.0);
        for i in 0..n {
            let term = x.powi(i as i32);
            ctx.intermediate(&term, format!("term{i}"));
            result = result + term;
        }
        ctx.output(&result, "result");
        Ok(())
    }

    #[test]
    fn batch_matches_serial_reports() {
        let items: Vec<(f64, usize)> = (0..24).map(|i| (0.2 + 0.01 * i as f64, 5)).collect();
        let serial = ParallelAnalysis::new(1);
        let parallel = ParallelAnalysis::new(4);
        let a = serial.run_batch(&items, maclaurin).unwrap();
        let b = parallel.run_batch(&items, maclaurin).unwrap();
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.tape_len(), rb.tape_len());
            for (va, vb) in ra.registered().iter().zip(rb.registered()) {
                assert_eq!(va.name, vb.name);
                // Bit-identical, not approximately equal.
                assert_eq!(va.significance.to_bits(), vb.significance.to_bits());
                assert_eq!(va.significance_raw.to_bits(), vb.significance_raw.to_bits());
            }
        }
    }

    #[test]
    fn first_item_error_wins() {
        let items: Vec<i32> = (0..16).collect();
        let engine = ParallelAnalysis::new(4);
        let result = engine.run_batch(&items, |ctx, &i| {
            let x = ctx.input("x", -1.0, 1.0);
            if i >= 3 {
                // Ambiguous comparison: terminates this item's analysis.
                ctx.branch(x.value().certainly_lt(0.0.into()), &format!("x < 0 (item {i})"))?;
            }
            ctx.output(&x, "y");
            Ok(())
        });
        match result {
            Err(AnalysisError::AmbiguousBranch { condition }) => {
                assert_eq!(condition, "x < 0 (item 3)");
            }
            other => panic!("expected ambiguous branch, got {other:?}"),
        }
    }

    #[test]
    fn batch_map_extracts_scalars() {
        let items: Vec<f64> = (1..=8).map(|i| i as f64 * 0.1).collect();
        let engine = ParallelAnalysis::new(2).with_arena_capacity(64);
        let sigs = engine
            .run_batch_map(&items, |arena, analysis, _, &r| {
                let report = analysis.run_in(arena, |ctx| {
                    let x = ctx.input_centered("x", 1.0, r);
                    let y = x.sqr() + x;
                    ctx.output(&y, "y");
                    Ok(())
                })?;
                Ok(report.var("x").map(|v| v.significance_raw).unwrap_or(0.0))
            })
            .unwrap();
        assert_eq!(sigs.len(), 8);
        // Wider input intervals can only grow the raw significance.
        for w in sigs.windows(2) {
            assert!(w[1] >= w[0], "significance must grow with radius: {sigs:?}");
        }
    }

    #[test]
    fn replay_batch_matches_recording_batch_bitwise() {
        let items: Vec<f64> = (0..32).map(|i| 0.05 + 0.01 * i as f64).collect();
        let closure = |ctx: &Ctx<'_>, &r: &f64| {
            let x = ctx.input_centered("x", 0.5, r);
            let t = x.sin();
            ctx.intermediate(&t, "t");
            let y = t + x.sqr();
            ctx.output(&y, "y");
            Ok(())
        };
        let inputs_of = |&r: &f64| vec![Interval::centered(0.5, r)];
        let engine = ParallelAnalysis::new(1);
        let recorded = engine.run_batch(&items, closure).unwrap();
        let (replayed, stats) = engine.run_batch_replay(&items, inputs_of, closure).unwrap();
        assert_eq!(stats.records, 1, "only the first item may record");
        assert_eq!(stats.replays, items.len() as u64 - 1);
        assert_eq!(stats.fallbacks, 0);
        for (a, b) in replayed.iter().zip(&recorded) {
            assert_eq!(a.tape_len(), b.tape_len());
            for (va, vb) in a.registered().iter().zip(b.registered()) {
                assert_eq!(va.name, vb.name);
                assert_eq!(va.significance.to_bits(), vb.significance.to_bits());
                assert_eq!(va.significance_raw.to_bits(), vb.significance_raw.to_bits());
            }
        }

        // The rows-only fast path agrees too.
        let (vars, _) = engine
            .run_batch_replay_vars(&items, inputs_of, closure)
            .unwrap();
        for (v, b) in vars.iter().zip(&recorded) {
            for (va, vb) in v.registered().iter().zip(b.registered()) {
                assert_eq!(va.significance.to_bits(), vb.significance.to_bits());
            }
        }
    }

    #[test]
    fn arena_reuse_is_invisible_in_results() {
        // One worker, many differently-shaped traces through one arena:
        // results must match fresh-tape runs exactly.
        let engine = ParallelAnalysis::new(1).with_arena_capacity(8);
        let items: Vec<(f64, usize)> = (1..12).map(|i| (0.3, i)).collect();
        let pooled = engine.run_batch(&items, maclaurin).unwrap();
        for (report, item) in pooled.iter().zip(&items) {
            let fresh = Analysis::new().run(|ctx| maclaurin(ctx, item)).unwrap();
            assert_eq!(report.tape_len(), fresh.tape_len());
            for (a, b) in report.registered().iter().zip(fresh.registered()) {
                assert_eq!(a.significance.to_bits(), b.significance.to_bits());
            }
        }
    }
}
