//! The parallel significance-analysis engine.
//!
//! Significance analysis is embarrassingly parallel across *analyses*:
//! a per-pixel kernel analysis (Fig. 5 of the paper), a Monte-Carlo
//! sample, or one point of a range sweep each records its own DynDFG
//! and runs its own reverse sweep, sharing nothing with its siblings.
//! [`ParallelAnalysis`] exploits that by fanning independent analysis
//! closures over the [`scorpio_runtime::Executor`] worker pool, with
//! one reusable [`AnalysisArena`] per worker: each worker keeps a warm
//! tape and adjoint scratch buffer across all the items it claims, so
//! the steady state allocates nothing per analysis.
//!
//! Results are returned in item order regardless of scheduling, and
//! every analysis computes exactly the same floating-point operations
//! it would serially — parallel output is bit-identical to the
//! `threads == 1` baseline (which runs inline, bypassing the pool).
//!
//! ```
//! use scorpio_core::parallel::ParallelAnalysis;
//!
//! let engine = ParallelAnalysis::new(2);
//! let radii = [0.1, 0.2, 0.3, 0.4];
//! let reports = engine
//!     .run_batch(&radii, |ctx, &r| {
//!         let x = ctx.input_centered("x", 0.5, r);
//!         let y = x.sqr();
//!         ctx.output(&y, "y");
//!         Ok(())
//!     })
//!     .unwrap();
//! assert_eq!(reports.len(), 4);
//! assert_eq!(reports[0].significance_of("y"), Some(1.0));
//! ```

use scorpio_interval::Interval;
use scorpio_runtime::Executor;

use crate::error::AnalysisError;
use crate::replay::{LaneScratch, ReplayOrRecord, ReplayStats};
use crate::report::{Report, VarSignificances};
use crate::session::{Analysis, AnalysisArena, Ctx};

/// Default node capacity each worker's arena is warmed to.
const DEFAULT_ARENA_CAPACITY: usize = 1024;

/// Lane width the non-`_lanes` replay batch methods use: four f64
/// lanes fill one 256-bit vector register and one 32-byte block per
/// node stays cache-friendly for the large (~10⁴-node) kernel traces.
/// The `bench_parallel` lane ablation measures the alternatives.
pub const DEFAULT_LANES: usize = 4;

/// Driver fanning independent significance analyses over a worker pool,
/// one reusable tape arena per worker (see the [module docs](self)).
#[derive(Debug)]
pub struct ParallelAnalysis {
    analysis: Analysis,
    executor: Executor,
    arena_capacity: usize,
}

impl ParallelAnalysis {
    /// An engine with `threads` workers and a default-configured
    /// [`Analysis`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> ParallelAnalysis {
        ParallelAnalysis::with_analysis(Analysis::new(), threads)
    }

    /// An engine running `analysis` (carrying its δ threshold) on
    /// `threads` workers.
    pub fn with_analysis(analysis: Analysis, threads: usize) -> ParallelAnalysis {
        ParallelAnalysis {
            analysis,
            executor: Executor::new(threads),
            arena_capacity: DEFAULT_ARENA_CAPACITY,
        }
    }

    /// An engine sized to the machine.
    pub fn with_available_parallelism() -> ParallelAnalysis {
        ParallelAnalysis {
            analysis: Analysis::new(),
            executor: Executor::with_available_parallelism(),
            arena_capacity: DEFAULT_ARENA_CAPACITY,
        }
    }

    /// Sets the node capacity worker arenas are pre-sized to (useful
    /// when the per-item trace size is known, e.g. from a pilot run).
    pub fn with_arena_capacity(mut self, capacity: usize) -> ParallelAnalysis {
        self.arena_capacity = capacity;
        self
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// The underlying analysis configuration.
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Runs one registration closure per item, in parallel, returning
    /// the reports in item order.
    ///
    /// # Errors
    ///
    /// If any item's analysis fails (ambiguous branch, no outputs, …),
    /// the error of the **lowest-indexed** failing item is returned —
    /// the same error the serial loop would have hit first — so error
    /// behaviour is independent of scheduling.
    pub fn run_batch<T, F>(&self, items: &[T], f: F) -> Result<Vec<Report>, AnalysisError>
    where
        T: Sync,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError> + Sync,
    {
        self.run_batch_map(items, |arena, analysis, _, item| {
            analysis.run_in(arena, |ctx| f(ctx, item))
        })
    }

    /// General form of [`ParallelAnalysis::run_batch`]: `f` receives the
    /// worker's arena, the engine's [`Analysis`], the item index and the
    /// item, and may run any number of analyses in the arena, returning
    /// an arbitrary per-item result (e.g. a single extracted
    /// significance instead of a whole [`Report`]).
    pub fn run_batch_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, AnalysisError>
    where
        T: Sync,
        R: Send,
        F: Fn(&mut AnalysisArena, &Analysis, usize, &T) -> Result<R, AnalysisError> + Sync,
    {
        let _span = scorpio_obs::span("parallel_batch");
        scorpio_obs::count("parallel.items", items.len() as u64);
        let results = self.executor.map_with_state(
            items,
            || {
                scorpio_obs::count("parallel.arena_init", 1);
                AnalysisArena::with_capacity(self.arena_capacity)
            },
            |arena, i, item| f(arena, &self.analysis, i, item),
        );
        // Item order is preserved by map_with_state, so collect() stops
        // at the first failing index — matching the serial loop.
        results.into_iter().collect()
    }

    /// [`ParallelAnalysis::run_batch`] in record-once / replay-many mode:
    /// each worker records and [compiles](scorpio_adjoint::CompiledTape)
    /// its first item's trace, then *replays* it for every further item
    /// with that item's input intervals — no re-recording, no `RefCell`
    /// traffic, no allocation — yielding bit-identical reports (see
    /// [`ReplayOrRecord`]).
    ///
    /// `inputs_of` must return the per-item input boxes **in
    /// registration order**, and the closure's trace shape must not
    /// otherwise depend on the item (a [`Ctx::branch`] in `f`
    /// automatically disables replay for safety). The returned
    /// [`ReplayStats`] aggregate all workers; a high
    /// [`fallback_rate`](ReplayStats::fallback_rate) means the batch is
    /// not actually shape-uniform and plain [`ParallelAnalysis::run_batch`]
    /// would be just as fast.
    ///
    /// # Errors
    ///
    /// As [`ParallelAnalysis::run_batch`].
    pub fn run_batch_replay<T, I, F>(
        &self,
        items: &[T],
        inputs_of: I,
        f: F,
    ) -> Result<(Vec<Report>, ReplayStats), AnalysisError>
    where
        T: Sync,
        I: Fn(&T) -> Vec<Interval> + Sync,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError> + Sync,
    {
        self.run_batch_replay_lanes::<DEFAULT_LANES, _, _, _>(items, inputs_of, f)
    }

    /// [`ParallelAnalysis::run_batch_replay`] with an explicit lane
    /// width (that method fixes `LANES` = [`DEFAULT_LANES`]): workers
    /// claim blocks of `LANES` items and serve each full block with
    /// **one** walk of the compiled op stream
    /// ([`ReplayOrRecord::run_lanes_in`]); partial trailing blocks and
    /// shape-divergent blocks fall back to per-item scalar replay.
    /// Results stay bit-identical to the scalar batch for every width.
    ///
    /// # Errors
    ///
    /// As [`ParallelAnalysis::run_batch`].
    pub fn run_batch_replay_lanes<const LANES: usize, T, I, F>(
        &self,
        items: &[T],
        inputs_of: I,
        f: F,
    ) -> Result<(Vec<Report>, ReplayStats), AnalysisError>
    where
        T: Sync,
        I: Fn(&T) -> Vec<Interval> + Sync,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError> + Sync,
    {
        self.run_batch_blocks::<LANES, _, _, _>(items, |arena, driver, lanes, block, out| {
            driver.run_lanes_in(arena, lanes, block, &inputs_of, &f, out)
        })
    }

    /// Variable-rows-only variant of [`ParallelAnalysis::run_batch_replay`]:
    /// returns one [`VarSignificances`] per item instead of a full
    /// [`Report`], skipping significance-graph construction entirely —
    /// the fast path for kernels that only read registered rows.
    /// Chunks items into [`DEFAULT_LANES`]-wide lane blocks like
    /// [`ParallelAnalysis::run_batch_replay`].
    ///
    /// # Errors
    ///
    /// As [`ParallelAnalysis::run_batch`].
    pub fn run_batch_replay_vars<T, I, F>(
        &self,
        items: &[T],
        inputs_of: I,
        f: F,
    ) -> Result<(Vec<VarSignificances>, ReplayStats), AnalysisError>
    where
        T: Sync,
        I: Fn(&T) -> Vec<Interval> + Sync,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError> + Sync,
    {
        self.run_batch_replay_vars_lanes::<DEFAULT_LANES, _, _, _>(items, inputs_of, f)
    }

    /// [`ParallelAnalysis::run_batch_replay_vars`] with an explicit
    /// lane width (see [`ParallelAnalysis::run_batch_replay_lanes`]).
    ///
    /// # Errors
    ///
    /// As [`ParallelAnalysis::run_batch`].
    pub fn run_batch_replay_vars_lanes<const LANES: usize, T, I, F>(
        &self,
        items: &[T],
        inputs_of: I,
        f: F,
    ) -> Result<(Vec<VarSignificances>, ReplayStats), AnalysisError>
    where
        T: Sync,
        I: Fn(&T) -> Vec<Interval> + Sync,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError> + Sync,
    {
        self.run_batch_blocks::<LANES, _, _, _>(items, |arena, driver, lanes, block, out| {
            driver.run_vars_lanes_in(arena, lanes, block, &inputs_of, &f, out)
        })
    }

    /// Lane-batched rows-then-extract driver: runs the replay batch in
    /// [`DEFAULT_LANES`]-wide lane blocks and maps every item's
    /// [`VarSignificances`] through `map` — the shape the kernel batch
    /// entry points use (register closure + row extraction, no per-item
    /// driver plumbing).
    ///
    /// # Errors
    ///
    /// As [`ParallelAnalysis::run_batch`].
    pub fn run_batch_replay_vars_map<T, R, I, F, M>(
        &self,
        items: &[T],
        inputs_of: I,
        f: F,
        map: M,
    ) -> Result<(Vec<R>, ReplayStats), AnalysisError>
    where
        T: Sync,
        R: Send,
        I: Fn(&T) -> Vec<Interval> + Sync,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError> + Sync,
        M: Fn(&T, &VarSignificances) -> Result<R, AnalysisError> + Sync,
    {
        self.run_batch_replay_vars_map_lanes::<DEFAULT_LANES, _, _, _, _, _>(
            items, inputs_of, f, map,
        )
    }

    /// [`ParallelAnalysis::run_batch_replay_vars_map`] with an explicit
    /// lane width (see [`ParallelAnalysis::run_batch_replay_lanes`]).
    ///
    /// # Errors
    ///
    /// As [`ParallelAnalysis::run_batch`].
    pub fn run_batch_replay_vars_map_lanes<const LANES: usize, T, R, I, F, M>(
        &self,
        items: &[T],
        inputs_of: I,
        f: F,
        map: M,
    ) -> Result<(Vec<R>, ReplayStats), AnalysisError>
    where
        T: Sync,
        R: Send,
        I: Fn(&T) -> Vec<Interval> + Sync,
        F: Fn(&Ctx<'_>, &T) -> Result<(), AnalysisError> + Sync,
        M: Fn(&T, &VarSignificances) -> Result<R, AnalysisError> + Sync,
    {
        self.run_batch_blocks::<LANES, _, _, _>(items, |arena, driver, lanes, block, out| {
            let mut vars = Vec::with_capacity(block.len());
            driver.run_vars_lanes_in(arena, lanes, block, &inputs_of, &f, &mut vars)?;
            for (item, v) in block.iter().zip(&vars) {
                out.push(map(item, v)?);
            }
            Ok(())
        })
    }

    /// The lane-block fan-out all replay batch modes share: items are
    /// chunked into `LANES`-sized blocks **at the executor granularity**
    /// (workers claim whole blocks, so a block's lanes always share one
    /// worker's compiled trace), `g` serves one block into its output
    /// vector, and per-item results are re-flattened in item order.
    /// Error behaviour matches the per-item modes: the first failing
    /// block is, by construction, the one holding the lowest-indexed
    /// failing item.
    fn run_batch_blocks<const LANES: usize, T, R, G>(
        &self,
        items: &[T],
        g: G,
    ) -> Result<(Vec<R>, ReplayStats), AnalysisError>
    where
        T: Sync,
        R: Send,
        G: Fn(
                &mut AnalysisArena,
                &mut ReplayOrRecord,
                &mut LaneScratch<LANES>,
                &[T],
                &mut Vec<R>,
            ) -> Result<(), AnalysisError>
            + Sync,
    {
        let _span = scorpio_obs::span("parallel_batch");
        scorpio_obs::count("parallel.items", items.len() as u64);
        let blocks: Vec<&[T]> = items.chunks(LANES.max(1)).collect();
        let results = self.executor.map_with_state(
            &blocks,
            || {
                scorpio_obs::count("parallel.arena_init", 1);
                (
                    AnalysisArena::with_capacity(self.arena_capacity),
                    ReplayOrRecord::new(self.analysis.clone()),
                    LaneScratch::<LANES>::new(),
                )
            },
            |(arena, driver, lanes), _, block| {
                let before = driver.stats();
                let mut out = Vec::with_capacity(block.len());
                let result = g(arena, driver, lanes, block, &mut out);
                let after = driver.stats();
                result.map(|()| (out, after.since(before)))
            },
        );
        let mut stats = ReplayStats::default();
        let mut out = Vec::with_capacity(items.len());
        for result in results {
            let (rs, delta) = result?;
            stats.merge(delta);
            out.extend(rs);
        }
        Ok((out, stats))
    }

    /// General form of the replay modes: `f` receives the worker's arena,
    /// the worker's [`ReplayOrRecord`] driver, the item index and the
    /// item, and drives the replay itself (e.g. via
    /// [`ReplayOrRecord::run_keyed_in`] when the trace shape depends on
    /// non-input data). Returns per-item results in item order plus the
    /// replay/record/fallback counters aggregated over all workers.
    ///
    /// # Errors
    ///
    /// As [`ParallelAnalysis::run_batch`].
    pub fn run_batch_replay_map<T, R, F>(
        &self,
        items: &[T],
        f: F,
    ) -> Result<(Vec<R>, ReplayStats), AnalysisError>
    where
        T: Sync,
        R: Send,
        F: Fn(&mut AnalysisArena, &mut ReplayOrRecord, usize, &T) -> Result<R, AnalysisError>
            + Sync,
    {
        let _span = scorpio_obs::span("parallel_batch");
        scorpio_obs::count("parallel.items", items.len() as u64);
        let results = self.executor.map_with_state(
            items,
            || {
                scorpio_obs::count("parallel.arena_init", 1);
                (
                    AnalysisArena::with_capacity(self.arena_capacity),
                    ReplayOrRecord::new(self.analysis.clone()),
                )
            },
            |(arena, driver), i, item| {
                // Snapshot the worker's counters around the item so the
                // per-item delta can ride back with the result (worker
                // state itself is dropped inside the pool).
                let before = driver.stats();
                let result = f(arena, driver, i, item);
                let after = driver.stats();
                result.map(|r| (r, after.since(before)))
            },
        );
        let mut stats = ReplayStats::default();
        let mut out = Vec::with_capacity(items.len());
        for result in results {
            let (r, delta) = result?;
            stats.merge(delta);
            out.push(r);
        }
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn maclaurin(ctx: &Ctx<'_>, &(x0, n): &(f64, usize)) -> Result<(), AnalysisError> {
        let x = ctx.input("x", x0 - 0.5, x0 + 0.5);
        let mut result = ctx.constant(0.0);
        for i in 0..n {
            let term = x.powi(i as i32);
            ctx.intermediate(&term, format!("term{i}"));
            result = result + term;
        }
        ctx.output(&result, "result");
        Ok(())
    }

    #[test]
    fn batch_matches_serial_reports() {
        let items: Vec<(f64, usize)> = (0..24).map(|i| (0.2 + 0.01 * i as f64, 5)).collect();
        let serial = ParallelAnalysis::new(1);
        let parallel = ParallelAnalysis::new(4);
        let a = serial.run_batch(&items, maclaurin).unwrap();
        let b = parallel.run_batch(&items, maclaurin).unwrap();
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.tape_len(), rb.tape_len());
            for (va, vb) in ra.registered().iter().zip(rb.registered()) {
                assert_eq!(va.name, vb.name);
                // Bit-identical, not approximately equal.
                assert_eq!(va.significance.to_bits(), vb.significance.to_bits());
                assert_eq!(va.significance_raw.to_bits(), vb.significance_raw.to_bits());
            }
        }
    }

    #[test]
    fn first_item_error_wins() {
        let items: Vec<i32> = (0..16).collect();
        let engine = ParallelAnalysis::new(4);
        let result = engine.run_batch(&items, |ctx, &i| {
            let x = ctx.input("x", -1.0, 1.0);
            if i >= 3 {
                // Ambiguous comparison: terminates this item's analysis.
                ctx.branch(x.value().certainly_lt(0.0.into()), &format!("x < 0 (item {i})"))?;
            }
            ctx.output(&x, "y");
            Ok(())
        });
        match result {
            Err(AnalysisError::AmbiguousBranch { condition }) => {
                assert_eq!(condition, "x < 0 (item 3)");
            }
            other => panic!("expected ambiguous branch, got {other:?}"),
        }
    }

    #[test]
    fn batch_map_extracts_scalars() {
        let items: Vec<f64> = (1..=8).map(|i| i as f64 * 0.1).collect();
        let engine = ParallelAnalysis::new(2).with_arena_capacity(64);
        let sigs = engine
            .run_batch_map(&items, |arena, analysis, _, &r| {
                let report = analysis.run_in(arena, |ctx| {
                    let x = ctx.input_centered("x", 1.0, r);
                    let y = x.sqr() + x;
                    ctx.output(&y, "y");
                    Ok(())
                })?;
                Ok(report.var("x").map(|v| v.significance_raw).unwrap_or(0.0))
            })
            .unwrap();
        assert_eq!(sigs.len(), 8);
        // Wider input intervals can only grow the raw significance.
        for w in sigs.windows(2) {
            assert!(w[1] >= w[0], "significance must grow with radius: {sigs:?}");
        }
    }

    #[test]
    fn replay_batch_matches_recording_batch_bitwise() {
        let items: Vec<f64> = (0..32).map(|i| 0.05 + 0.01 * i as f64).collect();
        let closure = |ctx: &Ctx<'_>, &r: &f64| {
            let x = ctx.input_centered("x", 0.5, r);
            let t = x.sin();
            ctx.intermediate(&t, "t");
            let y = t + x.sqr();
            ctx.output(&y, "y");
            Ok(())
        };
        let inputs_of = |&r: &f64| vec![Interval::centered(0.5, r)];
        let engine = ParallelAnalysis::new(1);
        let recorded = engine.run_batch(&items, closure).unwrap();
        let (replayed, stats) = engine.run_batch_replay(&items, inputs_of, closure).unwrap();
        assert_eq!(stats.records, 1, "only the first item may record");
        assert_eq!(stats.replays, items.len() as u64 - 1);
        assert_eq!(stats.fallbacks, 0);
        // 32 items in 4-wide blocks: block 0 warms up on the scalar
        // path (record + 3 scalar replays), blocks 1..8 lane-replay.
        assert_eq!(stats.lane_blocks, 7);
        assert_eq!(stats.lane_remainder, 4);
        for (a, b) in replayed.iter().zip(&recorded) {
            assert_eq!(a.tape_len(), b.tape_len());
            for (va, vb) in a.registered().iter().zip(b.registered()) {
                assert_eq!(va.name, vb.name);
                assert_eq!(va.significance.to_bits(), vb.significance.to_bits());
                assert_eq!(va.significance_raw.to_bits(), vb.significance_raw.to_bits());
            }
        }

        // The rows-only fast path agrees too.
        let (vars, _) = engine
            .run_batch_replay_vars(&items, inputs_of, closure)
            .unwrap();
        for (v, b) in vars.iter().zip(&recorded) {
            for (va, vb) in v.registered().iter().zip(b.registered()) {
                assert_eq!(va.significance.to_bits(), vb.significance.to_bits());
            }
        }
    }

    /// A batch whose size is not a multiple of the lane width: the
    /// trailing partial block must be scalar-replayed — visible in
    /// `lane_remainder` — and stay bit-identical to the recording batch.
    #[test]
    fn lane_remainder_items_are_scalar_replayed() {
        let items: Vec<f64> = (0..13).map(|i| 0.05 + 0.01 * i as f64).collect();
        let closure = |ctx: &Ctx<'_>, &r: &f64| {
            let x = ctx.input_centered("x", 0.5, r);
            let y = x.sin() + x.sqr();
            ctx.output(&y, "y");
            Ok(())
        };
        let inputs_of = |&r: &f64| vec![Interval::centered(0.5, r)];
        let engine = ParallelAnalysis::new(1);
        let recorded = engine.run_batch(&items, closure).unwrap();
        let (replayed, stats) = engine
            .run_batch_replay_lanes::<4, _, _, _>(&items, inputs_of, closure)
            .unwrap();
        // Block 0 warms up scalar (4 items), blocks 1/2 lane-replay,
        // the trailing 13 % 4 = 1 item is scalar remainder.
        assert_eq!(stats.lane_blocks, 2);
        assert_eq!(stats.lane_remainder, 5);
        assert_eq!(stats.records, 1);
        assert_eq!(stats.replays, 12);
        for (a, b) in replayed.iter().zip(&recorded) {
            for (va, vb) in a.registered().iter().zip(b.registered()) {
                assert_eq!(va.significance_raw.to_bits(), vb.significance_raw.to_bits());
            }
        }
    }

    /// Input arity diverging *inside* a lane block: the block must fall
    /// back to the scalar driver (re-recording as needed) instead of
    /// lane-replaying a wrong trace.
    #[test]
    fn lane_block_with_divergent_arity_falls_back() {
        // Items 0..6 bind one input, items 6..8 bind two: the arity
        // change lands in the middle of block 1 (items 4..8), so the
        // divergence is detected *inside* a lane block.
        let items: Vec<usize> = (0..8).collect();
        let closure = |ctx: &Ctx<'_>, &i: &usize| {
            let x = ctx.input("x", 0.1, 0.9);
            let y = if i < 6 {
                x.sqr()
            } else {
                let z = ctx.input("z", 1.0, 2.0);
                x.sqr() + z
            };
            ctx.output(&y, "y");
            Ok(())
        };
        let inputs_of = |&i: &usize| {
            if i < 6 {
                vec![Interval::new(0.1, 0.9)]
            } else {
                vec![Interval::new(0.1, 0.9), Interval::new(1.0, 2.0)]
            }
        };
        let engine = ParallelAnalysis::new(1);
        let recorded = engine.run_batch(&items, closure).unwrap();
        let (replayed, stats) = engine
            .run_batch_replay_lanes::<4, _, _, _>(&items, inputs_of, closure)
            .unwrap();
        // Block 1 (items 4..8) mixes arities: no lane block may serve
        // it, and the two-input items force a re-record fallback.
        assert_eq!(stats.lane_blocks, 0);
        assert_eq!(stats.lane_remainder, 8);
        assert!(stats.fallbacks >= 1, "arity change must fall back");
        assert_eq!(replayed.len(), recorded.len());
        for (a, b) in replayed.iter().zip(&recorded) {
            assert_eq!(a.registered().len(), b.registered().len());
            for (va, vb) in a.registered().iter().zip(b.registered()) {
                assert_eq!(va.significance_raw.to_bits(), vb.significance_raw.to_bits());
            }
        }
    }

    /// Width-1 lane batches are routed to the scalar driver — the
    /// ablation baseline really is the scalar replay path.
    #[test]
    fn one_lane_batch_degenerates_to_scalar_replay() {
        let items: Vec<f64> = (0..6).map(|i| 0.1 + 0.05 * i as f64).collect();
        let closure = |ctx: &Ctx<'_>, &r: &f64| {
            let x = ctx.input_centered("x", 0.5, r);
            let y = x.exp();
            ctx.output(&y, "y");
            Ok(())
        };
        let engine = ParallelAnalysis::new(1);
        let (_, stats) = engine
            .run_batch_replay_lanes::<1, _, _, _>(
                &items,
                |&r| vec![Interval::centered(0.5, r)],
                closure,
            )
            .unwrap();
        assert_eq!(stats.lane_blocks, 0);
        assert_eq!(stats.records, 1);
        assert_eq!(stats.replays, 5);
    }

    #[test]
    fn arena_reuse_is_invisible_in_results() {
        // One worker, many differently-shaped traces through one arena:
        // results must match fresh-tape runs exactly.
        let engine = ParallelAnalysis::new(1).with_arena_capacity(8);
        let items: Vec<(f64, usize)> = (1..12).map(|i| (0.3, i)).collect();
        let pooled = engine.run_batch(&items, maclaurin).unwrap();
        for (report, item) in pooled.iter().zip(&items) {
            let fresh = Analysis::new().run(|ctx| maclaurin(ctx, item)).unwrap();
            assert_eq!(report.tape_len(), fresh.tape_len());
            for (a, b) in report.registered().iter().zip(fresh.registered()) {
                assert_eq!(a.significance.to_bits(), b.significance.to_bits());
            }
        }
    }
}
