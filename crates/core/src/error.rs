//! Analysis error type.

use std::fmt;

/// Errors terminating a significance-analysis run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// An interval comparison could not be decided: part of the operand
    /// range satisfies the condition and part does not (§2.2 of the
    /// paper). The analysis is terminated and the condition reported to
    /// the user; [`crate::splitting`] can bisect instead.
    AmbiguousBranch {
        /// Human-readable description of the condition, e.g. `"r < cutoff"`.
        condition: String,
    },
    /// The analysed closure registered no output variable, so there is
    /// nothing to seed the adjoint sweep with.
    NoOutputs,
    /// A registered name was used twice.
    DuplicateName(String),
    /// Interval splitting exhausted its depth budget without resolving
    /// every ambiguous branch.
    SplitDepthExhausted {
        /// The condition still ambiguous at maximum depth.
        condition: String,
        /// The depth limit that was hit.
        max_depth: usize,
    },
    /// Splitting was requested but the function has no splittable
    /// (non-point) input.
    NothingToSplit,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::AmbiguousBranch { condition } => {
                write!(f, "ambiguous interval comparison: {condition}")
            }
            AnalysisError::NoOutputs => write!(f, "no output variable registered"),
            AnalysisError::DuplicateName(name) => {
                write!(f, "variable name registered twice: {name}")
            }
            AnalysisError::SplitDepthExhausted {
                condition,
                max_depth,
            } => write!(
                f,
                "interval splitting reached depth {max_depth} with condition still ambiguous: {condition}"
            ),
            AnalysisError::NothingToSplit => {
                write!(f, "no non-degenerate input interval available to split")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AnalysisError::AmbiguousBranch {
            condition: "r < c".into(),
        };
        assert!(e.to_string().contains("r < c"));
        assert!(AnalysisError::NoOutputs.to_string().contains("no output"));
        assert!(AnalysisError::DuplicateName("x".into())
            .to_string()
            .contains('x'));
    }
}
