//! The analysis report: per-variable significances and the exported graph.

use std::fmt;

use scorpio_adjoint::{CompiledTape, LaneReplayBuffers, NodeId, ReplayBuffers, Tape};
use scorpio_interval::Interval;

use crate::error::AnalysisError;
use crate::graph::{SigGraph, SigNode};
use crate::session::Registrations;
use crate::workflow::Partition;

/// The role a registered variable plays in the analysed computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Independent input with a declared range.
    Input,
    /// Named intermediate result.
    Intermediate,
    /// Registered output (adjoint seed).
    Output,
}

impl fmt::Display for VarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VarKind::Input => "input",
            VarKind::Intermediate => "intermediate",
            VarKind::Output => "output",
        };
        f.write_str(s)
    }
}

/// A registered variable with its analysis results.
#[derive(Debug, Clone)]
pub struct RegisteredVar {
    /// Registration name.
    pub name: String,
    /// Role in the computation.
    pub kind: VarKind,
    /// DynDFG node the variable was bound to.
    pub node: NodeId,
    /// Interval enclosure `[u]` from the forward sweep.
    pub enclosure: Interval,
    /// Interval adjoint `∇_{[u]}[y]` from the reverse sweep.
    pub derivative: Interval,
    /// Raw significance `S_y(u) = w([u] · ∇_{[u]}[y])` (Eq. 11).
    pub significance_raw: f64,
    /// Significance normalized by the total output significance, the
    /// scale Fig. 3 of the paper reports (final result ≡ 1.0).
    pub significance: f64,
}

/// The result of a significance-analysis run.
///
/// Produced by [`crate::Analysis::run`]; see the crate docs for an
/// end-to-end example.
#[derive(Debug, Clone)]
pub struct Report {
    registered: Vec<RegisteredVar>,
    graph: SigGraph,
    output_significance_raw: f64,
    delta: f64,
    tape_len: usize,
    empty_nodes: Vec<usize>,
}

impl Report {
    /// All registered variables in registration order.
    pub fn registered(&self) -> &[RegisteredVar] {
        &self.registered
    }

    /// Registered variables of one kind.
    pub fn registered_of(&self, kind: VarKind) -> impl Iterator<Item = &RegisteredVar> {
        self.registered.iter().filter(move |v| v.kind == kind)
    }

    /// Looks up a registered variable by name.
    pub fn var(&self, name: &str) -> Option<&RegisteredVar> {
        self.registered.iter().find(|v| v.name == name)
    }

    /// Normalized significance of a registered variable, if present.
    ///
    /// ```
    /// use scorpio_core::Analysis;
    /// let report = Analysis::new().run(|ctx| {
    ///     let x = ctx.input("x", 0.0, 1.0);
    ///     let y = x.sqr();
    ///     ctx.output(&y, "y");
    ///     Ok(())
    /// }).unwrap();
    /// assert_eq!(report.significance_of("y"), Some(1.0));
    /// assert!(report.significance_of("nope").is_none());
    /// ```
    pub fn significance_of(&self, name: &str) -> Option<f64> {
        self.var(name).map(|v| v.significance)
    }

    /// The significance-annotated DynDFG (input to Algorithm-1 steps
    /// S4/S5).
    pub fn graph(&self) -> &SigGraph {
        &self.graph
    }

    /// Convenience for the full Algorithm-1 pipeline: simplify (S4) then
    /// partition with the configured δ (S5).
    pub fn partition(&self) -> Partition {
        self.graph.simplified().partition(self.delta)
    }

    /// Raw (un-normalized) total output significance `Σ_i w([y_i])`, the
    /// normalization denominator.
    pub fn output_significance_raw(&self) -> f64 {
        self.output_significance_raw
    }

    /// Number of DynDFG nodes the run recorded.
    pub fn tape_len(&self) -> usize {
        self.tape_len
    }

    /// DynDFG node ids whose forward enclosure is the EMPTY interval.
    ///
    /// An empty enclosure means the recorded operation has no result
    /// for *any* point of the input box (e.g. division by an exact
    /// zero interval), so Eq. 11 is undefined there: those nodes carry
    /// `NaN` significance instead of silently ranking last, and the
    /// analysis surfaces them here for diagnosis.
    pub fn empty_enclosures(&self) -> &[usize] {
        &self.empty_nodes
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "significance report ({} nodes, {} registered)",
            self.tape_len,
            self.registered.len()
        )?;
        writeln!(
            f,
            "{:<20} {:<13} {:>11} {:>26} {:>26}",
            "name", "kind", "S (norm)", "enclosure", "derivative"
        )?;
        for v in &self.registered {
            writeln!(
                f,
                "{:<20} {:<13} {:>11.4} {:>26} {:>26}",
                v.name,
                v.kind.to_string(),
                v.significance,
                v.enclosure.to_string(),
                v.derivative.to_string()
            )?;
        }
        if !self.empty_nodes.is_empty() {
            writeln!(
                f,
                "warning: {} node(s) with EMPTY enclosure (NaN significance): {:?}",
                self.empty_nodes.len(),
                self.empty_nodes
            )?;
        }
        Ok(())
    }
}

/// Eq. 11 significance with the EMPTY-enclosure policy: a node whose
/// value or adjoint enclosure is empty has no defined significance —
/// Eq. 11 computes the width of a product over a set with no members —
/// so it reports `NaN` explicitly rather than relying on how
/// `nearest::mul` happens to treat empty operands. Callers that rank
/// or aggregate must treat the NaN as "undefined", not "zero"; the
/// report surfaces the affected nodes via [`Report::empty_enclosures`].
fn significance_raw_from(value: Interval, adjoint: Interval) -> f64 {
    if value.is_empty() || adjoint.is_empty() {
        f64::NAN
    } else {
        scorpio_interval::nearest::mul(value, adjoint).width()
    }
}

/// Builds the report from a recorded tape: performs the reverse sweep
/// (with every registered output seeded by 1, per §2.3 for vector
/// functions) and evaluates Eq. 11 for every node. The reverse sweep
/// runs in the caller-provided `scratch` buffer (cleared and resized as
/// needed), which is handed back on return, so arena-driven repeated
/// analyses allocate the adjoint vector once instead of per run.
pub(crate) fn build_report_with(
    tape: &Tape<Interval>,
    regs: Registrations,
    delta: f64,
    scratch: &mut Vec<Interval>,
) -> Result<Report, AnalysisError> {
    let outputs = output_nodes(&regs)?;

    let seeds: Vec<(NodeId, Interval)> =
        outputs.iter().map(|&o| (o, Interval::ONE)).collect();
    let adjoints = {
        let _span = scorpio_obs::span("reverse");
        tape.adjoints_in(&seeds, std::mem::take(scratch))
    };

    let _span = scorpio_obs::span("significance");
    // Rows + normalization denominator via the shared assembly (Eq. 11
    // with the round-to-nearest product; see `registered_rows`).
    let (registered, total_raw) = registered_rows(
        &regs,
        &outputs,
        |node| tape.value(node),
        |node| adjoints.get(node),
    );
    let significance_raw = |node: NodeId, value: Interval| -> f64 {
        significance_raw_from(value, adjoints.get(node))
    };
    let normalize = |raw: f64| {
        if total_raw > 0.0 && total_raw.is_finite() {
            raw / total_raw
        } else {
            raw
        }
    };

    // Zero-copy graph construction: one borrow of the arena for the
    // whole loop, rather than cloning the trace (or re-borrowing the
    // tape per node) just to read it once.
    let mut nodes: Vec<SigNode> = tape.with_nodes(|nodes| {
        nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                let id = NodeId::from_index(i);
                let raw = significance_raw(id, node.value());
                SigNode {
                    id: i,
                    op: node.op(),
                    preds: node.preds().map(|p| p.index()).collect(),
                    value: node.value(),
                    derivative: adjoints.get(id),
                    significance: normalize(raw),
                    level: None,
                    name: None,
                    is_output: false,
                    removed: false,
                }
            })
            .collect()
    });

    for entry in &regs.entries {
        let idx = entry.node.index();
        nodes[idx].name = Some(entry.name.clone());
        if entry.kind == VarKind::Output {
            nodes[idx].is_output = true;
        }
    }

    let empty_nodes: Vec<usize> = nodes
        .iter()
        .filter(|n| n.value.is_empty())
        .map(|n| n.id)
        .collect();
    scorpio_obs::count("analysis.empty_enclosures", empty_nodes.len() as u64);
    let graph = SigGraph::new(nodes, outputs.iter().map(|o| o.index()).collect());
    let report = Report {
        registered,
        graph,
        output_significance_raw: total_raw,
        delta,
        tape_len: tape.len(),
        empty_nodes,
    };
    *scratch = adjoints.into_inner();
    Ok(report)
}

/// The registered-variable rows of a report without the node-level
/// [`SigGraph`] — the light extraction the batch replay entry points
/// use when only named significances are consumed. Every field is
/// computed by the same floating-point operations as the corresponding
/// [`Report`] row, so the rows are bit-identical to a full report's.
#[derive(Debug, Clone)]
pub struct VarSignificances {
    vars: Vec<RegisteredVar>,
    output_significance_raw: f64,
    tape_len: usize,
}

impl VarSignificances {
    /// All registered variables in registration order.
    pub fn registered(&self) -> &[RegisteredVar] {
        &self.vars
    }

    /// Looks up a registered variable by name.
    pub fn var(&self, name: &str) -> Option<&RegisteredVar> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Normalized significance of a registered variable, if present.
    pub fn significance_of(&self, name: &str) -> Option<f64> {
        self.var(name).map(|v| v.significance)
    }

    /// Raw total output significance (the normalization denominator).
    pub fn output_significance_raw(&self) -> f64 {
        self.output_significance_raw
    }

    /// Number of DynDFG nodes the run recorded (or replayed).
    pub fn tape_len(&self) -> usize {
        self.tape_len
    }
}

/// Output node ids of `regs`, or the [`AnalysisError::NoOutputs`] error.
fn output_nodes(regs: &Registrations) -> Result<Vec<NodeId>, AnalysisError> {
    let outputs: Vec<NodeId> = regs
        .entries
        .iter()
        .filter(|e| e.kind == VarKind::Output)
        .map(|e| e.node)
        .collect();
    if outputs.is_empty() {
        return Err(AnalysisError::NoOutputs);
    }
    Ok(outputs)
}

/// Assembles the per-registration rows shared by every report flavour.
///
/// `value_of` / `adjoint_of` look up the forward and reverse sweep
/// results per node; the arithmetic (Eq. 11 + normalization) is exactly
/// [`build_report_with`]'s, so recorded and replayed rows agree bit for
/// bit.
fn registered_rows(
    regs: &Registrations,
    outputs: &[NodeId],
    value_of: impl Fn(NodeId) -> Interval,
    adjoint_of: impl Fn(NodeId) -> Interval,
) -> (Vec<RegisteredVar>, f64) {
    let significance_raw =
        |node: NodeId| -> f64 { significance_raw_from(value_of(node), adjoint_of(node)) };
    let total_raw: f64 = outputs.iter().map(|&o| significance_raw(o)).sum();
    let normalize = |raw: f64| {
        if total_raw > 0.0 && total_raw.is_finite() {
            raw / total_raw
        } else {
            raw
        }
    };
    let rows = regs
        .entries
        .iter()
        .map(|entry| {
            let raw = significance_raw(entry.node);
            RegisteredVar {
                name: entry.name.clone(),
                kind: entry.kind,
                node: entry.node,
                enclosure: value_of(entry.node),
                derivative: adjoint_of(entry.node),
                significance_raw: raw,
                significance: normalize(raw),
            }
        })
        .collect();
    (rows, total_raw)
}

/// [`build_report_with`]'s registered rows from a *recorded* tape,
/// without building the node graph.
pub(crate) fn build_vars_with(
    tape: &Tape<Interval>,
    regs: &Registrations,
    scratch: &mut Vec<Interval>,
) -> Result<VarSignificances, AnalysisError> {
    let outputs = output_nodes(regs)?;
    let seeds: Vec<(NodeId, Interval)> =
        outputs.iter().map(|&o| (o, Interval::ONE)).collect();
    let adjoints = {
        let _span = scorpio_obs::span("reverse");
        tape.adjoints_in(&seeds, std::mem::take(scratch))
    };
    let _span = scorpio_obs::span("significance");
    let (vars, total_raw) = registered_rows(
        regs,
        &outputs,
        |node| tape.value(node),
        |node| adjoints.get(node),
    );
    let result = VarSignificances {
        vars,
        output_significance_raw: total_raw,
        tape_len: tape.len(),
    };
    *scratch = adjoints.into_inner();
    Ok(result)
}

/// Runs the reverse sweep over already-replayed buffers (every output
/// seeded with 1, as in [`build_report_with`]).
fn replayed_adjoints(
    compiled: &CompiledTape<Interval>,
    outputs: &[NodeId],
    buf: &mut ReplayBuffers<Interval>,
) {
    let _span = scorpio_obs::span_detail("reverse");
    let seeds: Vec<(NodeId, Interval)> =
        outputs.iter().map(|&o| (o, Interval::ONE)).collect();
    compiled.adjoints_into(&seeds, buf);
}

/// Full report from a compiled trace whose buffers have been filled by
/// [`CompiledTape::replay`] — the replay-mode twin of
/// [`build_report_with`], producing bit-identical contents (values and
/// partials are recomputed with the recording formulas, the reverse
/// sweep mirrors [`Tape::adjoints_in`], and the assembly below runs the
/// same row/graph arithmetic).
pub(crate) fn build_report_replayed(
    compiled: &CompiledTape<Interval>,
    regs: &Registrations,
    delta: f64,
    buf: &mut ReplayBuffers<Interval>,
) -> Result<Report, AnalysisError> {
    let outputs = output_nodes(regs)?;
    replayed_adjoints(compiled, &outputs, buf);
    let _span = scorpio_obs::span_detail("significance");
    Ok(replayed_report_from(
        compiled,
        regs,
        &outputs,
        delta,
        |node| buf.value(node),
        |node| buf.adjoint(node),
    ))
}

/// Assembles one [`Report`] from replayed sweep results exposed via
/// accessor closures — shared by the scalar and the per-lane replayed
/// report builders, so lane-built reports run exactly the scalar
/// assembly arithmetic.
fn replayed_report_from(
    compiled: &CompiledTape<Interval>,
    regs: &Registrations,
    outputs: &[NodeId],
    delta: f64,
    value_of: impl Fn(NodeId) -> Interval,
    adjoint_of: impl Fn(NodeId) -> Interval,
) -> Report {
    let (registered, total_raw) = registered_rows(regs, outputs, &value_of, &adjoint_of);

    let significance_raw =
        |id: NodeId| -> f64 { significance_raw_from(value_of(id), adjoint_of(id)) };
    let normalize = |raw: f64| {
        if total_raw > 0.0 && total_raw.is_finite() {
            raw / total_raw
        } else {
            raw
        }
    };
    let mut nodes: Vec<SigNode> = (0..compiled.len())
        .map(|i| {
            let id = NodeId::from_index(i);
            SigNode {
                id: i,
                op: compiled.op(i),
                preds: compiled.preds_of(i).map(|p| p.index()).collect(),
                value: value_of(id),
                derivative: adjoint_of(id),
                significance: normalize(significance_raw(id)),
                level: None,
                name: None,
                is_output: false,
                removed: false,
            }
        })
        .collect();
    for entry in &regs.entries {
        let idx = entry.node.index();
        nodes[idx].name = Some(entry.name.clone());
        if entry.kind == VarKind::Output {
            nodes[idx].is_output = true;
        }
    }

    let empty_nodes: Vec<usize> = nodes
        .iter()
        .filter(|n| n.value.is_empty())
        .map(|n| n.id)
        .collect();
    scorpio_obs::count("analysis.empty_enclosures", empty_nodes.len() as u64);
    let graph = SigGraph::new(nodes, outputs.iter().map(|o| o.index()).collect());
    Report {
        registered,
        graph,
        output_significance_raw: total_raw,
        delta,
        tape_len: compiled.len(),
        empty_nodes,
    }
}

/// Full reports for every lane of a lane-replayed block — the lane twin
/// of [`build_report_replayed`]: one reverse sweep over the lane
/// buffers (each output seeded with 1 in every lane), then the shared
/// report assembly per lane. Appends `LANES` reports to `out` in lane
/// (= item) order.
pub(crate) fn build_report_replayed_lanes<const LANES: usize>(
    compiled: &CompiledTape<Interval>,
    regs: &Registrations,
    delta: f64,
    buf: &mut LaneReplayBuffers<Interval, LANES>,
    out: &mut Vec<Report>,
) -> Result<(), AnalysisError> {
    let outputs = output_nodes(regs)?;
    {
        let _span = scorpio_obs::span_detail("reverse");
        let seeds: Vec<(NodeId, Interval)> =
            outputs.iter().map(|&o| (o, Interval::ONE)).collect();
        compiled.adjoints_into_lanes(&seeds, buf);
    }
    let _span = scorpio_obs::span_detail("significance");
    for l in 0..LANES {
        out.push(replayed_report_from(
            compiled,
            regs,
            &outputs,
            delta,
            |node| buf.value(node, l),
            |node| buf.adjoint(node, l),
        ));
    }
    Ok(())
}

/// Registered rows for every lane of a lane-replayed block — the lane
/// twin of [`build_vars_replayed`]. Appends `LANES` results to `out`
/// in lane (= item) order; rows are bit-identical to what a scalar
/// replay of each item would produce.
pub(crate) fn build_vars_replayed_lanes<const LANES: usize>(
    compiled: &CompiledTape<Interval>,
    regs: &Registrations,
    buf: &mut LaneReplayBuffers<Interval, LANES>,
    out: &mut Vec<VarSignificances>,
) -> Result<(), AnalysisError> {
    let outputs = output_nodes(regs)?;
    {
        let _span = scorpio_obs::span_detail("reverse");
        let seeds: Vec<(NodeId, Interval)> =
            outputs.iter().map(|&o| (o, Interval::ONE)).collect();
        compiled.adjoints_into_lanes(&seeds, buf);
    }
    let _span = scorpio_obs::span_detail("significance");
    for l in 0..LANES {
        let (vars, total_raw) = registered_rows(
            regs,
            &outputs,
            |node| buf.value(node, l),
            |node| buf.adjoint(node, l),
        );
        out.push(VarSignificances {
            vars,
            output_significance_raw: total_raw,
            tape_len: compiled.len(),
        });
    }
    Ok(())
}

/// Registered rows only, from replayed buffers — the hot path of the
/// batch kernels (skips the whole per-node graph construction).
pub(crate) fn build_vars_replayed(
    compiled: &CompiledTape<Interval>,
    regs: &Registrations,
    buf: &mut ReplayBuffers<Interval>,
) -> Result<VarSignificances, AnalysisError> {
    let outputs = output_nodes(regs)?;
    replayed_adjoints(compiled, &outputs, buf);
    let _span = scorpio_obs::span_detail("significance");
    let (vars, total_raw) = registered_rows(
        regs,
        &outputs,
        |node| buf.value(node),
        |node| buf.adjoint(node),
    );
    Ok(VarSignificances {
        vars,
        output_significance_raw: total_raw,
        tape_len: compiled.len(),
    })
}
