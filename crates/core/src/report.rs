//! The analysis report: per-variable significances and the exported graph.

use std::fmt;

use scorpio_adjoint::{NodeId, Tape};
use scorpio_interval::Interval;

use crate::error::AnalysisError;
use crate::graph::{SigGraph, SigNode};
use crate::session::Registrations;
use crate::workflow::Partition;

/// The role a registered variable plays in the analysed computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Independent input with a declared range.
    Input,
    /// Named intermediate result.
    Intermediate,
    /// Registered output (adjoint seed).
    Output,
}

impl fmt::Display for VarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VarKind::Input => "input",
            VarKind::Intermediate => "intermediate",
            VarKind::Output => "output",
        };
        f.write_str(s)
    }
}

/// A registered variable with its analysis results.
#[derive(Debug, Clone)]
pub struct RegisteredVar {
    /// Registration name.
    pub name: String,
    /// Role in the computation.
    pub kind: VarKind,
    /// DynDFG node the variable was bound to.
    pub node: NodeId,
    /// Interval enclosure `[u]` from the forward sweep.
    pub enclosure: Interval,
    /// Interval adjoint `∇_{[u]}[y]` from the reverse sweep.
    pub derivative: Interval,
    /// Raw significance `S_y(u) = w([u] · ∇_{[u]}[y])` (Eq. 11).
    pub significance_raw: f64,
    /// Significance normalized by the total output significance, the
    /// scale Fig. 3 of the paper reports (final result ≡ 1.0).
    pub significance: f64,
}

/// The result of a significance-analysis run.
///
/// Produced by [`crate::Analysis::run`]; see the crate docs for an
/// end-to-end example.
#[derive(Debug, Clone)]
pub struct Report {
    registered: Vec<RegisteredVar>,
    graph: SigGraph,
    output_significance_raw: f64,
    delta: f64,
    tape_len: usize,
}

impl Report {
    /// All registered variables in registration order.
    pub fn registered(&self) -> &[RegisteredVar] {
        &self.registered
    }

    /// Registered variables of one kind.
    pub fn registered_of(&self, kind: VarKind) -> impl Iterator<Item = &RegisteredVar> {
        self.registered.iter().filter(move |v| v.kind == kind)
    }

    /// Looks up a registered variable by name.
    pub fn var(&self, name: &str) -> Option<&RegisteredVar> {
        self.registered.iter().find(|v| v.name == name)
    }

    /// Normalized significance of a registered variable, if present.
    ///
    /// ```
    /// use scorpio_core::Analysis;
    /// let report = Analysis::new().run(|ctx| {
    ///     let x = ctx.input("x", 0.0, 1.0);
    ///     let y = x.sqr();
    ///     ctx.output(&y, "y");
    ///     Ok(())
    /// }).unwrap();
    /// assert_eq!(report.significance_of("y"), Some(1.0));
    /// assert!(report.significance_of("nope").is_none());
    /// ```
    pub fn significance_of(&self, name: &str) -> Option<f64> {
        self.var(name).map(|v| v.significance)
    }

    /// The significance-annotated DynDFG (input to Algorithm-1 steps
    /// S4/S5).
    pub fn graph(&self) -> &SigGraph {
        &self.graph
    }

    /// Convenience for the full Algorithm-1 pipeline: simplify (S4) then
    /// partition with the configured δ (S5).
    pub fn partition(&self) -> Partition {
        self.graph.simplified().partition(self.delta)
    }

    /// Raw (un-normalized) total output significance `Σ_i w([y_i])`, the
    /// normalization denominator.
    pub fn output_significance_raw(&self) -> f64 {
        self.output_significance_raw
    }

    /// Number of DynDFG nodes the run recorded.
    pub fn tape_len(&self) -> usize {
        self.tape_len
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "significance report ({} nodes, {} registered)",
            self.tape_len,
            self.registered.len()
        )?;
        writeln!(
            f,
            "{:<20} {:<13} {:>11} {:>26} {:>26}",
            "name", "kind", "S (norm)", "enclosure", "derivative"
        )?;
        for v in &self.registered {
            writeln!(
                f,
                "{:<20} {:<13} {:>11.4} {:>26} {:>26}",
                v.name,
                v.kind.to_string(),
                v.significance,
                v.enclosure.to_string(),
                v.derivative.to_string()
            )?;
        }
        Ok(())
    }
}

/// Builds the report from a recorded tape: performs the reverse sweep
/// (with every registered output seeded by 1, per §2.3 for vector
/// functions) and evaluates Eq. 11 for every node. The reverse sweep
/// runs in the caller-provided `scratch` buffer (cleared and resized as
/// needed), which is handed back on return, so arena-driven repeated
/// analyses allocate the adjoint vector once instead of per run.
pub(crate) fn build_report_with(
    tape: &Tape<Interval>,
    regs: Registrations,
    delta: f64,
    scratch: &mut Vec<Interval>,
) -> Result<Report, AnalysisError> {
    let outputs: Vec<NodeId> = regs
        .entries
        .iter()
        .filter(|e| e.kind == VarKind::Output)
        .map(|e| e.node)
        .collect();
    if outputs.is_empty() {
        return Err(AnalysisError::NoOutputs);
    }

    let seeds: Vec<(NodeId, Interval)> =
        outputs.iter().map(|&o| (o, Interval::ONE)).collect();
    let adjoints = tape.adjoints_in(&seeds, std::mem::take(scratch));

    // Eq. 11, raw. The product uses round-to-nearest: significance is a
    // metric derived from the (already outward-rounded) enclosures, not
    // itself an enclosure, and outward rounding here would turn exact
    // zeros (constant values, zero derivatives) into ±1-ULP noise.
    let significance_raw = |node: NodeId, value: Interval| -> f64 {
        let d = adjoints.get(node);
        scorpio_interval::nearest::mul(value, d).width()
    };

    // Normalization: total output significance (so the final result of an
    // accumulation reads 1.0, as in Fig. 3a).
    let total_raw: f64 = outputs
        .iter()
        .map(|&o| significance_raw(o, tape.value(o)))
        .sum();
    let normalize = move |raw: f64| {
        if total_raw > 0.0 && total_raw.is_finite() {
            raw / total_raw
        } else {
            raw
        }
    };

    // Zero-copy graph construction: one borrow of the arena for the
    // whole loop, rather than cloning the trace (or re-borrowing the
    // tape per node) just to read it once.
    let mut nodes: Vec<SigNode> = tape.with_nodes(|nodes| {
        nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                let id = NodeId::from_index(i);
                let raw = significance_raw(id, node.value());
                SigNode {
                    id: i,
                    op: node.op(),
                    preds: node.preds().map(|p| p.index()).collect(),
                    value: node.value(),
                    derivative: adjoints.get(id),
                    significance: normalize(raw),
                    level: None,
                    name: None,
                    is_output: false,
                    removed: false,
                }
            })
            .collect()
    });

    let mut registered = Vec::with_capacity(regs.entries.len());
    for entry in &regs.entries {
        let idx = entry.node.index();
        nodes[idx].name = Some(entry.name.clone());
        if entry.kind == VarKind::Output {
            nodes[idx].is_output = true;
        }
        let value = tape.value(entry.node);
        let raw = significance_raw(entry.node, value);
        registered.push(RegisteredVar {
            name: entry.name.clone(),
            kind: entry.kind,
            node: entry.node,
            enclosure: value,
            derivative: adjoints.get(entry.node),
            significance_raw: raw,
            significance: normalize(raw),
        });
    }

    let graph = SigGraph::new(nodes, outputs.iter().map(|o| o.index()).collect());
    let report = Report {
        registered,
        graph,
        output_significance_raw: total_raw,
        delta,
        tape_len: tape.len(),
    };
    *scratch = adjoints.into_inner();
    Ok(report)
}
