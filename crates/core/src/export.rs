//! Machine-readable report export (JSON via serde, CSV).
//!
//! The paper argues the analysis "can help developers gain insight ...
//! since it allows them to 'visualize' the significance for different
//! parts of the computation"; these exporters feed that visualisation:
//! JSON for tooling, CSV for spreadsheets/plotting.

use serde::Serialize;

use crate::graph::SigGraph;
use crate::report::{Report, VarKind};

/// Serialisable view of one registered variable.
#[derive(Debug, Clone, Serialize)]
pub struct VarRecord {
    /// Registration name.
    pub name: String,
    /// `"input"`, `"intermediate"` or `"output"`.
    pub kind: String,
    /// Enclosure bounds.
    pub enclosure: [f64; 2],
    /// Interval-derivative bounds.
    pub derivative: [f64; 2],
    /// Raw Eq. 11 significance.
    pub significance_raw: f64,
    /// Normalized significance.
    pub significance: f64,
}

/// Serialisable view of one DynDFG node.
#[derive(Debug, Clone, Serialize)]
pub struct NodeRecord {
    /// Dense node id.
    pub id: usize,
    /// Operation mnemonic.
    pub op: String,
    /// Predecessor ids.
    pub preds: Vec<usize>,
    /// Normalized significance.
    pub significance: f64,
    /// BFS level from the outputs, if reachable.
    pub level: Option<usize>,
    /// Registration name, if any.
    pub name: Option<String>,
    /// `true` for registered outputs.
    pub is_output: bool,
}

/// Serialisable view of a whole report.
#[derive(Debug, Clone, Serialize)]
pub struct ReportRecord {
    /// Number of recorded DynDFG nodes.
    pub tape_len: usize,
    /// Raw total output significance (normalization denominator).
    pub output_significance_raw: f64,
    /// Registered variables.
    pub vars: Vec<VarRecord>,
    /// Live graph nodes.
    pub nodes: Vec<NodeRecord>,
}

impl Report {
    /// Builds the serialisable record of this report.
    pub fn to_record(&self) -> ReportRecord {
        let kind_str = |k: VarKind| {
            match k {
                VarKind::Input => "input",
                VarKind::Intermediate => "intermediate",
                VarKind::Output => "output",
            }
            .to_owned()
        };
        ReportRecord {
            tape_len: self.tape_len(),
            output_significance_raw: self.output_significance_raw(),
            vars: self
                .registered()
                .iter()
                .map(|v| VarRecord {
                    name: v.name.clone(),
                    kind: kind_str(v.kind),
                    enclosure: [v.enclosure.inf(), v.enclosure.sup()],
                    derivative: [v.derivative.inf(), v.derivative.sup()],
                    significance_raw: v.significance_raw,
                    significance: v.significance,
                })
                .collect(),
            nodes: graph_records(self.graph()),
        }
    }

    /// Serialises the report as a JSON object.
    ///
    /// The encoder is a small self-contained one (serde's data model via
    /// a hand-rolled JSON backend) so the workspace needs no extra
    /// serialisation crate.
    ///
    /// ```
    /// use scorpio_core::Analysis;
    /// let report = Analysis::new().run(|ctx| {
    ///     let x = ctx.input("x", 0.0, 1.0);
    ///     let y = x.sqr();
    ///     ctx.output(&y, "y");
    ///     Ok(())
    /// }).unwrap();
    /// let json = report.to_json();
    /// assert!(json.contains("\"vars\""));
    /// assert!(json.contains("\"name\":\"x\""));
    /// ```
    pub fn to_json(&self) -> String {
        json::to_string(&self.to_record())
    }

    /// Serialises the registered variables as CSV
    /// (`name,kind,enclosure_lo,enclosure_hi,deriv_lo,deriv_hi,raw,normalized`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "name,kind,enclosure_lo,enclosure_hi,derivative_lo,derivative_hi,significance_raw,significance\n",
        );
        for v in self.registered() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                v.name,
                v.kind,
                v.enclosure.inf(),
                v.enclosure.sup(),
                v.derivative.inf(),
                v.derivative.sup(),
                v.significance_raw,
                v.significance
            ));
        }
        out
    }
}

fn graph_records(graph: &SigGraph) -> Vec<NodeRecord> {
    graph
        .live_nodes()
        .map(|n| NodeRecord {
            id: n.id,
            op: n.op.to_string(),
            preds: n.preds.clone(),
            significance: n.significance,
            level: n.level,
            name: n.name.clone(),
            is_output: n.is_output,
        })
        .collect()
}

/// A minimal JSON serializer over serde's data model — enough for the
/// plain-old-data records above (no external JSON crate required).
mod json {
    use serde::ser::{self, Serialize};
    use std::fmt::Write as _;

    /// Serialises any `Serialize` value to a JSON string.
    ///
    /// # Panics
    ///
    /// Panics on types outside the subset the records use (maps with
    /// non-string keys, bytes); the record types above stay inside it.
    pub fn to_string<T: Serialize>(value: &T) -> String {
        let mut out = String::new();
        value
            .serialize(&mut Ser { out: &mut out })
            .expect("record serialisation cannot fail");
        out
    }

    #[derive(Debug)]
    pub struct Error(String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
    impl std::error::Error for Error {}
    impl ser::Error for Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    #[derive(Debug)]
    pub struct Ser<'a> {
        out: &'a mut String,
    }

    fn escape(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn fmt_f64(out: &mut String, v: f64) {
        if v.is_finite() {
            let _ = write!(out, "{v}");
        } else if v.is_nan() {
            out.push_str("null");
        } else if v > 0.0 {
            out.push_str("1e999"); // renders as Infinity in lenient parsers
        } else {
            out.push_str("-1e999");
        }
    }

    impl<'a, 'b> ser::Serializer for &'b mut Ser<'a> {
        type Ok = ();
        type Error = Error;
        type SerializeSeq = Seq<'a, 'b>;
        type SerializeTuple = Seq<'a, 'b>;
        type SerializeTupleStruct = Seq<'a, 'b>;
        type SerializeTupleVariant = Seq<'a, 'b>;
        type SerializeMap = Map<'a, 'b>;
        type SerializeStruct = Map<'a, 'b>;
        type SerializeStructVariant = Map<'a, 'b>;

        fn serialize_bool(self, v: bool) -> Result<(), Error> {
            self.out.push_str(if v { "true" } else { "false" });
            Ok(())
        }
        fn serialize_i8(self, v: i8) -> Result<(), Error> {
            self.serialize_i64(v as i64)
        }
        fn serialize_i16(self, v: i16) -> Result<(), Error> {
            self.serialize_i64(v as i64)
        }
        fn serialize_i32(self, v: i32) -> Result<(), Error> {
            self.serialize_i64(v as i64)
        }
        fn serialize_i64(self, v: i64) -> Result<(), Error> {
            let _ = write!(self.out, "{v}");
            Ok(())
        }
        fn serialize_u8(self, v: u8) -> Result<(), Error> {
            self.serialize_u64(v as u64)
        }
        fn serialize_u16(self, v: u16) -> Result<(), Error> {
            self.serialize_u64(v as u64)
        }
        fn serialize_u32(self, v: u32) -> Result<(), Error> {
            self.serialize_u64(v as u64)
        }
        fn serialize_u64(self, v: u64) -> Result<(), Error> {
            let _ = write!(self.out, "{v}");
            Ok(())
        }
        fn serialize_f32(self, v: f32) -> Result<(), Error> {
            fmt_f64(self.out, v as f64);
            Ok(())
        }
        fn serialize_f64(self, v: f64) -> Result<(), Error> {
            fmt_f64(self.out, v);
            Ok(())
        }
        fn serialize_char(self, v: char) -> Result<(), Error> {
            escape(self.out, &v.to_string());
            Ok(())
        }
        fn serialize_str(self, v: &str) -> Result<(), Error> {
            escape(self.out, v);
            Ok(())
        }
        fn serialize_bytes(self, _: &[u8]) -> Result<(), Error> {
            Err(ser::Error::custom("bytes unsupported"))
        }
        fn serialize_none(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), Error> {
            v.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_unit_struct(self, _: &'static str) -> Result<(), Error> {
            self.serialize_unit()
        }
        fn serialize_unit_variant(
            self,
            _: &'static str,
            _: u32,
            variant: &'static str,
        ) -> Result<(), Error> {
            escape(self.out, variant);
            Ok(())
        }
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            _: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            v.serialize(self)
        }
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            _: &'static str,
            _: u32,
            variant: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            self.out.push('{');
            escape(self.out, variant);
            self.out.push(':');
            v.serialize(&mut *self)?;
            self.out.push('}');
            Ok(())
        }
        fn serialize_seq(self, _: Option<usize>) -> Result<Seq<'a, 'b>, Error> {
            self.out.push('[');
            Ok(Seq {
                ser: self,
                first: true,
            })
        }
        fn serialize_tuple(self, len: usize) -> Result<Seq<'a, 'b>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_struct(
            self,
            _: &'static str,
            len: usize,
        ) -> Result<Seq<'a, 'b>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            len: usize,
        ) -> Result<Seq<'a, 'b>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_map(self, _: Option<usize>) -> Result<Map<'a, 'b>, Error> {
            self.out.push('{');
            Ok(Map {
                ser: self,
                first: true,
            })
        }
        fn serialize_struct(
            self,
            _: &'static str,
            _: usize,
        ) -> Result<Map<'a, 'b>, Error> {
            self.serialize_map(None)
        }
        fn serialize_struct_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            _: usize,
        ) -> Result<Map<'a, 'b>, Error> {
            self.serialize_map(None)
        }
    }

    #[derive(Debug)]
    pub struct Seq<'a, 'b> {
        ser: &'b mut Ser<'a>,
        first: bool,
    }

    impl ser::SerializeSeq for Seq<'_, '_> {
        type Ok = ();
        type Error = Error;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            if !self.first {
                self.ser.out.push(',');
            }
            self.first = false;
            v.serialize(&mut *self.ser)
        }
        fn end(self) -> Result<(), Error> {
            self.ser.out.push(']');
            Ok(())
        }
    }

    macro_rules! seq_like {
        ($trait:ident, $method:ident) => {
            impl ser::$trait for Seq<'_, '_> {
                type Ok = ();
                type Error = Error;
                fn $method<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
                    ser::SerializeSeq::serialize_element(self, v)
                }
                fn end(self) -> Result<(), Error> {
                    ser::SerializeSeq::end(self)
                }
            }
        };
    }
    seq_like!(SerializeTuple, serialize_element);
    seq_like!(SerializeTupleStruct, serialize_field);
    seq_like!(SerializeTupleVariant, serialize_field);

    #[derive(Debug)]
    pub struct Map<'a, 'b> {
        ser: &'b mut Ser<'a>,
        first: bool,
    }

    impl ser::SerializeMap for Map<'_, '_> {
        type Ok = ();
        type Error = Error;
        fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Error> {
            if !self.first {
                self.ser.out.push(',');
            }
            self.first = false;
            key.serialize(&mut *self.ser)
        }
        fn serialize_value<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            self.ser.out.push(':');
            v.serialize(&mut *self.ser)
        }
        fn end(self) -> Result<(), Error> {
            self.ser.out.push('}');
            Ok(())
        }
    }

    impl ser::SerializeStruct for Map<'_, '_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            ser::SerializeMap::serialize_key(self, key)?;
            ser::SerializeMap::serialize_value(self, v)
        }
        fn end(self) -> Result<(), Error> {
            ser::SerializeMap::end(self)
        }
    }

    impl ser::SerializeStructVariant for Map<'_, '_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            ser::SerializeStruct::serialize_field(self, key, v)
        }
        fn end(self) -> Result<(), Error> {
            self.ser.out.push('}');
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Analysis;

    fn sample_report() -> crate::Report {
        Analysis::new()
            .run(|ctx| {
                let x = ctx.input("x", 0.0, 1.0);
                let t = x.exp();
                ctx.intermediate(&t, "t");
                let y = t * 2.0;
                ctx.output(&y, "y");
                Ok(())
            })
            .unwrap()
    }

    #[test]
    fn json_structure() {
        let json = sample_report().to_json();
        assert!(json.starts_with('{'));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"tape_len\":"));
        assert!(json.contains("\"kind\":\"intermediate\""));
        assert!(json.contains("\"is_output\":true"));
        // Balanced braces/brackets (rough structural sanity).
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_strings() {
        let report = Analysis::new()
            .run(|ctx| {
                let x = ctx.input("p[\"0\"]", 0.0, 1.0);
                ctx.output(&x, "y");
                Ok(())
            })
            .unwrap();
        let json = report.to_json();
        assert!(json.contains("p[\\\"0\\\"]"));
    }

    #[test]
    fn csv_structure() {
        let csv = sample_report().to_csv();
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("name,kind"));
        assert_eq!(lines.count(), 3); // x, t, y
        assert!(csv.contains("t,intermediate,"));
    }

    #[test]
    fn record_roundtrips_counts() {
        let report = sample_report();
        let record = report.to_record();
        assert_eq!(record.vars.len(), 3);
        assert_eq!(record.tape_len, report.tape_len());
        assert!(record.nodes.iter().any(|n| n.is_output));
    }
}
