//! Machine-readable report export (JSON via serde, CSV).
//!
//! The paper argues the analysis "can help developers gain insight ...
//! since it allows them to 'visualize' the significance for different
//! parts of the computation"; these exporters feed that visualisation:
//! JSON for tooling, CSV for spreadsheets/plotting.

use serde::Serialize;

use crate::graph::SigGraph;
use crate::report::{Report, VarKind};

/// Serialisable view of one registered variable.
#[derive(Debug, Clone, Serialize)]
pub struct VarRecord {
    /// Registration name.
    pub name: String,
    /// `"input"`, `"intermediate"` or `"output"`.
    pub kind: String,
    /// Enclosure bounds.
    pub enclosure: [f64; 2],
    /// Interval-derivative bounds.
    pub derivative: [f64; 2],
    /// Raw Eq. 11 significance.
    pub significance_raw: f64,
    /// Normalized significance.
    pub significance: f64,
}

/// Serialisable view of one DynDFG node.
#[derive(Debug, Clone, Serialize)]
pub struct NodeRecord {
    /// Dense node id.
    pub id: usize,
    /// Operation mnemonic.
    pub op: String,
    /// Predecessor ids.
    pub preds: Vec<usize>,
    /// Normalized significance.
    pub significance: f64,
    /// BFS level from the outputs, if reachable.
    pub level: Option<usize>,
    /// Registration name, if any.
    pub name: Option<String>,
    /// `true` for registered outputs.
    pub is_output: bool,
}

/// Serialisable view of a whole report.
#[derive(Debug, Clone, Serialize)]
pub struct ReportRecord {
    /// Number of recorded DynDFG nodes.
    pub tape_len: usize,
    /// Raw total output significance (normalization denominator).
    pub output_significance_raw: f64,
    /// Registered variables.
    pub vars: Vec<VarRecord>,
    /// Live graph nodes.
    pub nodes: Vec<NodeRecord>,
}

impl Report {
    /// Builds the serialisable record of this report.
    pub fn to_record(&self) -> ReportRecord {
        let kind_str = |k: VarKind| {
            match k {
                VarKind::Input => "input",
                VarKind::Intermediate => "intermediate",
                VarKind::Output => "output",
            }
            .to_owned()
        };
        ReportRecord {
            tape_len: self.tape_len(),
            output_significance_raw: self.output_significance_raw(),
            vars: self
                .registered()
                .iter()
                .map(|v| VarRecord {
                    name: v.name.clone(),
                    kind: kind_str(v.kind),
                    enclosure: [v.enclosure.inf(), v.enclosure.sup()],
                    derivative: [v.derivative.inf(), v.derivative.sup()],
                    significance_raw: v.significance_raw,
                    significance: v.significance,
                })
                .collect(),
            nodes: graph_records(self.graph()),
        }
    }

    /// Serialises the report as a JSON object.
    ///
    /// The encoder is the workspace's own dependency-free one
    /// ([`scorpio_obs::json`]: serde's data model through a hand-rolled
    /// JSON backend), shared with the observability run manifests.
    ///
    /// ```
    /// use scorpio_core::Analysis;
    /// let report = Analysis::new().run(|ctx| {
    ///     let x = ctx.input("x", 0.0, 1.0);
    ///     let y = x.sqr();
    ///     ctx.output(&y, "y");
    ///     Ok(())
    /// }).unwrap();
    /// let json = report.to_json();
    /// assert!(json.contains("\"vars\""));
    /// assert!(json.contains("\"name\":\"x\""));
    /// ```
    pub fn to_json(&self) -> String {
        scorpio_obs::json::to_string(&self.to_record())
    }

    /// Serialises the registered variables as CSV
    /// (`name,kind,enclosure_lo,enclosure_hi,deriv_lo,deriv_hi,raw,normalized`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "name,kind,enclosure_lo,enclosure_hi,derivative_lo,derivative_hi,significance_raw,significance\n",
        );
        for v in self.registered() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                v.name,
                v.kind,
                v.enclosure.inf(),
                v.enclosure.sup(),
                v.derivative.inf(),
                v.derivative.sup(),
                v.significance_raw,
                v.significance
            ));
        }
        out
    }
}

fn graph_records(graph: &SigGraph) -> Vec<NodeRecord> {
    graph
        .live_nodes()
        .map(|n| NodeRecord {
            id: n.id,
            op: n.op.to_string(),
            preds: n.preds.clone(),
            significance: n.significance,
            level: n.level,
            name: n.name.clone(),
            is_output: n.is_output,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::Analysis;

    fn sample_report() -> crate::Report {
        Analysis::new()
            .run(|ctx| {
                let x = ctx.input("x", 0.0, 1.0);
                let t = x.exp();
                ctx.intermediate(&t, "t");
                let y = t * 2.0;
                ctx.output(&y, "y");
                Ok(())
            })
            .unwrap()
    }

    #[test]
    fn json_structure() {
        let json = sample_report().to_json();
        assert!(json.starts_with('{'));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"tape_len\":"));
        assert!(json.contains("\"kind\":\"intermediate\""));
        assert!(json.contains("\"is_output\":true"));
        // Balanced braces/brackets (rough structural sanity).
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_strings() {
        let report = Analysis::new()
            .run(|ctx| {
                let x = ctx.input("p[\"0\"]", 0.0, 1.0);
                ctx.output(&x, "y");
                Ok(())
            })
            .unwrap();
        let json = report.to_json();
        assert!(json.contains("p[\\\"0\\\"]"));
    }

    #[test]
    fn csv_structure() {
        let csv = sample_report().to_csv();
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("name,kind"));
        assert_eq!(lines.count(), 3); // x, t, y
        assert!(csv.contains("t,intermediate,"));
    }

    #[test]
    fn record_roundtrips_counts() {
        let report = sample_report();
        let record = report.to_record();
        assert_eq!(record.vars.len(), 3);
        assert_eq!(record.tape_len, report.tape_len());
        assert!(record.nodes.iter().any(|n| n.is_output));
    }
}
