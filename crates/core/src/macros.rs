//! Macro sugar mirroring the dco/scorpio annotation macros of Table 1.
//!
//! | paper macro | Rust macro |
//! |---|---|
//! | `INPUT(x, xl, xu)` | [`scorpio_input!`](crate::scorpio_input) |
//! | `INTERMEDIATE(z)` | [`scorpio_intermediate!`](crate::scorpio_intermediate) |
//! | `OUTPUT(y)` | [`scorpio_output!`](crate::scorpio_output) |
//! | `ANALYSE()` | implicit: [`crate::Analysis::run`] performs the sweep when the closure returns |
//!
//! The macros simply forward to the [`crate::Ctx`] methods, deriving the
//! registration name from the identifier — so the annotated code reads
//! like Listing 6 of the paper.

/// Registers `$x` as an input with range `[$lo, $hi]` and binds the active
/// variable (paper macro `INPUT(x, xl, xu, ...)`).
///
/// ```
/// use scorpio_core::{scorpio_input, scorpio_output, Analysis};
///
/// let report = Analysis::new().run(|ctx| {
///     scorpio_input!(ctx, x, 0.0, 1.0);
///     let y = x.sqr();
///     scorpio_output!(ctx, y);
///     Ok(())
/// }).unwrap();
/// assert!(report.significance_of("x").unwrap() > 0.0);
/// ```
#[macro_export]
macro_rules! scorpio_input {
    ($ctx:expr, $x:ident, $lo:expr, $hi:expr) => {
        let $x = $ctx.input(stringify!($x), $lo, $hi);
    };
}

/// Registers `$z` as a named intermediate (paper macro
/// `INTERMEDIATE(z, ...)`). An optional second form supplies an explicit
/// name for loop-carried variables.
///
/// ```
/// use scorpio_core::{scorpio_input, scorpio_intermediate, scorpio_output, Analysis};
///
/// let report = Analysis::new().run(|ctx| {
///     scorpio_input!(ctx, x, 0.0, 1.0);
///     let t = x.exp();
///     scorpio_intermediate!(ctx, t);
///     let y = t * 2.0;
///     scorpio_output!(ctx, y);
///     Ok(())
/// }).unwrap();
/// assert!(report.significance_of("t").is_some());
/// ```
#[macro_export]
macro_rules! scorpio_intermediate {
    ($ctx:expr, $z:ident) => {
        $ctx.intermediate(&$z, stringify!($z));
    };
    ($ctx:expr, $z:expr, $name:expr) => {
        $ctx.intermediate(&$z, $name);
    };
}

/// Registers `$y` as an output, seeding its adjoint with 1 (paper macro
/// `OUTPUT(y, ...)`).
#[macro_export]
macro_rules! scorpio_output {
    ($ctx:expr, $y:ident) => {
        $ctx.output(&$y, stringify!($y));
    };
    ($ctx:expr, $y:expr, $name:expr) => {
        $ctx.output(&$y, $name);
    };
}

#[cfg(test)]
mod tests {
    use crate::Analysis;

    #[test]
    fn macros_register_by_identifier_name() {
        let report = Analysis::new()
            .run(|ctx| {
                scorpio_input!(ctx, alpha, 0.0, 2.0);
                let beta = alpha.sin();
                scorpio_intermediate!(ctx, beta);
                let gamma = beta + alpha;
                scorpio_output!(ctx, gamma);
                Ok(())
            })
            .unwrap();
        assert!(report.var("alpha").is_some());
        assert!(report.var("beta").is_some());
        assert!(report.var("gamma").is_some());
    }

    #[test]
    fn macros_work_in_loops_with_explicit_names() {
        let report = Analysis::new()
            .run(|ctx| {
                scorpio_input!(ctx, x, 0.0, 1.0);
                let mut acc = ctx.constant(0.0);
                for i in 1..4 {
                    let term = x.powi(i);
                    scorpio_intermediate!(ctx, term, format!("term{i}"));
                    acc = acc + term;
                }
                scorpio_output!(ctx, acc, "result");
                Ok(())
            })
            .unwrap();
        for i in 1..4 {
            assert!(report.var(&format!("term{i}")).is_some());
        }
        assert!(report.var("result").is_some());
    }
}
