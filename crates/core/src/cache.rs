//! Cross-request compiled-tape cache for the serve layer.
//!
//! A [`ReplayOrRecord`](crate::ReplayOrRecord) driver amortizes
//! recording within one instance's lifetime; [`TapeCache`] extends that
//! across instances and threads: traces extracted with
//! [`ReplayOrRecord::share`](crate::ReplayOrRecord::share) are stored
//! under a `(kernel, shape_key)` key and re-injected into any worker's
//! driver with [`ReplayOrRecord::install`](crate::ReplayOrRecord::install),
//! so repeat traffic from an already-seen kernel shape skips recording
//! entirely, whichever worker serves it.
//!
//! The cache is sharded — the key hash picks one of a small fixed
//! number of independently locked shards, so concurrent workers rarely
//! contend — and bounded: each shard holds at most
//! `ceil(capacity / shards)` entries and evicts its least-recently-used
//! entry when full (recency is a global atomic tick stamped on every
//! hit). Hits, misses, insertions and evictions are counted on the
//! cache itself ([`TapeCache::stats`]) and mirrored into the
//! `scorpio_obs` counter registry (`tape_cache.hit` / `.miss` /
//! `.insert` / `.evict`).
//!
//! Correctness does not depend on the cache: an installed trace still
//! sits behind the driver's shape-key / arity / branch guards, so a
//! stale or mismatched entry degrades to a re-record, never to a wrong
//! replay.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::replay::CompiledTrace;

/// Number of independently locked shards. A small power of two:
/// enough to keep a handful of worker threads from contending on one
/// lock, few enough that the per-shard LRU bound stays close to the
/// requested total capacity.
const SHARDS: usize = 8;

/// One cached trace plus its key and recency stamp.
struct Entry {
    kernel: &'static str,
    shape: u64,
    trace: CompiledTrace,
    /// Global tick at last hit (or insertion); smallest = evict first.
    last_used: u64,
}

/// A shard: a short vec scanned linearly — shape diversity per kernel
/// is small (a handful of image sizes, series lengths, …), so a scan
/// over ≤ a few dozen entries beats hashing overhead.
type Shard = Mutex<Vec<Entry>>;

/// Monotonic counters describing a [`TapeCache`]'s traffic so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TapeCacheStats {
    /// Lookups that found a trace for the requested `(kernel, shape)`.
    pub hits: u64,
    /// Lookups that found nothing (the caller records and inserts).
    pub misses: u64,
    /// Traces stored (replacements of an existing key count too).
    pub insertions: u64,
    /// Entries dropped to enforce the capacity bound.
    pub evictions: u64,
}

impl TapeCacheStats {
    /// Fraction of lookups served from the cache (0.0 before any
    /// lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The per-field difference `self − before` — traffic accumulated
    /// since the `before` snapshot (mirrors
    /// [`ReplayStats::since`](crate::ReplayStats::since)).
    pub fn since(&self, before: TapeCacheStats) -> TapeCacheStats {
        TapeCacheStats {
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            insertions: self.insertions - before.insertions,
            evictions: self.evictions - before.evictions,
        }
    }
}

/// Shape-keyed, sharded, LRU-bounded store of shareable compiled
/// traces. All methods take `&self`;
/// the cache is meant to sit in an `Arc` shared by worker threads.
pub struct TapeCache {
    shards: Vec<Shard>,
    /// Per-shard entry bound (`ceil(capacity / shards)`).
    shard_capacity: usize,
    /// Global recency clock; bumped on every hit and insertion.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl TapeCache {
    /// A cache holding roughly `capacity` traces across `SHARDS` (8)
    /// internal shards (each shard is bounded to
    /// `ceil(capacity / shards)`, so the true ceiling can exceed
    /// `capacity` by up to `shards − 1` when keys hash unevenly).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> TapeCache {
        TapeCache::with_shards(capacity, SHARDS)
    }

    /// As [`TapeCache::new`] with an explicit shard count (1 gives an
    /// exact capacity bound and deterministic LRU order — useful in
    /// tests; more shards trade bound slack for less lock contention).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `shards == 0`.
    pub fn with_shards(capacity: usize, shards: usize) -> TapeCache {
        assert!(capacity > 0, "TapeCache capacity must be at least 1");
        assert!(shards > 0, "TapeCache needs at least one shard");
        let shards = shards.min(capacity);
        TapeCache {
            shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            shard_capacity: capacity.div_ceil(shards),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum number of entries the cache can hold
    /// (`shards × per-shard bound`).
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.shard_capacity
    }

    /// Number of traces currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("tape-cache shard poisoned").len())
            .sum()
    }

    /// `true` when no trace is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the trace recorded for `(kernel, shape)`, refreshing
    /// its recency on a hit. Counts a hit or a miss either way.
    pub fn get(&self, kernel: &str, shape: u64) -> Option<CompiledTrace> {
        let mut shard = self.shard(kernel, shape);
        let found = shard
            .iter_mut()
            .find(|e| e.shape == shape && e.kernel == kernel);
        match found {
            Some(entry) => {
                entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                let trace = entry.trace.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                scorpio_obs::count("tape_cache.hit", 1);
                Some(trace)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                scorpio_obs::count("tape_cache.miss", 1);
                None
            }
        }
    }

    /// Stores `trace` under `(kernel, shape)`, replacing any existing
    /// entry for that key and evicting the shard's least-recently-used
    /// entry if the shard is at capacity.
    ///
    /// `kernel` is `&'static str` by design: keys are kernel names
    /// known at compile time, which keeps entries allocation-free and
    /// lookups comparison-cheap.
    pub fn insert(&self, kernel: &'static str, shape: u64, trace: CompiledTrace) {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut evicted = false;
        {
            let mut shard = self.shard(kernel, shape);
            if let Some(entry) = shard
                .iter_mut()
                .find(|e| e.shape == shape && e.kernel == kernel)
            {
                entry.trace = trace;
                entry.last_used = now;
            } else {
                if shard.len() >= self.shard_capacity {
                    let lru = shard
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(i, _)| i)
                        .expect("full shard has an LRU entry");
                    shard.swap_remove(lru);
                    evicted = true;
                }
                shard.push(Entry {
                    kernel,
                    shape,
                    trace,
                    last_used: now,
                });
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        scorpio_obs::count("tape_cache.insert", 1);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            scorpio_obs::count("tape_cache.evict", 1);
        }
    }

    /// Drops every cached trace (counters are kept — a clear is part
    /// of the traffic history, not a reset of it).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("tape-cache shard poisoned").clear();
        }
    }

    /// Snapshot of the hit/miss/insert/evict counters.
    pub fn stats(&self) -> TapeCacheStats {
        TapeCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Locks and returns the shard responsible for `(kernel, shape)`.
    fn shard(&self, kernel: &str, shape: u64) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        let mut h = shape ^ 0x9E37_79B9_7F4A_7C15;
        for &b in kernel.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        // splitmix64 finalizer: spreads the low-entropy kernel/shape
        // mix across the shard index bits.
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        self.shards[(h % self.shards.len() as u64) as usize]
            .lock()
            .expect("tape-cache shard poisoned")
    }
}

impl std::fmt::Debug for TapeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TapeCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::AnalysisError;
    use crate::replay::ReplayOrRecord;
    use crate::session::{Analysis, AnalysisArena};
    use scorpio_interval::Interval;

    fn trace_of_len(n: usize) -> CompiledTrace {
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        driver
            .run_keyed_in(n as u64, &mut arena, &[Interval::new(0.1, 0.9)], |ctx| {
                let x = ctx.input("x", 0.0, 1.0);
                let mut acc = ctx.constant(0.0);
                for i in 0..n {
                    acc = acc + x.powi(i as i32 + 1);
                }
                ctx.output(&acc, "y");
                Ok::<(), AnalysisError>(())
            })
            .unwrap();
        driver.share().unwrap()
    }

    #[test]
    fn hit_and_miss_are_counted() {
        let cache = TapeCache::new(4);
        assert!(cache.get("poly", 3).is_none());
        cache.insert("poly", 3, trace_of_len(3));
        let hit = cache.get("poly", 3).expect("inserted key must hit");
        assert_eq!(hit.shape_key(), Some(3));
        assert!(cache.get("poly", 5).is_none(), "other shape must miss");
        assert!(cache.get("other", 3).is_none(), "other kernel must miss");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lru_entry_is_evicted_at_capacity() {
        // One shard: exact bound, deterministic recency order.
        let cache = TapeCache::with_shards(2, 1);
        cache.insert("poly", 1, trace_of_len(1));
        cache.insert("poly", 2, trace_of_len(2));
        // Touch key 1 so key 2 becomes the LRU entry.
        assert!(cache.get("poly", 1).is_some());
        cache.insert("poly", 3, trace_of_len(3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get("poly", 2).is_none(), "LRU entry must be gone");
        assert!(cache.get("poly", 1).is_some());
        assert!(cache.get("poly", 3).is_some());
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let cache = TapeCache::with_shards(2, 1);
        cache.insert("poly", 1, trace_of_len(1));
        let replacement = trace_of_len(1);
        cache.insert("poly", 1, replacement.clone());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        assert!(cache.get("poly", 1).unwrap().ptr_eq(&replacement));
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = TapeCache::new(4);
        cache.insert("poly", 1, trace_of_len(1));
        assert!(cache.get("poly", 1).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get("poly", 1).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
    }

    #[test]
    fn concurrent_access_is_safe_and_accounted() {
        use std::sync::Arc;
        let cache = Arc::new(TapeCache::new(8));
        let seed = trace_of_len(2);
        cache.insert("poly", 0, seed);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..50 {
                        if cache.get("poly", i % 4).is_none() {
                            cache.insert("poly", i % 4, trace_of_len((t + 1) as usize));
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 200);
        assert!(stats.hits > 0);
        assert!(cache.len() <= cache.capacity());
    }

    #[test]
    fn cached_trace_round_trips_through_a_driver() {
        let cache = TapeCache::new(4);
        cache.insert("poly", 4, trace_of_len(4));
        let trace = cache.get("poly", 4).unwrap();
        let mut driver = ReplayOrRecord::new(Analysis::new());
        driver.install(&trace);
        let mut arena = AnalysisArena::new();
        let report = driver
            .run_keyed_in(4, &mut arena, &[Interval::new(0.2, 0.8)], |ctx| {
                let x = ctx.input("x", 0.0, 1.0);
                let mut acc = ctx.constant(0.0);
                for i in 0..4 {
                    acc = acc + x.powi(i + 1);
                }
                ctx.output(&acc, "y");
                Ok::<(), AnalysisError>(())
            })
            .unwrap();
        assert_eq!(driver.stats().replays, 1);
        assert_eq!(driver.stats().records, 0, "cache hit must skip recording");
        assert!(report.significance_of("y").is_some());
    }
}
