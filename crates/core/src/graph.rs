//! The significance-annotated DynDFG exported by an analysis run
//! (the `G` of Algorithm 1, Fig. 2/3 of the paper).

use std::collections::VecDeque;
use std::fmt::Write as _;

use scorpio_adjoint::Op;
use scorpio_interval::Interval;

/// One node of the exported significance graph.
#[derive(Debug, Clone)]
pub struct SigNode {
    /// Dense node index (matches the recording tape before
    /// simplification; stable across [`SigGraph::simplified`], which only
    /// rewires edges and marks nodes removed).
    pub id: usize,
    /// Elementary operation.
    pub op: Op,
    /// Operand node ids. After simplification a collapsed accumulation
    /// node may have more than two predecessors.
    pub preds: Vec<usize>,
    /// Interval enclosure `[u_j]` from the forward sweep.
    pub value: Interval,
    /// Interval adjoint `∇_{[u_j]}[y]` from the reverse sweep.
    pub derivative: Interval,
    /// Significance `S_y(u_j) = w([u_j] · ∇_{[u_j]}[y])` (Eq. 11),
    /// normalized by the total output significance so the final result
    /// reads 1.0 as in Fig. 3.
    pub significance: f64,
    /// BFS distance from the output level (outputs are level 0, Fig. 2);
    /// `None` if the node does not reach any output.
    pub level: Option<usize>,
    /// Name given at registration, if any.
    pub name: Option<String>,
    /// `true` for registered outputs.
    pub is_output: bool,
    /// `true` once the node has been collapsed away by
    /// [`SigGraph::simplified`] or truncated by the level cut.
    pub removed: bool,
}

/// The significance-annotated DynDFG.
///
/// Produced by [`crate::Report::graph`]; post-processed by
/// [`SigGraph::simplified`] (Algorithm 1 step S4) and
/// [`SigGraph::partition`] (step S5).
#[derive(Debug, Clone)]
pub struct SigGraph {
    pub(crate) nodes: Vec<SigNode>,
    pub(crate) outputs: Vec<usize>,
}

impl SigGraph {
    pub(crate) fn new(mut nodes: Vec<SigNode>, outputs: Vec<usize>) -> SigGraph {
        compute_levels(&mut nodes, &outputs);
        SigGraph { nodes, outputs }
    }

    /// All nodes, including removed ones (check [`SigNode::removed`]).
    pub fn nodes(&self) -> &[SigNode] {
        &self.nodes
    }

    /// Ids of the registered output nodes (level 0).
    pub fn outputs(&self) -> &[usize] {
        &self.outputs
    }

    /// Live (non-removed) nodes.
    pub fn live_nodes(&self) -> impl Iterator<Item = &SigNode> {
        self.nodes.iter().filter(|n| !n.removed)
    }

    /// The graph height: one past the maximum live level.
    pub fn height(&self) -> usize {
        self.live_nodes()
            .filter_map(|n| n.level)
            .max()
            .map_or(0, |l| l + 1)
    }

    /// Live nodes at BFS level `level`.
    pub fn level_nodes(&self, level: usize) -> Vec<&SigNode> {
        self.live_nodes()
            .filter(|n| n.level == Some(level))
            .collect()
    }

    /// Looks a node up by registration name.
    pub fn node_by_name(&self, name: &str) -> Option<&SigNode> {
        self.nodes
            .iter()
            .find(|n| n.name.as_deref() == Some(name) && !n.removed)
    }

    /// Recomputes levels after edge rewiring (used internally by the
    /// workflow transformations).
    pub(crate) fn recompute_levels(&mut self) {
        compute_levels(&mut self.nodes, &self.outputs);
    }

    /// Successor lists over live nodes.
    pub(crate) fn successors(&self) -> Vec<Vec<usize>> {
        let mut succ = vec![Vec::new(); self.nodes.len()];
        for node in self.nodes.iter().filter(|n| !n.removed) {
            for &p in &node.preds {
                if !self.nodes[p].removed {
                    succ[p].push(node.id);
                }
            }
        }
        succ
    }

    /// Renders the live part of the graph as Graphviz DOT, with node
    /// labels carrying name (if registered), operation and significance —
    /// the Fig. 3 visualisation.
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=BT;");
        for node in self.live_nodes() {
            let label = match &node.name {
                Some(n) => format!("{n}\\n{}\\nS={:.3}", node.op, node.significance),
                None => format!("u{}: {}\\nS={:.3}", node.id, node.op, node.significance),
            };
            let shape = if node.is_output {
                "doubleoctagon"
            } else if node.op == Op::Input {
                "box"
            } else {
                "ellipse"
            };
            let _ = writeln!(out, "  n{} [shape={shape}, label=\"{label}\"];", node.id);
        }
        for node in self.live_nodes() {
            for &p in &node.preds {
                if !self.nodes[p].removed {
                    let _ = writeln!(out, "  n{p} -> n{};", node.id);
                }
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

/// Assigns `level = BFS distance from the nearest output` (outputs 0),
/// walking result→operand edges; unreachable nodes get `None`.
fn compute_levels(nodes: &mut [SigNode], outputs: &[usize]) {
    for n in nodes.iter_mut() {
        n.level = None;
    }
    let mut queue = VecDeque::new();
    for &o in outputs {
        if !nodes[o].removed && nodes[o].level.is_none() {
            nodes[o].level = Some(0);
            queue.push_back(o);
        }
    }
    while let Some(id) = queue.pop_front() {
        let level = nodes[id].level.expect("queued node has level");
        let preds = nodes[id].preds.clone();
        for p in preds {
            if !nodes[p].removed && nodes[p].level.is_none() {
                nodes[p].level = Some(level + 1);
                queue.push_back(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_node(id: usize, op: Op, preds: Vec<usize>) -> SigNode {
        SigNode {
            id,
            op,
            preds,
            value: Interval::ZERO,
            derivative: Interval::ZERO,
            significance: 0.0,
            level: None,
            name: None,
            is_output: false,
            removed: false,
        }
    }

    #[test]
    fn levels_are_bfs_distance_from_output() {
        // 0:in  1:in  2:=0+1  3:=sin(2)  output 3
        let nodes = vec![
            mk_node(0, Op::Input, vec![]),
            mk_node(1, Op::Input, vec![]),
            mk_node(2, Op::Add, vec![0, 1]),
            mk_node(3, Op::Sin, vec![2]),
        ];
        let g = SigGraph::new(nodes, vec![3]);
        assert_eq!(g.nodes()[3].level, Some(0));
        assert_eq!(g.nodes()[2].level, Some(1));
        assert_eq!(g.nodes()[0].level, Some(2));
        assert_eq!(g.height(), 3);
        assert_eq!(g.level_nodes(2).len(), 2);
    }

    #[test]
    fn unreachable_nodes_have_no_level() {
        let nodes = vec![
            mk_node(0, Op::Input, vec![]),
            mk_node(1, Op::Const, vec![]), // dead
            mk_node(2, Op::Sin, vec![0]),
        ];
        let g = SigGraph::new(nodes, vec![2]);
        assert_eq!(g.nodes()[1].level, None);
    }

    #[test]
    fn shortest_path_wins_for_fan_in() {
        // Diamond: 0 feeds both 1 (long path via 2) and 3 directly.
        let nodes = vec![
            mk_node(0, Op::Input, vec![]),
            mk_node(1, Op::Sin, vec![0]),
            mk_node(2, Op::Cos, vec![1]),
            mk_node(3, Op::Add, vec![0, 2]),
        ];
        let g = SigGraph::new(nodes, vec![3]);
        // 0 is reachable at distance 1 (direct) even though the other path
        // is length 3.
        assert_eq!(g.nodes()[0].level, Some(1));
    }

    #[test]
    fn dot_output_live_only() {
        let mut nodes = vec![
            mk_node(0, Op::Input, vec![]),
            mk_node(1, Op::Sin, vec![0]),
            mk_node(2, Op::Cos, vec![0]),
        ];
        nodes[2].removed = true;
        let g = SigGraph::new(nodes, vec![1]);
        let dot = g.to_dot("g");
        assert!(dot.contains("sin"));
        assert!(!dot.contains("cos"));
    }
}
