//! Automatic significance analysis for approximate computing.
//!
//! Rust reproduction of the **dco/scorpio** framework from Vassiliadis
//! et al., *Towards Automatic Significance Analysis for Approximate
//! Computing* (CGO 2016). Given a computation `y = f(x)` and ranges for its
//! inputs, one profile run produces — for every input and intermediate
//! variable — a quantitative **significance** for the output:
//!
//! ```text
//! S_y(u_j) = w( [u_j] · ∇_{[u_j]}[y] )        (Eq. 11)
//! ```
//!
//! where `[u_j]` is the interval enclosure of the variable (forward
//! interval sweep, Eq. 4–6) and `∇_{[u_j]}[y]` the interval adjoint
//! derivative of the output with respect to it (reverse sweep over the
//! recorded DynDFG, Eq. 7–10).
//!
//! # Quick start
//!
//! The paper's running example — the Maclaurin series of `1/(1−x)`
//! (§3, Listings 5–6, Fig. 3):
//!
//! ```
//! use scorpio_core::Analysis;
//!
//! let report = Analysis::new().run(|ctx| {
//!     let x = ctx.input("x", 0.49 - 0.5, 0.49 + 0.5);
//!     let mut result = ctx.constant(0.0);
//!     for i in 0..5 {
//!         let term = x.powi(i);
//!         ctx.intermediate(&term, format!("term{i}"));
//!         result = result + term;
//!     }
//!     ctx.output(&result, "result");
//!     Ok(())
//! }).unwrap();
//!
//! // pow(x, 0) = 1 is constant: (numerically) zero significance (Fig. 3).
//! assert!(report.significance_of("term0").unwrap() < 1e-12);
//! // Later terms matter monotonically less.
//! let s: Vec<f64> = (1..5)
//!     .map(|i| report.significance_of(&format!("term{i}")).unwrap())
//!     .collect();
//! assert!(s.windows(2).all(|w| w[0] > w[1]));
//! ```
//!
//! # Workflow (Algorithm 1)
//!
//! [`Report::graph`] exposes the significance-annotated DynDFG;
//! [`SigGraph::simplified`] collapses anti-dependence (accumulation)
//! chains (step S4); [`SigGraph::partition`] walks levels breadth-first
//! from the outputs and cuts at the first level whose significance
//! variance exceeds δ (step S5, `findSgnfVariance`). The surviving nodes
//! are the natural task outputs for the significance-driven runtime.
//!
//! # Limitations faithfully kept (§2.2)
//!
//! Interval comparisons may be ambiguous; recording then stops with
//! [`AnalysisError::AmbiguousBranch`] naming the condition. The
//! [`splitting`] module implements the paper's "ongoing research" remedy:
//! bisect the offending input range and merge per-subdomain reports.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
mod cache;
mod codegen;
mod error;
mod export;
mod graph;
#[macro_use]
mod macros;
pub mod mc;
pub mod parallel;
mod replay;
mod report;
mod session;
pub mod splitting;
pub mod sweep;
mod workflow;

pub use cache::{TapeCache, TapeCacheStats};
pub use codegen::{TaskPlan, TaskSuggestion};
pub use error::AnalysisError;
pub use export::{NodeRecord, ReportRecord, VarRecord};
pub use graph::{SigGraph, SigNode};
pub use parallel::{ParallelAnalysis, DEFAULT_LANES};
pub use replay::{CompiledTrace, LaneScratch, ReplayOrRecord, ReplayStats};
pub use report::{Report, RegisteredVar, VarKind, VarSignificances};
pub use session::{Analysis, AnalysisArena, Ctx, Ia1s};
pub use workflow::{LevelStats, Partition};

#[cfg(test)]
mod tests;
