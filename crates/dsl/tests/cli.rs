//! End-to-end tests of the `scorpio-analyze` binary.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_scorpio-analyze"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

const MACLAURIN: &str = "input x = -0.01 .. 0.99;\n\
    let term1 = x^1;\nlet term2 = x^2;\nlet term3 = x^3;\n\
    out result = 1 + term1 + term2 + term3;";

#[test]
fn default_output_is_the_report() {
    let (stdout, _, ok) = run(&["-e", MACLAURIN]);
    assert!(ok);
    assert!(stdout.contains("term2"));
    assert!(stdout.contains("significance report"));
}

#[test]
fn json_output() {
    let (stdout, _, ok) = run(&["-e", MACLAURIN, "--json"]);
    assert!(ok);
    assert!(stdout.trim_start().starts_with('{'));
    assert!(stdout.contains("\"term3\""));
}

#[test]
fn csv_output() {
    let (stdout, _, ok) = run(&["-e", MACLAURIN, "--csv"]);
    assert!(ok);
    assert!(stdout.starts_with("name,kind"));
}

#[test]
fn dot_output() {
    let (stdout, _, ok) = run(&["-e", MACLAURIN, "--dot"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
}

#[test]
fn plan_prints_skeleton() {
    let (stdout, _, ok) = run(&["-e", MACLAURIN, "--plan"]);
    assert!(ok);
    assert!(stdout.contains("group.spawn("));
}

#[test]
fn split_resolves_ambiguous_branch() {
    let program = "input x = -1 .. 1; out y = if x < 0 then -x else x;";
    // Without --split: fails and names the condition.
    let (_, stderr, ok) = run(&["-e", program]);
    assert!(!ok);
    assert!(stderr.contains("x < 0"), "{stderr}");
    // With --split: succeeds with two subdomains.
    let (stdout, _, ok) = run(&["-e", program, "--split", "8"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("2 subdomain(s)"), "{stdout}");
}

#[test]
fn parse_errors_fail_with_position() {
    let (_, stderr, ok) = run(&["-e", "out y = ("]);
    assert!(!ok);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn missing_args_prints_usage() {
    let (_, stderr, ok) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn file_input_works() {
    let dir = std::env::temp_dir().join("scorpio_dsl_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("program.sig");
    std::fs::write(&path, MACLAURIN).unwrap();
    let (stdout, _, ok) = run(&[path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("result"));
}
