//! Abstract syntax of the analysis language.

use std::fmt;

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `^` (power)
    Pow,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "^",
        };
        f.write_str(s)
    }
}

/// A comparison operator in an `if` condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Less,
    /// `>`
    Greater,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Less => "<",
            CmpOp::Greater => ">",
        })
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// Variable reference, with the byte offset of the reference (for
    /// error messages).
    Var {
        /// The referenced name.
        name: String,
        /// Byte offset in the source.
        offset: usize,
    },
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Function name.
        name: String,
        /// Byte offset of the call (for error messages).
        offset: usize,
        /// Arguments in order.
        args: Vec<Expr>,
    },
    /// `if lhs <op> rhs then a else b` — data-dependent control flow;
    /// over intervals the comparison may be ambiguous (§2.2 of the
    /// paper), terminating the analysis or triggering splitting.
    If {
        /// Comparison left operand.
        cmp_lhs: Box<Expr>,
        /// The comparison operator.
        cmp_op: CmpOp,
        /// Comparison right operand.
        cmp_rhs: Box<Expr>,
        /// Value when the comparison holds.
        then_branch: Box<Expr>,
        /// Value when it does not.
        else_branch: Box<Expr>,
    },
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Number(v) => write!(f, "{v}"),
            Expr::Var { name, .. } => f.write_str(name),
            Expr::Neg(inner) => write!(f, "(-{inner})"),
            Expr::Bin { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Call { name, args, .. } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::If {
                cmp_lhs,
                cmp_op,
                cmp_rhs,
                then_branch,
                else_branch,
            } => write!(
                f,
                "(if {cmp_lhs} {cmp_op} {cmp_rhs} then {then_branch} else {else_branch})"
            ),
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `input name = lo .. hi;`
    Input {
        /// Input name.
        name: String,
        /// Lower range bound.
        lo: f64,
        /// Upper range bound.
        hi: f64,
    },
    /// `let name = expr;` — a registered intermediate.
    Let {
        /// Binding name.
        name: String,
        /// Bound expression.
        expr: Expr,
    },
    /// `out name = expr;` — a registered output.
    Out {
        /// Output name.
        name: String,
        /// Output expression.
        expr: Expr,
    },
}

/// A parsed program: an ordered list of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// Names of the declared inputs, in order.
    pub fn input_names(&self) -> Vec<&str> {
        self.stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Input { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Number of `out` statements.
    pub fn output_count(&self) -> usize {
        self.stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Out { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_queries() {
        let p = Program {
            stmts: vec![
                Stmt::Input {
                    name: "x".into(),
                    lo: 0.0,
                    hi: 1.0,
                },
                Stmt::Let {
                    name: "t".into(),
                    expr: Expr::Number(1.0),
                },
                Stmt::Out {
                    name: "y".into(),
                    expr: Expr::Number(2.0),
                },
            ],
        };
        assert_eq!(p.input_names(), vec!["x"]);
        assert_eq!(p.output_count(), 1);
    }

    #[test]
    fn binop_display() {
        assert_eq!(BinOp::Pow.to_string(), "^");
    }
}
