//! Tokenizer for the analysis language.

use std::fmt;

/// A token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `input` keyword.
    Input,
    /// `let` keyword.
    Let,
    /// `out` keyword.
    Out,
    /// An identifier.
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Equals,
    /// `..`
    DotDot,
    /// `;`
    Semicolon,
    /// `if` keyword.
    If,
    /// `then` keyword.
    Then,
    /// `else` keyword.
    Else,
    /// `<`
    Less,
    /// `>`
    Greater,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Input => write!(f, "`input`"),
            TokenKind::Let => write!(f, "`let`"),
            TokenKind::Out => write!(f, "`out`"),
            TokenKind::Ident(name) => write!(f, "identifier `{name}`"),
            TokenKind::Number(n) => write!(f, "number `{n}`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Caret => write!(f, "`^`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Equals => write!(f, "`=`"),
            TokenKind::DotDot => write!(f, "`..`"),
            TokenKind::Semicolon => write!(f, "`;`"),
            TokenKind::If => write!(f, "`if`"),
            TokenKind::Then => write!(f, "`then`"),
            TokenKind::Else => write!(f, "`else`"),
            TokenKind::Less => write!(f, "`<`"),
            TokenKind::Greater => write!(f, "`>`"),
        }
    }
}

/// A token with its byte offset in the source (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was recognised.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

/// A tokenization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a program. Comments (`#` to end of line) and whitespace are
/// skipped.
///
/// # Errors
///
/// Returns [`LexError`] on unexpected characters or malformed numbers.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'+' => {
                tokens.push(Token { kind: TokenKind::Plus, offset: i });
                i += 1;
            }
            b'-' => {
                tokens.push(Token { kind: TokenKind::Minus, offset: i });
                i += 1;
            }
            b'*' => {
                tokens.push(Token { kind: TokenKind::Star, offset: i });
                i += 1;
            }
            b'/' => {
                tokens.push(Token { kind: TokenKind::Slash, offset: i });
                i += 1;
            }
            b'^' => {
                tokens.push(Token { kind: TokenKind::Caret, offset: i });
                i += 1;
            }
            b'(' => {
                tokens.push(Token { kind: TokenKind::LParen, offset: i });
                i += 1;
            }
            b')' => {
                tokens.push(Token { kind: TokenKind::RParen, offset: i });
                i += 1;
            }
            b',' => {
                tokens.push(Token { kind: TokenKind::Comma, offset: i });
                i += 1;
            }
            b'=' => {
                tokens.push(Token { kind: TokenKind::Equals, offset: i });
                i += 1;
            }
            b';' => {
                tokens.push(Token { kind: TokenKind::Semicolon, offset: i });
                i += 1;
            }
            b'<' => {
                tokens.push(Token { kind: TokenKind::Less, offset: i });
                i += 1;
            }
            b'>' => {
                tokens.push(Token { kind: TokenKind::Greater, offset: i });
                i += 1;
            }
            b'.' if i + 1 < bytes.len() && bytes[i + 1] == b'.' => {
                tokens.push(Token { kind: TokenKind::DotDot, offset: i });
                i += 2;
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // Fractional part — but not `..` (a range).
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && !(i + 1 < bytes.len() && bytes[i + 1] == b'.')
                {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // Exponent.
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &source[start..i];
                let value: f64 = text.parse().map_err(|_| LexError {
                    offset: start,
                    message: format!("malformed number `{text}`"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    offset: start,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &source[start..i];
                let kind = match text {
                    "input" => TokenKind::Input,
                    "let" => TokenKind::Let,
                    "out" => TokenKind::Out,
                    "if" => TokenKind::If,
                    "then" => TokenKind::Then,
                    "else" => TokenKind::Else,
                    _ => TokenKind::Ident(text.to_owned()),
                };
                tokens.push(Token { kind, offset: start });
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            kinds("input let out foo input2"),
            vec![
                TokenKind::Input,
                TokenKind::Let,
                TokenKind::Out,
                TokenKind::Ident("foo".into()),
                TokenKind::Ident("input2".into()),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 .25 1e3 2.5e-2"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Number(2.5),
                TokenKind::Number(0.25),
                TokenKind::Number(1000.0),
                TokenKind::Number(0.025),
            ]
        );
    }

    #[test]
    fn range_vs_fraction() {
        // `0..1` is number, dotdot, number — not `0.` `.1`.
        assert_eq!(
            kinds("0..1 0.5..1.5"),
            vec![
                TokenKind::Number(0.0),
                TokenKind::DotDot,
                TokenKind::Number(1.0),
                TokenKind::Number(0.5),
                TokenKind::DotDot,
                TokenKind::Number(1.5),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 # a comment + * /\n2"),
            vec![TokenKind::Number(1.0), TokenKind::Number(2.0)]
        );
    }

    #[test]
    fn operators_and_punctuation() {
        assert_eq!(
            kinds("+-*/^(),=;"),
            vec![
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Caret,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Equals,
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn offsets_track_positions() {
        let tokens = tokenize("ab + cd").unwrap();
        assert_eq!(tokens[0].offset, 0);
        assert_eq!(tokens[1].offset, 3);
        assert_eq!(tokens[2].offset, 5);
    }

    #[test]
    fn rejects_garbage() {
        let err = tokenize("x @ y").unwrap_err();
        assert_eq!(err.offset, 2);
        assert!(err.message.contains('@'));
    }
}
