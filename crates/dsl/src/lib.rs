//! A small expression language for significance analysis.
//!
//! The original dco/scorpio instruments C++ source via operator
//! overloading; this crate provides the equivalent *textual* front-end
//! for quick experiments: a program declares inputs with ranges, named
//! intermediates and outputs, and [`analyze`] runs the full analysis
//! pipeline on it.
//!
//! # Language
//!
//! ```text
//! input x = -0.5 .. 0.5;          # input with its range (S2)
//! let t = sin(x) + x;             # registered intermediate
//! out y = cos(exp(t) - x);        # registered output (S1)
//! ```
//!
//! Expressions support `+ - * / ^` (integer-literal exponents become
//! `powi`), unary minus, parentheses, numeric literals, and the
//! elementary functions of the paper's Eq. 2: `sin cos tan exp ln sqrt
//! abs atan sinh cosh tanh erf cndf`, plus the two-argument `pow`,
//! `hypot`, `min`, `max`. Comments run from `#` to end of line.
//!
//! `let t = x;` *aliases* the existing DynDFG node (it registers a second
//! name for it) rather than copying — matching how the paper's macros
//! attach names to already-computed internal variables.
//!
//! # Example
//!
//! ```
//! use scorpio_dsl::analyze;
//!
//! let report = analyze(
//!     "input x = 0.2 .. 0.8;
//!      let u3 = exp(sin(x) + x);    # Listing 2's u3
//!      out y = cos(u3 - x);",
//! ).unwrap();
//! assert!(report.significance_of("u3").unwrap() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ast;
mod eval;
mod lexer;
mod parser;

pub use ast::{BinOp, Expr, Program, Stmt};
pub use eval::{evaluate, EvalError};
pub use lexer::{LexError, Token, TokenKind};
pub use parser::{parse, ParseError};

use scorpio_core::splitting::{run_with_splitting, SplitReport};
use scorpio_core::{Analysis, Report};

/// Errors from the end-to-end [`analyze`] pipeline.
#[derive(Debug)]
pub enum DslError {
    /// The program text did not lex/parse.
    Parse(ParseError),
    /// The program referenced unknown names or misused a function.
    Eval(EvalError),
    /// The significance analysis itself failed (e.g. no outputs).
    Analysis(scorpio_core::AnalysisError),
}

impl std::fmt::Display for DslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DslError::Parse(e) => write!(f, "parse error: {e}"),
            DslError::Eval(e) => write!(f, "evaluation error: {e}"),
            DslError::Analysis(e) => write!(f, "analysis error: {e}"),
        }
    }
}

impl std::error::Error for DslError {}

impl From<ParseError> for DslError {
    fn from(e: ParseError) -> Self {
        DslError::Parse(e)
    }
}

/// Parses and analyses a program, returning the significance report.
///
/// # Errors
///
/// Returns [`DslError`] for parse failures, evaluation failures (unknown
/// identifiers, bad arity) and analysis failures (no `out` statement).
pub fn analyze(source: &str) -> Result<Report, DslError> {
    let program = parse(source)?;
    // Evaluation errors inside the closure are smuggled out through this
    // slot; the analysis error is returned directly.
    let mut eval_error: Option<EvalError> = None;
    let result = Analysis::new().run(|ctx| {
        match evaluate(&program, ctx) {
            Ok(()) => Ok(()),
            Err(EvalError::Analysis(inner)) => Err(inner),
            Err(other) => {
                eval_error = Some(other);
                // Abort the run; the marker error is replaced below.
                Err(scorpio_core::AnalysisError::NoOutputs)
            }
        }
    });
    if let Some(e) = eval_error {
        return Err(DslError::Eval(e));
    }
    result.map_err(DslError::Analysis)
}

/// Like [`analyze`], but bisecting input ranges when an `if` condition
/// is ambiguous over them (§2.2's splitting remedy), up to `max_depth`
/// splits per path.
///
/// # Errors
///
/// As [`analyze`], plus the splitting-specific failures of
/// [`run_with_splitting`].
pub fn analyze_with_splitting(
    source: &str,
    max_depth: usize,
) -> Result<SplitReport, DslError> {
    let program = parse(source)?;
    let eval_error = std::cell::RefCell::new(None);
    let result = run_with_splitting(&Analysis::new(), max_depth, |ctx| {
        match evaluate(&program, ctx) {
            Ok(()) => Ok(()),
            Err(EvalError::Analysis(inner)) => Err(inner),
            Err(other) => {
                *eval_error.borrow_mut() = Some(other);
                Err(scorpio_core::AnalysisError::NoOutputs)
            }
        }
    });
    if let Some(e) = eval_error.into_inner() {
        return Err(DslError::Eval(e));
    }
    result.map_err(DslError::Analysis)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing_example_end_to_end() {
        let report = analyze(
            "input x0 = 0.2 .. 0.8;
             out y = cos(exp(sin(x0) + x0) - x0);",
        )
        .unwrap();
        // Matches the Rust-API analysis of the same function.
        let direct = Analysis::new()
            .run(|ctx| {
                let x = ctx.input("x0", 0.2, 0.8);
                let y = ((x.sin() + x).exp() - x).cos();
                ctx.output(&y, "y");
                Ok(())
            })
            .unwrap();
        let a = report.var("x0").unwrap();
        let b = direct.var("x0").unwrap();
        assert_eq!(a.enclosure, b.enclosure);
        assert_eq!(a.derivative, b.derivative);
        assert_eq!(a.significance_raw, b.significance_raw);
    }

    #[test]
    fn maclaurin_via_dsl() {
        let report = analyze(
            "input x = -0.01 .. 0.99;
             let term1 = x;
             let term2 = x^2;
             let term3 = x^3;
             out result = 1 + term1 + term2 + term3;",
        )
        .unwrap();
        let s1 = report.significance_of("term1").unwrap();
        let s2 = report.significance_of("term2").unwrap();
        let s3 = report.significance_of("term3").unwrap();
        assert!(s1 > s2 && s2 > s3, "{s1} {s2} {s3}");
    }

    #[test]
    fn unknown_variable_is_an_eval_error() {
        let err = analyze("input x = 0 .. 1; out y = x + z;").unwrap_err();
        assert!(matches!(err, DslError::Eval(EvalError::UnknownVariable { .. })));
        assert!(err.to_string().contains('z'));
    }

    #[test]
    fn missing_output_is_an_analysis_error() {
        let err = analyze("input x = 0 .. 1; let t = x * 2;").unwrap_err();
        assert!(matches!(err, DslError::Analysis(_)));
    }

    #[test]
    fn ambiguous_branch_surfaces_condition_text() {
        let err = analyze(
            "input x = -1 .. 1; out y = if x < 0 then -x else x;",
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("x < 0"), "{msg}");
    }

    #[test]
    fn splitting_resolves_abs() {
        let report = analyze_with_splitting(
            "input x = -1 .. 1; out y = if x < 0 then -x else x;",
            8,
        )
        .unwrap();
        assert!(report.subdomains.len() >= 2);
        let y = report.vars.iter().find(|v| v.name == "y").unwrap();
        assert!(y.enclosure.encloses(scorpio_interval::Interval::new(0.0, 1.0)));
    }

    #[test]
    fn certain_branch_needs_no_splitting() {
        let report = analyze(
            "input x = 1 .. 2; out y = if x > 0 then ln(x) else x;",
        )
        .unwrap();
        assert!(report.var("y").unwrap().enclosure.contains(0.5f64.ln().max(0.0)));
    }

    #[test]
    fn syntax_error_reports_position() {
        let err = analyze("input x = 0 .. 1; out y = (x + ;").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("parse error"), "{msg}");
    }
}
