//! `scorpio-analyze` — significance analysis of expression-language
//! programs from the command line.
//!
//! ```sh
//! # From a file:
//! scorpio-analyze program.sig
//! # Inline:
//! scorpio-analyze -e 'input x = 0.2 .. 0.8; out y = cos(exp(sin(x)+x)-x);'
//! # Machine-readable / graph output:
//! scorpio-analyze -e '…' --json
//! scorpio-analyze -e '…' --dot
//! scorpio-analyze -e '…' --csv
//! # Algorithm-1 partition and task-plan skeleton:
//! scorpio-analyze -e '…' --plan [--delta 1e-3]
//! # Split ambiguous `if` conditions instead of failing (§2.2):
//! scorpio-analyze -e 'input x = -1 .. 1; out y = if x < 0 then -x else x;' --split 8
//! ```

use std::io::Read as _;
use std::process::ExitCode;

use scorpio_dsl::{analyze, analyze_with_splitting};

struct Options {
    source: Option<String>,
    inline: Option<String>,
    json: bool,
    dot: bool,
    csv: bool,
    plan: bool,
    delta: f64,
    split: Option<usize>,
}

const USAGE: &str = "usage: scorpio-analyze [FILE | -e PROGRAM | -] \
[--json] [--dot] [--csv] [--plan] [--delta D] [--split DEPTH]";

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        source: None,
        inline: None,
        json: false,
        dot: false,
        csv: false,
        plan: false,
        delta: 1e-3,
        split: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-e" | "--expr" => {
                options.inline =
                    Some(args.next().ok_or("missing program after -e")?);
            }
            "--json" => options.json = true,
            "--dot" => options.dot = true,
            "--csv" => options.csv = true,
            "--plan" => options.plan = true,
            "--delta" => {
                let v = args.next().ok_or("missing value after --delta")?;
                options.delta = v
                    .parse()
                    .map_err(|_| format!("invalid --delta value `{v}`"))?;
            }
            "--split" => {
                let v = args.next().ok_or("missing value after --split")?;
                options.split = Some(
                    v.parse()
                        .map_err(|_| format!("invalid --split depth `{v}`"))?,
                );
            }
            "-h" | "--help" => return Err(USAGE.to_owned()),
            path if !path.starts_with('-') || path == "-" => {
                options.source = Some(path.to_owned());
            }
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    if options.inline.is_none() && options.source.is_none() {
        return Err(USAGE.to_owned());
    }
    Ok(options)
}

fn read_program(options: &Options) -> Result<String, String> {
    if let Some(text) = &options.inline {
        return Ok(text.clone());
    }
    match options.source.as_deref() {
        Some("-") => {
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| format!("reading stdin: {e}"))?;
            Ok(text)
        }
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("reading {path}: {e}")),
        None => unreachable!("validated in parse_args"),
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let program = match read_program(&options) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(depth) = options.split {
        return match analyze_with_splitting(&program, depth) {
            Ok(split) => {
                println!(
                    "analysed {} subdomain(s), {} unresolved sliver(s)",
                    split.subdomains.len(),
                    split.unresolved.len()
                );
                println!(
                    "{:<20} {:<13} {:>12} {:>28}",
                    "name", "kind", "S (max)", "merged enclosure"
                );
                for v in &split.vars {
                    println!(
                        "{:<20} {:<13} {:>12.4} {:>28}",
                        v.name,
                        format!("{:?}", v.kind).to_lowercase(),
                        v.significance,
                        v.enclosure.to_string()
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let report = match analyze(&program) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if options.json {
        println!("{}", report.to_json());
    } else if options.csv {
        print!("{}", report.to_csv());
    } else if options.dot {
        print!("{}", report.graph().simplified().to_dot("analysis"));
    } else {
        print!("{report}");
        if options.plan {
            let partition = report.graph().simplified().partition(options.delta);
            println!();
            match partition.cut_level {
                Some(level) => println!("Algorithm-1 cut at level {level} (δ = {})", options.delta),
                None => println!(
                    "no significance-variance cut at δ = {} (uniform levels)",
                    options.delta
                ),
            }
            let plan = partition.task_plan();
            println!();
            print!("{}", plan.to_rust_skeleton("kernel"));
        }
    }
    ExitCode::SUCCESS
}
