//! Evaluation of a parsed program onto the analysis tape.

use std::collections::HashMap;
use std::fmt;

use scorpio_core::{AnalysisError, Ctx, Ia1s};

use crate::ast::{BinOp, CmpOp, Expr, Program, Stmt};

/// Evaluation failures (name resolution, arity, misuse).
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Reference to a name that is not an input or a prior `let`.
    UnknownVariable {
        /// The unresolved name.
        name: String,
        /// Byte offset of the reference.
        offset: usize,
    },
    /// Call to a function the language does not define.
    UnknownFunction {
        /// The unresolved function name.
        name: String,
        /// Byte offset of the call.
        offset: usize,
    },
    /// A known function called with the wrong number of arguments.
    WrongArity {
        /// Function name.
        name: String,
        /// Expected argument count.
        expected: usize,
        /// Provided argument count.
        found: usize,
        /// Byte offset of the call.
        offset: usize,
    },
    /// A name bound more than once.
    Redefinition {
        /// The re-bound name.
        name: String,
    },
    /// An error surfaced by the underlying analysis (e.g. an ambiguous
    /// branch — none are expressible in the current grammar, but the
    /// variant keeps the plumbing total).
    Analysis(AnalysisError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownVariable { name, offset } => {
                write!(f, "unknown variable `{name}` at byte {offset}")
            }
            EvalError::UnknownFunction { name, offset } => {
                write!(f, "unknown function `{name}` at byte {offset}")
            }
            EvalError::WrongArity {
                name,
                expected,
                found,
                offset,
            } => write!(
                f,
                "`{name}` expects {expected} argument(s), got {found}, at byte {offset}"
            ),
            EvalError::Redefinition { name } => {
                write!(f, "name `{name}` is defined more than once")
            }
            EvalError::Analysis(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates `program` against the analysis context: inputs are
/// registered with their declared ranges, `let` bindings become named
/// intermediates, `out` bindings become outputs.
///
/// # Errors
///
/// Returns [`EvalError`] on name/arity problems.
pub fn evaluate<'t>(program: &Program, ctx: &Ctx<'t>) -> Result<(), EvalError> {
    let mut env: HashMap<String, Ia1s<'t>> = HashMap::new();
    for stmt in &program.stmts {
        match stmt {
            Stmt::Input { name, lo, hi } => {
                if env.contains_key(name) {
                    return Err(EvalError::Redefinition { name: name.clone() });
                }
                let var = ctx.input(name.clone(), *lo, *hi);
                env.insert(name.clone(), var);
            }
            Stmt::Let { name, expr } => {
                if env.contains_key(name) {
                    return Err(EvalError::Redefinition { name: name.clone() });
                }
                let value = eval_expr(expr, ctx, &env)?;
                ctx.intermediate(&value, name.clone());
                env.insert(name.clone(), value);
            }
            Stmt::Out { name, expr } => {
                if env.contains_key(name) {
                    return Err(EvalError::Redefinition { name: name.clone() });
                }
                let value = eval_expr(expr, ctx, &env)?;
                ctx.output(&value, name.clone());
                env.insert(name.clone(), value);
            }
        }
    }
    Ok(())
}

fn eval_expr<'t>(
    expr: &Expr,
    ctx: &Ctx<'t>,
    env: &HashMap<String, Ia1s<'t>>,
) -> Result<Ia1s<'t>, EvalError> {
    match expr {
        Expr::Number(v) => Ok(ctx.constant(*v)),
        Expr::Var { name, offset } => env.get(name).copied().ok_or_else(|| {
            EvalError::UnknownVariable {
                name: name.clone(),
                offset: *offset,
            }
        }),
        Expr::Neg(inner) => Ok(-eval_expr(inner, ctx, env)?),
        Expr::Bin { op, lhs, rhs } => {
            // `x ^ <integer literal>` lowers to powi (defined for any
            // base sign); everything else goes through the generic path.
            if let (BinOp::Pow, Expr::Number(p)) = (op, rhs.as_ref()) {
                let l = eval_expr(lhs, ctx, env)?;
                return Ok(apply_pow(l, *p));
            }
            let l = eval_expr(lhs, ctx, env)?;
            let r = eval_expr(rhs, ctx, env)?;
            Ok(match op {
                BinOp::Add => l + r,
                BinOp::Sub => l - r,
                BinOp::Mul => l * r,
                BinOp::Div => l / r,
                // General power: x^y = exp(y · ln x).
                BinOp::Pow => (r * l.ln()).exp(),
            })
        }
        Expr::If {
            cmp_lhs,
            cmp_op,
            cmp_rhs,
            then_branch,
            else_branch,
        } => {
            let l = eval_expr(cmp_lhs, ctx, env)?;
            let r = eval_expr(cmp_rhs, ctx, env)?;
            let tri = match cmp_op {
                CmpOp::Less => l.value().certainly_lt(r.value()),
                CmpOp::Greater => l.value().certainly_gt(r.value()),
            };
            let condition = format!("{cmp_lhs} {cmp_op} {cmp_rhs}");
            let taken = ctx
                .branch(tri, &condition)
                .map_err(EvalError::Analysis)?;
            if taken {
                eval_expr(then_branch, ctx, env)
            } else {
                eval_expr(else_branch, ctx, env)
            }
        }
        Expr::Call { name, offset, args } => {
            let arity = |expected: usize| -> Result<(), EvalError> {
                if args.len() == expected {
                    Ok(())
                } else {
                    Err(EvalError::WrongArity {
                        name: name.clone(),
                        expected,
                        found: args.len(),
                        offset: *offset,
                    })
                }
            };
            fn unary<'t>(
                f: fn(Ia1s<'t>) -> Ia1s<'t>,
                args: &[Expr],
                ctx: &Ctx<'t>,
                env: &HashMap<String, Ia1s<'t>>,
            ) -> Result<Ia1s<'t>, EvalError> {
                Ok(f(eval_expr(&args[0], ctx, env)?))
            }
            match name.as_str() {
                "sin" => {
                    arity(1)?;
                    unary(|x| x.sin(), args, ctx, env)
                }
                "cos" => {
                    arity(1)?;
                    unary(|x| x.cos(), args, ctx, env)
                }
                "tan" => {
                    arity(1)?;
                    unary(|x| x.tan(), args, ctx, env)
                }
                "exp" => {
                    arity(1)?;
                    unary(|x| x.exp(), args, ctx, env)
                }
                "ln" => {
                    arity(1)?;
                    unary(|x| x.ln(), args, ctx, env)
                }
                "sqrt" => {
                    arity(1)?;
                    unary(|x| x.sqrt(), args, ctx, env)
                }
                "abs" => {
                    arity(1)?;
                    unary(|x| x.abs(), args, ctx, env)
                }
                "atan" => {
                    arity(1)?;
                    unary(|x| x.atan(), args, ctx, env)
                }
                "sinh" => {
                    arity(1)?;
                    unary(|x| x.sinh(), args, ctx, env)
                }
                "cosh" => {
                    arity(1)?;
                    unary(|x| x.cosh(), args, ctx, env)
                }
                "tanh" => {
                    arity(1)?;
                    unary(|x| x.tanh(), args, ctx, env)
                }
                "erf" => {
                    arity(1)?;
                    unary(|x| x.erf(), args, ctx, env)
                }
                "cndf" => {
                    arity(1)?;
                    unary(|x| x.cndf(), args, ctx, env)
                }
                "pow" => {
                    arity(2)?;
                    let base = eval_expr(&args[0], ctx, env)?;
                    if let Expr::Number(p) = &args[1] {
                        Ok(apply_pow(base, *p))
                    } else {
                        let e = eval_expr(&args[1], ctx, env)?;
                        Ok((e * base.ln()).exp())
                    }
                }
                "hypot" => {
                    arity(2)?;
                    let a = eval_expr(&args[0], ctx, env)?;
                    let b = eval_expr(&args[1], ctx, env)?;
                    Ok(a.hypot(b))
                }
                "min" => {
                    arity(2)?;
                    let a = eval_expr(&args[0], ctx, env)?;
                    let b = eval_expr(&args[1], ctx, env)?;
                    Ok(a.min(b))
                }
                "max" => {
                    arity(2)?;
                    let a = eval_expr(&args[0], ctx, env)?;
                    let b = eval_expr(&args[1], ctx, env)?;
                    Ok(a.max(b))
                }
                _ => Err(EvalError::UnknownFunction {
                    name: name.clone(),
                    offset: *offset,
                }),
            }
        }
    }
}

/// Lowers a literal exponent: integers to `powi` (any base), others to
/// `powf` (non-negative base domain).
fn apply_pow<'t>(base: Ia1s<'t>, p: f64) -> Ia1s<'t> {
    if p.fract() == 0.0 && p.abs() <= i32::MAX as f64 {
        base.powi(p as i32)
    } else {
        base.powf(p)
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze;
    use crate::DslError;
    use scorpio_core::Analysis;

    /// Compares the DSL result against hand-written instrumentation for
    /// a function covering every operator class.
    #[test]
    fn dsl_matches_direct_instrumentation() {
        let report = analyze(
            "input a = 0.5 .. 1.5;
             input b = -0.5 .. 0.5;
             let s = sin(a) * cosh(b) + hypot(a, b);
             out y = sqrt(abs(s)) / (1 + exp(-a));",
        )
        .unwrap();

        let direct = Analysis::new()
            .run(|ctx| {
                let a = ctx.input("a", 0.5, 1.5);
                let b = ctx.input("b", -0.5, 0.5);
                let s = a.sin() * b.cosh() + a.hypot(b);
                ctx.intermediate(&s, "s");
                let one = ctx.constant(1.0);
                let y = s.abs().sqrt() / (one + (-a).exp());
                ctx.output(&y, "y");
                Ok(())
            })
            .unwrap();

        for name in ["a", "b", "s", "y"] {
            let d = report.var(name).unwrap();
            let e = direct.var(name).unwrap();
            assert_eq!(d.enclosure, e.enclosure, "{name} enclosure");
            assert!(
                (d.significance_raw - e.significance_raw).abs()
                    <= 1e-12 * (1.0 + e.significance_raw.abs()),
                "{name}: {} vs {}",
                d.significance_raw,
                e.significance_raw
            );
        }
    }

    #[test]
    fn integer_power_keeps_negative_bases() {
        // x^2 over a sign-straddling range must be powi, not exp/ln.
        let report = analyze("input x = -2 .. 2; out y = x^2;").unwrap();
        let y = report.var("y").unwrap();
        assert!(y.enclosure.inf() >= 0.0);
        assert!(y.enclosure.contains(4.0));
    }

    #[test]
    fn general_power_via_exp_ln() {
        let report = analyze("input x = 1 .. 2; out y = x ^ 0.5;").unwrap();
        let y = report.var("y").unwrap();
        assert!(y.enclosure.contains(2.0f64.sqrt()));
        assert!(y.enclosure.contains(1.0));
    }

    #[test]
    fn arity_errors() {
        let err = analyze("input x = 0 .. 1; out y = sin(x, x);").unwrap_err();
        assert!(matches!(err, DslError::Eval(crate::EvalError::WrongArity { .. })));
        let err = analyze("input x = 0 .. 1; out y = frobnicate(x);").unwrap_err();
        assert!(matches!(
            err,
            DslError::Eval(crate::EvalError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn redefinition_rejected() {
        let err = analyze("input x = 0 .. 1; let x = 2; out y = x;").unwrap_err();
        assert!(matches!(
            err,
            DslError::Eval(crate::EvalError::Redefinition { .. })
        ));
    }
}
