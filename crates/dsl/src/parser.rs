//! Recursive-descent / Pratt parser for the analysis language.

use std::fmt;

use crate::ast::{BinOp, CmpOp, Expr, Program, Stmt};
use crate::lexer::{tokenize, LexError, Token, TokenKind};

/// A parse failure with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the problem (source length for unexpected EOF).
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            offset: e.offset,
            message: e.message,
        }
    }
}

/// Parses a whole program.
///
/// # Errors
///
/// Returns [`ParseError`] with the byte offset of the first problem.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        source_len: source.len(),
    };
    let mut stmts = Vec::new();
    while !parser.at_end() {
        stmts.push(parser.statement()?);
    }
    Ok(Program { stmts })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    source_len: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn here(&self) -> usize {
        self.peek().map(|t| t.offset).unwrap_or(self.source_len)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.here(),
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        match self.peek() {
            Some(t) if &t.kind == kind => Ok(self.advance().expect("peeked")),
            Some(t) => Err(ParseError {
                offset: t.offset,
                message: format!("expected {kind}, found {}", t.kind),
            }),
            None => Err(self.error(format!("expected {kind}, found end of input"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().cloned() {
            Some(Token {
                kind: TokenKind::Ident(name),
                ..
            }) => {
                self.advance();
                Ok(name)
            }
            Some(t) => Err(ParseError {
                offset: t.offset,
                message: format!("expected an identifier, found {}", t.kind),
            }),
            None => Err(self.error("expected an identifier, found end of input")),
        }
    }

    /// A signed numeric literal (for input ranges).
    fn signed_number(&mut self) -> Result<f64, ParseError> {
        let negative = matches!(
            self.peek(),
            Some(Token {
                kind: TokenKind::Minus,
                ..
            })
        );
        if negative {
            self.advance();
        }
        match self.advance() {
            Some(Token {
                kind: TokenKind::Number(v),
                ..
            }) => Ok(if negative { -v } else { v }),
            Some(t) => Err(ParseError {
                offset: t.offset,
                message: format!("expected a number, found {}", t.kind),
            }),
            None => Err(self.error("expected a number, found end of input")),
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let stmt = match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Input) => {
                self.advance();
                let name = self.expect_ident()?;
                self.expect(&TokenKind::Equals)?;
                let lo = self.signed_number()?;
                self.expect(&TokenKind::DotDot)?;
                let hi = self.signed_number()?;
                if lo > hi {
                    return Err(self.error(format!(
                        "input `{name}`: range lower bound {lo} exceeds upper bound {hi}"
                    )));
                }
                Stmt::Input { name, lo, hi }
            }
            Some(TokenKind::Let) => {
                self.advance();
                let name = self.expect_ident()?;
                self.expect(&TokenKind::Equals)?;
                let expr = self.expression(0)?;
                Stmt::Let { name, expr }
            }
            Some(TokenKind::Out) => {
                self.advance();
                let name = self.expect_ident()?;
                self.expect(&TokenKind::Equals)?;
                let expr = self.expression(0)?;
                Stmt::Out { name, expr }
            }
            Some(other) => {
                return Err(self.error(format!(
                    "expected `input`, `let` or `out`, found {other}"
                )))
            }
            None => return Err(self.error("expected a statement, found end of input")),
        };
        self.expect(&TokenKind::Semicolon)?;
        Ok(stmt)
    }

    /// Pratt expression parser. Binding powers: `+ -` = 10, `* /` = 20,
    /// `^` = 30 (right associative), unary minus binds at 25.
    fn expression(&mut self, min_bp: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.prefix()?;
        loop {
            let (op, lbp, rbp) = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Plus) => (BinOp::Add, 10, 11),
                Some(TokenKind::Minus) => (BinOp::Sub, 10, 11),
                Some(TokenKind::Star) => (BinOp::Mul, 20, 21),
                Some(TokenKind::Slash) => (BinOp::Div, 20, 21),
                // Right-associative: rbp == lbp.
                Some(TokenKind::Caret) => (BinOp::Pow, 30, 30),
                _ => break,
            };
            if lbp < min_bp {
                break;
            }
            self.advance();
            let rhs = self.expression(rbp)?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn prefix(&mut self) -> Result<Expr, ParseError> {
        match self.advance() {
            Some(Token {
                kind: TokenKind::If,
                ..
            }) => {
                let cmp_lhs = self.expression(0)?;
                let cmp_op = match self.advance() {
                    Some(Token {
                        kind: TokenKind::Less,
                        ..
                    }) => CmpOp::Less,
                    Some(Token {
                        kind: TokenKind::Greater,
                        ..
                    }) => CmpOp::Greater,
                    Some(t) => {
                        return Err(ParseError {
                            offset: t.offset,
                            message: format!("expected `<` or `>`, found {}", t.kind),
                        })
                    }
                    None => {
                        return Err(self.error("expected `<` or `>`, found end of input"))
                    }
                };
                let cmp_rhs = self.expression(0)?;
                self.expect(&TokenKind::Then)?;
                let then_branch = self.expression(0)?;
                self.expect(&TokenKind::Else)?;
                let else_branch = self.expression(0)?;
                Ok(Expr::If {
                    cmp_lhs: Box::new(cmp_lhs),
                    cmp_op,
                    cmp_rhs: Box::new(cmp_rhs),
                    then_branch: Box::new(then_branch),
                    else_branch: Box::new(else_branch),
                })
            }
            Some(Token {
                kind: TokenKind::Number(v),
                ..
            }) => Ok(Expr::Number(v)),
            Some(Token {
                kind: TokenKind::Minus,
                ..
            }) => {
                // Unary minus binds tighter than * but looser than ^ so
                // that -x^2 = -(x^2), matching mathematical convention.
                let inner = self.expression(25)?;
                Ok(Expr::Neg(Box::new(inner)))
            }
            Some(Token {
                kind: TokenKind::LParen,
                ..
            }) => {
                let inner = self.expression(0)?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            Some(Token {
                kind: TokenKind::Ident(name),
                offset,
            }) => {
                if matches!(
                    self.peek(),
                    Some(Token {
                        kind: TokenKind::LParen,
                        ..
                    })
                ) {
                    self.advance(); // (
                    let mut args = Vec::new();
                    if !matches!(
                        self.peek(),
                        Some(Token {
                            kind: TokenKind::RParen,
                            ..
                        })
                    ) {
                        loop {
                            args.push(self.expression(0)?);
                            if matches!(
                                self.peek(),
                                Some(Token {
                                    kind: TokenKind::Comma,
                                    ..
                                })
                            ) {
                                self.advance();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call { name, offset, args })
                } else {
                    Ok(Expr::Var { name, offset })
                }
            }
            Some(t) => Err(ParseError {
                offset: t.offset,
                message: format!("expected an expression, found {}", t.kind),
            }),
            None => Err(self.error("expected an expression, found end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        let program = parse(&format!("out y = {src};")).unwrap();
        match &program.stmts[0] {
            Stmt::Out { expr, .. } => expr.clone(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3).
        match expr("1 + 2 * 3") {
            Expr::Bin { op: BinOp::Add, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Bin { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn power_is_right_associative() {
        // 2 ^ 3 ^ 2 = 2 ^ (3 ^ 2).
        match expr("2 ^ 3 ^ 2") {
            Expr::Bin { op: BinOp::Pow, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Bin { op: BinOp::Pow, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_minus_vs_power() {
        // -x^2 = -(x^2).
        match expr("-x^2") {
            Expr::Neg(inner) => {
                assert!(matches!(*inner, Expr::Bin { op: BinOp::Pow, .. }));
            }
            other => panic!("{other:?}"),
        }
        // (-x)^2 stays grouped.
        match expr("(-x)^2") {
            Expr::Bin { op: BinOp::Pow, lhs, .. } => {
                assert!(matches!(*lhs, Expr::Neg(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn calls_with_arities() {
        match expr("pow(x, 3) + hypot(a, b)") {
            Expr::Bin { lhs, rhs, .. } => {
                assert!(matches!(*lhs, Expr::Call { ref name, ref args, .. }
                    if name == "pow" && args.len() == 2));
                assert!(matches!(*rhs, Expr::Call { ref name, ref args, .. }
                    if name == "hypot" && args.len() == 2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn statements_round_trip() {
        let p = parse(
            "input x = -1 .. 2.5;
             let t = sin(x);
             out y = t * t;",
        )
        .unwrap();
        assert_eq!(p.stmts.len(), 3);
        assert_eq!(p.input_names(), vec!["x"]);
        assert_eq!(p.output_count(), 1);
        assert!(matches!(p.stmts[0], Stmt::Input { lo, hi, .. } if lo == -1.0 && hi == 2.5));
    }

    #[test]
    fn inverted_range_rejected() {
        let err = parse("input x = 2 .. 1;").unwrap_err();
        assert!(err.message.contains("exceeds"));
    }

    #[test]
    fn missing_semicolon_reported() {
        let err = parse("out y = 1").unwrap_err();
        assert!(err.message.contains("`;`"), "{}", err.message);
    }

    #[test]
    fn if_expression_parses() {
        match expr("if x < 0 then -x else x") {
            Expr::If { cmp_op, .. } => assert_eq!(cmp_op, CmpOp::Less),
            other => panic!("{other:?}"),
        }
        // Nests as an operand.
        match expr("1 + (if a > b then a else b)") {
            Expr::Bin { rhs, .. } => assert!(matches!(*rhs, Expr::If { .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_offsets_are_useful() {
        let src = "out y = (1 + ;";
        let err = parse(src).unwrap_err();
        assert_eq!(err.offset, src.find(';').unwrap());
    }
}
