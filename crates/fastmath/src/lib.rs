//! Fast, low-precision math kernels for approximate task versions.
//!
//! §4.1.5 of the CGO'16 paper approximates the least-significant blocks of
//! BlackScholes "using less accurate but faster implementations of
//! mathematical functions such as `exp` and `sqrt`", citing Mineiro's
//! `fastapprox` library. This crate is our from-scratch equivalent: each
//! function trades 3–6 decimal digits of accuracy for a handful of
//! flops, and documents its maximum observed relative error over its
//! supported domain (enforced by tests).
//!
//! These kernels are what the *approximate* versions of tasks call; the
//! significance-driven runtime decides per task whether the accurate or
//! the approximate body runs.
//!
//! | function | technique | max rel. error (domain) |
//! |---|---|---|
//! | [`fast_exp`] | exponent patching + degree-5 mantissa fit | ~3e-7 |
//! | [`fast_ln`] | bit-field log2 + degree-7 mantissa fit | ~3e-7 absolute |
//! | [`fast_log2`] | same | ~4e-7 absolute |
//! | [`fast_pow`] | `exp2(p · log2 x)` | ~1e-5 |
//! | [`fast_sqrt`] | exponent halving + 2 Newton steps | ~5e-6 |
//! | [`fast_rsqrt`] | Quake-III magic constant + 2 Newton steps | ~5e-6 |
//! | [`fast_recip`] | bit trick + 3 Newton steps | ~1e-6 |
//! | [`fast_erf`] | Abramowitz–Stegun 7.1.26 | ~1.5e-7 absolute |
//! | [`fast_cndf`] | via [`fast_erf`] | ~1e-7 absolute |
//! | [`fast_sin`]/[`fast_cos`] | parabola + precision step | ~1e-3 absolute |

#![warn(missing_docs)]
// Polynomial coefficients are written with full fitted precision.
#![allow(clippy::excessive_precision)]

const LOG2_E: f64 = std::f64::consts::LOG2_E;

/// Fast base-2 exponential via IEEE-754 exponent patching with a cubic
/// polynomial correction of the mantissa (Schraudolph's trick, upgraded
/// from linear to cubic).
///
/// Relative error stays below `3e-7` for the full binade range.
///
/// ```
/// use scorpio_fastmath::fast_exp2;
/// let v = fast_exp2(3.3);
/// assert!((v - 3.3f64.exp2()).abs() / 3.3f64.exp2() < 1e-4);
/// ```
#[inline]
pub fn fast_exp2(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < -1022.0 {
        return 0.0;
    }
    if x > 1023.0 {
        return f64::INFINITY;
    }
    let xf = x.floor();
    let f = x - xf; // fractional part in [0, 1)
    // Degree-5 Chebyshev-node least-squares fit of 2^f on [0,1):
    // max rel err ≈ 1.1e-7.
    let p = 0.999_999_895_766_817_2
        + f * (0.693_154_619_831_813_6
            + f * (0.240_140_771_403_653_8
                + f * (0.055_863_279_098_518_695
                    + f * (0.008_946_218_643_593_845 + f * 0.001_895_105_727_886_896_8))));
    let e = xf as i64;
    p * f64::from_bits(((e + 1023) as u64) << 52)
}

/// Fast natural exponential: `fast_exp2(x · log₂e)`.
///
/// ```
/// use scorpio_fastmath::fast_exp;
/// assert!((fast_exp(1.0) - std::f64::consts::E).abs() < 1e-3);
/// ```
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    fast_exp2(x * LOG2_E)
}

/// Fast base-2 logarithm: exponent extraction plus a quartic fit of the
/// mantissa. Defined for `x > 0`; returns NaN otherwise. Absolute error
/// below `4e-7`.
///
/// ```
/// use scorpio_fastmath::fast_log2;
/// assert!((fast_log2(8.0) - 3.0).abs() < 1e-4);
/// assert!(fast_log2(-1.0).is_nan());
/// ```
#[inline]
pub fn fast_log2(x: f64) -> f64 {
    if x <= 0.0 || x.is_nan() {
        return f64::NAN;
    }
    if x.is_infinite() {
        return f64::INFINITY;
    }
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64;
    if exp == 0 {
        // Subnormal: renormalise by scaling with 2^64.
        return fast_log2(x * 18446744073709551616.0) - 64.0;
    }
    let e = exp - 1023;
    let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52)); // m ∈ [1,2)
    // Degree-7 Chebyshev-node least-squares fit of log2(1+t) on [0,1):
    // max abs err ≈ 3.2e-7.
    let t = m - 1.0;
    let p = 0.000_000_319_553_744_475_342_66
        + t * (1.442_652_124_588_514_9
            + t * (-0.720_386_822_055_948_6
                + t * (0.472_500_755_962_524_17
                    + t * (-0.323_119_385_175_561_94
                        + t * (0.190_425_813_553_518
                            + t * (-0.076_852_303_043_429_73 + t * 0.014_779_731_771_108_378))))));
    e as f64 + p
}

/// Fast natural logarithm: `fast_log2(x) · ln 2`.
#[inline]
pub fn fast_ln(x: f64) -> f64 {
    fast_log2(x) * std::f64::consts::LN_2
}

/// Fast power `x^p` for `x > 0`, via `exp2(p · log2 x)`.
///
/// This is the `pow_fast` the paper's Listing 7 plugs into the Maclaurin
/// approximate task.
///
/// ```
/// use scorpio_fastmath::fast_pow;
/// let v = fast_pow(2.7, 3.2);
/// let want = 2.7f64.powf(3.2);
/// assert!((v - want).abs() / want < 1e-3);
/// ```
#[inline]
pub fn fast_pow(x: f64, p: f64) -> f64 {
    if p == 0.0 {
        return 1.0;
    }
    if x == 0.0 {
        return if p > 0.0 { 0.0 } else { f64::INFINITY };
    }
    fast_exp2(p * fast_log2(x))
}

/// Fast integer power by binary exponentiation (error limited to rounding
/// accumulation over `log₂ n` multiplications).
///
/// ```
/// use scorpio_fastmath::fast_powi;
/// assert_eq!(fast_powi(3.0, 4), 81.0);
/// assert!((fast_powi(2.0, -2) - 0.25).abs() < 1e-7);
/// assert_eq!(fast_powi(0.0, 0), 1.0);
/// ```
#[inline]
pub fn fast_powi(x: f64, n: i32) -> f64 {
    if n < 0 {
        return fast_recip(fast_powi(x, -n));
    }
    let mut result = 1.0;
    let mut base = x;
    let mut e = n as u32;
    while e > 0 {
        if e & 1 == 1 {
            result *= base;
        }
        base *= base;
        e >>= 1;
    }
    result
}

/// Fast reciprocal square root: 64-bit Quake-III magic constant with two
/// Newton–Raphson refinements. Defined for `x > 0`; NaN otherwise.
///
/// ```
/// use scorpio_fastmath::fast_rsqrt;
/// assert!((fast_rsqrt(4.0) - 0.5).abs() < 1e-5);
/// ```
#[inline]
pub fn fast_rsqrt(x: f64) -> f64 {
    if x <= 0.0 || x.is_nan() {
        return f64::NAN;
    }
    let i = 0x5fe6_eb50_c7b5_37a9u64.wrapping_sub(x.to_bits() >> 1);
    let mut y = f64::from_bits(i);
    let half = 0.5 * x;
    y *= 1.5 - half * y * y;
    y *= 1.5 - half * y * y;
    y
}

/// Fast square root: `x · rsqrt(x)` with the refined reciprocal root.
///
/// ```
/// use scorpio_fastmath::fast_sqrt;
/// assert!((fast_sqrt(2.0) - std::f64::consts::SQRT_2).abs() < 1e-5);
/// assert_eq!(fast_sqrt(0.0), 0.0);
/// ```
#[inline]
pub fn fast_sqrt(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    x * fast_rsqrt(x)
}

/// Fast reciprocal `1/x` via exponent mirroring plus three Newton steps.
///
/// ```
/// use scorpio_fastmath::fast_recip;
/// assert!((fast_recip(3.0) - 1.0 / 3.0).abs() < 1e-6);
/// ```
#[inline]
pub fn fast_recip(x: f64) -> f64 {
    if x == 0.0 {
        return f64::INFINITY;
    }
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    let i = 0x7fde_6238_22fc_16e6u64.wrapping_sub(ax.to_bits());
    let mut y = f64::from_bits(i);
    y *= 2.0 - ax * y;
    y *= 2.0 - ax * y;
    y *= 2.0 - ax * y;
    if x < 0.0 {
        -y
    } else {
        y
    }
}

/// Fast error function: Abramowitz–Stegun formula 7.1.26 (a 5-term
/// rational polynomial); maximum absolute error `1.5e-7`.
///
/// ```
/// use scorpio_fastmath::fast_erf;
/// assert!((fast_erf(1.0) - 0.8427007929497149).abs() < 2e-7);
/// assert!(fast_erf(0.0).abs() < 1e-7);
/// ```
#[inline]
pub fn fast_erf(x: f64) -> f64 {
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    // Use the accurate exp here: the polynomial's 1.5e-7 bound assumes an
    // exact Gaussian factor, and exp is not the bottleneck of erf callers.
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Fast standard-normal CDF via [`fast_erf`] — the classic "CNDF" shortcut
/// used in approximate BlackScholes kernels. Max absolute error ≈ `1e-7`.
///
/// ```
/// use scorpio_fastmath::fast_cndf;
/// assert!((fast_cndf(0.0) - 0.5).abs() < 1e-7);
/// ```
#[inline]
pub fn fast_cndf(x: f64) -> f64 {
    0.5 * (1.0 + fast_erf(x * std::f64::consts::FRAC_1_SQRT_2))
}

/// Fast sine via the parabola approximation with one precision step;
/// absolute error below `1.2e-3` after range reduction.
///
/// ```
/// use scorpio_fastmath::fast_sin;
/// assert!((fast_sin(1.0) - 1.0f64.sin()).abs() < 1.2e-3);
/// ```
#[inline]
pub fn fast_sin(x: f64) -> f64 {
    use std::f64::consts::PI;
    // Range-reduce to [-π, π).
    let mut t = (x + PI) % (2.0 * PI);
    if t < 0.0 {
        t += 2.0 * PI;
    }
    t -= PI;
    const B: f64 = 4.0 / std::f64::consts::PI;
    const C: f64 = -4.0 / (std::f64::consts::PI * std::f64::consts::PI);
    let y = B * t + C * t * t.abs();
    // Precision step (weights the parabola towards the true sine).
    const P: f64 = 0.225;
    P * (y * y.abs() - y) + y
}

/// Fast cosine: `fast_sin(x + π/2)`.
#[inline]
pub fn fast_cos(x: f64) -> f64 {
    fast_sin(x + std::f64::consts::FRAC_PI_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks `f` against `reference` on a grid, asserting the documented
    /// relative error bound.
    fn assert_rel_error(
        name: &str,
        f: impl Fn(f64) -> f64,
        reference: impl Fn(f64) -> f64,
        grid: impl Iterator<Item = f64>,
        bound: f64,
    ) {
        for x in grid {
            let got = f(x);
            let want = reference(x);
            if want == 0.0 {
                assert!(got.abs() < bound, "{name}({x}): got {got}, want 0");
                continue;
            }
            let rel = ((got - want) / want).abs();
            assert!(
                rel < bound,
                "{name}({x}): got {got}, want {want}, rel err {rel:.3e} ≥ {bound:.1e}"
            );
        }
    }

    fn linspace(lo: f64, hi: f64, n: usize) -> impl Iterator<Item = f64> + Clone {
        (0..=n).map(move |i| lo + (hi - lo) * i as f64 / n as f64)
    }

    #[test]
    fn exp2_accuracy() {
        assert_rel_error("fast_exp2", fast_exp2, f64::exp2, linspace(-80.0, 80.0, 4000), 4e-7);
    }

    #[test]
    fn exp_accuracy() {
        assert_rel_error("fast_exp", fast_exp, f64::exp, linspace(-50.0, 50.0, 4000), 4e-7);
    }

    #[test]
    fn exp_extremes() {
        assert_eq!(fast_exp(-2000.0), 0.0);
        assert_eq!(fast_exp(2000.0), f64::INFINITY);
        assert!((fast_exp(0.0) - 1.0).abs() < 1e-6);
        assert!(fast_exp(f64::NAN).is_nan());
    }

    #[test]
    fn log2_absolute_accuracy() {
        for x in linspace(0.001, 100.0, 20000).skip(1) {
            assert!(
                (fast_log2(x) - x.log2()).abs() < 1e-6,
                "fast_log2({x}) = {} want {}",
                fast_log2(x),
                x.log2()
            );
        }
    }

    #[test]
    fn log_domain() {
        assert!(fast_log2(0.0).is_nan());
        assert!(fast_log2(-3.0).is_nan());
        assert!(fast_ln(f64::NAN).is_nan());
        assert_eq!(fast_log2(f64::INFINITY), f64::INFINITY);
        // Subnormals renormalise correctly.
        let sub = 1e-310;
        assert!((fast_log2(sub) - sub.log2()).abs() < 1e-3);
    }

    #[test]
    fn pow_accuracy() {
        for x in [0.1, 0.7, 1.0, 2.5, 17.0, 120.0] {
            for p in [-2.5, -1.0, -0.5, 0.0, 0.3, 1.0, 2.7] {
                let got = fast_pow(x, p);
                let want = x.powf(p);
                let rel = ((got - want) / want).abs();
                assert!(rel < 1e-5, "fast_pow({x}, {p}) rel err {rel:.2e}");
            }
        }
        assert_eq!(fast_pow(0.0, 2.0), 0.0);
        assert_eq!(fast_pow(0.0, -1.0), f64::INFINITY);
        assert_eq!(fast_pow(5.0, 0.0), 1.0);
    }

    #[test]
    fn powi_exactness() {
        assert_eq!(fast_powi(3.0, 0), 1.0);
        assert_eq!(fast_powi(3.0, 1), 3.0);
        assert_eq!(fast_powi(3.0, 5), 243.0);
        assert_eq!(fast_powi(-2.0, 3), -8.0);
        assert!((fast_powi(10.0, -3) - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn sqrt_rsqrt_accuracy() {
        let grid = (0..2000).map(|i| 1e-6 * 1.02f64.powi(i));
        assert_rel_error("fast_sqrt", fast_sqrt, f64::sqrt, grid.clone(), 5e-6);
        assert_rel_error("fast_rsqrt", fast_rsqrt, |x| 1.0 / x.sqrt(), grid, 8e-6);
        assert!(fast_rsqrt(-1.0).is_nan());
        assert_eq!(fast_sqrt(0.0), 0.0);
    }

    #[test]
    fn recip_accuracy() {
        let grid = (0..2000).map(|i| 1e-6 * 1.02f64.powi(i));
        assert_rel_error("fast_recip", fast_recip, |x| 1.0 / x, grid, 1e-6);
        assert!((fast_recip(-4.0) + 0.25).abs() < 1e-6);
        assert_eq!(fast_recip(0.0), f64::INFINITY);
    }

    #[test]
    fn erf_accuracy() {
        for x in linspace(-6.0, 6.0, 2400) {
            let want = scorpio_interval::real::erf(x);
            assert!(
                (fast_erf(x) - want).abs() < 2e-7,
                "fast_erf({x}) = {}, want {want}",
                fast_erf(x)
            );
        }
    }

    #[test]
    fn cndf_accuracy() {
        for x in linspace(-8.0, 8.0, 3200) {
            let want = scorpio_interval::real::cndf(x);
            assert!(
                (fast_cndf(x) - want).abs() < 2e-7,
                "fast_cndf({x}) = {}, want {want}",
                fast_cndf(x)
            );
        }
    }

    #[test]
    fn sin_cos_accuracy() {
        for x in linspace(-20.0, 20.0, 8000) {
            assert!((fast_sin(x) - x.sin()).abs() < 1.2e-3, "fast_sin({x})");
            assert!((fast_cos(x) - x.cos()).abs() < 1.2e-3, "fast_cos({x})");
        }
    }

    #[test]
    fn deterministic_bit_patterns() {
        let a = fast_exp(1.234567);
        let b = fast_exp(1.234567);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
