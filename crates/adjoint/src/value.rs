//! The [`Scalar`] abstraction: value types a [`Tape`](crate::Tape) can
//! record over.
//!
//! Two implementations are provided:
//!
//! * `f64` — classical point-valued algorithmic differentiation.
//! * [`Interval`] — the interval AD of §2.1 of the paper: values are
//!   enclosures over a whole input box, partial derivatives are interval
//!   enclosures of the true derivative range (Eq. 10).

use std::fmt::Debug;
use std::ops::{Add, Div, Mul, Neg, Sub};

use scorpio_interval::{real, Interval, Trichotomy};

/// A numeric value type over which elementary operations and their local
/// partial derivatives can be evaluated.
///
/// The trait collects exactly the elementary functions `φ_j` the paper's
/// three-part evaluation procedure supports (arithmetic plus C++ intrinsics,
/// §2.1), together with the derivative helpers the tape needs when
/// recording:
///
/// * `*_deriv` / `*_partials` methods return (enclosures of) the local
///   partial derivatives of the non-smooth or multi-argument operations.
/// * [`Scalar::width`] is the `w(·)` of the significance definition
///   (Eq. 11); it is identically zero for `f64`.
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + 'static
{
    /// Embeds a point value.
    fn from_f64(x: f64) -> Self;

    /// The additive identity.
    #[inline]
    fn zero() -> Self {
        Self::from_f64(0.0)
    }

    /// The multiplicative identity.
    #[inline]
    fn one() -> Self {
        Self::from_f64(1.0)
    }

    /// Interval width `w([u])`; `0` for point scalars.
    fn width(self) -> f64;

    /// A representative point value (midpoint for intervals).
    fn midpoint(self) -> f64;

    /// Largest absolute member value.
    fn mag(self) -> f64;

    /// `true` if the value is the additive identity (used to skip adjoint
    /// propagation work for zero adjoints).
    fn is_zero(self) -> bool;

    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Tangent.
    fn tan(self) -> Self;
    /// Exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Square.
    fn sqr(self) -> Self;
    /// Reciprocal.
    fn recip(self) -> Self;
    /// Integer power (with `x⁰ = 1`).
    fn powi(self, n: i32) -> Self;
    /// Real power.
    fn powf(self, p: f64) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Arc-tangent.
    fn atan(self) -> Self;
    /// Hyperbolic tangent.
    fn tanh(self) -> Self;
    /// Hyperbolic sine.
    fn sinh(self) -> Self;
    /// Hyperbolic cosine.
    fn cosh(self) -> Self;
    /// Error function.
    fn erf(self) -> Self;
    /// Standard-normal CDF.
    fn cndf(self) -> Self;
    /// Euclidean norm `√(x² + y²)`.
    fn hypot(self, other: Self) -> Self;
    /// Elementwise minimum.
    fn min_val(self, other: Self) -> Self;
    /// Elementwise maximum.
    fn max_val(self, other: Self) -> Self;

    /// (Enclosure of the) derivative of `|x|`: `sign(x)`, and `[-1, 1]`
    /// for an interval straddling zero.
    fn abs_deriv(self) -> Self;

    /// Local partials of `min(a, b)` with respect to `(a, b)`.
    fn min_partials(self, other: Self) -> (Self, Self);

    /// Local partials of `max(a, b)` with respect to `(a, b)`.
    fn max_partials(self, other: Self) -> (Self, Self);

    /// Local partials of `hypot(a, b)` given the already-computed result
    /// `value = hypot(a, b)`; each partial is bounded by `[-1, 1]`.
    fn hypot_partials(self, other: Self, value: Self) -> (Self, Self);
}

impl Scalar for f64 {
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn width(self) -> f64 {
        0.0
    }
    #[inline]
    fn midpoint(self) -> f64 {
        self
    }
    #[inline]
    fn mag(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn is_zero(self) -> bool {
        self == 0.0
    }
    #[inline]
    fn sin(self) -> Self {
        f64::sin(self)
    }
    #[inline]
    fn cos(self) -> Self {
        f64::cos(self)
    }
    #[inline]
    fn tan(self) -> Self {
        f64::tan(self)
    }
    #[inline]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        f64::ln(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn sqr(self) -> Self {
        self * self
    }
    #[inline]
    fn recip(self) -> Self {
        f64::recip(self)
    }
    #[inline]
    fn powi(self, n: i32) -> Self {
        f64::powi(self, n)
    }
    #[inline]
    fn powf(self, p: f64) -> Self {
        f64::powf(self, p)
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn atan(self) -> Self {
        f64::atan(self)
    }
    #[inline]
    fn tanh(self) -> Self {
        f64::tanh(self)
    }
    #[inline]
    fn sinh(self) -> Self {
        f64::sinh(self)
    }
    #[inline]
    fn cosh(self) -> Self {
        f64::cosh(self)
    }
    #[inline]
    fn erf(self) -> Self {
        real::erf(self)
    }
    #[inline]
    fn cndf(self) -> Self {
        real::cndf(self)
    }
    #[inline]
    fn hypot(self, other: Self) -> Self {
        f64::hypot(self, other)
    }
    #[inline]
    fn min_val(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline]
    fn max_val(self, other: Self) -> Self {
        f64::max(self, other)
    }

    #[inline]
    fn abs_deriv(self) -> Self {
        if self > 0.0 {
            1.0
        } else if self < 0.0 {
            -1.0
        } else {
            0.0
        }
    }

    #[inline]
    fn min_partials(self, other: Self) -> (Self, Self) {
        if self <= other {
            (1.0, 0.0)
        } else {
            (0.0, 1.0)
        }
    }

    #[inline]
    fn max_partials(self, other: Self) -> (Self, Self) {
        if self >= other {
            (1.0, 0.0)
        } else {
            (0.0, 1.0)
        }
    }

    #[inline]
    fn hypot_partials(self, other: Self, value: Self) -> (Self, Self) {
        if value == 0.0 {
            (0.0, 0.0)
        } else {
            (self / value, other / value)
        }
    }
}

impl Scalar for Interval {
    #[inline]
    fn from_f64(x: f64) -> Self {
        Interval::point(x)
    }
    #[inline]
    fn width(self) -> f64 {
        Interval::width(&self)
    }
    #[inline]
    fn midpoint(self) -> f64 {
        self.mid()
    }
    #[inline]
    fn mag(self) -> f64 {
        Interval::mag(&self)
    }
    #[inline]
    fn is_zero(self) -> bool {
        self == Interval::ZERO
    }
    #[inline]
    fn sin(self) -> Self {
        Interval::sin(self)
    }
    #[inline]
    fn cos(self) -> Self {
        Interval::cos(self)
    }
    #[inline]
    fn tan(self) -> Self {
        Interval::tan(self)
    }
    #[inline]
    fn exp(self) -> Self {
        Interval::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        Interval::ln(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        Interval::sqrt(self)
    }
    #[inline]
    fn sqr(self) -> Self {
        Interval::sqr(self)
    }
    #[inline]
    fn recip(self) -> Self {
        Interval::recip(self)
    }
    #[inline]
    fn powi(self, n: i32) -> Self {
        Interval::powi(self, n)
    }
    #[inline]
    fn powf(self, p: f64) -> Self {
        Interval::powf(self, p)
    }
    #[inline]
    fn abs(self) -> Self {
        Interval::abs(self)
    }
    #[inline]
    fn atan(self) -> Self {
        Interval::atan(self)
    }
    #[inline]
    fn tanh(self) -> Self {
        Interval::tanh(self)
    }
    #[inline]
    fn sinh(self) -> Self {
        Interval::sinh(self)
    }
    #[inline]
    fn cosh(self) -> Self {
        Interval::cosh(self)
    }
    #[inline]
    fn erf(self) -> Self {
        Interval::erf(self)
    }
    #[inline]
    fn cndf(self) -> Self {
        Interval::cndf(self)
    }
    #[inline]
    fn hypot(self, other: Self) -> Self {
        Interval::hypot(self, other)
    }
    #[inline]
    fn min_val(self, other: Self) -> Self {
        Interval::min(self, other)
    }
    #[inline]
    fn max_val(self, other: Self) -> Self {
        Interval::max(self, other)
    }

    #[inline]
    fn abs_deriv(self) -> Self {
        // EMPTY must stay absorbing: the NaN comparisons below would
        // otherwise both fail and leak the straddling case `[-1, 1]`.
        if self.is_empty() {
            Interval::EMPTY
        } else if self.inf() > 0.0 {
            Interval::ONE
        } else if self.sup() < 0.0 {
            -Interval::ONE
        } else {
            Interval::new(-1.0, 1.0)
        }
    }

    #[inline]
    fn min_partials(self, other: Self) -> (Self, Self) {
        if self.is_empty() || other.is_empty() {
            return (Interval::EMPTY, Interval::EMPTY);
        }
        match self.certainly_le(other) {
            Trichotomy::True => (Interval::ONE, Interval::ZERO),
            Trichotomy::False => (Interval::ZERO, Interval::ONE),
            Trichotomy::Ambiguous => (Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)),
        }
    }

    #[inline]
    fn max_partials(self, other: Self) -> (Self, Self) {
        if self.is_empty() || other.is_empty() {
            return (Interval::EMPTY, Interval::EMPTY);
        }
        match self.certainly_ge(other) {
            Trichotomy::True => (Interval::ONE, Interval::ZERO),
            Trichotomy::False => (Interval::ZERO, Interval::ONE),
            Trichotomy::Ambiguous => (Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)),
        }
    }

    #[inline]
    fn hypot_partials(self, other: Self, value: Self) -> (Self, Self) {
        if self.is_empty() || other.is_empty() || value.is_empty() {
            return (Interval::EMPTY, Interval::EMPTY);
        }
        // ∂h/∂a = a/h ∈ [-1, 1] always; intersect to avoid the blow-up when
        // the result interval touches zero.
        let unit = Interval::new(-1.0, 1.0);
        let pa = (self / value).intersection(unit);
        let pb = (other / value).intersection(unit);
        let fix = |p: Interval| if p.is_empty() { unit } else { p };
        (fix(pa), fix(pb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_scalar_basics() {
        assert_eq!(<f64 as Scalar>::zero(), 0.0);
        assert_eq!(<f64 as Scalar>::one(), 1.0);
        assert_eq!(Scalar::width(3.0), 0.0);
        assert_eq!(Scalar::midpoint(3.0), 3.0);
        assert!(Scalar::is_zero(0.0));
        assert!(!Scalar::is_zero(1e-300));
    }

    #[test]
    fn interval_scalar_basics() {
        let x = Interval::new(1.0, 3.0);
        assert_eq!(Scalar::width(x), 2.0);
        assert_eq!(Scalar::midpoint(x), 2.0);
        assert!(Scalar::is_zero(Interval::ZERO));
        assert!(!Scalar::is_zero(Interval::new(0.0, 1.0)));
    }

    #[test]
    fn abs_deriv_cases() {
        assert_eq!(Scalar::abs_deriv(2.0), 1.0);
        assert_eq!(Scalar::abs_deriv(-2.0), -1.0);
        assert_eq!(Scalar::abs_deriv(0.0), 0.0);
        assert_eq!(Interval::new(1.0, 2.0).abs_deriv(), Interval::ONE);
        assert_eq!(Interval::new(-2.0, -1.0).abs_deriv(), -Interval::ONE);
        assert_eq!(Interval::new(-1.0, 2.0).abs_deriv(), Interval::new(-1.0, 1.0));
    }

    #[test]
    fn min_max_partials_sum_to_one_for_certain_cases() {
        let (pa, pb) = Scalar::min_partials(1.0, 2.0);
        assert_eq!((pa, pb), (1.0, 0.0));
        let (pa, pb) = Interval::new(0.0, 1.0).min_partials(Interval::new(2.0, 3.0));
        assert_eq!((pa, pb), (Interval::ONE, Interval::ZERO));
        let (pa, pb) = Interval::new(0.0, 3.0).min_partials(Interval::new(2.0, 4.0));
        assert_eq!(pa, Interval::new(0.0, 1.0));
        assert_eq!(pb, Interval::new(0.0, 1.0));
    }

    /// Regression: the derivative helpers must absorb EMPTY. Before the
    /// fix, NaN bound comparisons fell through to the "straddling" /
    /// "ambiguous" branches and an empty enclosure silently acquired the
    /// non-empty partials `[-1, 1]` / `[0, 1]`, letting a downstream
    /// adjoint pretend a value existed where interval arithmetic had
    /// proven none does.
    #[test]
    fn empty_is_absorbing_through_derivative_helpers() {
        let e = Interval::EMPTY;
        let x = Interval::new(-1.0, 2.0);

        assert!(Scalar::abs_deriv(e).is_empty());

        let (pa, pb) = e.min_partials(x);
        assert!(pa.is_empty() && pb.is_empty());
        let (pa, pb) = x.min_partials(e);
        assert!(pa.is_empty() && pb.is_empty());

        let (pa, pb) = e.max_partials(x);
        assert!(pa.is_empty() && pb.is_empty());
        let (pa, pb) = x.max_partials(e);
        assert!(pa.is_empty() && pb.is_empty());

        let (pa, pb) = Scalar::hypot_partials(e, x, Scalar::hypot(e, x));
        assert!(pa.is_empty() && pb.is_empty());
    }

    #[test]
    fn hypot_partials_bounded() {
        let a = Interval::new(-1.0, 1.0);
        let b = Interval::new(-1.0, 1.0);
        let v = a.hypot(b);
        let (pa, pb) = a.hypot_partials(b, v);
        assert!(Interval::new(-1.0, 1.0).encloses(pa));
        assert!(Interval::new(-1.0, 1.0).encloses(pb));

        let (pa, pb) = Scalar::hypot_partials(3.0, 4.0, 5.0);
        assert!((pa - 0.6).abs() < 1e-15);
        assert!((pb - 0.8).abs() < 1e-15);
        assert_eq!(Scalar::hypot_partials(0.0, 0.0, 0.0), (0.0, 0.0));
    }
}
