//! The [`Tape`]: DynDFG recording arena plus derivative sweeps.

use std::cell::RefCell;
use std::fmt;

use crate::node::{Node, NodeId, Op};
use crate::value::Scalar;
use crate::var::Var;

/// Recording arena for a single evaluation trace.
///
/// The tape owns the DynDFG: a vector of [`Node`]s in execution order.
/// Active values ([`Var`]) borrow the tape; every arithmetic operation on
/// them appends one node. Because the trace of one program execution has a
/// unique elementary-operation sequence (§2.1 of the paper), the vector *is*
/// the three-part evaluation procedure of Eq. 1–3.
///
/// # Example
///
/// ```
/// use scorpio_adjoint::Tape;
/// use scorpio_interval::Interval;
///
/// let tape = Tape::<Interval>::new();
/// let x = tape.var(Interval::new(-0.5, 0.5));
/// let y = x.sin() * 2.0;
/// assert!(y.value().contains(2.0 * 0.25f64.sin()));
/// let grads = tape.adjoints(&[(y.id(), Interval::ONE)]);
/// // d(2 sin x)/dx = 2 cos x ∈ [2 cos 0.5, 2]
/// assert!(grads[x.id()].contains(2.0 * 0.3f64.cos()));
/// ```
pub struct Tape<V> {
    nodes: RefCell<Vec<Node<V>>>,
}

impl<V: Scalar> Default for Tape<V> {
    fn default() -> Self {
        Tape::new()
    }
}

impl<V: Scalar> Tape<V> {
    /// Creates an empty tape.
    pub fn new() -> Tape<V> {
        Tape {
            nodes: RefCell::new(Vec::new()),
        }
    }

    /// Creates an empty tape with room for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Tape<V> {
        Tape {
            nodes: RefCell::new(Vec::with_capacity(capacity)),
        }
    }

    /// Registers an independent (input) variable with the given value,
    /// returning the active value to compute with (Eq. 1 / the `INPUT`
    /// macro of the paper).
    pub fn var(&self, value: V) -> Var<'_, V> {
        let id = self.push(Node {
            op: Op::Input,
            preds: [NodeId::INVALID; 2],
            partials: [V::zero(); 2],
            value,
        });
        Var::new(self, id, value)
    }

    /// Records a literal constant. Constants carry no derivative.
    pub fn constant(&self, value: V) -> Var<'_, V> {
        let id = self.push(Node {
            op: Op::Const,
            preds: [NodeId::INVALID; 2],
            partials: [V::zero(); 2],
            value,
        });
        Var::new(self, id, value)
    }

    /// Convenience: a constant from a plain `f64`.
    pub fn constant_f64(&self, value: f64) -> Var<'_, V> {
        self.constant(V::from_f64(value))
    }

    pub(crate) fn push(&self, node: Node<V>) -> NodeId {
        let mut nodes = self.nodes.borrow_mut();
        let id = NodeId::from_index(nodes.len());
        nodes.push(node);
        id
    }

    pub(crate) fn record1(&self, op: Op, a: NodeId, partial: V, value: V) -> NodeId {
        self.push(Node {
            op,
            preds: [a, NodeId::INVALID],
            partials: [partial, V::zero()],
            value,
        })
    }

    pub(crate) fn record2(
        &self,
        op: Op,
        a: NodeId,
        b: NodeId,
        pa: V,
        pb: V,
        value: V,
    ) -> NodeId {
        self.push(Node {
            op,
            preds: [a, b],
            partials: [pa, pb],
            value,
        })
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// A copy of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> Node<V> {
        self.nodes.borrow()[id.index()]
    }

    /// The recorded value `[u_j]` of node `id`.
    pub fn value(&self, id: NodeId) -> V {
        self.nodes.borrow()[id.index()].value
    }

    /// A snapshot of all nodes (cloned out of the arena).
    pub fn snapshot(&self) -> Vec<Node<V>> {
        self.nodes.borrow().clone()
    }

    /// Reverse (adjoint) sweep, Eq. 7–9 of the paper.
    ///
    /// `seeds` assigns initial adjoints to output nodes (typically
    /// `[(y.id(), 1)]`; for vector functions seed every output with 1 to
    /// obtain the summed significances of §2.3). Returns the adjoint of
    /// **every** node: `result[u_j] = ∇_{u_j} y`, the derivative of the
    /// seeded combination of outputs with respect to each intermediate.
    ///
    /// # Panics
    ///
    /// Panics if a seed id is out of range.
    pub fn adjoints(&self, seeds: &[(NodeId, V)]) -> Adjoints<V> {
        let nodes = self.nodes.borrow();
        let mut adj = vec![V::zero(); nodes.len()];
        for &(id, seed) in seeds {
            adj[id.index()] = adj[id.index()] + seed;
        }
        for j in (0..nodes.len()).rev() {
            let a = adj[j];
            if a.is_zero() {
                continue;
            }
            let node = &nodes[j];
            for k in 0..node.op.arity() {
                let p = node.preds[k];
                if p != NodeId::INVALID {
                    let contribution = node.partials[k] * a;
                    adj[p.index()] = adj[p.index()] + contribution;
                }
            }
        }
        Adjoints { values: adj }
    }

    /// Forward (tangent-linear) sweep.
    ///
    /// `seeds` assigns tangents to input nodes; the sweep propagates them
    /// forward through the recorded partials. `result[y] = ⟨∇f, ẋ⟩` for the
    /// seeded direction `ẋ`. Used to cross-check the adjoint sweep via the
    /// dot-product identity `ȳ·(∇f·ẋ) = (ȳ·∇f)·ẋ`.
    pub fn tangents(&self, seeds: &[(NodeId, V)]) -> Tangents<V> {
        let nodes = self.nodes.borrow();
        let mut tan = vec![V::zero(); nodes.len()];
        for &(id, seed) in seeds {
            tan[id.index()] = tan[id.index()] + seed;
        }
        for j in 0..nodes.len() {
            let node = &nodes[j];
            if node.op.arity() == 0 {
                continue;
            }
            let mut acc = V::zero();
            for k in 0..node.op.arity() {
                let p = node.preds[k];
                if p != NodeId::INVALID {
                    acc = acc + node.partials[k] * tan[p.index()];
                }
            }
            tan[j] = acc;
        }
        Tangents { values: tan }
    }

    /// Ids of all input nodes, in registration order.
    pub fn inputs(&self) -> Vec<NodeId> {
        self.nodes
            .borrow()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.op == Op::Input)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Counts nodes per operator mnemonic — used for work accounting and
    /// the DynDFG statistics printed by the figure harnesses.
    pub fn op_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut counts: std::collections::BTreeMap<&'static str, usize> =
            std::collections::BTreeMap::new();
        for n in self.nodes.borrow().iter() {
            *counts.entry(n.op.mnemonic()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// For every node, the ids of nodes that consume it (successor lists —
    /// the forward edges of the DynDFG).
    pub fn successors(&self) -> Vec<Vec<NodeId>> {
        let nodes = self.nodes.borrow();
        let mut succ = vec![Vec::new(); nodes.len()];
        for (j, node) in nodes.iter().enumerate() {
            for p in node.preds() {
                succ[p.index()].push(NodeId::from_index(j));
            }
        }
        succ
    }
}

impl<V: Scalar> fmt::Debug for Tape<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tape").field("len", &self.len()).finish()
    }
}

/// Result of a reverse sweep: the adjoint of every node, indexable by
/// [`NodeId`].
#[derive(Debug, Clone)]
pub struct Adjoints<V> {
    values: Vec<V>,
}

impl<V: Copy> Adjoints<V> {
    /// The adjoint `∇_{u_j} y` of node `id`.
    pub fn get(&self, id: NodeId) -> V {
        self.values[id.index()]
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the sweep covered no nodes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(id, adjoint)` pairs in execution order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, V)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (NodeId::from_index(i), v))
    }
}

impl<V: Copy> std::ops::Index<NodeId> for Adjoints<V> {
    type Output = V;
    fn index(&self, id: NodeId) -> &V {
        &self.values[id.index()]
    }
}

/// Result of a forward sweep: the tangent of every node.
#[derive(Debug, Clone)]
pub struct Tangents<V> {
    values: Vec<V>,
}

impl<V: Copy> Tangents<V> {
    /// The tangent of node `id` in the seeded direction.
    pub fn get(&self, id: NodeId) -> V {
        self.values[id.index()]
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the sweep covered no nodes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl<V: Copy> std::ops::Index<NodeId> for Tangents<V> {
    type Output = V;
    fn index(&self, id: NodeId) -> &V {
        &self.values[id.index()]
    }
}
