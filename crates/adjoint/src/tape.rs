//! The [`Tape`]: DynDFG recording arena plus derivative sweeps.

use std::cell::RefCell;
use std::fmt;

use crate::node::{Node, NodeId, Op};
use crate::value::Scalar;
use crate::var::Var;

/// Recording arena for a single evaluation trace.
///
/// The tape owns the DynDFG: a vector of [`Node`]s in execution order.
/// Active values ([`Var`]) borrow the tape; every arithmetic operation on
/// them appends one node. Because the trace of one program execution has a
/// unique elementary-operation sequence (§2.1 of the paper), the vector *is*
/// the three-part evaluation procedure of Eq. 1–3.
///
/// # Example
///
/// ```
/// use scorpio_adjoint::Tape;
/// use scorpio_interval::Interval;
///
/// let tape = Tape::<Interval>::new();
/// let x = tape.var(Interval::new(-0.5, 0.5));
/// let y = x.sin() * 2.0;
/// assert!(y.value().contains(2.0 * 0.25f64.sin()));
/// let grads = tape.adjoints(&[(y.id(), Interval::ONE)]);
/// // d(2 sin x)/dx = 2 cos x ∈ [2 cos 0.5, 2]
/// assert!(grads[x.id()].contains(2.0 * 0.3f64.cos()));
/// ```
pub struct Tape<V> {
    nodes: RefCell<Vec<Node<V>>>,
}

impl<V: Scalar> Default for Tape<V> {
    fn default() -> Self {
        Tape::new()
    }
}

impl<V: Scalar> Tape<V> {
    /// Creates an empty tape.
    pub fn new() -> Tape<V> {
        Tape {
            nodes: RefCell::new(Vec::new()),
        }
    }

    /// Creates an empty tape with room for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Tape<V> {
        Tape {
            nodes: RefCell::new(Vec::with_capacity(capacity)),
        }
    }

    /// Discards all recorded nodes while keeping the arena's allocation,
    /// so a reused tape records the next trace without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if any [`Var`] borrowed from this tape is still alive (the
    /// arena is internally borrowed during recording).
    pub fn clear(&self) {
        self.nodes.borrow_mut().clear();
    }

    /// Clears the tape and ensures room for at least `capacity` nodes —
    /// the arena-reuse entry point: one warm tape per worker absorbs
    /// traces of varying size without per-trace allocation.
    pub fn reset_with_capacity(&self, capacity: usize) {
        let mut nodes = self.nodes.borrow_mut();
        nodes.clear();
        if nodes.capacity() < capacity {
            nodes.reserve(capacity);
        }
    }

    /// Number of nodes the arena can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.nodes.borrow().capacity()
    }

    /// Registers an independent (input) variable with the given value,
    /// returning the active value to compute with (Eq. 1 / the `INPUT`
    /// macro of the paper).
    pub fn var(&self, value: V) -> Var<'_, V> {
        let id = self.push(Node {
            op: Op::Input,
            preds: [NodeId::INVALID; 2],
            partials: [V::zero(); 2],
            value,
        });
        Var::new(self, id, value)
    }

    /// Records a literal constant. Constants carry no derivative.
    pub fn constant(&self, value: V) -> Var<'_, V> {
        let id = self.push(Node {
            op: Op::Const,
            preds: [NodeId::INVALID; 2],
            partials: [V::zero(); 2],
            value,
        });
        Var::new(self, id, value)
    }

    /// Convenience: a constant from a plain `f64`.
    pub fn constant_f64(&self, value: f64) -> Var<'_, V> {
        self.constant(V::from_f64(value))
    }

    pub(crate) fn push(&self, node: Node<V>) -> NodeId {
        let mut nodes = self.nodes.borrow_mut();
        let id = NodeId::from_index(nodes.len());
        nodes.push(node);
        id
    }

    pub(crate) fn record1(&self, op: Op, a: NodeId, partial: V, value: V) -> NodeId {
        self.push(Node {
            op,
            preds: [a, NodeId::INVALID],
            partials: [partial, V::zero()],
            value,
        })
    }

    pub(crate) fn record2(
        &self,
        op: Op,
        a: NodeId,
        b: NodeId,
        pa: V,
        pb: V,
        value: V,
    ) -> NodeId {
        self.push(Node {
            op,
            preds: [a, b],
            partials: [pa, pb],
            value,
        })
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// A copy of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> Node<V> {
        self.nodes.borrow()[id.index()]
    }

    /// The recorded value `[u_j]` of node `id`.
    pub fn value(&self, id: NodeId) -> V {
        self.nodes.borrow()[id.index()].value
    }

    /// Runs `f` over a borrow of the node arena — zero-copy access to
    /// the whole trace.
    ///
    /// # Panics
    ///
    /// Panics if `f` re-enters the tape mutably (records new nodes).
    pub fn with_nodes<R>(&self, f: impl FnOnce(&[Node<V>]) -> R) -> R {
        f(&self.nodes.borrow())
    }

    /// Reverse (adjoint) sweep, Eq. 7–9 of the paper.
    ///
    /// `seeds` assigns initial adjoints to output nodes (typically
    /// `[(y.id(), 1)]`; for vector functions seed every output with 1 to
    /// obtain the summed significances of §2.3). Returns the adjoint of
    /// **every** node: `result[u_j] = ∇_{u_j} y`, the derivative of the
    /// seeded combination of outputs with respect to each intermediate.
    ///
    /// # Panics
    ///
    /// Panics if a seed id is out of range.
    pub fn adjoints(&self, seeds: &[(NodeId, V)]) -> Adjoints<V> {
        self.adjoints_in(seeds, Vec::new())
    }

    /// [`Tape::adjoints`] with a caller-provided scratch buffer.
    ///
    /// `buf` is cleared, resized and used as the adjoint vector; pass
    /// the buffer recovered from a previous sweep via
    /// [`Adjoints::into_inner`] to run repeated analyses without
    /// reallocating.
    pub fn adjoints_in(&self, seeds: &[(NodeId, V)], mut buf: Vec<V>) -> Adjoints<V> {
        let nodes = self.nodes.borrow();
        buf.clear();
        buf.resize(nodes.len(), V::zero());
        let adj = &mut buf;
        for &(id, seed) in seeds {
            adj[id.index()] = adj[id.index()] + seed;
        }
        for j in (0..nodes.len()).rev() {
            let a = adj[j];
            if a.is_zero() {
                continue;
            }
            let node = &nodes[j];
            for k in 0..node.op.arity() {
                let p = node.preds[k];
                if p != NodeId::INVALID {
                    let contribution = node.partials[k] * a;
                    adj[p.index()] = adj[p.index()] + contribution;
                }
            }
        }
        Adjoints { values: buf }
    }

    /// Forward (tangent-linear) sweep.
    ///
    /// `seeds` assigns tangents to input nodes; the sweep propagates them
    /// forward through the recorded partials. `result[y] = ⟨∇f, ẋ⟩` for the
    /// seeded direction `ẋ`. Used to cross-check the adjoint sweep via the
    /// dot-product identity `ȳ·(∇f·ẋ) = (ȳ·∇f)·ẋ`.
    pub fn tangents(&self, seeds: &[(NodeId, V)]) -> Tangents<V> {
        self.tangents_in(seeds, Vec::new())
    }

    /// [`Tape::tangents`] with a caller-provided scratch buffer (see
    /// [`Tape::adjoints_in`]).
    pub fn tangents_in(&self, seeds: &[(NodeId, V)], mut buf: Vec<V>) -> Tangents<V> {
        let nodes = self.nodes.borrow();
        buf.clear();
        buf.resize(nodes.len(), V::zero());
        let tan = &mut buf;
        for &(id, seed) in seeds {
            tan[id.index()] = tan[id.index()] + seed;
        }
        for j in 0..nodes.len() {
            let node = &nodes[j];
            if node.op.arity() == 0 {
                continue;
            }
            let mut acc = V::zero();
            for k in 0..node.op.arity() {
                let p = node.preds[k];
                if p != NodeId::INVALID {
                    acc = acc + node.partials[k] * tan[p.index()];
                }
            }
            tan[j] = acc;
        }
        Tangents { values: buf }
    }

    /// Ids of all input nodes, in registration order.
    pub fn inputs(&self) -> Vec<NodeId> {
        self.nodes
            .borrow()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.op == Op::Input)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Counts nodes per operator class — used for work accounting and
    /// the DynDFG statistics printed by the figure harnesses. One pass,
    /// one fixed-size table indexed by [`Op::class_index`]; mnemonics
    /// are resolved only when the histogram is printed or iterated.
    pub fn op_histogram(&self) -> OpHistogram {
        let mut counts = [0usize; Op::CLASS_COUNT];
        for n in self.nodes.borrow().iter() {
            counts[n.op.class_index()] += 1;
        }
        OpHistogram { counts }
    }

    /// For every node, the ids of nodes that consume it (successor lists
    /// — the forward edges of the DynDFG), in compressed sparse row
    /// form: one flat target vector plus per-node offsets, built in two
    /// counting passes with exactly two allocations.
    pub fn successors(&self) -> Successors {
        let nodes = self.nodes.borrow();
        let mut offsets = vec![0u32; nodes.len() + 1];
        for node in nodes.iter() {
            for p in node.preds() {
                offsets[p.index() + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let edges = *offsets.last().unwrap_or(&0) as usize;
        let mut targets = vec![NodeId::INVALID; edges];
        let mut cursor: Vec<u32> = offsets[..offsets.len().saturating_sub(1)].to_vec();
        for (j, node) in nodes.iter().enumerate() {
            for p in node.preds() {
                let slot = &mut cursor[p.index()];
                targets[*slot as usize] = NodeId::from_index(j);
                *slot += 1;
            }
        }
        Successors { offsets, targets }
    }
}

/// Per-operator-class node counts (see [`Tape::op_histogram`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpHistogram {
    counts: [usize; Op::CLASS_COUNT],
}

impl OpHistogram {
    /// Count for one operator (parameterised variants share a class).
    pub fn count(&self, op: Op) -> usize {
        self.counts[op.class_index()]
    }

    /// Total nodes counted.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Iterates `(mnemonic, count)` over the classes that occurred,
    /// sorted by mnemonic (the order the old map-based histogram
    /// produced, so printed statistics are unchanged).
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, usize)> {
        let mut present: Vec<(&'static str, usize)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (Op::class_mnemonic(i), c))
            .collect();
        present.sort_unstable_by_key(|&(m, _)| m);
        present.into_iter()
    }
}

impl IntoIterator for OpHistogram {
    type Item = (&'static str, usize);
    type IntoIter = std::vec::IntoIter<(&'static str, usize)>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

/// Forward edges of the DynDFG in compressed sparse row form: node
/// `i`'s consumers are `targets[offsets[i]..offsets[i+1]]`. Indexing
/// yields `&[NodeId]` slices, so call sites read like the old
/// `Vec<Vec<NodeId>>` without its per-node allocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Successors {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl Successors {
    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// `true` if no nodes are covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of forward edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Iterates per-node successor slices in node order.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> {
        (0..self.len()).map(move |i| &self[i])
    }
}

impl std::ops::Index<usize> for Successors {
    type Output = [NodeId];

    fn index(&self, node: usize) -> &[NodeId] {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        &self.targets[lo..hi]
    }
}

impl<V: Scalar> fmt::Debug for Tape<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tape").field("len", &self.len()).finish()
    }
}

/// Result of a reverse sweep: the adjoint of every node, indexable by
/// [`NodeId`].
#[derive(Debug, Clone)]
pub struct Adjoints<V> {
    values: Vec<V>,
}

impl<V: Copy> Adjoints<V> {
    /// The adjoint `∇_{u_j} y` of node `id`.
    pub fn get(&self, id: NodeId) -> V {
        self.values[id.index()]
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the sweep covered no nodes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(id, adjoint)` pairs in execution order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, V)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (NodeId::from_index(i), v))
    }

    /// Recovers the underlying buffer for reuse in a later
    /// [`Tape::adjoints_in`] sweep.
    pub fn into_inner(self) -> Vec<V> {
        self.values
    }
}

impl<V: Copy> std::ops::Index<NodeId> for Adjoints<V> {
    type Output = V;
    fn index(&self, id: NodeId) -> &V {
        &self.values[id.index()]
    }
}

/// Result of a forward sweep: the tangent of every node.
#[derive(Debug, Clone)]
pub struct Tangents<V> {
    values: Vec<V>,
}

impl<V: Copy> Tangents<V> {
    /// The tangent of node `id` in the seeded direction.
    pub fn get(&self, id: NodeId) -> V {
        self.values[id.index()]
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the sweep covered no nodes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Recovers the underlying buffer for reuse in a later
    /// [`Tape::tangents_in`] sweep.
    pub fn into_inner(self) -> Vec<V> {
        self.values
    }
}

impl<V: Copy> std::ops::Index<NodeId> for Tangents<V> {
    type Output = V;
    fn index(&self, id: NodeId) -> &V {
        &self.values[id.index()]
    }
}
