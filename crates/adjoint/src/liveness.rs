//! Liveness analysis on the recorded DynDFG.
//!
//! Not every recorded node reaches a registered output — computations
//! whose results are discarded still occupy tape space and reverse-sweep
//! time. [`Tape::live_nodes`] marks the sub-DAG reaching a set of roots,
//! and [`Tape::dead_count`] summarises the waste; the analysis layer
//! surfaces both so a developer can spot discarded work (a zero
//! significance plus dead liveness is a stronger hint than either
//! alone).

use crate::node::NodeId;
use crate::tape::Tape;
use crate::value::Scalar;

/// Summary of a liveness pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessSummary {
    /// Total recorded nodes.
    pub total: usize,
    /// Nodes reaching at least one root.
    pub live: usize,
    /// `total − live`.
    pub dead: usize,
}

impl<V: Scalar> Tape<V> {
    /// Marks every node from which some `root` is reachable along
    /// data-flow edges. `result[i]` is `true` iff node `i` contributes
    /// to a root.
    ///
    /// ```
    /// use scorpio_adjoint::Tape;
    /// let tape = Tape::<f64>::new();
    /// let x = tape.var(1.0);
    /// let used = x.sin();
    /// let _unused = x.exp(); // recorded but never consumed by `used`
    /// let live = tape.live_nodes(&[used.id()]);
    /// assert!(live[used.id().index()]);
    /// assert!(!live[2]); // the exp node
    /// ```
    pub fn live_nodes(&self, roots: &[NodeId]) -> Vec<bool> {
        self.with_nodes(|nodes| {
            let mut live = vec![false; nodes.len()];
            let mut stack: Vec<usize> = Vec::new();
            for r in roots {
                if !live[r.index()] {
                    live[r.index()] = true;
                    stack.push(r.index());
                }
            }
            while let Some(i) = stack.pop() {
                for p in nodes[i].preds() {
                    if !live[p.index()] {
                        live[p.index()] = true;
                        stack.push(p.index());
                    }
                }
            }
            live
        })
    }

    /// Counts live vs dead nodes with respect to the given roots.
    pub fn dead_count(&self, roots: &[NodeId]) -> LivenessSummary {
        let live = self.live_nodes(roots);
        let live_count = live.iter().filter(|&&l| l).count();
        LivenessSummary {
            total: live.len(),
            live: live_count,
            dead: live.len() - live_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_live_in_straight_line() {
        let tape = Tape::<f64>::new();
        let x = tape.var(2.0);
        let y = x.exp().sin();
        let s = tape.dead_count(&[y.id()]);
        assert_eq!(s.dead, 0);
        assert_eq!(s.live, 3);
    }

    #[test]
    fn discarded_branch_is_dead() {
        let tape = Tape::<f64>::new();
        let x = tape.var(2.0);
        let _dead = x.sqr() + 1.0; // 3 nodes never used downstream
        let y = x.sin();
        let s = tape.dead_count(&[y.id()]);
        assert_eq!(s.total, 5); // x, sqr, const 1, add, sin
        assert_eq!(s.live, 2); // x and sin
        assert_eq!(s.dead, 3); // sqr, const 1, add
    }

    #[test]
    fn multiple_roots_union() {
        let tape = Tape::<f64>::new();
        let x = tape.var(1.0);
        let a = x.sin();
        let b = x.cos();
        let live_a = tape.live_nodes(&[a.id()]);
        assert!(!live_a[b.id().index()]);
        let live_both = tape.live_nodes(&[a.id(), b.id()]);
        assert!(live_both[a.id().index()] && live_both[b.id().index()]);
    }

    #[test]
    fn diamond_reaches_shared_input_once() {
        let tape = Tape::<f64>::new();
        let x = tape.var(1.0);
        let y = x.sin() + x.cos();
        let live = tape.live_nodes(&[y.id()]);
        assert!(live.iter().all(|&l| l));
    }
}
