//! Dynamic data-flow graph recording and algorithmic differentiation.
//!
//! This crate is the AD substrate of the `scorpio` significance-analysis
//! framework, filling the role of the dco/c++ template library in the
//! original CGO'16 tool (Vassiliadis et al., *Towards Automatic Significance
//! Analysis for Approximate Computing*).
//!
//! A computation `y = f(x)` is executed with [`Var`] active values drawn
//! from a [`Tape`]. Every elementary operation `u_j = φ_j(u_i)` (Eq. 2 of
//! the paper) appends a node to the tape, building the **DynDFG** — a DAG
//! whose edges are annotated with the local partial derivatives
//! `∂φ_j/∂u_i` evaluated during the forward sweep (Fig. 1a of the paper).
//!
//! Derivatives are then obtained by propagation over the recorded graph:
//!
//! * [`Tape::adjoints`] — reverse sweep (Eq. 7–9): one pass yields the
//!   derivative of the seeded outputs with respect to **every** node,
//!   which is the enabling technology for significance analysis.
//! * [`Tape::tangents`] — forward (tangent-linear) sweep, used to
//!   cross-check adjoints via the dot-product identity.
//!
//! Everything is generic over the [`Scalar`] value type: `f64` gives
//! classical AD, [`Interval`](scorpio_interval::Interval) gives the interval
//! AD of §2.1 of the paper (enclosures of derivatives over a whole input
//! box).
//!
//! # Example
//!
//! Listing 1 of the paper, `f(x) = cos(exp(sin(x) + x) − x)`:
//!
//! ```
//! use scorpio_adjoint::Tape;
//!
//! let tape = Tape::<f64>::new();
//! let x = tape.var(0.7);
//! let y = ((x.sin() + x).exp() - x).cos();
//!
//! let adj = tape.adjoints(&[(y.id(), 1.0)]);
//! let dy_dx = adj[x.id()];
//!
//! // Compare against the hand-derived gradient.
//! let u = (0.7f64.sin() + 0.7).exp();
//! let want = -(u - 0.7).sin() * (u * (0.7f64.cos() + 1.0) - 1.0);
//! assert!((dy_dx - want).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compiled;
mod dot;
mod dual;
pub mod lanes;
mod liveness;
mod node;
mod tape;
mod value;
mod var;

pub use compiled::{CompiledTape, ReplayBuffers, ShapeMismatch};
pub use lanes::LaneReplayBuffers;
pub use dot::{dot_options, DotOptions};
pub use dual::Dual;
pub use liveness::LivenessSummary;
pub use node::{Node, NodeId, Op};
pub use tape::{Adjoints, OpHistogram, Successors, Tangents, Tape};
pub use value::Scalar;
pub use var::Var;

#[cfg(test)]
mod tests;
