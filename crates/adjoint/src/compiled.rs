//! Record-once / replay-many: the [`CompiledTape`] structure-of-arrays
//! bytecode.
//!
//! Recording a trace through [`Tape`] pays for generality: every
//! elementary operation borrows the arena's `RefCell`, grows the node
//! vector, and boxes its operands behind the [`crate::Var`] overloads.
//! For data-parallel workloads (a per-pixel kernel analysis, a
//! Monte-Carlo sample, one point of a range sweep) the trace *structure*
//! is identical across items — only the input values differ — so all of
//! that bookkeeping is pure overhead after the first item.
//!
//! [`CompiledTape::compile`] flattens a recorded trace into parallel
//! arrays (one op, one predecessor pair and one recorded value per
//! node, with the input nodes indexed up front). [`CompiledTape::replay`]
//! then re-evaluates the whole trace for fresh input values in a single
//! tight forward loop — zero `RefCell` borrows, zero node pushes, zero
//! allocation in the steady state — recomputing node values *and* local
//! partials with exactly the formulas the [`crate::Var`] overloads use,
//! so a replayed sweep is bit-identical to a fresh recording of the
//! same trace. [`CompiledTape::adjoints_into`] runs the reverse sweep
//! over the replayed buffers, mirroring [`Tape::adjoints_in`].
//!
//! Replay is only sound while the trace shape is actually fixed:
//! recording is value-dependent (a branch can send different inputs
//! down different traces), which a replayer cannot detect because it
//! never re-runs the user closure. [`CompiledTape::replay`] validates
//! input arity; detecting control-flow divergence is the caller's
//! responsibility (the `scorpio-core` `ReplayOrRecord` driver refuses
//! to replay traces that executed a branch and falls back to full
//! re-recording).

use std::fmt;

use crate::node::{NodeId, Op};
use crate::tape::{OpHistogram, Successors, Tape};
use crate::value::Scalar;

/// A recorded trace compiled into structure-of-arrays form for repeated
/// replay (the module docs above explain when replay is sound).
///
/// # Example
///
/// ```
/// use scorpio_adjoint::{CompiledTape, ReplayBuffers, Tape};
///
/// // Record y = x·sin(x) once…
/// let tape = Tape::<f64>::new();
/// let x = tape.var(0.3);
/// let y = x * x.sin();
/// let y_id = y.id();
/// let compiled = CompiledTape::compile(&tape);
///
/// // …then replay it for a different input without re-recording.
/// let mut buf = ReplayBuffers::new();
/// compiled.replay(&[0.7], &mut buf).unwrap();
/// assert_eq!(buf.value(y_id), 0.7 * 0.7f64.sin());
/// compiled.adjoints_into(&[(y_id, 1.0)], &mut buf);
/// let want = 0.7f64.sin() + 0.7 * 0.7f64.cos();
/// assert!((buf.adjoint(x.id()) - want).abs() < 1e-15);
/// ```
pub struct CompiledTape<V> {
    pub(crate) ops: Vec<Op>,
    pub(crate) preds: Vec<[NodeId; 2]>,
    /// Values captured at compile time. Replay only reads the `Const`
    /// slots (constants are part of the trace, not of the per-item
    /// input), but keeping the full vector lets callers inspect the
    /// recorded trace without holding the original tape alive.
    pub(crate) recorded: Vec<V>,
    /// Input node ids in registration order — the positional slots
    /// [`CompiledTape::replay`] binds fresh values to.
    pub(crate) inputs: Vec<NodeId>,
    successors: Successors,
    histogram: OpHistogram,
}

/// Evaluates one *compute* node: the value of `op` applied to the
/// operand values `a`/`b`, plus the local partial derivatives with
/// respect to each operand — exactly the formulas the [`crate::Var`]
/// overloads record (keep this and `var.rs` in lockstep; the
/// replay-identity suites enforce bit-equality). Shared by the scalar
/// [`CompiledTape::replay`] loop and the multi-lane
/// [`CompiledTape::replay_lanes`] loop so the two interpreters cannot
/// drift apart: a lane executes the same scalar operations in the same
/// order as a scalar replay, which is what makes lane replay
/// bit-identical per lane.
///
/// `Op::Input` / `Op::Const` never reach this function — they bind
/// per-item inputs / compile-time constants and are handled by the
/// replay loops directly.
#[inline(always)]
pub(crate) fn eval_op<V: Scalar>(op: Op, a: V, b: V) -> (V, V, V) {
    match op {
        Op::Input | Op::Const => {
            unreachable!("eval_op: Input/Const are bound by the replay loop")
        }
        Op::Add => (a + b, V::one(), V::one()),
        Op::Sub => (a - b, V::one(), -V::one()),
        Op::Mul => (a * b, b, a),
        Op::Div => {
            let inv = b.recip();
            (a * inv, inv, -a * inv.sqr())
        }
        Op::Neg => (-a, -V::one(), V::zero()),
        Op::Sin => (a.sin(), a.cos(), V::zero()),
        Op::Cos => (a.cos(), -a.sin(), V::zero()),
        Op::Tan => {
            let t = a.tan();
            (t, V::one() + t.sqr(), V::zero())
        }
        Op::Exp => {
            let e = a.exp();
            (e, e, V::zero())
        }
        Op::Ln => (a.ln(), a.recip(), V::zero()),
        Op::Sqrt => {
            let r = a.sqrt();
            (r, (V::from_f64(2.0) * r).recip(), V::zero())
        }
        Op::Sqr => (a.sqr(), V::from_f64(2.0) * a, V::zero()),
        Op::Recip => (a.recip(), -a.sqr().recip(), V::zero()),
        Op::Powi(m) => {
            let partial = if m == 0 {
                V::zero()
            } else {
                V::from_f64(m as f64) * a.powi(m - 1)
            };
            (a.powi(m), partial, V::zero())
        }
        Op::Powf(p) => {
            let partial = if p == 0.0 {
                V::zero()
            } else {
                V::from_f64(p) * a.powf(p - 1.0)
            };
            (a.powf(p), partial, V::zero())
        }
        Op::Abs => (a.abs(), a.abs_deriv(), V::zero()),
        Op::Atan => (a.atan(), (V::one() + a.sqr()).recip(), V::zero()),
        Op::Tanh => {
            let t = a.tanh();
            (t, V::one() - t.sqr(), V::zero())
        }
        Op::Sinh => (a.sinh(), a.cosh(), V::zero()),
        Op::Cosh => (a.cosh(), a.sinh(), V::zero()),
        Op::Erf => {
            let two_over_sqrt_pi = V::from_f64(2.0 / std::f64::consts::PI.sqrt());
            (a.erf(), two_over_sqrt_pi * (-a.sqr()).exp(), V::zero())
        }
        Op::Cndf => {
            let inv_sqrt_2pi = V::from_f64(1.0 / (2.0 * std::f64::consts::PI).sqrt());
            (
                a.cndf(),
                inv_sqrt_2pi * (-a.sqr() / V::from_f64(2.0)).exp(),
                V::zero(),
            )
        }
        Op::Hypot => {
            let v = a.hypot(b);
            let (pa, pb) = a.hypot_partials(b, v);
            (v, pa, pb)
        }
        Op::Min => {
            let (pa, pb) = a.min_partials(b);
            (a.min_val(b), pa, pb)
        }
        Op::Max => {
            let (pa, pb) = a.max_partials(b);
            (a.max_val(b), pa, pb)
        }
    }
}

impl<V: Scalar> CompiledTape<V> {
    /// Compiles the recorded trace of `tape` into replayable form.
    ///
    /// One pass over a borrow of the arena; the tape itself is left
    /// untouched and can keep recording afterwards.
    pub fn compile(tape: &Tape<V>) -> CompiledTape<V> {
        let _span = scorpio_obs::span("compile");
        scorpio_obs::count("compiled.nodes", tape.len() as u64);
        let (ops, preds, recorded, inputs) = tape.with_nodes(|nodes| {
            let mut ops = Vec::with_capacity(nodes.len());
            let mut preds = Vec::with_capacity(nodes.len());
            let mut recorded = Vec::with_capacity(nodes.len());
            let mut inputs = Vec::new();
            for (j, node) in nodes.iter().enumerate() {
                ops.push(node.op);
                preds.push(node.preds);
                recorded.push(node.value);
                if node.op == Op::Input {
                    inputs.push(NodeId::from_index(j));
                }
            }
            (ops, preds, recorded, inputs)
        });
        CompiledTape {
            ops,
            preds,
            recorded,
            inputs,
            successors: tape.successors(),
            histogram: tape.op_histogram(),
        }
    }

    /// Number of compiled nodes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the compiled trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of input slots a replay must bind.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Input node ids in registration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Operator of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn op(&self, index: usize) -> Op {
        self.ops[index]
    }

    /// Predecessors of node `index` (valid slots only), in operand
    /// order — the compiled equivalent of [`crate::Node::preds`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn preds_of(&self, index: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.preds[index]
            .into_iter()
            .filter(|&p| p != NodeId::INVALID)
    }

    /// Value of node `index` as captured at compile time.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn recorded_value(&self, index: usize) -> V {
        self.recorded[index]
    }

    /// The forward-edge CSR of the trace, built once at compile time —
    /// repeated report generation over a compiled trace shares this
    /// instead of rebuilding the CSR per call ([`Tape::successors`]).
    pub fn successors(&self) -> &Successors {
        &self.successors
    }

    /// Per-operator-class node counts, computed once at compile time
    /// (the compiled analogue of [`Tape::op_histogram`]).
    pub fn op_histogram(&self) -> OpHistogram {
        self.histogram
    }

    /// Replays the trace with fresh input values: a single forward loop
    /// over the fixed node sequence re-evaluating every node value and
    /// local partial into `buf`, using exactly the formulas the
    /// [`crate::Var`] overloads record — a replayed trace is
    /// bit-identical to re-recording it with the same inputs.
    ///
    /// `inputs` binds the input nodes positionally, in registration
    /// order. The buffers are resized on first use and reused
    /// afterwards; the steady state allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeMismatch`] (leaving `buf` unspecified) when
    /// `inputs` does not provide exactly one value per input slot.
    pub fn replay(&self, inputs: &[V], buf: &mut ReplayBuffers<V>) -> Result<(), ShapeMismatch> {
        let _span = scorpio_obs::span_detail("forward");
        if inputs.len() != self.inputs.len() {
            return Err(ShapeMismatch {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        let n = self.ops.len();
        buf.resize(n);
        let mut next_input = 0usize;
        for j in 0..n {
            let (v, pa, pb) = match self.ops[j] {
                Op::Input => {
                    let x = inputs[next_input];
                    next_input += 1;
                    (x, V::zero(), V::zero())
                }
                Op::Const => (self.recorded[j], V::zero(), V::zero()),
                op => {
                    // Operand values: predecessor slots are always
                    // earlier in the sequence, so reading them back out
                    // of `values` is the forward sweep's data flow.
                    // Unary nodes carry an INVALID second slot — only
                    // dereference it for binary ops.
                    let a = buf.values[self.preds[j][0].index()];
                    let b = if op.arity() == 2 {
                        buf.values[self.preds[j][1].index()]
                    } else {
                        V::zero()
                    };
                    eval_op(op, a, b)
                }
            };
            buf.values[j] = v;
            buf.pa[j] = pa;
            buf.pb[j] = pb;
        }
        Ok(())
    }

    /// Reverse (adjoint) sweep over the replayed buffers, mirroring
    /// [`Tape::adjoints_in`] operation for operation: after this call
    /// `buf.adjoint(id)` is bit-identical to what a fresh recording's
    /// reverse sweep would produce for the same inputs and seeds.
    ///
    /// # Panics
    ///
    /// Panics if a seed id is out of range, or if `buf` has not been
    /// filled by a [`CompiledTape::replay`] of this trace.
    pub fn adjoints_into(&self, seeds: &[(NodeId, V)], buf: &mut ReplayBuffers<V>) {
        let n = self.ops.len();
        assert_eq!(
            buf.values.len(),
            n,
            "adjoints_into: buffers were not replayed for this trace"
        );
        buf.adj.clear();
        buf.adj.resize(n, V::zero());
        for &(id, seed) in seeds {
            buf.adj[id.index()] = buf.adj[id.index()] + seed;
        }
        for j in (0..n).rev() {
            let a = buf.adj[j];
            if a.is_zero() {
                continue;
            }
            for k in 0..self.ops[j].arity() {
                let p = self.preds[j][k];
                if p != NodeId::INVALID {
                    let partial = if k == 0 { buf.pa[j] } else { buf.pb[j] };
                    let contribution = partial * a;
                    buf.adj[p.index()] = buf.adj[p.index()] + contribution;
                }
            }
        }
    }
}

impl<V: Scalar> fmt::Debug for CompiledTape<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledTape")
            .field("len", &self.len())
            .field("inputs", &self.inputs.len())
            .finish()
    }
}

/// Reusable value/partial/adjoint buffers for replaying one
/// [`CompiledTape`] — the replay-mode analogue of the tape arena plus
/// adjoint scratch vector. One set per worker; sized on first replay,
/// zero allocation afterwards.
#[derive(Debug, Clone, Default)]
pub struct ReplayBuffers<V> {
    values: Vec<V>,
    /// Local partial with respect to the first operand, per node.
    pa: Vec<V>,
    /// Local partial with respect to the second operand, per node.
    pb: Vec<V>,
    adj: Vec<V>,
}

impl<V: Scalar> ReplayBuffers<V> {
    /// Empty buffers; the first replay sizes them.
    pub fn new() -> ReplayBuffers<V> {
        ReplayBuffers {
            values: Vec::new(),
            pa: Vec::new(),
            pb: Vec::new(),
            adj: Vec::new(),
        }
    }

    fn resize(&mut self, n: usize) {
        // resize() both shrinks and grows; the fill value is only used
        // for growth and every slot is overwritten by the forward loop.
        self.values.resize(n, V::zero());
        self.pa.resize(n, V::zero());
        self.pb.resize(n, V::zero());
    }

    /// The replayed value `[u_j]` of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the last replayed trace.
    pub fn value(&self, id: NodeId) -> V {
        self.values[id.index()]
    }

    /// The adjoint `∇_{u_j} y` of node `id` from the last
    /// [`CompiledTape::adjoints_into`] sweep.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or no sweep has run.
    pub fn adjoint(&self, id: NodeId) -> V {
        self.adj[id.index()]
    }

    /// All replayed node values in execution order.
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// All adjoints in execution order (empty before the first sweep).
    pub fn adjoints(&self) -> &[V] {
        &self.adj
    }
}

/// Replay was handed a different number of input values than the
/// compiled trace has input slots — the structural guard of
/// [`CompiledTape::replay`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeMismatch {
    /// Input slots the compiled trace expects.
    pub expected: usize,
    /// Input values the replay provided.
    pub got: usize,
}

impl fmt::Display for ShapeMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replay shape mismatch: compiled trace has {} input slot(s), got {} value(s)",
            self.expected, self.got
        )
    }
}

impl std::error::Error for ShapeMismatch {}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpio_interval::Interval;

    /// Records a trace exercising every operator class.
    fn record_all_ops(tape: &Tape<f64>, x0: f64, y0: f64) -> NodeId {
        let x = tape.var(x0);
        let y = tape.var(y0);
        let c = tape.constant(0.75);
        let mut acc = x + y - c;
        acc = acc * x / (y + 2.5);
        acc = acc + (-x);
        acc = acc + x.sin() + x.cos() + (x * 0.3).tan();
        acc = acc + (x * 0.2).exp() + (y + 3.0).ln() + (y + 4.0).sqrt();
        acc = acc + x.sqr() + (y + 2.0).recip();
        acc = acc + x.powi(3) + (y + 5.0).powf(1.3) + x.powi(0);
        acc = acc + x.abs() + x.atan() + x.tanh() + (x * 0.5).sinh() + (x * 0.5).cosh();
        acc = acc + x.erf() + x.cndf();
        acc = acc + x.hypot(y) + x.min(y) + x.max(y);
        acc.id()
    }

    #[test]
    fn replay_is_bit_identical_to_rerecording_f64() {
        let tape = Tape::<f64>::new();
        let out = record_all_ops(&tape, 0.4, 1.1);
        let compiled = CompiledTape::compile(&tape);
        let mut buf = ReplayBuffers::new();

        for &(x0, y0) in &[(0.4, 1.1), (-0.8, 0.2), (1.7, -0.4), (0.01, 9.5)] {
            compiled.replay(&[x0, y0], &mut buf).unwrap();
            compiled.adjoints_into(&[(out, 1.0)], &mut buf);

            let fresh = Tape::<f64>::new();
            let fresh_out = record_all_ops(&fresh, x0, y0);
            assert_eq!(fresh_out, out, "trace shape must not depend on inputs");
            let adj = fresh.adjoints(&[(fresh_out, 1.0)]);
            fresh.with_nodes(|nodes| {
                for (j, node) in nodes.iter().enumerate() {
                    let id = NodeId::from_index(j);
                    assert_eq!(
                        buf.value(id).to_bits(),
                        node.value().to_bits(),
                        "value diverged at node {j} ({:?})",
                        node.op()
                    );
                    assert_eq!(
                        buf.adjoint(id).to_bits(),
                        adj.get(id).to_bits(),
                        "adjoint diverged at node {j} ({:?})",
                        node.op()
                    );
                }
            });
        }
    }

    #[test]
    fn replay_is_bit_identical_to_rerecording_interval() {
        let record = |tape: &Tape<Interval>, r: f64| -> NodeId {
            let x = tape.var(Interval::centered(0.5, r));
            let y = tape.var(Interval::centered(-0.25, r));
            let s = (x.sqr() + y.sqr()) * 0.7;
            let z = (s.sin() + x.hypot(y)).exp() + x.min(y).max(x * 0.1);
            z.id()
        };
        let tape = Tape::<Interval>::new();
        let out = record(&tape, 0.125);
        let compiled = CompiledTape::compile(&tape);
        let mut buf = ReplayBuffers::new();

        for &r in &[0.125, 0.5, 0.03125] {
            let inputs = [Interval::centered(0.5, r), Interval::centered(-0.25, r)];
            compiled.replay(&inputs, &mut buf).unwrap();
            compiled.adjoints_into(&[(out, Interval::ONE)], &mut buf);

            let fresh = Tape::<Interval>::new();
            let fresh_out = record(&fresh, r);
            let adj = fresh.adjoints(&[(fresh_out, Interval::ONE)]);
            fresh.with_nodes(|nodes| {
                for (j, node) in nodes.iter().enumerate() {
                    let id = NodeId::from_index(j);
                    let (v, w) = (buf.value(id), node.value());
                    assert_eq!(v.inf().to_bits(), w.inf().to_bits(), "node {j} inf");
                    assert_eq!(v.sup().to_bits(), w.sup().to_bits(), "node {j} sup");
                    let (a, b) = (buf.adjoint(id), adj.get(id));
                    assert_eq!(a.inf().to_bits(), b.inf().to_bits(), "adj {j} inf");
                    assert_eq!(a.sup().to_bits(), b.sup().to_bits(), "adj {j} sup");
                }
            });
        }
    }

    #[test]
    fn replay_rejects_wrong_input_arity() {
        let tape = Tape::<f64>::new();
        let x = tape.var(1.0);
        let _ = x.exp();
        let compiled = CompiledTape::compile(&tape);
        let mut buf = ReplayBuffers::new();
        let err = compiled.replay(&[1.0, 2.0], &mut buf).unwrap_err();
        assert_eq!(err, ShapeMismatch { expected: 1, got: 2 });
        assert!(err.to_string().contains("1 input slot"));
    }

    #[test]
    fn compile_caches_csr_and_histogram() {
        let tape = Tape::<f64>::new();
        let x = tape.var(2.0);
        let y = x.sin() * x;
        let compiled = CompiledTape::compile(&tape);
        assert_eq!(compiled.successors(), &tape.successors());
        assert_eq!(compiled.op_histogram(), tape.op_histogram());
        assert_eq!(compiled.len(), tape.len());
        assert_eq!(compiled.input_count(), 1);
        assert_eq!(compiled.op(y.id().index()), Op::Mul);
        let preds: Vec<NodeId> = compiled.preds_of(y.id().index()).collect();
        assert_eq!(preds.len(), 2);
    }
}
