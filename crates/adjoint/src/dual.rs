//! First-order dual numbers — the building block for second-order
//! (tangent-over-adjoint) derivatives.
//!
//! dco/c++ — the library the paper builds on — supports nesting its
//! tangent mode over its adjoint mode to obtain higher-order adjoints
//! (Lotz et al., cited as [20]). The same composition works here: record
//! a [`Tape`](crate::Tape)`<`[`Dual`]`>` with input tangents seeded in
//! the dual parts, and the reverse sweep's dual adjoints carry
//! `(∂y/∂x_i, (H·v)_i)` — gradient and Hessian-vector product in one
//! pass.
//!
//! ```
//! use scorpio_adjoint::{Dual, Tape};
//!
//! // f(x, y) = x²·y + sin(x): compute ∇f and H·v at (1.5, -0.5), v = (1, 0).
//! let tape = Tape::<Dual>::new();
//! let x = tape.var(Dual::with_tangent(1.5, 1.0)); // v_x = 1
//! let y = tape.var(Dual::with_tangent(-0.5, 0.0)); // v_y = 0
//! let f = x.sqr() * y + x.sin();
//! let adj = tape.adjoints(&[(f.id(), Dual::ONE)]);
//!
//! // ∂f/∂x = 2xy + cos x; (H·v)_x = ∂²f/∂x² = 2y − sin x.
//! let gx = adj[x.id()];
//! assert!((gx.re - (2.0 * 1.5 * -0.5 + 1.5f64.cos())).abs() < 1e-12);
//! assert!((gx.eps - (2.0 * -0.5 - 1.5f64.sin())).abs() < 1e-12);
//! // (H·v)_y = ∂²f/∂y∂x = 2x.
//! assert!((adj[y.id()].eps - 3.0).abs() < 1e-12);
//! ```

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use scorpio_interval::real;

use crate::value::Scalar;

/// A first-order dual number `re + eps·ε` with `ε² = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dual {
    /// The value part.
    pub re: f64,
    /// The tangent (derivative) part.
    pub eps: f64,
}

impl Dual {
    /// The additive identity.
    pub const ZERO: Dual = Dual { re: 0.0, eps: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Dual = Dual { re: 1.0, eps: 0.0 };

    /// A constant (zero tangent).
    #[inline]
    pub fn constant(re: f64) -> Dual {
        Dual { re, eps: 0.0 }
    }

    /// A value with an explicit tangent seed.
    #[inline]
    pub fn with_tangent(re: f64, eps: f64) -> Dual {
        Dual { re, eps }
    }

    /// Applies a function with known value and derivative at `re`:
    /// `f(re + eps·ε) = f(re) + eps·f'(re)·ε`.
    #[inline]
    fn lift(self, value: f64, derivative: f64) -> Dual {
        Dual {
            re: value,
            eps: self.eps * derivative,
        }
    }
}

impl fmt::Display for Dual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} + {}ε", self.re, self.eps)
    }
}

impl From<f64> for Dual {
    fn from(re: f64) -> Dual {
        Dual::constant(re)
    }
}

impl Add for Dual {
    type Output = Dual;
    #[inline]
    fn add(self, rhs: Dual) -> Dual {
        Dual {
            re: self.re + rhs.re,
            eps: self.eps + rhs.eps,
        }
    }
}

impl Sub for Dual {
    type Output = Dual;
    #[inline]
    fn sub(self, rhs: Dual) -> Dual {
        Dual {
            re: self.re - rhs.re,
            eps: self.eps - rhs.eps,
        }
    }
}

impl Mul for Dual {
    type Output = Dual;
    #[inline]
    fn mul(self, rhs: Dual) -> Dual {
        Dual {
            re: self.re * rhs.re,
            eps: self.eps * rhs.re + self.re * rhs.eps,
        }
    }
}

impl Div for Dual {
    type Output = Dual;
    #[inline]
    fn div(self, rhs: Dual) -> Dual {
        let q = self.re / rhs.re;
        Dual {
            re: q,
            eps: (self.eps - q * rhs.eps) / rhs.re,
        }
    }
}

impl Neg for Dual {
    type Output = Dual;
    #[inline]
    fn neg(self) -> Dual {
        Dual {
            re: -self.re,
            eps: -self.eps,
        }
    }
}

impl Scalar for Dual {
    #[inline]
    fn from_f64(x: f64) -> Self {
        Dual::constant(x)
    }
    #[inline]
    fn width(self) -> f64 {
        0.0
    }
    #[inline]
    fn midpoint(self) -> f64 {
        self.re
    }
    #[inline]
    fn mag(self) -> f64 {
        self.re.abs()
    }
    #[inline]
    fn is_zero(self) -> bool {
        self.re == 0.0 && self.eps == 0.0
    }

    #[inline]
    fn sin(self) -> Self {
        self.lift(self.re.sin(), self.re.cos())
    }
    #[inline]
    fn cos(self) -> Self {
        self.lift(self.re.cos(), -self.re.sin())
    }
    #[inline]
    fn tan(self) -> Self {
        let t = self.re.tan();
        self.lift(t, 1.0 + t * t)
    }
    #[inline]
    fn exp(self) -> Self {
        let e = self.re.exp();
        self.lift(e, e)
    }
    #[inline]
    fn ln(self) -> Self {
        self.lift(self.re.ln(), 1.0 / self.re)
    }
    #[inline]
    fn sqrt(self) -> Self {
        let s = self.re.sqrt();
        self.lift(s, 0.5 / s)
    }
    #[inline]
    fn sqr(self) -> Self {
        self.lift(self.re * self.re, 2.0 * self.re)
    }
    #[inline]
    fn recip(self) -> Self {
        let r = 1.0 / self.re;
        self.lift(r, -r * r)
    }
    #[inline]
    fn powi(self, n: i32) -> Self {
        if n == 0 {
            Dual::ONE
        } else {
            self.lift(self.re.powi(n), n as f64 * self.re.powi(n - 1))
        }
    }
    #[inline]
    fn powf(self, p: f64) -> Self {
        if p == 0.0 {
            Dual::ONE
        } else {
            self.lift(self.re.powf(p), p * self.re.powf(p - 1.0))
        }
    }
    #[inline]
    fn abs(self) -> Self {
        self.lift(self.re.abs(), Scalar::abs_deriv(self.re))
    }
    #[inline]
    fn atan(self) -> Self {
        self.lift(self.re.atan(), 1.0 / (1.0 + self.re * self.re))
    }
    #[inline]
    fn tanh(self) -> Self {
        let t = self.re.tanh();
        self.lift(t, 1.0 - t * t)
    }
    #[inline]
    fn sinh(self) -> Self {
        self.lift(self.re.sinh(), self.re.cosh())
    }
    #[inline]
    fn cosh(self) -> Self {
        self.lift(self.re.cosh(), self.re.sinh())
    }
    #[inline]
    fn erf(self) -> Self {
        self.lift(
            real::erf(self.re),
            std::f64::consts::FRAC_2_SQRT_PI * (-self.re * self.re).exp(),
        )
    }
    #[inline]
    fn cndf(self) -> Self {
        // 1/√(2π)
        let inv_sqrt_2pi = 0.5 * std::f64::consts::FRAC_2_SQRT_PI / std::f64::consts::SQRT_2;
        self.lift(
            real::cndf(self.re),
            inv_sqrt_2pi * (-0.5 * self.re * self.re).exp(),
        )
    }
    #[inline]
    fn hypot(self, other: Self) -> Self {
        let h = self.re.hypot(other.re);
        if h == 0.0 {
            Dual::ZERO
        } else {
            Dual {
                re: h,
                eps: (self.re * self.eps + other.re * other.eps) / h,
            }
        }
    }
    #[inline]
    fn min_val(self, other: Self) -> Self {
        if self.re <= other.re {
            self
        } else {
            other
        }
    }
    #[inline]
    fn max_val(self, other: Self) -> Self {
        if self.re >= other.re {
            self
        } else {
            other
        }
    }

    #[inline]
    fn abs_deriv(self) -> Self {
        // sign(x): piecewise constant, second derivative 0 a.e.
        Dual::constant(Scalar::abs_deriv(self.re))
    }
    #[inline]
    fn min_partials(self, other: Self) -> (Self, Self) {
        if self.re <= other.re {
            (Dual::ONE, Dual::ZERO)
        } else {
            (Dual::ZERO, Dual::ONE)
        }
    }
    #[inline]
    fn max_partials(self, other: Self) -> (Self, Self) {
        if self.re >= other.re {
            (Dual::ONE, Dual::ZERO)
        } else {
            (Dual::ZERO, Dual::ONE)
        }
    }
    #[inline]
    fn hypot_partials(self, other: Self, value: Self) -> (Self, Self) {
        if value.re == 0.0 {
            (Dual::ZERO, Dual::ZERO)
        } else {
            (self / value, other / value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    #[test]
    fn dual_arithmetic_identities() {
        let x = Dual::with_tangent(3.0, 1.0);
        let y = Dual::with_tangent(2.0, 0.0);
        assert_eq!((x + y).re, 5.0);
        assert_eq!((x * y).eps, 2.0); // d(xy)/dx · 1
        assert_eq!((x / y).eps, 0.5);
        let q = x / y * y;
        assert!((q.re - 3.0).abs() < 1e-15);
        assert!((q.eps - 1.0).abs() < 1e-15);
    }

    #[test]
    fn dual_functions_match_derivatives() {
        let x = Dual::with_tangent(0.7, 1.0);
        let fd = |f: fn(f64) -> f64| (f(0.7 + 1e-7) - f(0.7 - 1e-7)) / 2e-7;
        assert!((Scalar::sin(x).eps - fd(f64::sin)).abs() < 1e-6);
        assert!((Scalar::exp(x).eps - fd(f64::exp)).abs() < 1e-6);
        assert!((Scalar::ln(x).eps - fd(f64::ln)).abs() < 1e-6);
        assert!((Scalar::tanh(x).eps - fd(f64::tanh)).abs() < 1e-6);
        assert!((Scalar::erf(x).eps - fd(real::erf)).abs() < 1e-6);
        assert!((Scalar::cndf(x).eps - fd(real::cndf)).abs() < 1e-6);
        assert!((Scalar::sqrt(x).eps - fd(f64::sqrt)).abs() < 1e-6);
    }

    /// Reference Hessian of f(x, y) = exp(x·y) + x³ at a point.
    fn hessian(x: f64, y: f64) -> [[f64; 2]; 2] {
        let e = (x * y).exp();
        [
            [y * y * e + 6.0 * x, e + x * y * e],
            [e + x * y * e, x * x * e],
        ]
    }

    #[test]
    fn tangent_over_adjoint_hessian_vector() {
        let (x0, y0) = (0.4, -0.8);
        let h = hessian(x0, y0);
        for (vx, vy) in [(1.0, 0.0), (0.0, 1.0), (0.3, -0.7)] {
            let tape = Tape::<Dual>::new();
            let x = tape.var(Dual::with_tangent(x0, vx));
            let y = tape.var(Dual::with_tangent(y0, vy));
            let f = (x * y).exp() + x.powi(3);
            let adj = tape.adjoints(&[(f.id(), Dual::ONE)]);

            let hv = [
                h[0][0] * vx + h[0][1] * vy,
                h[1][0] * vx + h[1][1] * vy,
            ];
            assert!(
                (adj[x.id()].eps - hv[0]).abs() < 1e-10,
                "Hv_x: {} vs {}",
                adj[x.id()].eps,
                hv[0]
            );
            assert!(
                (adj[y.id()].eps - hv[1]).abs() < 1e-10,
                "Hv_y: {} vs {}",
                adj[y.id()].eps,
                hv[1]
            );
            // The value parts are the plain gradient.
            let e = (x0 * y0).exp();
            assert!((adj[x.id()].re - (y0 * e + 3.0 * x0 * x0)).abs() < 1e-12);
            assert!((adj[y.id()].re - x0 * e).abs() < 1e-12);
        }
    }

    #[test]
    fn full_hessian_by_unit_vectors() {
        // n forward-over-reverse passes give the full Hessian.
        let (x0, y0) = (1.1, 0.3);
        let h_ref = hessian(x0, y0);
        let mut h = [[0.0; 2]; 2];
        for (col, (vx, vy)) in [(1.0, 0.0), (0.0, 1.0)].into_iter().enumerate() {
            let tape = Tape::<Dual>::new();
            let x = tape.var(Dual::with_tangent(x0, vx));
            let y = tape.var(Dual::with_tangent(y0, vy));
            let f = (x * y).exp() + x.powi(3);
            let adj = tape.adjoints(&[(f.id(), Dual::ONE)]);
            h[0][col] = adj[x.id()].eps;
            h[1][col] = adj[y.id()].eps;
        }
        for i in 0..2 {
            for j in 0..2 {
                assert!((h[i][j] - h_ref[i][j]).abs() < 1e-10, "H[{i}][{j}]");
            }
        }
        // Symmetry comes out for free.
        assert!((h[0][1] - h[1][0]).abs() < 1e-10);
    }

    #[test]
    fn second_derivative_through_div_and_hypot() {
        // f(x) = hypot(x, 2)/x; f''(x) analytic via symmetry checks:
        // compare Hv against central differences of the gradient.
        let x0 = 1.3;
        let grad = |x: f64| {
            let tape = Tape::<f64>::new();
            let xv = tape.var(x);
            let c = tape.constant(2.0);
            let f = xv.hypot(c) / xv;
            tape.adjoints(&[(f.id(), 1.0)])[xv.id()]
        };
        let fd2 = (grad(x0 + 1e-6) - grad(x0 - 1e-6)) / 2e-6;

        let tape = Tape::<Dual>::new();
        let x = tape.var(Dual::with_tangent(x0, 1.0));
        let c = tape.constant(Dual::constant(2.0));
        let f = x.hypot(c) / x;
        let adj = tape.adjoints(&[(f.id(), Dual::ONE)]);
        assert!(
            (adj[x.id()].eps - fd2).abs() < 1e-5,
            "{} vs {}",
            adj[x.id()].eps,
            fd2
        );
    }
}
