//! Multi-lane replay: execute a compiled op stream once per **block of
//! `LANES` items** instead of once per item.
//!
//! [`CompiledTape::replay`] already strips recording overhead, but it
//! still walks the op stream — decoding one [`Op`] discriminant and one
//! predecessor pair per node — for *every* item of a batch. For
//! data-parallel workloads (pixels, options, DCT blocks) the stream is
//! identical across items, so that decode work is redundant across the
//! batch. The lane engine amortises it: [`LaneReplayBuffers`] stores one
//! `[V; LANES]` block per node (a structure-of-lane-blocks layout), and
//! [`CompiledTape::replay_lanes`] / [`CompiledTape::adjoints_into_lanes`]
//! walk the stream **once per lane block**, executing each op over all
//! `LANES` items with a fixed-width inner loop the compiler can
//! autovectorize (and, behind the optional `simd` feature, compile a
//! second time with AVX2 enabled and dispatch at runtime).
//!
//! Memory layout per node `j`:
//!
//! ```text
//! values[j] = [ item0, item1, …, item{LANES-1} ]   // one cache block
//! pa[j]     = [ ∂φ/∂a per item … ]
//! pb[j]     = [ ∂φ/∂b per item … ]
//! ```
//!
//! # Bit-identity
//!
//! Lane `l` of a lane replay performs exactly the scalar operations, in
//! exactly the order, that a scalar [`CompiledTape::replay`] of item `l`
//! performs — both funnel through the same `eval_op` evaluator — so each
//! lane is bit-identical to the scalar path. The reverse sweep preserves
//! this by keeping the scalar sweep's zero-adjoint skip *per lane*: the
//! skip is not a harmless shortcut under IEEE-754 (an infinite partial
//! times a zero adjoint would inject a NaN, and `-0.0 + 0.0` flips the
//! sign of zero), so lanes whose adjoint is zero must not accumulate.
//!
//! # Example
//!
//! ```
//! use scorpio_adjoint::{CompiledTape, LaneReplayBuffers, Tape};
//!
//! // Record y = x·sin(x) once…
//! let tape = Tape::<f64>::new();
//! let x = tape.var(0.3);
//! let y = x * x.sin();
//! let compiled = CompiledTape::compile(&tape);
//!
//! // …then replay four items with one walk of the op stream.
//! let mut buf = LaneReplayBuffers::<f64, 4>::new();
//! let xs = [0.1, 0.2, 0.3, 0.4];
//! compiled.replay_lanes(&[xs], &mut buf).unwrap();
//! compiled.adjoints_into_lanes(&[(y.id(), 1.0)], &mut buf);
//! for (l, &x0) in xs.iter().enumerate() {
//!     assert_eq!(buf.value(y.id(), l), x0 * x0.sin());
//!     let want = x0.sin() + x0 * x0.cos();
//!     assert!((buf.adjoint(x.id(), l) - want).abs() < 1e-15);
//! }
//! ```

use crate::compiled::{eval_op, CompiledTape, ShapeMismatch};
use crate::node::{NodeId, Op};
use crate::value::Scalar;

/// Reusable lane-blocked value/partial/adjoint buffers for
/// [`CompiledTape::replay_lanes`] — the multi-lane analogue of
/// [`crate::ReplayBuffers`]. One `[V; LANES]` block per node; one set
/// per worker; sized on first replay, zero allocation afterwards.
#[derive(Debug, Clone)]
pub struct LaneReplayBuffers<V, const LANES: usize> {
    values: Vec<[V; LANES]>,
    /// Local partial with respect to the first operand, per node/lane.
    pa: Vec<[V; LANES]>,
    /// Local partial with respect to the second operand, per node/lane.
    pb: Vec<[V; LANES]>,
    adj: Vec<[V; LANES]>,
}

impl<V: Scalar, const LANES: usize> LaneReplayBuffers<V, LANES> {
    /// Empty buffers; the first replay sizes them.
    pub fn new() -> LaneReplayBuffers<V, LANES> {
        LaneReplayBuffers {
            values: Vec::new(),
            pa: Vec::new(),
            pb: Vec::new(),
            adj: Vec::new(),
        }
    }

    fn resize(&mut self, n: usize) {
        // resize() both shrinks and grows; the fill value is only used
        // for growth and every slot is overwritten by the forward loop.
        self.values.resize(n, [V::zero(); LANES]);
        self.pa.resize(n, [V::zero(); LANES]);
        self.pb.resize(n, [V::zero(); LANES]);
    }

    /// The replayed value `[u_j]` of node `id` in lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `lane` is out of range for the last replayed
    /// trace.
    pub fn value(&self, id: NodeId, lane: usize) -> V {
        self.values[id.index()][lane]
    }

    /// The adjoint `∇_{u_j} y` of node `id` in lane `lane` from the
    /// last [`CompiledTape::adjoints_into_lanes`] sweep.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `lane` is out of range or no sweep has run.
    pub fn adjoint(&self, id: NodeId, lane: usize) -> V {
        self.adj[id.index()][lane]
    }

    /// All replayed lane blocks in execution order.
    pub fn values(&self) -> &[[V; LANES]] {
        &self.values
    }

    /// All adjoint lane blocks in execution order (empty before the
    /// first sweep).
    pub fn adjoints(&self) -> &[[V; LANES]] {
        &self.adj
    }
}

impl<V: Scalar, const LANES: usize> Default for LaneReplayBuffers<V, LANES> {
    fn default() -> Self {
        LaneReplayBuffers::new()
    }
}

/// Evaluates one compute op over a whole lane block. `op` is passed by
/// the caller's per-variant dispatch so that after inlining the
/// `eval_op` match folds to a single arm, leaving a straight-line
/// fixed-width loop the compiler autovectorizes.
#[inline(always)]
fn eval_op_lanes<V: Scalar, const LANES: usize>(
    op: Op,
    a: &[V; LANES],
    b: &[V; LANES],
) -> ([V; LANES], [V; LANES], [V; LANES]) {
    let mut v = [V::zero(); LANES];
    let mut pa = [V::zero(); LANES];
    let mut pb = [V::zero(); LANES];
    for l in 0..LANES {
        let (x, da, db) = eval_op(op, a[l], b[l]);
        v[l] = x;
        pa[l] = da;
        pb[l] = db;
    }
    (v, pa, pb)
}

impl<V: Scalar> CompiledTape<V> {
    /// Replays the trace for a whole block of `LANES` items at once:
    /// one walk of the op stream, each op evaluated over a fixed-width
    /// lane array. `inputs` is **slot-major**: `inputs[s][l]` is the
    /// value bound to input slot `s` for item `l` (transposed from the
    /// per-item layout scalar replay takes).
    ///
    /// Each lane is bit-identical to a scalar [`CompiledTape::replay`]
    /// of the same item (see the [module docs](crate::lanes) for why).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeMismatch`] (leaving `buf` unspecified) when
    /// `inputs` does not provide exactly one lane block per input slot.
    pub fn replay_lanes<const LANES: usize>(
        &self,
        inputs: &[[V; LANES]],
        buf: &mut LaneReplayBuffers<V, LANES>,
    ) -> Result<(), ShapeMismatch> {
        let _span = scorpio_obs::span_detail("forward_lanes");
        if inputs.len() != self.inputs.len() {
            return Err(ShapeMismatch {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was verified at runtime just above.
            unsafe { self.replay_lanes_avx2(inputs, buf) };
            return Ok(());
        }
        self.replay_lanes_body(inputs, buf);
        Ok(())
    }

    /// The AVX2-multiversioned clone of the forward lane sweep: the
    /// `#[target_feature]` attribute recompiles the `#[inline(always)]`
    /// body with 256-bit vector instructions enabled, without changing
    /// any arithmetic (no FMA contraction, no fast-math), so lanes stay
    /// bit-identical to the portable build.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2")]
    unsafe fn replay_lanes_avx2<const LANES: usize>(
        &self,
        inputs: &[[V; LANES]],
        buf: &mut LaneReplayBuffers<V, LANES>,
    ) {
        self.replay_lanes_body(inputs, buf);
    }

    #[inline(always)]
    fn replay_lanes_body<const LANES: usize>(
        &self,
        inputs: &[[V; LANES]],
        buf: &mut LaneReplayBuffers<V, LANES>,
    ) {
        let n = self.ops.len();
        buf.resize(n);
        let mut next_input = 0usize;
        for j in 0..n {
            match self.ops[j] {
                Op::Input => {
                    buf.values[j] = inputs[next_input];
                    next_input += 1;
                    buf.pa[j] = [V::zero(); LANES];
                    buf.pb[j] = [V::zero(); LANES];
                }
                Op::Const => {
                    buf.values[j] = [self.recorded[j]; LANES];
                    buf.pa[j] = [V::zero(); LANES];
                    buf.pb[j] = [V::zero(); LANES];
                }
                op => {
                    // Predecessor slots are always earlier in the
                    // sequence; copying the operand blocks out keeps the
                    // borrow checker happy and the lane loop tight.
                    // Unary nodes carry an INVALID second slot — only
                    // dereference it for binary ops.
                    let a = buf.values[self.preds[j][0].index()];
                    let b = if op.arity() == 2 {
                        buf.values[self.preds[j][1].index()]
                    } else {
                        [V::zero(); LANES]
                    };
                    // The arithmetic workhorses get literal-op calls so
                    // each inlined `eval_op` match folds to one arm and
                    // the lane loop vectorizes; rarer ops share the
                    // generic arm (same code, one extra branch).
                    let (v, pa, pb) = match op {
                        Op::Add => eval_op_lanes(Op::Add, &a, &b),
                        Op::Sub => eval_op_lanes(Op::Sub, &a, &b),
                        Op::Mul => eval_op_lanes(Op::Mul, &a, &b),
                        Op::Div => eval_op_lanes(Op::Div, &a, &b),
                        Op::Neg => eval_op_lanes(Op::Neg, &a, &b),
                        Op::Sqr => eval_op_lanes(Op::Sqr, &a, &b),
                        other => eval_op_lanes(other, &a, &b),
                    };
                    buf.values[j] = v;
                    buf.pa[j] = pa;
                    buf.pb[j] = pb;
                }
            }
        }
    }

    /// Reverse (adjoint) sweep over the replayed lane blocks: every
    /// seed is broadcast across all `LANES` lanes, and each lane's
    /// accumulation is bit-identical to a scalar
    /// [`CompiledTape::adjoints_into`] sweep of that item.
    ///
    /// # Panics
    ///
    /// Panics if a seed id is out of range, or if `buf` has not been
    /// filled by a [`CompiledTape::replay_lanes`] of this trace.
    pub fn adjoints_into_lanes<const LANES: usize>(
        &self,
        seeds: &[(NodeId, V)],
        buf: &mut LaneReplayBuffers<V, LANES>,
    ) {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was verified at runtime just above.
            unsafe { self.adjoints_into_lanes_avx2(seeds, buf) };
            return;
        }
        self.adjoints_into_lanes_body(seeds, buf);
    }

    /// AVX2-multiversioned clone of the reverse lane sweep (see
    /// `replay_lanes_avx2`).
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2")]
    unsafe fn adjoints_into_lanes_avx2<const LANES: usize>(
        &self,
        seeds: &[(NodeId, V)],
        buf: &mut LaneReplayBuffers<V, LANES>,
    ) {
        self.adjoints_into_lanes_body(seeds, buf);
    }

    #[inline(always)]
    fn adjoints_into_lanes_body<const LANES: usize>(
        &self,
        seeds: &[(NodeId, V)],
        buf: &mut LaneReplayBuffers<V, LANES>,
    ) {
        let n = self.ops.len();
        assert_eq!(
            buf.values.len(),
            n,
            "adjoints_into_lanes: buffers were not replayed for this trace"
        );
        buf.adj.clear();
        buf.adj.resize(n, [V::zero(); LANES]);
        for &(id, seed) in seeds {
            for lane in &mut buf.adj[id.index()] {
                *lane = *lane + seed;
            }
        }
        for j in (0..n).rev() {
            let a = buf.adj[j];
            // Whole-node fast path: if every lane's adjoint is zero the
            // scalar sweep would skip this node in every lane.
            if a.iter().all(|x| x.is_zero()) {
                continue;
            }
            for k in 0..self.ops[j].arity() {
                let p = self.preds[j][k];
                if p != NodeId::INVALID {
                    let partial = if k == 0 { buf.pa[j] } else { buf.pb[j] };
                    let slot = &mut buf.adj[p.index()];
                    for l in 0..LANES {
                        // Per-lane zero skip, mirroring the scalar
                        // sweep's `is_zero` guard: skipping is not a
                        // no-op under IEEE-754 (inf/NaN partials times
                        // a zero adjoint inject NaNs; `-0.0 + 0.0`
                        // flips the sign of zero), so a lane only
                        // accumulates when its scalar twin would.
                        if !a[l].is_zero() {
                            slot[l] = slot[l] + partial[l] * a[l];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::ReplayBuffers;
    use crate::tape::Tape;
    use scorpio_interval::Interval;

    /// Records a trace exercising every operator class (mirrors the
    /// scalar replay suite).
    fn record_all_ops(tape: &Tape<f64>, x0: f64, y0: f64) -> NodeId {
        let x = tape.var(x0);
        let y = tape.var(y0);
        let c = tape.constant(0.75);
        let mut acc = x + y - c;
        acc = acc * x / (y + 2.5);
        acc = acc + (-x);
        acc = acc + x.sin() + x.cos() + (x * 0.3).tan();
        acc = acc + (x * 0.2).exp() + (y + 3.0).ln() + (y + 4.0).sqrt();
        acc = acc + x.sqr() + (y + 2.0).recip();
        acc = acc + x.powi(3) + (y + 5.0).powf(1.3) + x.powi(0);
        acc = acc + x.abs() + x.atan() + x.tanh() + (x * 0.5).sinh() + (x * 0.5).cosh();
        acc = acc + x.erf() + x.cndf();
        acc = acc + x.hypot(y) + x.min(y) + x.max(y);
        acc.id()
    }

    #[test]
    fn lane_replay_is_bit_identical_to_scalar_replay_f64() {
        let tape = Tape::<f64>::new();
        let out = record_all_ops(&tape, 0.4, 1.1);
        let compiled = CompiledTape::compile(&tape);

        const LANES: usize = 4;
        let xs = [0.4, -0.8, 1.7, 0.01];
        let ys = [1.1, 0.2, -0.4, 9.5];
        let mut lanes = LaneReplayBuffers::<f64, LANES>::new();
        compiled.replay_lanes(&[xs, ys], &mut lanes).unwrap();
        compiled.adjoints_into_lanes(&[(out, 1.0)], &mut lanes);

        let mut scalar = ReplayBuffers::new();
        for l in 0..LANES {
            compiled.replay(&[xs[l], ys[l]], &mut scalar).unwrap();
            compiled.adjoints_into(&[(out, 1.0)], &mut scalar);
            for j in 0..compiled.len() {
                let id = NodeId::from_index(j);
                assert_eq!(
                    lanes.value(id, l).to_bits(),
                    scalar.value(id).to_bits(),
                    "value diverged at node {j} lane {l} ({:?})",
                    compiled.op(j)
                );
                assert_eq!(
                    lanes.adjoint(id, l).to_bits(),
                    scalar.adjoint(id).to_bits(),
                    "adjoint diverged at node {j} lane {l} ({:?})",
                    compiled.op(j)
                );
            }
        }
    }

    #[test]
    fn lane_replay_is_bit_identical_to_scalar_replay_interval() {
        let record = |tape: &Tape<Interval>, r: f64| -> NodeId {
            let x = tape.var(Interval::centered(0.5, r));
            let y = tape.var(Interval::centered(-0.25, r));
            let s = (x.sqr() + y.sqr()) * 0.7;
            let z = (s.sin() + x.hypot(y)).exp() + x.min(y).max(x * 0.1);
            z.id()
        };
        let tape = Tape::<Interval>::new();
        let out = record(&tape, 0.125);
        let compiled = CompiledTape::compile(&tape);

        const LANES: usize = 2;
        let radii = [0.125, 0.03125];
        let xs = [
            Interval::centered(0.5, radii[0]),
            Interval::centered(0.5, radii[1]),
        ];
        let ys = [
            Interval::centered(-0.25, radii[0]),
            Interval::centered(-0.25, radii[1]),
        ];
        let mut lanes = LaneReplayBuffers::<Interval, LANES>::new();
        compiled.replay_lanes(&[xs, ys], &mut lanes).unwrap();
        compiled.adjoints_into_lanes(&[(out, Interval::ONE)], &mut lanes);

        let mut scalar = ReplayBuffers::new();
        for l in 0..LANES {
            compiled.replay(&[xs[l], ys[l]], &mut scalar).unwrap();
            compiled.adjoints_into(&[(out, Interval::ONE)], &mut scalar);
            for j in 0..compiled.len() {
                let id = NodeId::from_index(j);
                let (v, w) = (lanes.value(id, l), scalar.value(id));
                assert_eq!(v.inf().to_bits(), w.inf().to_bits(), "node {j} lane {l} inf");
                assert_eq!(v.sup().to_bits(), w.sup().to_bits(), "node {j} lane {l} sup");
                let (a, b) = (lanes.adjoint(id, l), scalar.adjoint(id));
                assert_eq!(a.inf().to_bits(), b.inf().to_bits(), "adj {j} lane {l} inf");
                assert_eq!(a.sup().to_bits(), b.sup().to_bits(), "adj {j} lane {l} sup");
            }
        }
    }

    /// Zero adjoints must stay skipped per lane: a dead subtree with an
    /// infinite partial must not leak NaN into lanes that never touch
    /// it, and signed zeros must survive exactly as in scalar replay.
    #[test]
    fn lane_reverse_sweep_keeps_per_lane_zero_skip() {
        let tape = Tape::<f64>::new();
        let x = tape.var(0.0);
        let y = x.ln(); // ln(0) → -inf value, +inf partial
        let z = x + 1.0;
        let (y_id, z_id) = (y.id(), z.id());
        let compiled = CompiledTape::compile(&tape);

        // Seed only z: the ln node's adjoint is zero in every lane, so
        // its infinite partial must never be multiplied in.
        let mut lanes = LaneReplayBuffers::<f64, 2>::new();
        compiled.replay_lanes(&[[0.0, 0.5]], &mut lanes).unwrap();
        compiled.adjoints_into_lanes(&[(z_id, 1.0)], &mut lanes);
        for l in 0..2 {
            assert_eq!(lanes.adjoint(x.id(), l).to_bits(), 1.0f64.to_bits());
            assert!(lanes.adjoint(y_id, l) == 0.0);
        }
    }

    #[test]
    fn lane_replay_rejects_wrong_input_arity() {
        let tape = Tape::<f64>::new();
        let x = tape.var(1.0);
        let _ = x.exp();
        let compiled = CompiledTape::compile(&tape);
        let mut buf = LaneReplayBuffers::<f64, 4>::new();
        let err = compiled
            .replay_lanes(&[[1.0; 4], [2.0; 4]], &mut buf)
            .unwrap_err();
        assert_eq!(err, ShapeMismatch { expected: 1, got: 2 });
    }
}
