//! DynDFG nodes: elementary operations with recorded local partials.

use std::fmt;

/// Index of a node within a [`Tape`](crate::Tape).
///
/// Node ids are dense and allocated in execution order, so `a.id() < b.id()`
/// whenever `a` was computed before `b` — the `i ≺ j ⇒ i < j` property of
/// the paper's three-part evaluation procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Sentinel used for unused predecessor slots.
    pub(crate) const INVALID: NodeId = NodeId(u32::MAX);

    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX - 1`.
    #[inline]
    pub fn from_index(index: usize) -> NodeId {
        assert!(index < u32::MAX as usize, "tape too large");
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// The elementary function `φ_j` a node represents (Eq. 2 of the paper:
/// arithmetic operations and C++ intrinsics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// A registered input variable `x_k` (Eq. 1).
    Input,
    /// A literal constant.
    Const,
    /// `a + b`
    Add,
    /// `a − b`
    Sub,
    /// `a · b`
    Mul,
    /// `a / b`
    Div,
    /// `−a`
    Neg,
    /// `sin a`
    Sin,
    /// `cos a`
    Cos,
    /// `tan a`
    Tan,
    /// `eᵃ`
    Exp,
    /// `ln a`
    Ln,
    /// `√a`
    Sqrt,
    /// `a²`
    Sqr,
    /// `1/a`
    Recip,
    /// `aⁿ`, integer exponent
    Powi(i32),
    /// `aᵖ`, real exponent
    Powf(f64),
    /// `|a|`
    Abs,
    /// `atan a`
    Atan,
    /// `tanh a`
    Tanh,
    /// `sinh a`
    Sinh,
    /// `cosh a`
    Cosh,
    /// `erf a`
    Erf,
    /// standard-normal CDF `Φ(a)`
    Cndf,
    /// `√(a² + b²)`
    Hypot,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
}

impl Op {
    /// Number of predecessor operands (0 for inputs/constants).
    #[inline]
    pub fn arity(self) -> usize {
        match self {
            Op::Input | Op::Const => 0,
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Hypot | Op::Min | Op::Max => 2,
            _ => 1,
        }
    }

    /// `true` for the accumulation-friendly operators whose chains the
    /// Algorithm-1 `simplify` step (S4) may collapse.
    #[inline]
    pub fn is_additive(self) -> bool {
        matches!(self, Op::Add | Op::Sub)
    }

    /// Number of operator classes ([`Op::class_index`] codomain size).
    pub const CLASS_COUNT: usize = 27;

    /// Dense class index of this operator: parameterised variants
    /// (`Powi(n)`, `Powf(p)`) collapse onto one class each, so the
    /// index fits a fixed `[_; Op::CLASS_COUNT]` table with no hashing
    /// or string comparison on the hot path.
    #[inline]
    pub fn class_index(self) -> usize {
        match self {
            Op::Input => 0,
            Op::Const => 1,
            Op::Add => 2,
            Op::Sub => 3,
            Op::Mul => 4,
            Op::Div => 5,
            Op::Neg => 6,
            Op::Sin => 7,
            Op::Cos => 8,
            Op::Tan => 9,
            Op::Exp => 10,
            Op::Ln => 11,
            Op::Sqrt => 12,
            Op::Sqr => 13,
            Op::Recip => 14,
            Op::Powi(_) => 15,
            Op::Powf(_) => 16,
            Op::Abs => 17,
            Op::Atan => 18,
            Op::Tanh => 19,
            Op::Sinh => 20,
            Op::Cosh => 21,
            Op::Erf => 22,
            Op::Cndf => 23,
            Op::Hypot => 24,
            Op::Min => 25,
            Op::Max => 26,
        }
    }

    /// The mnemonic of operator class `index` (inverse of
    /// [`Op::class_index`] up to operator parameters).
    ///
    /// # Panics
    ///
    /// Panics if `index >= Op::CLASS_COUNT`.
    pub fn class_mnemonic(index: usize) -> &'static str {
        const MNEMONICS: [&str; Op::CLASS_COUNT] = [
            "in", "const", "+", "-", "*", "/", "neg", "sin", "cos", "tan", "exp", "ln", "sqrt",
            "sqr", "recip", "powi", "powf", "abs", "atan", "tanh", "sinh", "cosh", "erf", "cndf",
            "hypot", "min", "max",
        ];
        MNEMONICS[index]
    }

    /// Short mnemonic used by graph dumps.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Input => "in",
            Op::Const => "const",
            Op::Add => "+",
            Op::Sub => "-",
            Op::Mul => "*",
            Op::Div => "/",
            Op::Neg => "neg",
            Op::Sin => "sin",
            Op::Cos => "cos",
            Op::Tan => "tan",
            Op::Exp => "exp",
            Op::Ln => "ln",
            Op::Sqrt => "sqrt",
            Op::Sqr => "sqr",
            Op::Recip => "recip",
            Op::Powi(_) => "powi",
            Op::Powf(_) => "powf",
            Op::Abs => "abs",
            Op::Atan => "atan",
            Op::Tanh => "tanh",
            Op::Sinh => "sinh",
            Op::Cosh => "cosh",
            Op::Erf => "erf",
            Op::Cndf => "cndf",
            Op::Hypot => "hypot",
            Op::Min => "min",
            Op::Max => "max",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Powi(n) => write!(f, "powi({n})"),
            Op::Powf(p) => write!(f, "powf({p})"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

/// One recorded elementary operation: `value = op(preds)`, with the local
/// partial derivatives `∂φ/∂pred` captured at recording time (the edge
/// annotations of Fig. 1a in the paper).
#[derive(Debug, Clone, Copy)]
pub struct Node<V> {
    pub(crate) op: Op,
    pub(crate) preds: [NodeId; 2],
    pub(crate) partials: [V; 2],
    pub(crate) value: V,
}

impl<V: Copy> Node<V> {
    /// The elementary function this node applies.
    #[inline]
    pub fn op(&self) -> Op {
        self.op
    }

    /// The recorded result value `[u_j]`.
    #[inline]
    pub fn value(&self) -> V {
        self.value
    }

    /// Predecessor node ids (`i ≺ j`), in operand order.
    #[inline]
    pub fn preds(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.preds
            .iter()
            .take(self.op.arity())
            .copied()
            .filter(|&p| p != NodeId::INVALID)
    }

    /// Predecessors paired with the local partial `∂φ_j/∂u_i`.
    #[inline]
    pub fn pred_partials(&self) -> impl Iterator<Item = (NodeId, V)> + '_ {
        (0..self.op.arity())
            .filter(|&k| self.preds[k] != NodeId::INVALID)
            .map(|k| (self.preds[k], self.partials[k]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_operator_class() {
        assert_eq!(Op::Input.arity(), 0);
        assert_eq!(Op::Sin.arity(), 1);
        assert_eq!(Op::Add.arity(), 2);
        assert_eq!(Op::Hypot.arity(), 2);
        assert_eq!(Op::Powi(3).arity(), 1);
    }

    #[test]
    fn additive_ops() {
        assert!(Op::Add.is_additive());
        assert!(Op::Sub.is_additive());
        assert!(!Op::Mul.is_additive());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Op::Add.to_string(), "+");
        assert_eq!(Op::Powi(3).to_string(), "powi(3)");
        assert_eq!(NodeId(7).to_string(), "u7");
    }

    #[test]
    fn class_table_agrees_with_mnemonics() {
        let ops = [
            Op::Input,
            Op::Const,
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Neg,
            Op::Sin,
            Op::Cos,
            Op::Tan,
            Op::Exp,
            Op::Ln,
            Op::Sqrt,
            Op::Sqr,
            Op::Recip,
            Op::Powi(3),
            Op::Powf(0.5),
            Op::Abs,
            Op::Atan,
            Op::Tanh,
            Op::Sinh,
            Op::Cosh,
            Op::Erf,
            Op::Cndf,
            Op::Hypot,
            Op::Min,
            Op::Max,
        ];
        assert_eq!(ops.len(), Op::CLASS_COUNT);
        let mut seen = [false; Op::CLASS_COUNT];
        for op in ops {
            assert_eq!(Op::class_mnemonic(op.class_index()), op.mnemonic());
            seen[op.class_index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "class indices must be dense");
    }

    #[test]
    fn node_pred_iteration() {
        let n = Node {
            op: Op::Add,
            preds: [NodeId(1), NodeId(2)],
            partials: [1.0, 1.0],
            value: 3.0,
        };
        let preds: Vec<_> = n.preds().collect();
        assert_eq!(preds, vec![NodeId(1), NodeId(2)]);
        let pp: Vec<_> = n.pred_partials().collect();
        assert_eq!(pp.len(), 2);
    }
}
