//! Cross-cutting tests for the AD engine:
//!
//! 1. adjoint gradients vs central finite differences (f64 scalars);
//! 2. adjoint vs tangent mode via the dot-product identity;
//! 3. interval AD encloses point AD — the property that makes Eq. 10 of
//!    the paper an enclosure of the true derivative range;
//! 4. the worked example of Listings 1–3.

use proptest::prelude::*;
use scorpio_interval::Interval;

use crate::{Dual, NodeId, Tape, Var};

/// A differentiable test function exercised in every representation.
/// Chosen to hit most operator kinds while staying well-conditioned on
/// the sampled domain.
fn test_fn<'t, V: crate::Scalar>(x: Var<'t, V>, y: Var<'t, V>) -> Var<'t, V> {
    let a = (x.sin() + x * y).exp();
    let b = (y.sqr() + 2.5).sqrt();
    let c = x.hypot(y) + (x * 0.25).atan();
    a / b + c.tanh() - (0.5 * y).cos()
}

fn eval_f64(x: f64, y: f64) -> f64 {
    let a = (x.sin() + x * y).exp();
    let b = (y * y + 2.5).sqrt();
    let c = x.hypot(y) + (x * 0.25).atan();
    a / b + c.tanh() - (0.5 * y).cos()
}

/// Central finite difference in one coordinate.
fn fd(f: impl Fn(f64) -> f64, x: f64) -> f64 {
    let h = 1e-6 * x.abs().max(1.0);
    (f(x + h) - f(x - h)) / (2.0 * h)
}

#[test]
fn listing_example_gradient() {
    // f(x) = cos(exp(sin(x) + x) − x), Listings 1–3 of the paper.
    let tape = Tape::<f64>::new();
    let x0 = 0.3;
    let x = tape.var(x0);
    let y = ((x.sin() + x).exp() - x).cos();
    let adj = tape.adjoints(&[(y.id(), 1.0)]);

    // Hand-derived: u3 = exp(sin x + x); dy/dx = −sin(u3 − x)·(u3·(cos x + 1) − 1)
    let u3 = (x0.sin() + x0).exp();
    let want = -(u3 - x0).sin() * (u3 * (x0.cos() + 1.0) - 1.0);
    assert!((adj[x.id()] - want).abs() < 1e-12);

    // The tape has exactly the 6 nodes of Listing 2 (u0..u5).
    assert_eq!(tape.len(), 6);
}

#[test]
fn listing_example_interval_enclosure() {
    // Same function evaluated over an input box: every pointwise gradient
    // must be enclosed in the interval adjoint.
    let domain = Interval::new(0.1, 0.6);
    let tape = Tape::<Interval>::new();
    let x = tape.var(domain);
    let y = ((x.sin() + x).exp() - x).cos();
    let adj = tape.adjoints(&[(y.id(), Interval::ONE)]);
    let grad = adj[x.id()];

    for k in 0..=20 {
        let p = domain.inf() + domain.width() * (k as f64) / 20.0;
        let u3 = (p.sin() + p).exp();
        let g = -(u3 - p).sin() * (u3 * (p.cos() + 1.0) - 1.0);
        assert!(grad.contains(g), "gradient {g} at {p} not in {grad}");
    }
}

#[test]
fn multiple_outputs_sum_adjoints() {
    // Vector function y = (x², 3x): seeding both outputs with 1 gives
    // d(y0+y1)/dx = 2x + 3.
    let tape = Tape::<f64>::new();
    let x = tape.var(2.0);
    let y0 = x.sqr();
    let y1 = x * 3.0;
    let adj = tape.adjoints(&[(y0.id(), 1.0), (y1.id(), 1.0)]);
    assert!((adj[x.id()] - 7.0).abs() < 1e-15);
}

#[test]
fn fan_out_accumulates() {
    // x used three times: d(x + x·x + sin x)/dx = 1 + 2x + cos x.
    let tape = Tape::<f64>::new();
    let x = tape.var(1.2);
    let y = x + x * x + x.sin();
    let adj = tape.adjoints(&[(y.id(), 1.0)]);
    let want = 1.0 + 2.0 * 1.2 + 1.2f64.cos();
    assert!((adj[x.id()] - want).abs() < 1e-14);
}

#[test]
fn tangent_mode_matches_adjoint_gradient() {
    let tape = Tape::<f64>::new();
    let x = tape.var(0.7);
    let y = tape.var(-0.4);
    let z = test_fn(x, y);

    let adj = tape.adjoints(&[(z.id(), 1.0)]);

    // Forward mode, one sweep per input direction.
    let tx = tape.tangents(&[(x.id(), 1.0)]);
    let ty = tape.tangents(&[(y.id(), 1.0)]);

    assert!((adj[x.id()] - tx[z.id()]).abs() < 1e-12);
    assert!((adj[y.id()] - ty[z.id()]).abs() < 1e-12);
}

#[test]
fn intermediate_adjoints_available() {
    // The reverse sweep yields ∇_{u_j} y for *every* node (the paper's key
    // efficiency claim for adjoint mode).
    let tape = Tape::<f64>::new();
    let x = tape.var(0.5);
    let u = x.exp(); // intermediate
    let y = u.sqr();
    let adj = tape.adjoints(&[(y.id(), 1.0)]);
    // dy/du = 2u
    assert!((adj[u.id()] - 2.0 * 0.5f64.exp()).abs() < 1e-14);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn adjoint_matches_finite_difference(x0 in -1.5f64..1.5, y0 in -1.5f64..1.5) {
        let tape = Tape::<f64>::new();
        let x = tape.var(x0);
        let y = tape.var(y0);
        let z = test_fn(x, y);
        let adj = tape.adjoints(&[(z.id(), 1.0)]);

        let dx = fd(|t| eval_f64(t, y0), x0);
        let dy = fd(|t| eval_f64(x0, t), y0);

        let tol = 1e-4 * (1.0 + dx.abs().max(dy.abs()));
        prop_assert!((adj[x.id()] - dx).abs() < tol,
            "d/dx: adjoint {} vs fd {}", adj[x.id()], dx);
        prop_assert!((adj[y.id()] - dy).abs() < tol,
            "d/dy: adjoint {} vs fd {}", adj[y.id()], dy);
    }

    #[test]
    fn dot_product_identity(x0 in -1.5f64..1.5, y0 in -1.5f64..1.5,
                            dx in -1.0f64..1.0, dy in -1.0f64..1.0) {
        // ⟨ȳ, J·ẋ⟩ = ⟨Jᵀ·ȳ, ẋ⟩ with ȳ = 1.
        let tape = Tape::<f64>::new();
        let x = tape.var(x0);
        let y = tape.var(y0);
        let z = test_fn(x, y);

        let tan = tape.tangents(&[(x.id(), dx), (y.id(), dy)]);
        let adj = tape.adjoints(&[(z.id(), 1.0)]);

        let lhs = tan[z.id()];
        let rhs = adj[x.id()] * dx + adj[y.id()] * dy;
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()),
            "forward {lhs} vs reverse {rhs}");
    }

    #[test]
    fn interval_adjoint_encloses_point_adjoint(
        lo_x in -1.0f64..1.0, w_x in 0.0f64..0.5,
        lo_y in -1.0f64..1.0, w_y in 0.0f64..0.5,
        tx in 0.0f64..=1.0, ty in 0.0f64..=1.0,
    ) {
        let ix = Interval::new(lo_x, lo_x + w_x);
        let iy = Interval::new(lo_y, lo_y + w_y);
        let px = lo_x + tx * w_x;
        let py = lo_y + ty * w_y;

        // Interval AD over the box.
        let itape = Tape::<Interval>::new();
        let x = itape.var(ix);
        let y = itape.var(iy);
        let z = test_fn(x, y);
        let iadj = itape.adjoints(&[(z.id(), Interval::ONE)]);

        // Point AD at a sample inside the box.
        let ptape = Tape::<f64>::new();
        let xp = ptape.var(px);
        let yp = ptape.var(py);
        let zp = test_fn(xp, yp);
        let padj = ptape.adjoints(&[(zp.id(), 1.0)]);

        prop_assert!(iadj[x.id()].contains(padj[xp.id()]),
            "x-adjoint {} not in {}", padj[xp.id()], iadj[x.id()]);
        prop_assert!(iadj[y.id()].contains(padj[yp.id()]),
            "y-adjoint {} not in {}", padj[yp.id()], iadj[y.id()]);
        // Values enclose too.
        prop_assert!(z.value().contains(zp.value()));
    }

    #[test]
    fn dual_hessian_vector_matches_fd_of_gradient(
        x0 in -1.2f64..1.2, y0 in -1.2f64..1.2,
        vx in -1.0f64..1.0, vy in -1.0f64..1.0,
    ) {
        // H·v from tangent-over-adjoint vs central differences of the
        // (adjoint) gradient along v.
        let grad = |x: f64, y: f64| -> (f64, f64) {
            let tape = Tape::<f64>::new();
            let xv = tape.var(x);
            let yv = tape.var(y);
            let z = test_fn(xv, yv);
            let adj = tape.adjoints(&[(z.id(), 1.0)]);
            (adj[xv.id()], adj[yv.id()])
        };
        let h = 1e-6;
        let gp = grad(x0 + h * vx, y0 + h * vy);
        let gm = grad(x0 - h * vx, y0 - h * vy);
        let fd_hv = ((gp.0 - gm.0) / (2.0 * h), (gp.1 - gm.1) / (2.0 * h));

        let tape = Tape::<Dual>::new();
        let x = tape.var(Dual::with_tangent(x0, vx));
        let y = tape.var(Dual::with_tangent(y0, vy));
        let z = test_fn(x, y);
        let adj = tape.adjoints(&[(z.id(), Dual::ONE)]);
        let scale = 1.0 + fd_hv.0.abs().max(fd_hv.1.abs());
        prop_assert!((adj[x.id()].eps - fd_hv.0).abs() < 2e-4 * scale,
            "Hv_x {} vs fd {}", adj[x.id()].eps, fd_hv.0);
        prop_assert!((adj[y.id()].eps - fd_hv.1).abs() < 2e-4 * scale,
            "Hv_y {} vs fd {}", adj[y.id()].eps, fd_hv.1);
    }

    #[test]
    fn tape_structure_is_consistent(x0 in -1.0f64..1.0, y0 in -1.0f64..1.0) {
        let tape = Tape::<f64>::new();
        let x = tape.var(x0);
        let y = tape.var(y0);
        let z = test_fn(x, y);

        // Predecessors always precede successors (i ≺ j ⇒ i < j).
        for j in 0..tape.len() {
            for p in tape.node(NodeId::from_index(j)).preds() {
                prop_assert!(p.index() < tape.len());
            }
        }
        let succ = tape.successors();
        prop_assert_eq!(succ.len(), tape.len());
        // The output node has no successors.
        prop_assert!(succ[z.id().index()].is_empty());
        // Every successor edge mirrors a predecessor edge.
        for (i, ss) in succ.iter().enumerate() {
            for s in ss {
                let node = tape.node(*s);
                prop_assert!(node.preds().any(|p| p == NodeId::from_index(i)));
            }
        }
        prop_assert_eq!(tape.inputs(), vec![x.id(), y.id()]);
    }

    #[test]
    fn cleared_tape_rerecords_identically(x0 in -1.5f64..1.5, y0 in -1.5f64..1.5) {
        // Recycling a tape via clear() must be observationally identical
        // to a fresh tape: same structure, same values, same adjoints.
        let recycled = Tape::<f64>::new();
        {
            // A throwaway first recording with a different shape, so the
            // clear actually has stale state to discard.
            let a = recycled.var(0.25);
            let _ = (a.sin() + a.exp()) * a;
        }
        recycled.clear();
        let xr = recycled.var(x0);
        let yr = recycled.var(y0);
        let zr = test_fn(xr, yr);

        let fresh = Tape::<f64>::new();
        let xf = fresh.var(x0);
        let yf = fresh.var(y0);
        let zf = test_fn(xf, yf);

        prop_assert_eq!(recycled.len(), fresh.len());
        prop_assert_eq!(xr.id(), xf.id());
        prop_assert_eq!(zr.id(), zf.id());
        prop_assert_eq!(zr.value().to_bits(), zf.value().to_bits());
        prop_assert_eq!(recycled.inputs(), fresh.inputs());

        let ar = recycled.adjoints(&[(zr.id(), 1.0)]);
        let af = fresh.adjoints(&[(zf.id(), 1.0)]);
        prop_assert_eq!(ar[xr.id()].to_bits(), af[xf.id()].to_bits());
        prop_assert_eq!(ar[yr.id()].to_bits(), af[yf.id()].to_bits());
    }
}
