//! Graphviz DOT export of the DynDFG (Fig. 1 of the paper).

use std::fmt::Write as _;

use crate::node::{NodeId, Op};
use crate::tape::Tape;
use crate::value::Scalar;

/// Options controlling [`Tape::to_dot`] output.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name used in the `digraph` header.
    pub name: String,
    /// Render node values inside each vertex.
    pub show_values: bool,
    /// Render the local partial derivatives as edge labels (the
    /// annotations of Fig. 1a).
    pub show_partials: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "dyndfg".to_owned(),
            show_values: true,
            show_partials: true,
        }
    }
}

impl<V: Scalar> Tape<V> {
    /// Renders the recorded DynDFG in Graphviz DOT syntax.
    ///
    /// Input nodes are drawn as boxes, constants as diamonds, everything
    /// else as ellipses. Edges run from operand to result, matching the
    /// forward data-flow direction of Fig. 1a in the paper.
    ///
    /// ```
    /// use scorpio_adjoint::{dot_options, Tape};
    ///
    /// let tape = Tape::<f64>::new();
    /// let x = tape.var(0.5);
    /// let _y = x.sin() + x;
    /// let dot = tape.to_dot(&dot_options());
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("sin"));
    /// ```
    pub fn to_dot(&self, options: &DotOptions) -> String {
        // One zero-copy borrow of the arena for the whole render.
        self.with_nodes(|nodes| {
            let mut out = String::new();
            let _ = writeln!(out, "digraph {} {{", options.name);
            let _ = writeln!(out, "  rankdir=TB;");
            for (i, node) in nodes.iter().enumerate() {
                let id = NodeId::from_index(i);
                let shape = match node.op() {
                    Op::Input => "box",
                    Op::Const => "diamond",
                    _ => "ellipse",
                };
                let mut label = format!("{id}: {}", node.op());
                if options.show_values {
                    let _ = write!(label, "\\n{:?}", node.value());
                }
                let _ = writeln!(out, "  n{i} [shape={shape}, label=\"{label}\"];");
            }
            for (i, node) in nodes.iter().enumerate() {
                for (pred, partial) in node.pred_partials() {
                    if options.show_partials {
                        let _ = writeln!(
                            out,
                            "  n{} -> n{i} [label=\"{:?}\"];",
                            pred.index(),
                            partial
                        );
                    } else {
                        let _ = writeln!(out, "  n{} -> n{i};", pred.index());
                    }
                }
            }
            let _ = writeln!(out, "}}");
            out
        })
    }
}

/// Returns the default [`DotOptions`].
///
/// Free-function spelling so callers don't need to import the type for the
/// common case.
pub fn dot_options() -> DotOptions {
    DotOptions::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let tape = Tape::<f64>::new();
        let x = tape.var(1.0);
        let y = x.exp() * x;
        let dot = tape.to_dot(&dot_options());
        assert!(dot.contains("n0 [shape=box"));
        assert!(dot.contains("exp"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n1 -> n2"));
        assert!(dot.ends_with("}\n"));
        assert!(y.value() > 0.0);
    }

    #[test]
    fn dot_without_partials_has_plain_edges() {
        let tape = Tape::<f64>::new();
        let x = tape.var(1.0);
        let _ = x + x;
        let opts = DotOptions {
            show_partials: false,
            ..dot_options()
        };
        let dot = tape.to_dot(&opts);
        assert!(dot.contains("n0 -> n1;"));
        assert!(!dot.contains("label=\"1.0\""));
    }
}
