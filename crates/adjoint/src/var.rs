//! The overloaded active value type [`Var`].

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::node::{NodeId, Op};
use crate::tape::Tape;
use crate::value::Scalar;

/// An active value: the Rust equivalent of `dco::ia1s::type` from the
/// paper (Listing 4). Arithmetic on `Var`s evaluates the operation on the
/// underlying [`Scalar`] *and* appends the corresponding node — with its
/// local partial derivatives — to the owning [`Tape`].
///
/// `Var` is `Copy`; it is a `(tape, node-id, cached value)` triple.
///
/// # Example
///
/// ```
/// use scorpio_adjoint::Tape;
///
/// let tape = Tape::<f64>::new();
/// let x = tape.var(2.0);
/// let y = (x * x + 1.0).sqrt();
/// assert!((y.value() - 5.0f64.sqrt()).abs() < 1e-15);
/// assert_eq!(tape.len(), 5); // x, x*x, const 1, +, sqrt
/// ```
pub struct Var<'t, V> {
    tape: &'t Tape<V>,
    id: NodeId,
    value: V,
}

impl<V: Scalar> Clone for Var<'_, V> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<V: Scalar> Copy for Var<'_, V> {}

impl<V: Scalar> fmt::Debug for Var<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.id)
            .field("value", &self.value)
            .finish()
    }
}

impl<'t, V: Scalar> Var<'t, V> {
    pub(crate) fn new(tape: &'t Tape<V>, id: NodeId, value: V) -> Var<'t, V> {
        Var { tape, id, value }
    }

    /// The DynDFG node this value was produced by.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The computed value `[u_j]`.
    #[inline]
    pub fn value(&self) -> V {
        self.value
    }

    /// The tape this value records onto.
    #[inline]
    pub fn tape(&self) -> &'t Tape<V> {
        self.tape
    }

    #[inline]
    fn same_tape(&self, other: &Var<'_, V>) {
        assert!(
            std::ptr::eq(self.tape, other.tape),
            "Var operands belong to different tapes"
        );
    }

    #[inline]
    fn unary(self, op: Op, partial: V, value: V) -> Var<'t, V> {
        let id = self.tape.record1(op, self.id, partial, value);
        Var::new(self.tape, id, value)
    }

    #[inline]
    fn binary(self, other: Var<'t, V>, op: Op, pa: V, pb: V, value: V) -> Var<'t, V> {
        self.same_tape(&other);
        let id = self.tape.record2(op, self.id, other.id, pa, pb, value);
        Var::new(self.tape, id, value)
    }

    /// Lifts a plain scalar to a recorded constant on the same tape.
    #[inline]
    pub fn lift(&self, value: V) -> Var<'t, V> {
        self.tape.constant(value)
    }

    /// Sine, with local partial `cos u`.
    pub fn sin(self) -> Var<'t, V> {
        self.unary(Op::Sin, self.value.cos(), self.value.sin())
    }

    /// Cosine, with local partial `−sin u`.
    pub fn cos(self) -> Var<'t, V> {
        self.unary(Op::Cos, -self.value.sin(), self.value.cos())
    }

    /// Tangent, with local partial `1 + tan² u`.
    pub fn tan(self) -> Var<'t, V> {
        let t = self.value.tan();
        self.unary(Op::Tan, V::one() + t.sqr(), t)
    }

    /// Exponential, with local partial `eᵘ`.
    pub fn exp(self) -> Var<'t, V> {
        let e = self.value.exp();
        self.unary(Op::Exp, e, e)
    }

    /// Natural logarithm, with local partial `1/u`.
    pub fn ln(self) -> Var<'t, V> {
        self.unary(Op::Ln, self.value.recip(), self.value.ln())
    }

    /// Square root, with local partial `1/(2√u)`.
    pub fn sqrt(self) -> Var<'t, V> {
        let r = self.value.sqrt();
        let partial = (V::from_f64(2.0) * r).recip();
        self.unary(Op::Sqrt, partial, r)
    }

    /// Square, with local partial `2u` (tighter than `self * self` for
    /// interval scalars).
    pub fn sqr(self) -> Var<'t, V> {
        self.unary(Op::Sqr, V::from_f64(2.0) * self.value, self.value.sqr())
    }

    /// Reciprocal, with local partial `−1/u²`.
    pub fn recip(self) -> Var<'t, V> {
        self.unary(Op::Recip, -self.value.sqr().recip(), self.value.recip())
    }

    /// Integer power, with local partial `n·uⁿ⁻¹` (zero for `n = 0`).
    pub fn powi(self, n: i32) -> Var<'t, V> {
        let partial = if n == 0 {
            V::zero()
        } else {
            V::from_f64(n as f64) * self.value.powi(n - 1)
        };
        self.unary(Op::Powi(n), partial, self.value.powi(n))
    }

    /// Real power, with local partial `p·uᵖ⁻¹`.
    pub fn powf(self, p: f64) -> Var<'t, V> {
        let partial = if p == 0.0 {
            V::zero()
        } else {
            V::from_f64(p) * self.value.powf(p - 1.0)
        };
        self.unary(Op::Powf(p), partial, self.value.powf(p))
    }

    /// Absolute value, with subgradient partial (see
    /// [`Scalar::abs_deriv`]).
    pub fn abs(self) -> Var<'t, V> {
        self.unary(Op::Abs, self.value.abs_deriv(), self.value.abs())
    }

    /// Arc-tangent, with local partial `1/(1 + u²)`.
    pub fn atan(self) -> Var<'t, V> {
        let partial = (V::one() + self.value.sqr()).recip();
        self.unary(Op::Atan, partial, self.value.atan())
    }

    /// Hyperbolic tangent, with local partial `1 − tanh² u`.
    pub fn tanh(self) -> Var<'t, V> {
        let t = self.value.tanh();
        self.unary(Op::Tanh, V::one() - t.sqr(), t)
    }

    /// Hyperbolic sine, with local partial `cosh u`.
    pub fn sinh(self) -> Var<'t, V> {
        self.unary(Op::Sinh, self.value.cosh(), self.value.sinh())
    }

    /// Hyperbolic cosine, with local partial `sinh u`.
    pub fn cosh(self) -> Var<'t, V> {
        self.unary(Op::Cosh, self.value.sinh(), self.value.cosh())
    }

    /// Error function, with local partial `(2/√π)·e^(−u²)`.
    pub fn erf(self) -> Var<'t, V> {
        let two_over_sqrt_pi = V::from_f64(2.0 / std::f64::consts::PI.sqrt());
        let partial = two_over_sqrt_pi * (-self.value.sqr()).exp();
        self.unary(Op::Erf, partial, self.value.erf())
    }

    /// Standard-normal CDF, with local partial `φ(u) = e^(−u²/2)/√(2π)`.
    pub fn cndf(self) -> Var<'t, V> {
        let inv_sqrt_2pi = V::from_f64(1.0 / (2.0 * std::f64::consts::PI).sqrt());
        let partial = inv_sqrt_2pi * (-self.value.sqr() / V::from_f64(2.0)).exp();
        self.unary(Op::Cndf, partial, self.value.cndf())
    }

    /// Euclidean norm `√(self² + other²)`.
    pub fn hypot(self, other: Var<'t, V>) -> Var<'t, V> {
        let v = self.value.hypot(other.value);
        let (pa, pb) = self.value.hypot_partials(other.value, v);
        self.binary(other, Op::Hypot, pa, pb, v)
    }

    /// Elementwise minimum with subgradient partials.
    pub fn min(self, other: Var<'t, V>) -> Var<'t, V> {
        let (pa, pb) = self.value.min_partials(other.value);
        self.binary(other, Op::Min, pa, pb, self.value.min_val(other.value))
    }

    /// Elementwise maximum with subgradient partials.
    pub fn max(self, other: Var<'t, V>) -> Var<'t, V> {
        let (pa, pb) = self.value.max_partials(other.value);
        self.binary(other, Op::Max, pa, pb, self.value.max_val(other.value))
    }
}

impl<'t, V: Scalar> Add for Var<'t, V> {
    type Output = Var<'t, V>;
    fn add(self, rhs: Var<'t, V>) -> Var<'t, V> {
        self.binary(rhs, Op::Add, V::one(), V::one(), self.value + rhs.value)
    }
}

impl<'t, V: Scalar> Sub for Var<'t, V> {
    type Output = Var<'t, V>;
    fn sub(self, rhs: Var<'t, V>) -> Var<'t, V> {
        self.binary(rhs, Op::Sub, V::one(), -V::one(), self.value - rhs.value)
    }
}

impl<'t, V: Scalar> Mul for Var<'t, V> {
    type Output = Var<'t, V>;
    fn mul(self, rhs: Var<'t, V>) -> Var<'t, V> {
        self.binary(rhs, Op::Mul, rhs.value, self.value, self.value * rhs.value)
    }
}

impl<'t, V: Scalar> Div for Var<'t, V> {
    type Output = Var<'t, V>;
    fn div(self, rhs: Var<'t, V>) -> Var<'t, V> {
        let inv = rhs.value.recip();
        let value = self.value * inv;
        // ∂(a/b)/∂a = 1/b ; ∂(a/b)/∂b = −a/b²
        self.binary(rhs, Op::Div, inv, -self.value * inv.sqr(), value)
    }
}

impl<'t, V: Scalar> Neg for Var<'t, V> {
    type Output = Var<'t, V>;
    fn neg(self) -> Var<'t, V> {
        self.unary(Op::Neg, -V::one(), -self.value)
    }
}

// Mixed Var ⊙ f64 operators: the scalar is recorded as a constant node so
// the DynDFG stays self-contained.
macro_rules! mixed_ops {
    ($($trait:ident :: $method:ident),* $(,)?) => {
        $(
            impl<'t, V: Scalar> $trait<f64> for Var<'t, V> {
                type Output = Var<'t, V>;
                fn $method(self, rhs: f64) -> Var<'t, V> {
                    let c = self.tape.constant_f64(rhs);
                    $trait::$method(self, c)
                }
            }
            impl<'t, V: Scalar> $trait<Var<'t, V>> for f64 {
                type Output = Var<'t, V>;
                fn $method(self, rhs: Var<'t, V>) -> Var<'t, V> {
                    let c = rhs.tape.constant_f64(self);
                    $trait::$method(c, rhs)
                }
            }
        )*
    };
}

mixed_ops!(Add::add, Sub::sub, Mul::mul, Div::div);

#[cfg(test)]
mod tests {
    use crate::Tape;

    #[test]
    fn values_track_f64_arithmetic() {
        let tape = Tape::<f64>::new();
        let x = tape.var(3.0);
        let y = tape.var(4.0);
        assert_eq!((x + y).value(), 7.0);
        assert_eq!((x - y).value(), -1.0);
        assert_eq!((x * y).value(), 12.0);
        assert_eq!((x / y).value(), 0.75);
        assert_eq!((-x).value(), -3.0);
        assert_eq!(x.hypot(y).value(), 5.0);
        assert_eq!(x.min(y).value(), 3.0);
        assert_eq!(x.max(y).value(), 4.0);
    }

    #[test]
    fn mixed_scalar_ops_record_constants() {
        let tape = Tape::<f64>::new();
        let x = tape.var(2.0);
        let y = 3.0 * x + 1.0;
        assert_eq!(y.value(), 7.0);
        // x, const 3, mul, const 1, add
        assert_eq!(tape.len(), 5);
    }

    #[test]
    #[should_panic(expected = "different tapes")]
    fn cross_tape_operands_panic() {
        let t1 = Tape::<f64>::new();
        let t2 = Tape::<f64>::new();
        let a = t1.var(1.0);
        let b = t2.var(2.0);
        let _ = a + b;
    }

    #[test]
    fn powi_zero_has_zero_partial() {
        let tape = Tape::<f64>::new();
        let x = tape.var(5.0);
        let y = x.powi(0);
        assert_eq!(y.value(), 1.0);
        let adj = tape.adjoints(&[(y.id(), 1.0)]);
        assert_eq!(adj[x.id()], 0.0);
    }
}
