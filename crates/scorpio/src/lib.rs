//! **scorpio** — automatic significance analysis for approximate
//! computing.
//!
//! This facade crate re-exports the whole `scorpio-rs` workspace, a Rust
//! reproduction of Vassiliadis et al., *Towards Automatic Significance
//! Analysis for Approximate Computing* (CGO 2016):
//!
//! * [`interval`] — outward-rounded interval arithmetic (the IA of Eq.
//!   4–6);
//! * [`adjoint`] — DynDFG recording and adjoint/tangent algorithmic
//!   differentiation, generic over `f64` and intervals (Eq. 1–3, 7–10);
//! * [`analysis`] — the dco/scorpio-style significance-analysis
//!   framework: Eq. 11 significances, Algorithm-1 graph workflow,
//!   interval splitting and Monte-Carlo extensions;
//! * [`runtime`] — the significance-driven task runtime (§3.2: task
//!   significance, `approxfun`, the `ratio` quality knob) and the
//!   deterministic energy model;
//! * [`fastmath`] — fastapprox-style approximate math kernels;
//! * [`quality`] — PSNR/relative-error metrics and the image substrate;
//! * [`kernels`] — the five paper benchmarks plus the Maclaurin running
//!   example, each in reference/tasked/perforated form;
//! * [`dsl`] — a textual expression-language front-end (and the
//!   `scorpio-analyze` CLI) for running the analysis without writing
//!   Rust;
//! * [`obs`] — zero-cost-when-disabled observability: structured spans
//!   around every pipeline phase, a counters/histograms registry, and
//!   Chrome-trace + run-manifest export (see `docs/architecture.md`);
//! * [`serve`] — analysis-as-a-service: a persistent
//!   newline-delimited-JSON TCP server whose workers share compiled
//!   traces through a shape-keyed tape cache (the `scorpio_serve` and
//!   `scorpio_load` binaries).
//!
//! # Quick start
//!
//! Analyse, partition, and approximate the paper's running example:
//!
//! ```
//! use scorpio::analysis::Analysis;
//! use scorpio::runtime::{EnergyModel, Executor};
//! use scorpio::kernels::maclaurin;
//!
//! // 1. One profile run yields significances for every term.
//! let report = maclaurin::analysis(0.49, 8)?;
//! assert!(report.significance_of("term1") > report.significance_of("term4"));
//!
//! // 2. Algorithm 1 finds the task boundary at the term level.
//! let partition = report.partition();
//! assert_eq!(partition.cut_level, Some(1));
//!
//! // 3. Execute with the ratio knob; approximate terms use fast_powi.
//! let executor = Executor::new(4);
//! let (value, stats) = maclaurin::tasked(0.49, 8, &executor, 0.5);
//! assert!((value - maclaurin::reference(0.49, 8)).abs() < 1e-4);
//!
//! // 4. Energy comes from the deterministic model.
//! let energy = EnergyModel::xeon_e5_2695v3().energy(&stats);
//! assert!(energy > 0.0);
//! # Ok::<(), scorpio::analysis::AnalysisError>(())
//! ```
//!
//! # Observability
//!
//! Every pipeline phase is instrumented with [`obs`] spans and
//! counters. Instrumentation is off by default (one relaxed atomic
//! load per site); turn it on around a run to collect a phase-timing
//! tree and metrics:
//!
//! ```
//! use scorpio::kernels::maclaurin;
//!
//! scorpio::obs::enable();
//! let report = maclaurin::analysis(0.49, 8)?;
//! scorpio::obs::disable();
//!
//! // The record → reverse → significance phases were timed…
//! let events = scorpio::obs::take_events();
//! assert!(events.iter().any(|e| e.path.ends_with("significance")));
//! // …and the tape size was counted.
//! assert!(scorpio::obs::registry().counter("analysis.nodes_recorded").get() > 0);
//! # scorpio::obs::reset();
//! # Ok::<(), scorpio::analysis::AnalysisError>(())
//! ```
//!
//! The bench harness binaries expose this end to end via `--trace
//! <path>` (Chrome trace + `RUN_<name>.json` manifest).

#![warn(missing_docs)]

pub use scorpio_adjoint as adjoint;
pub use scorpio_core as analysis;
pub use scorpio_dsl as dsl;
pub use scorpio_fastmath as fastmath;
pub use scorpio_interval as interval;
pub use scorpio_kernels as kernels;
pub use scorpio_obs as obs;
pub use scorpio_quality as quality;
pub use scorpio_runtime as runtime;
pub use scorpio_serve as serve;
